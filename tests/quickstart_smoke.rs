//! Mirrors the README / `examples/quickstart.rs` flow as an assertion-only
//! test, so documentation rot shows up in CI.

use reconfigurable_smr::consensus::StaticConfig;
use reconfigurable_smr::kvstore::{KvOp, KvOutput, KvStore};
use reconfigurable_smr::rsmr::harness::World;
use reconfigurable_smr::rsmr::{AdminActor, Epoch, RsmrClient, RsmrNode, RsmrTunables};
use reconfigurable_smr::simnet::{NetConfig, NodeId, Sim, SimDuration};

#[test]
fn quickstart_flow_works_as_documented() {
    let mut sim: Sim<World<KvStore>> = Sim::new(42, NetConfig::lan());
    let servers: Vec<NodeId> = (0..3).map(NodeId).collect();
    let genesis = StaticConfig::new(servers.clone());
    for &s in &servers {
        sim.add_node_with_id(
            s,
            World::server(RsmrNode::genesis(
                s,
                genesis.clone(),
                RsmrTunables::default(),
            )),
        );
    }

    let client = NodeId(100);
    let script = [
        KvOp::Put("greeting".into(), b"hello".to_vec()),
        KvOp::Append("greeting".into(), b", world".to_vec()),
        KvOp::Get("greeting".into()),
    ];
    let len = script.len() as u64;
    sim.add_node_with_id(
        client,
        World::client(RsmrClient::new(
            servers.clone(),
            move |seq| script[seq as usize % script.len()].clone(),
            Some(len),
        )),
    );
    sim.run_for(SimDuration::from_secs(2));
    let c = sim.actor(client).unwrap().as_client().unwrap();
    assert_eq!(c.completed(), 3);
    assert_eq!(
        c.last_output(),
        Some(&KvOutput::Value(Some(b"hello, world".to_vec())))
    );

    // Live reconfiguration: add a brand-new member.
    let joiner = NodeId(3);
    sim.add_node_with_id(
        joiner,
        World::server(RsmrNode::joining(joiner, RsmrTunables::default())),
    );
    sim.add_node_with_id(
        NodeId(99),
        World::admin(AdminActor::new(
            servers,
            vec![(
                sim.now() + SimDuration::from_millis(100),
                vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            )],
        )),
    );
    sim.run_for(SimDuration::from_secs(10));

    let admin = sim.actor(NodeId(99)).unwrap().as_admin().unwrap();
    assert_eq!(admin.results().len(), 1);
    assert_eq!(admin.results()[0].2, Epoch(1));

    let j = sim.actor(joiner).unwrap().as_server().unwrap();
    assert_eq!(j.anchored_epoch(), Some(Epoch(1)));
    assert_eq!(
        j.state_machine().get("greeting"),
        Some(&b"hello, world"[..])
    );
}
