//! Workspace-spanning tests: the three systems (speculative composition,
//! stop-the-world composition, raft-lite) replicate the same application to
//! the same final state, and their operational differences show up where
//! the design predicts.

use reconfigurable_smr::baselines::{
    RaftAdmin, RaftClient, RaftNode, RaftTunables, RaftWorld, StwNode, StwTunables, StwWorld,
};
use reconfigurable_smr::consensus::StaticConfig;
use reconfigurable_smr::kvstore::{KeyDist, KvStore, WorkloadGen};
use reconfigurable_smr::rsmr::harness::World;
use reconfigurable_smr::rsmr::{AdminActor, RsmrClient, RsmrNode, RsmrTunables};
use reconfigurable_smr::simnet::{NetConfig, NodeId, Sim, SimDuration, SimTime};

const OPS: u64 = 300;

fn workload(seed: u64) -> impl FnMut(u64) -> reconfigurable_smr::kvstore::KvOp {
    WorkloadGen::new(seed, KeyDist::Uniform(64), 0.3, 16).into_fn()
}

fn reconfig_script() -> Vec<(SimTime, Vec<NodeId>)> {
    vec![(
        SimTime::from_millis(400),
        vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
    )]
}

/// Runs the speculative composition; returns (client completions, final
/// state snapshot from one replica, retransmits). Every run is checked
/// online by the protocol-invariant observer — a violation panics.
fn run_rsmr(seed: u64) -> (u64, Vec<u8>, u64) {
    use reconfigurable_smr::rsmr::InvariantObserver;
    use reconfigurable_smr::simnet::observe::shared;

    let mut sim: Sim<World<KvStore>> = Sim::new(seed, NetConfig::lan());
    let checker = shared(InvariantObserver::strict());
    sim.add_observer(checker.clone());
    let servers: Vec<NodeId> = (0..3).map(NodeId).collect();
    let genesis = StaticConfig::new(servers.clone());
    for &s in &servers {
        sim.add_node_with_id(
            s,
            World::server(RsmrNode::genesis(
                s,
                genesis.clone(),
                RsmrTunables::default(),
            )),
        );
    }
    sim.add_node_with_id(
        NodeId(3),
        World::server(RsmrNode::joining(NodeId(3), RsmrTunables::default())),
    );
    sim.add_node_with_id(
        NodeId(100),
        World::client(RsmrClient::new(servers.clone(), workload(seed), Some(OPS))),
    );
    sim.add_node_with_id(
        NodeId(99),
        World::admin(AdminActor::new(servers, reconfig_script())),
    );
    sim.run_for(SimDuration::from_secs(40));
    let done = sim.actor(NodeId(100)).unwrap().completed();
    let snap = {
        use reconfigurable_smr::rsmr::StateMachine;
        sim.actor(NodeId(3))
            .unwrap()
            .as_server()
            .unwrap()
            .state_machine()
            .snapshot()
    };
    let checker = checker.borrow();
    checker.assert_clean();
    assert!(
        checker.domain_events_seen() > 0,
        "the invariant observer saw no domain events"
    );
    (done, snap, sim.metrics().counter("client.retransmits"))
}

fn run_stw(seed: u64) -> (u64, Vec<u8>, u64) {
    let mut sim: Sim<StwWorld<KvStore>> = Sim::new(seed, NetConfig::lan());
    let servers: Vec<NodeId> = (0..3).map(NodeId).collect();
    let genesis = StaticConfig::new(servers.clone());
    for &s in &servers {
        sim.add_node_with_id(
            s,
            StwWorld::Server(StwNode::genesis(s, genesis.clone(), StwTunables::default())),
        );
    }
    sim.add_node_with_id(
        NodeId(3),
        StwWorld::Server(StwNode::joining(NodeId(3), StwTunables::default())),
    );
    sim.add_node_with_id(
        NodeId(100),
        StwWorld::Client(RsmrClient::new(servers.clone(), workload(seed), Some(OPS))),
    );
    sim.add_node_with_id(
        NodeId(99),
        StwWorld::Admin(AdminActor::new(servers, reconfig_script())),
    );
    sim.run_for(SimDuration::from_secs(40));
    let done = sim.actor(NodeId(100)).unwrap().completed();
    let snap = {
        use reconfigurable_smr::rsmr::StateMachine;
        sim.actor(NodeId(3))
            .unwrap()
            .as_server()
            .unwrap()
            .state_machine()
            .snapshot()
    };
    (done, snap, sim.metrics().counter("client.retransmits"))
}

fn run_raft(seed: u64) -> (u64, Vec<u8>, u64) {
    let mut sim: Sim<RaftWorld<KvStore>> = Sim::new(seed, NetConfig::lan());
    let servers: Vec<NodeId> = (0..3).map(NodeId).collect();
    let genesis = StaticConfig::new(servers.clone());
    for &s in &servers {
        sim.add_node_with_id(
            s,
            RaftWorld::Server(RaftNode::new(s, genesis.clone(), RaftTunables::default())),
        );
    }
    sim.add_node_with_id(
        NodeId(3),
        RaftWorld::Server(RaftNode::joining(NodeId(3), RaftTunables::default())),
    );
    sim.add_node_with_id(
        NodeId(100),
        RaftWorld::Client(RaftClient::new(servers.clone(), workload(seed), Some(OPS))),
    );
    sim.add_node_with_id(
        NodeId(99),
        RaftWorld::Admin(RaftAdmin::new(
            servers,
            vec![(
                SimTime::from_millis(400),
                vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            )],
        )),
    );
    sim.run_for(SimDuration::from_secs(40));
    let done = sim.actor(NodeId(100)).unwrap().completed();
    let snap = {
        use reconfigurable_smr::rsmr::StateMachine;
        sim.actor(NodeId(3))
            .unwrap()
            .as_server()
            .unwrap()
            .state_machine()
            .snapshot()
    };
    (done, snap, sim.metrics().counter("client.retransmits"))
}

#[test]
fn all_three_systems_converge_to_the_same_state() {
    // Same deterministic workload against all three systems: the joiner
    // replica must end up with byte-identical application state.
    let (d1, s1, _) = run_rsmr(7);
    let (d2, s2, _) = run_stw(7);
    let (d3, s3, _) = run_raft(7);
    assert_eq!(d1, OPS);
    assert_eq!(d2, OPS);
    assert_eq!(d3, OPS);
    assert_eq!(s1, s2, "rsmr vs stop-the-world state mismatch");
    assert_eq!(s1, s3, "rsmr vs raft state mismatch");
}

#[test]
fn speculative_composition_disturbs_clients_least() {
    // The STW baseline bounces requests during its blocking window; the
    // speculative composition should disturb the client no more than it.
    let (_, _, rsmr_rtx) = run_rsmr(11);
    let (_, _, stw_rtx) = run_stw(11);
    assert!(
        rsmr_rtx <= stw_rtx,
        "speculative composition retransmits ({rsmr_rtx}) exceed stop-the-world ({stw_rtx})"
    );
}

#[test]
fn runs_are_deterministic_per_system() {
    assert_eq!(run_rsmr(5).1, run_rsmr(5).1);
    assert_eq!(run_stw(5).1, run_stw(5).1);
    assert_eq!(run_raft(5).1, run_raft(5).1);
}

#[test]
fn facade_reexports_are_usable() {
    // The root crate exposes every layer a downstream user needs.
    use reconfigurable_smr::consensus::Ballot;
    use reconfigurable_smr::rsmr::Epoch;
    use reconfigurable_smr::simnet::SimTime;
    let _ = Ballot::new(1, NodeId(1));
    let _ = Epoch(1);
    let _ = SimTime::ZERO;
}
