//! # reconfigurable-smr
//!
//! A reproduction of the PODC 2012 brief announcement *"Reconfigurable state
//! machine replication from non-reconfigurable building blocks"* (Bortnikov,
//! Chockler, Perelman, Roytman, Shachor, Shnayderman).
//!
//! This façade crate re-exports the workspace's public API:
//!
//! * [`simnet`] — the deterministic discrete-event simulation substrate;
//! * [`consensus`] — the static (non-reconfigurable) Multi-Paxos building
//!   block;
//! * [`rsmr`] — the paper's contribution: a reconfigurable replicated state
//!   machine composed from static instances;
//! * [`baselines`] — stop-the-world reconfiguration and a Raft-style
//!   natively reconfigurable SMR, for comparison;
//! * [`kvstore`] — a replicated key-value store application, workload
//!   generators and a linearizability checker.
//!
//! See `README.md` for a tour, `DESIGN.md` for the architecture, and
//! `EXPERIMENTS.md` for the reproduced evaluation.

pub use baselines;
pub use consensus;
pub use kvstore;
pub use rsmr_core as rsmr;
pub use simnet;
