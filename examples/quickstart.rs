//! Quickstart: a 3-node replicated key-value store, a few operations, one
//! live reconfiguration that adds a fourth member.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use reconfigurable_smr::consensus::StaticConfig;
use reconfigurable_smr::kvstore::{KvOp, KvStore};
use reconfigurable_smr::rsmr::harness::World;
use reconfigurable_smr::rsmr::{AdminActor, Epoch, RsmrClient, RsmrNode, RsmrTunables};
use reconfigurable_smr::simnet::{NetConfig, NodeId, Sim, SimDuration, SimTime};

fn main() {
    // 1. A deterministic simulated LAN with three replicas.
    let mut sim: Sim<World<KvStore>> = Sim::new(42, NetConfig::lan());
    let servers: Vec<NodeId> = (0..3).map(NodeId).collect();
    let genesis = StaticConfig::new(servers.clone());
    for &s in &servers {
        sim.add_node_with_id(
            s,
            World::server(RsmrNode::genesis(
                s,
                genesis.clone(),
                RsmrTunables::default(),
            )),
        );
    }

    // 2. A client that writes a handful of keys, then reads one back.
    let client = NodeId(100);
    let script = [
        KvOp::Put("greeting".into(), b"hello".to_vec()),
        KvOp::Put("answer".into(), b"42".to_vec()),
        KvOp::Append("greeting".into(), b", world".to_vec()),
        KvOp::Get("greeting".into()),
    ];
    let script_len = script.len() as u64;
    sim.add_node_with_id(
        client,
        World::client(RsmrClient::new(
            servers.clone(),
            move |seq| script[seq as usize % script.len()].clone(),
            Some(script_len),
        )),
    );
    sim.run_for(SimDuration::from_secs(2));

    let c = sim.actor(client).unwrap().as_client().unwrap();
    println!("client completed {} operations", c.completed());
    println!("last read returned: {:?}", c.last_output());

    // 3. Reconfigure: add a brand-new member while the system is live.
    let joiner = NodeId(3);
    sim.add_node_with_id(
        joiner,
        World::server(RsmrNode::joining(joiner, RsmrTunables::default())),
    );
    sim.add_node_with_id(
        NodeId(99),
        World::admin(AdminActor::new(
            servers.clone(),
            vec![(
                sim.now() + SimDuration::from_millis(100),
                vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            )],
        )),
    );
    sim.run_for(SimDuration::from_secs(10));

    let admin = sim.actor(NodeId(99)).unwrap().as_admin().unwrap();
    let (started, finished, epoch) = admin.results()[0];
    println!(
        "reconfiguration to 4 members completed in {} (now at {epoch})",
        finished - started
    );

    // 4. The joiner holds the full state, transferred from the old epoch.
    let j = sim.actor(joiner).unwrap().as_server().unwrap();
    assert_eq!(j.anchored_epoch(), Some(Epoch(1)));
    assert_eq!(
        j.state_machine().get("greeting"),
        Some(&b"hello, world"[..])
    );
    println!(
        "joiner n3 anchored in {} with greeting = {:?}",
        Epoch(1),
        String::from_utf8_lossy(j.state_machine().get("greeting").unwrap())
    );
    println!("virtual time elapsed: {}", sim.now() - SimTime::ZERO);
}
