//! A replicated lock service with fencing tokens — a second application on
//! the same reconfigurable machine, demonstrating that the composition is
//! generic over the `StateMachine` contract.
//!
//! Three clients contend for one lock while the cluster is reconfigured
//! under them; fencing tokens observed by the clients must be strictly
//! increasing in acquisition order.
//!
//! ```sh
//! cargo run --release --example lock_service
//! ```

use reconfigurable_smr::consensus::StaticConfig;
use reconfigurable_smr::kvstore::{LockOp, LockOutput, LockService};
use reconfigurable_smr::rsmr::harness::World;
use reconfigurable_smr::rsmr::{AdminActor, RsmrClient, RsmrNode, RsmrTunables};
use reconfigurable_smr::simnet::{NetConfig, NodeId, Sim, SimDuration, SimTime};

fn main() {
    let mut sim: Sim<World<LockService>> = Sim::new(77, NetConfig::lan());
    let servers: Vec<NodeId> = (0..3).map(NodeId).collect();
    let genesis = StaticConfig::new(servers.clone());
    for &s in &servers {
        sim.add_node_with_id(
            s,
            World::server(RsmrNode::genesis(
                s,
                genesis.clone(),
                RsmrTunables::default(),
            )),
        );
    }
    sim.add_node_with_id(
        NodeId(3),
        World::server(RsmrNode::joining(NodeId(3), RsmrTunables::default())),
    );

    // Each client alternates TryAcquire / Release on the same lock.
    let clients: Vec<NodeId> = (0..3).map(|c| NodeId(100 + c)).collect();
    for (i, &c) in clients.iter().enumerate() {
        let owner = i as u64 + 1;
        sim.add_node_with_id(
            c,
            World::client(
                RsmrClient::new(
                    servers.clone(),
                    move |seq| {
                        if seq % 2 == 0 {
                            LockOp::Acquire {
                                lock: "leader-election".into(),
                                owner,
                            }
                        } else {
                            LockOp::Release {
                                lock: "leader-election".into(),
                                owner,
                            }
                        }
                    },
                    Some(200),
                )
                .with_history(),
            ),
        );
    }
    sim.add_node_with_id(
        NodeId(99),
        World::admin(AdminActor::new(
            servers.clone(),
            vec![(
                SimTime::from_millis(300),
                vec![NodeId(1), NodeId(2), NodeId(3)],
            )],
        )),
    );

    sim.run_for(SimDuration::from_secs(20));

    // Collect every successful acquisition, ordered by response time.
    let mut acquisitions: Vec<(SimTime, u64, u64)> = Vec::new(); // (when, owner, token)
    for (i, &c) in clients.iter().enumerate() {
        let cl = sim.actor(c).unwrap().as_client().unwrap();
        assert_eq!(cl.completed(), 200, "client {c} must finish");
        for (_seq, op, out, _invoke, response) in cl.history() {
            if let (LockOp::Acquire { .. }, LockOutput::Acquired { token }) = (op, out) {
                acquisitions.push((*response, i as u64 + 1, *token));
            }
        }
    }
    acquisitions.sort();
    println!(
        "{} successful acquisitions across {} clients (with one reconfiguration)",
        acquisitions.len(),
        clients.len()
    );

    // Fencing property (as observed): each *newly issued* token exceeds
    // every token issued before it. Re-entrant acquisitions repeat the
    // same token, so we check the running maximum of first-sightings.
    let mut seen_max = 0u64;
    let mut violations = 0;
    for &(_, _, token) in &acquisitions {
        if token > seen_max {
            if token != seen_max + 1 {
                // tokens may appear out of response order only for
                // re-entrant repeats; fresh tokens are sequential
                violations += 1;
            }
            seen_max = token;
        }
    }
    println!("highest fencing token issued: {seen_max}; sequence violations: {violations}");
    assert_eq!(violations, 0, "fencing tokens must be issued sequentially");

    // The joiner's lock table matches the old members'.
    let reference = sim
        .actor(NodeId(1))
        .unwrap()
        .as_server()
        .unwrap()
        .state_machine()
        .clone();
    let joiner_sm = sim
        .actor(NodeId(3))
        .unwrap()
        .as_server()
        .unwrap()
        .state_machine();
    assert_eq!(joiner_sm, &reference, "joiner lock table diverged");
    println!(
        "joiner n3 lock table matches the cluster ({} locks held)",
        reference.held_count()
    );
}
