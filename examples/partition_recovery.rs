//! Fault tolerance during reconfiguration: a network partition isolates
//! the old leader in the middle of a membership change, and a crashed
//! replica recovers from stable storage afterwards. The run finishes with
//! a machine-checked linearizability verdict over everything the clients
//! observed.
//!
//! ```sh
//! cargo run --release --example partition_recovery
//! ```

use reconfigurable_smr::consensus::StaticConfig;
use reconfigurable_smr::kvstore::{linearizable, HistoryOp, KvOp, KvStore};
use reconfigurable_smr::rsmr::harness::World;
use reconfigurable_smr::rsmr::{AdminActor, RsmrClient, RsmrNode, RsmrTunables};
use reconfigurable_smr::simnet::{NetConfig, NodeId, Sim, SimDuration, SimTime};

fn main() {
    let mut sim: Sim<World<KvStore>> = Sim::new(1234, NetConfig::lan());
    let servers: Vec<NodeId> = (0..3).map(NodeId).collect();
    let genesis = StaticConfig::new(servers.clone());
    for &s in &servers {
        sim.add_node_with_id(
            s,
            World::server(RsmrNode::genesis(
                s,
                genesis.clone(),
                RsmrTunables::default(),
            )),
        );
    }
    let joiner = NodeId(3);
    sim.add_node_with_id(
        joiner,
        World::server(RsmrNode::joining(joiner, RsmrTunables::default())),
    );

    // Three clients hammering a 3-key space (maximal contention).
    let clients: Vec<NodeId> = (0..3).map(|c| NodeId(100 + c)).collect();
    for (i, &c) in clients.iter().enumerate() {
        let me = i as u64;
        sim.add_node_with_id(
            c,
            World::client(
                RsmrClient::new(
                    servers.clone(),
                    move |seq| match seq % 3 {
                        0 => KvOp::Put(format!("k{}", (me + seq) % 3), vec![me as u8, seq as u8]),
                        1 => KvOp::Get(format!("k{}", (me + seq) % 3)),
                        _ => KvOp::Append(format!("k{}", (me + seq) % 3), vec![seq as u8]),
                    },
                    Some(150),
                )
                .with_history(),
            ),
        );
    }
    sim.add_node_with_id(
        NodeId(99),
        World::admin(AdminActor::new(
            servers.clone(),
            vec![(
                SimTime::from_millis(500),
                vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            )],
        )),
    );

    // Let the reconfiguration begin, then isolate the active leader
    // (poll briefly: right at the handoff there can be a leaderless gap).
    sim.run_for(SimDuration::from_millis(520));
    let find_leader = |sim: &Sim<World<KvStore>>| {
        servers.iter().copied().find(|&s| {
            sim.actor(s)
                .and_then(World::as_server)
                .map(|n| n.is_active_leader())
                .unwrap_or(false)
        })
    };
    let mut leader = find_leader(&sim);
    while leader.is_none() {
        sim.run_for(SimDuration::from_millis(10));
        leader = find_leader(&sim);
    }
    let leader = leader.expect("loop exits with a leader");
    let others: Vec<NodeId> = servers.iter().copied().filter(|&s| s != leader).collect();
    println!("partitioning old leader {leader} away mid-reconfiguration…");
    sim.partition(&[leader], &[others[0], others[1], joiner]);
    sim.run_for(SimDuration::from_secs(3));

    // Heal, then crash-and-recover a follower for good measure.
    println!("healing the partition…");
    sim.heal_all();
    sim.run_for(SimDuration::from_secs(2));
    let victim = others[0];
    println!("crashing {victim} and recovering it from stable storage…");
    sim.crash(victim);
    sim.run_for(SimDuration::from_secs(1));
    let recovered =
        RsmrNode::<KvStore>::recover(victim, RsmrTunables::default(), sim.storage(victim))
            .expect("persisted base exists");
    sim.restart(victim, World::server(recovered));
    sim.run_for(SimDuration::from_secs(30));

    // Gather outcomes.
    let mut history: Vec<HistoryOp<_, _>> = Vec::new();
    for &c in &clients {
        let cl = sim.actor(c).unwrap().as_client().unwrap();
        println!("client {c}: {} / 150 operations completed", cl.completed());
        assert_eq!(
            cl.completed(),
            150,
            "clients must finish despite the faults"
        );
        for (_seq, op, out, invoke, response) in cl.history() {
            history.push(HistoryOp {
                process: c.0,
                invoke: *invoke,
                response: *response,
                input: op.clone(),
                output: out.clone(),
            });
        }
    }
    println!(
        "faults injected: partition during reconfig + crash/recovery; retransmits: {}",
        sim.metrics().counter("client.retransmits")
    );
    let ok = linearizable(KvStore::new(), &history);
    println!(
        "linearizability check over {} operations: {}",
        history.len(),
        if ok { "PASS" } else { "FAIL" }
    );
    assert!(ok, "history must be linearizable");
}
