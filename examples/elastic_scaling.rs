//! Elastic scaling: grow the cluster 3 → 5 → 7, then shrink back to 3,
//! under continuous load, and print a live throughput timeline. This is
//! the elastic-services scenario that motivated the protocol (FRAPPE).
//!
//! ```sh
//! cargo run --release --example elastic_scaling
//! ```

use reconfigurable_smr::consensus::StaticConfig;
use reconfigurable_smr::kvstore::{KeyDist, KvStore, WorkloadGen};
use reconfigurable_smr::rsmr::harness::World;
use reconfigurable_smr::rsmr::{AdminActor, OpenLoopClient, RsmrNode, RsmrTunables};
use reconfigurable_smr::simnet::{NetConfig, NodeId, Sim, SimDuration, SimTime};

fn ids(v: &[u64]) -> Vec<NodeId> {
    v.iter().map(|&i| NodeId(i)).collect()
}

fn main() {
    let mut sim: Sim<World<KvStore>> = Sim::new(7, NetConfig::lan());
    let genesis_ids = ids(&[0, 1, 2]);
    let genesis = StaticConfig::new(genesis_ids.clone());
    for &s in &genesis_ids {
        sim.add_node_with_id(
            s,
            World::server(RsmrNode::genesis(
                s,
                genesis.clone(),
                RsmrTunables::default(),
            )),
        );
    }
    // Standby nodes that will join later.
    for id in 3..7u64 {
        sim.add_node_with_id(
            NodeId(id),
            World::server(RsmrNode::joining(NodeId(id), RsmrTunables::default())),
        );
    }

    // Eight paced clients, ~4000 ops/s aggregate.
    for c in 0..8u64 {
        let gen = WorkloadGen::new(
            100 + c,
            KeyDist::Zipf {
                n: 1000,
                theta: 0.99,
            },
            0.5,
            64,
        );
        sim.add_node_with_id(
            NodeId(100 + c),
            World::paced(OpenLoopClient::new(
                genesis_ids.clone(),
                gen.into_fn(),
                SimDuration::from_millis(2),
                None,
            )),
        );
    }

    // The scaling script: grow, grow, shrink, shrink.
    let script = vec![
        (SimTime::from_secs(2), ids(&[0, 1, 2, 3, 4])),
        (SimTime::from_secs(4), ids(&[0, 1, 2, 3, 4, 5, 6])),
        (SimTime::from_secs(6), ids(&[0, 1, 2, 3, 4])),
        (SimTime::from_secs(8), ids(&[0, 1, 2])),
    ];
    sim.add_node_with_id(
        NodeId(99),
        World::admin(AdminActor::new(genesis_ids, script)),
    );

    let horizon = SimTime::from_secs(10);
    sim.run_until(horizon);

    // Print the completes-per-100ms timeline with reconfiguration marks.
    let timeline = sim
        .metrics()
        .timeline("client.completes")
        .expect("clients completed operations");
    let bins = timeline.binned(SimTime::ZERO, horizon, SimDuration::from_millis(100));
    let marks: Vec<SimTime> = sim
        .actor(NodeId(99))
        .unwrap()
        .as_admin()
        .unwrap()
        .results()
        .iter()
        .map(|&(_, finished, _)| finished)
        .collect();

    println!("time(s)  ops/100ms  (each # ≈ 5 ops; R marks a completed reconfiguration)");
    for (t, v) in &bins {
        let reconfigured = marks
            .iter()
            .any(|m| *m >= *t && *m < *t + SimDuration::from_millis(100));
        let bar = "#".repeat((*v / 5.0).round() as usize);
        println!(
            "{:7.1}  {:9} {} {}",
            t.as_secs_f64(),
            *v as u64,
            if reconfigured { "R" } else { " " },
            bar
        );
    }

    let admin = sim.actor(NodeId(99)).unwrap().as_admin().unwrap();
    println!("\ncompleted {} reconfigurations:", admin.results().len());
    for (started, finished, epoch) in admin.results() {
        println!("  → {epoch} in {}", *finished - *started);
    }
    let total: f64 = bins.iter().map(|(_, v)| v).sum();
    println!("total operations completed: {total}");
    let gap = timeline.longest_gap_bins(SimTime::ZERO, horizon, SimDuration::from_millis(100));
    println!("longest service gap: {} x 100ms bins", gap);
}
