//! Rolling upgrade: replace every member of the cluster, one at a time,
//! without ever taking the service down — the classic operational task a
//! reconfigurable RSM exists for. Verifies that the client never stalls
//! longer than a tunable bound and that the final (fully replaced) cluster
//! holds the complete state.
//!
//! ```sh
//! cargo run --release --example rolling_upgrade
//! ```

use reconfigurable_smr::consensus::StaticConfig;
use reconfigurable_smr::kvstore::{KvOp, KvStore};
use reconfigurable_smr::rsmr::harness::World;
use reconfigurable_smr::rsmr::{AdminActor, Epoch, RsmrClient, RsmrNode, RsmrTunables};
use reconfigurable_smr::simnet::{NetConfig, NodeId, Sim, SimDuration, SimTime};

fn ids(v: &[u64]) -> Vec<NodeId> {
    v.iter().map(|&i| NodeId(i)).collect()
}

fn main() {
    let mut sim: Sim<World<KvStore>> = Sim::new(2024, NetConfig::lan());
    let old = ids(&[0, 1, 2]);
    let genesis = StaticConfig::new(old.clone());
    for &s in &old {
        sim.add_node_with_id(
            s,
            World::server(RsmrNode::genesis(
                s,
                genesis.clone(),
                RsmrTunables::default(),
            )),
        );
    }
    // The "upgraded" replacement nodes.
    for id in [10u64, 11, 12] {
        sim.add_node_with_id(
            NodeId(id),
            World::server(RsmrNode::joining(NodeId(id), RsmrTunables::default())),
        );
    }

    // Continuous writer recording its own completion times.
    let client = NodeId(100);
    sim.add_node_with_id(
        client,
        World::client(RsmrClient::new(
            old.clone(),
            |seq| KvOp::Put(format!("k{}", seq % 64), seq.to_le_bytes().to_vec()),
            Some(4_000),
        )),
    );

    // One member swapped per step: 0→10, 1→11, 2→12.
    let script = vec![
        (SimTime::from_millis(500), ids(&[10, 1, 2])),
        (SimTime::from_millis(1500), ids(&[10, 11, 2])),
        (SimTime::from_millis(2500), ids(&[10, 11, 12])),
    ];
    sim.add_node_with_id(
        NodeId(99),
        World::admin(AdminActor::new(old.clone(), script)),
    );

    sim.run_for(SimDuration::from_secs(30));

    let admin = sim.actor(NodeId(99)).unwrap().as_admin().unwrap();
    assert_eq!(admin.results().len(), 3, "all three swaps must complete");
    println!("rolling upgrade steps:");
    for (started, finished, epoch) in admin.results() {
        println!("  swap → {epoch}: {}", *finished - *started);
    }

    let c = sim.actor(client).unwrap().as_client().unwrap();
    println!("client completed {} writes", c.completed());
    assert_eq!(c.completed(), 4_000);

    // Retransmissions tell us how often the client even noticed.
    println!(
        "client retransmits during the whole upgrade: {}",
        sim.metrics().counter("client.retransmits")
    );

    // Every replacement node carries the full, identical state.
    let reference = sim
        .actor(NodeId(10))
        .unwrap()
        .as_server()
        .unwrap()
        .state_machine()
        .clone();
    for id in [10u64, 11, 12] {
        let s = sim.actor(NodeId(id)).unwrap().as_server().unwrap();
        assert_eq!(s.anchored_epoch(), Some(Epoch(3)));
        assert_eq!(s.state_machine(), &reference, "n{id} diverged");
        println!(
            "n{id}: anchored {}, {} keys, {} ops applied",
            Epoch(3),
            s.state_machine().len(),
            s.state_machine().ops_applied()
        );
    }
    println!("upgrade complete — no old node holds the service anymore.");
}
