//! Online protocol-invariant checking over the typed event stream.
//!
//! [`InvariantObserver`] subscribes to a [`Sim`](simnet::Sim)'s event bus
//! (via [`Sim::add_observer`](simnet::Sim::add_observer)) and cross-checks
//! the composition-layer lifecycle events every node emits:
//!
//! - **Seal agreement** — every replica that seals an epoch reports the
//!   same seal slot. Divergent seal slots would mean two replicas closed
//!   the same epoch at different points, i.e. a forked configuration chain.
//! - **No apply past the seal point** — once an epoch is sealed at slot
//!   `s`, no command at a slot `> s` of that epoch may ever reach a state
//!   machine. The consensus layer is allowed to *commit* entries past the
//!   seal (the composition discards that tail and re-proposes it in the
//!   successor), so the externally visible invariant is enforced where it
//!   matters: at apply time ([`DomainEvent::CmdApplied`] and
//!   [`DomainEvent::FirstCommit`]). The check is retroactive as well —
//!   applies observed *before* the seal event arrives are re-validated when
//!   the seal slot becomes known.
//! - **Transfers only target live epochs** — a base-state transfer
//!   (requested or served) must name an epoch that exists, i.e. one whose
//!   predecessor has been sealed (or that some node has anchored).
//! - **At most one anchored successor per epoch** — each node's anchor
//!   moves strictly forward: a node never re-anchors an epoch it already
//!   passed, so no epoch acquires two competing successors on any replica.
//!   Together with seal agreement this pins the configuration chain to a
//!   single line.
//! - **One first-commit per (node, epoch)** — the handoff-gap end marker
//!   fires at most once per node and epoch.
//!
//! Per-node expectations (anchor monotonicity, first-commit uniqueness)
//! reset when the checker sees that node crash: a restarted incarnation
//! loses its volatile watermarks and legitimately replays those events.
//! Log-wide facts (seal slots, applied high-water marks) survive crashes —
//! they are properties of the replicated log, not of any one replica.
//!
//! In *strict* mode (the default for tests, via
//! [`InvariantObserver::strict`]) the first violation panics with a
//! description, pointing straight at the offending event. In collecting
//! mode ([`InvariantObserver::new`]) violations accumulate and are checked
//! at the end with [`assert_clean`](InvariantObserver::assert_clean) or
//! inspected with [`violations`](InvariantObserver::violations).
//!
//! ```
//! use rsmr_core::InvariantObserver;
//! use simnet::observe::shared;
//!
//! let checker = shared(InvariantObserver::strict());
//! // sim.add_observer(checker.clone());
//! // ... run the simulation; a violation panics immediately ...
//! // checker.borrow().assert_clean();
//! ```

use std::collections::{BTreeMap, BTreeSet};

use simnet::observe::{DomainEvent, Observer, SimEvent};
use simnet::{NodeId, SimTime};

/// An [`Observer`] that asserts RSMR protocol invariants online.
///
/// See the [module docs](self) for the invariants checked.
#[derive(Debug, Default)]
pub struct InvariantObserver {
    /// Panic at the first violation instead of collecting it.
    strict: bool,
    /// Epoch -> agreed seal slot (first seal event wins; later ones must
    /// match).
    seal_slots: BTreeMap<u64, u64>,
    /// Epoch -> highest slot seen applied in it (across all nodes).
    max_applied: BTreeMap<u64, u64>,
    /// Epochs known to exist: successors of sealed epochs, plus any epoch
    /// some node anchored.
    live: BTreeSet<u64>,
    /// Node -> highest epoch it anchored (must strictly increase).
    anchored_by: BTreeMap<NodeId, u64>,
    /// (node, epoch) pairs that already reported a first commit.
    first_commits: BTreeSet<(NodeId, u64)>,
    /// Violations found so far (empty in strict mode unless panics are
    /// caught).
    violations: Vec<String>,
    /// Total domain events consumed — lets tests assert the stream actually
    /// flowed.
    domain_events: u64,
}

impl InvariantObserver {
    /// A collecting checker: violations accumulate for later inspection.
    pub fn new() -> Self {
        Self::default()
    }

    /// A strict checker: the first violation panics with its description.
    pub fn strict() -> Self {
        InvariantObserver {
            strict: true,
            ..Self::default()
        }
    }

    /// All violations recorded so far (always empty while a strict checker
    /// is alive — it panics instead).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// True when no invariant has been violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics listing every violation unless the stream was clean.
    pub fn assert_clean(&self) {
        assert!(
            self.violations.is_empty(),
            "protocol invariant violations:\n  {}",
            self.violations.join("\n  ")
        );
    }

    /// How many domain events this checker has consumed.
    pub fn domain_events_seen(&self) -> u64 {
        self.domain_events
    }

    fn violation(&mut self, at: SimTime, msg: String) {
        let full = format!("[{at}] {msg}");
        if self.strict {
            panic!("protocol invariant violated: {full}");
        }
        self.violations.push(full);
    }

    fn on_domain(&mut self, at: SimTime, node: NodeId, ev: DomainEvent) {
        self.domain_events += 1;
        match ev {
            DomainEvent::EpochSealed { epoch, seal_slot } => match self.seal_slots.get(&epoch) {
                Some(&agreed) if agreed != seal_slot => self.violation(
                    at,
                    format!(
                        "{node} sealed epoch {epoch} at slot {seal_slot}, \
                             but it was already sealed at slot {agreed}"
                    ),
                ),
                Some(_) => {}
                None => {
                    self.seal_slots.insert(epoch, seal_slot);
                    self.live.insert(epoch + 1);
                    if let Some(&applied) = self.max_applied.get(&epoch) {
                        if applied > seal_slot {
                            self.violation(
                                at,
                                format!(
                                    "epoch {epoch} sealed at slot {seal_slot} after \
                                         slot {applied} was already applied past it"
                                ),
                            );
                        }
                    }
                }
            },
            DomainEvent::CmdApplied { epoch, slot, .. } => {
                self.note_applied(at, node, epoch, slot);
            }
            DomainEvent::FirstCommit { epoch, slot } => {
                if !self.first_commits.insert((node, epoch)) {
                    self.violation(
                        at,
                        format!("{node} reported a second first-commit for epoch {epoch}"),
                    );
                }
                self.note_applied(at, node, epoch, slot);
            }
            DomainEvent::TransferRequested { epoch, provider } => {
                if !self.live.contains(&epoch) {
                    self.violation(
                        at,
                        format!(
                            "{node} requested a transfer of epoch {epoch} from \
                             {provider}, but that epoch was never created"
                        ),
                    );
                }
            }
            DomainEvent::TransferServed { epoch, to, .. } => {
                if !self.live.contains(&epoch) {
                    self.violation(
                        at,
                        format!(
                            "{node} served a transfer of epoch {epoch} to {to}, \
                             but that epoch was never created"
                        ),
                    );
                }
            }
            DomainEvent::Anchored { epoch } => {
                self.live.insert(epoch);
                match self.anchored_by.get(&node) {
                    Some(&prev) if prev >= epoch => self.violation(
                        at,
                        format!(
                            "{node} anchored epoch {epoch} after already \
                             anchoring epoch {prev}"
                        ),
                    ),
                    _ => {
                        self.anchored_by.insert(node, epoch);
                    }
                }
            }
            DomainEvent::ReconfigProposed { .. }
            | DomainEvent::CmdSubmitted { .. }
            | DomainEvent::CmdProposed { .. }
            | DomainEvent::CmdCommitted { .. } => {}
        }
    }

    fn note_applied(&mut self, at: SimTime, node: NodeId, epoch: u64, slot: u64) {
        let high = self.max_applied.entry(epoch).or_insert(slot);
        if slot > *high {
            *high = slot;
        }
        if let Some(&seal) = self.seal_slots.get(&epoch) {
            if slot > seal {
                self.violation(
                    at,
                    format!(
                        "{node} applied slot {slot} of epoch {epoch}, \
                         past its seal point {seal}"
                    ),
                );
            }
        }
    }
}

impl Observer for InvariantObserver {
    fn on_event(&mut self, at: SimTime, ev: &SimEvent) {
        match *ev {
            SimEvent::Domain { node, event } => self.on_domain(at, node, event),
            SimEvent::Crashed { node } => {
                // The node's volatile watermarks are gone; a restarted
                // incarnation may re-anchor and re-report first commits.
                self.anchored_by.remove(&node);
                self.first_commits.retain(|&(n, _)| n != node);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain(node: u64, event: DomainEvent) -> SimEvent {
        SimEvent::Domain {
            node: NodeId(node),
            event,
        }
    }

    fn feed(obs: &mut InvariantObserver, events: &[SimEvent]) {
        for (i, ev) in events.iter().enumerate() {
            obs.on_event(SimTime::from_micros(i as u64), ev);
        }
    }

    #[test]
    fn clean_reconfiguration_stream_passes() {
        let mut obs = InvariantObserver::new();
        feed(
            &mut obs,
            &[
                domain(0, DomainEvent::ReconfigProposed { epoch: 0 }),
                domain(
                    0,
                    DomainEvent::CmdApplied {
                        client: NodeId(100),
                        seq: 1,
                        epoch: 0,
                        slot: 3,
                    },
                ),
                domain(
                    0,
                    DomainEvent::EpochSealed {
                        epoch: 0,
                        seal_slot: 4,
                    },
                ),
                domain(
                    1,
                    DomainEvent::EpochSealed {
                        epoch: 0,
                        seal_slot: 4,
                    },
                ),
                domain(0, DomainEvent::Anchored { epoch: 1 }),
                domain(
                    3,
                    DomainEvent::TransferRequested {
                        epoch: 1,
                        provider: NodeId(0),
                    },
                ),
                domain(
                    0,
                    DomainEvent::TransferServed {
                        epoch: 1,
                        to: NodeId(3),
                        bytes: 64,
                    },
                ),
                domain(3, DomainEvent::Anchored { epoch: 1 }),
                domain(0, DomainEvent::FirstCommit { epoch: 1, slot: 0 }),
            ],
        );
        obs.assert_clean();
        assert_eq!(obs.domain_events_seen(), 9);
    }

    #[test]
    fn divergent_seal_slots_are_flagged() {
        let mut obs = InvariantObserver::new();
        feed(
            &mut obs,
            &[
                domain(
                    0,
                    DomainEvent::EpochSealed {
                        epoch: 2,
                        seal_slot: 7,
                    },
                ),
                domain(
                    1,
                    DomainEvent::EpochSealed {
                        epoch: 2,
                        seal_slot: 9,
                    },
                ),
            ],
        );
        assert_eq!(obs.violations().len(), 1);
        assert!(obs.violations()[0].contains("already sealed at slot 7"));
    }

    #[test]
    fn apply_past_seal_is_flagged_in_both_orders() {
        // Seal first, apply after.
        let mut obs = InvariantObserver::new();
        feed(
            &mut obs,
            &[
                domain(
                    0,
                    DomainEvent::EpochSealed {
                        epoch: 0,
                        seal_slot: 5,
                    },
                ),
                domain(
                    1,
                    DomainEvent::CmdApplied {
                        client: NodeId(100),
                        seq: 1,
                        epoch: 0,
                        slot: 6,
                    },
                ),
            ],
        );
        assert_eq!(obs.violations().len(), 1, "{:?}", obs.violations());

        // Apply first, seal revealed retroactively.
        let mut obs = InvariantObserver::new();
        feed(
            &mut obs,
            &[
                domain(
                    1,
                    DomainEvent::CmdApplied {
                        client: NodeId(100),
                        seq: 1,
                        epoch: 0,
                        slot: 6,
                    },
                ),
                domain(
                    0,
                    DomainEvent::EpochSealed {
                        epoch: 0,
                        seal_slot: 5,
                    },
                ),
            ],
        );
        assert_eq!(obs.violations().len(), 1, "{:?}", obs.violations());
    }

    #[test]
    fn transfers_to_uncreated_epochs_are_flagged() {
        let mut obs = InvariantObserver::new();
        feed(
            &mut obs,
            &[domain(
                3,
                DomainEvent::TransferRequested {
                    epoch: 4,
                    provider: NodeId(0),
                },
            )],
        );
        assert_eq!(obs.violations().len(), 1);
        assert!(obs.violations()[0].contains("never created"));
    }

    #[test]
    fn anchor_regression_is_flagged() {
        let mut obs = InvariantObserver::new();
        feed(
            &mut obs,
            &[
                domain(
                    0,
                    DomainEvent::EpochSealed {
                        epoch: 0,
                        seal_slot: 1,
                    },
                ),
                domain(
                    0,
                    DomainEvent::EpochSealed {
                        epoch: 1,
                        seal_slot: 9,
                    },
                ),
                domain(0, DomainEvent::Anchored { epoch: 2 }),
                domain(0, DomainEvent::Anchored { epoch: 1 }),
            ],
        );
        assert_eq!(obs.violations().len(), 1);
        assert!(obs.violations()[0].contains("already"));
    }

    #[test]
    fn a_crash_resets_per_node_expectations() {
        let mut obs = InvariantObserver::new();
        feed(
            &mut obs,
            &[
                domain(
                    0,
                    DomainEvent::EpochSealed {
                        epoch: 0,
                        seal_slot: 3,
                    },
                ),
                domain(1, DomainEvent::Anchored { epoch: 1 }),
                domain(1, DomainEvent::FirstCommit { epoch: 1, slot: 0 }),
                SimEvent::Crashed { node: NodeId(1) },
                // The restarted incarnation replays both without violation.
                domain(1, DomainEvent::Anchored { epoch: 1 }),
                domain(1, DomainEvent::FirstCommit { epoch: 1, slot: 0 }),
            ],
        );
        obs.assert_clean();
    }

    #[test]
    #[should_panic(expected = "protocol invariant violated")]
    fn strict_mode_panics_at_the_first_violation() {
        let mut obs = InvariantObserver::strict();
        feed(
            &mut obs,
            &[domain(
                3,
                DomainEvent::TransferRequested {
                    epoch: 4,
                    provider: NodeId(0),
                },
            )],
        );
    }

    #[test]
    fn duplicate_first_commit_is_flagged() {
        let mut obs = InvariantObserver::new();
        feed(
            &mut obs,
            &[
                domain(
                    0,
                    DomainEvent::EpochSealed {
                        epoch: 0,
                        seal_slot: 3,
                    },
                ),
                domain(0, DomainEvent::FirstCommit { epoch: 1, slot: 0 }),
                domain(0, DomainEvent::FirstCommit { epoch: 1, slot: 2 }),
            ],
        );
        assert_eq!(obs.violations().len(), 1);
        assert!(obs.violations()[0].contains("second first-commit"));
    }
}
