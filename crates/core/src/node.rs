//! The composed reconfigurable replica.
//!
//! [`RsmrNode`] glues the pieces together: it runs one static
//! [`MultiPaxos`] instance per epoch, routes client traffic to the active
//! instance, enforces the *close-at-first-`Reconfigure`* prefix rule,
//! starts successor instances speculatively, serves and consumes state
//! transfer, and externalizes application effects exactly once.
//!
//! ## Anchoring
//!
//! A replica's application state is always "anchored" at some `(epoch,
//! next_slot)`: the state equals the composed history through every epoch
//! before `epoch` plus `epoch`'s slots below `next_slot`. Committed entries
//! for *later* epochs (or for an epoch whose base the replica does not have
//! yet — a joining member) are buffered and drained in order by the apply
//! pump once the anchor reaches them. The pump is also where the close
//! rule lives: the first `Reconfigure` applied in slot order closes the
//! epoch, everything buffered after it is discarded (with discarded client
//! commands optionally re-proposed into the successor), and the anchor
//! moves to the successor's slot 0.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use consensus::{MultiPaxos, PaxosTunables, ProposeOutcome, Slot, StaticConfig};
use simnet::wire::{self, Wire};
use simnet::{Actor, Context, DomainEvent, NodeId, SimDuration, SimTime, StableStore, Timer};

use crate::chain::{ConfigChain, Epoch};
use crate::command::{BatchEntry, Cmd};
use crate::messages::RsmrMsg;
use crate::session::{SessionDecision, SessionTable};
use crate::state_machine::StateMachine;
use crate::transfer::{
    assemble_full_pages, BaseState, ChunkAssembly, ChunkOutcome, TransferManifest, TransferMode,
    TransferPlan, CHUNK_TARGET,
};

/// Behaviour knobs of the composed replica.
#[derive(Clone, Debug)]
pub struct RsmrTunables {
    /// Tunables for every embedded building-block instance.
    pub paxos: PaxosTunables,
    /// Speculative handoff: the closing epoch's leader campaigns in the
    /// successor instance immediately, skipping the election timeout. This
    /// is the headline optimization; experiment E2/E5 toggles it.
    pub fast_handoff: bool,
    /// Re-propose client commands discarded from a closed epoch's tail into
    /// the successor (instead of waiting for client retransmission).
    pub repropose_discarded: bool,
    /// How often the node pumps instance timers.
    pub tick: SimDuration,
    /// Retry interval for state-transfer requests.
    pub transfer_retry: SimDuration,
    /// How long a closed epoch's instance keeps serving catch-up before it
    /// is halted and dropped.
    pub retire_grace: SimDuration,
    /// Leader-side group commit: while a proposal is in flight, accumulate
    /// up to this many client commands and propose them as one log entry
    /// (flushed when the pipeline idles, the buffer fills, or at the next
    /// tick). `0` disables batching.
    pub batch_size: usize,
    /// Serve pure reads (operations with a [`StateMachine::query`] answer)
    /// locally at the leader under a read lease, skipping the log.
    /// Requires `paxos.lease_duration` to be set; linearizable given the
    /// lease-safety constraint documented there.
    pub local_reads: bool,
    /// In-epoch incremental compaction: how many snapshot pages the
    /// rolling cursor refreshes per tick. Pages whose
    /// [`StateMachine::page_version`] still matches the cached encode are
    /// skipped, so a full pass over a quiescent state costs nothing; at
    /// epoch seal only pages dirtied since the cursor last passed them
    /// need re-encoding. `0` disables the cursor (seal encodes
    /// everything). Irrelevant for single-page state machines.
    pub compact_pages_per_tick: usize,
}

impl Default for RsmrTunables {
    fn default() -> Self {
        RsmrTunables {
            paxos: PaxosTunables::default(),
            fast_handoff: true,
            repropose_discarded: true,
            tick: SimDuration::from_millis(5),
            transfer_retry: SimDuration::from_millis(100),
            retire_grace: SimDuration::from_secs(2),
            batch_size: 0,
            local_reads: false,
            compact_pages_per_tick: 8,
        }
    }
}

/// One epoch's embedded building block plus composition bookkeeping.
struct Instance<O: CmdOp> {
    paxos: MultiPaxos<Cmd<O>>,
    /// Set when the apply pump hits this epoch's first `Reconfigure`:
    /// `(close_slot, successor members)`.
    closed: Option<(Slot, Vec<NodeId>)>,
    /// When set, the instance is halted & dropped after this time.
    retire_at: Option<SimTime>,
}

/// Shorthand for the operation-type bounds.
trait CmdOp: Clone + std::fmt::Debug + PartialEq + simnet::wire::Wire + 'static {}
impl<T: Clone + std::fmt::Debug + PartialEq + simnet::wire::Wire + 'static> CmdOp for T {}

/// Where the application state currently sits.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct Anchor {
    epoch: Epoch,
    next_slot: Slot,
}

/// An in-flight reconfiguration this node proposed.
#[derive(Clone, Debug)]
struct Closing {
    epoch: Epoch,
    admin: NodeId,
    proposed_at: SimTime,
}

/// A state transfer this node is waiting on.
///
/// Tracks retry attempts (for exponential backoff) and every donor the node
/// has learned about — the `Activate` sender, the successor's members, and
/// senders of stashed building-block traffic — so a dead or partitioned
/// donor is failed over instead of retried forever.
#[derive(Clone, Debug)]
struct PendingTransfer {
    epoch: Epoch,
    provider: NodeId,
    last_request: SimTime,
    attempts: u32,
    candidates: Vec<NodeId>,
    /// Delta watermark advertised in the manifest request (`None` for a
    /// blank joiner, which always takes a full transfer).
    since: Option<u64>,
    /// Reassembly state once a manifest has been accepted. Survives donor
    /// rotation: the manifest is a deterministic function of the base, so
    /// a new donor fills in only the missing chunks.
    assembly: Option<ChunkAssembly>,
    /// Chunk indices requested but not yet answered (bounded window).
    inflight: Vec<u64>,
    /// Every chunk index ever requested; re-requesting one (donor crash,
    /// corruption) counts toward `transfer.chunks_resent`.
    requested: BTreeSet<u64>,
}

/// One cached page encode, reused while the page's version is unchanged.
struct CachedPage {
    version: Option<u64>,
    bytes: Arc<Vec<u8>>,
}

/// Legacy monolithic base key; still read as a recovery fallback.
const KEY_BASE: &str = "base/latest";
/// Per-page persistence: `(epoch, page count, header)` metadata…
const KEY_BASE_META: &str = "base/meta";
/// …plus one key per snapshot page; only dirty pages are re-put.
fn page_key(i: usize) -> String {
    format!("base/page/{i:05}")
}

const BASES_KEPT: usize = 4;
/// Max chunk requests a joiner keeps in flight (interleaves the stream
/// with live traffic under the egress cap instead of bursting).
const CHUNK_WINDOW: usize = 4;
/// Cap on cached donor-side transfer plans.
const SERVE_PLANS_KEPT: usize = 32;

/// One epoch's committed-but-unapplied entries, by slot, each stamped
/// with its commit time so the apply pump can report the commit→apply
/// latency (`rsmr.commit_to_apply_us`).
type SlotBuffer<Op> = BTreeMap<Slot, (SimTime, Arc<Cmd<Op>>)>;
/// Building-block messages parked for an epoch whose instance does not
/// exist yet.
type Stash<Op> = Vec<(NodeId, consensus::PaxosMsg<Cmd<Op>>)>;

/// The reconfigurable replica actor. See the module docs for the design.
pub struct RsmrNode<S: StateMachine> {
    me: NodeId,
    tun: RsmrTunables,

    /// The agreed configuration chain (`None` until a joining member
    /// installs its first base state).
    chain: Option<ConfigChain>,
    instances: BTreeMap<Epoch, Instance<S::Op>>,

    // --- Externalized application state ---
    sm: S,
    sessions: SessionTable<S::Output>,
    anchor: Option<Anchor>,

    /// Committed-but-not-yet-applied entries, per epoch.
    buffers: BTreeMap<Epoch, SlotBuffer<S::Op>>,
    /// When each still-finalizing epoch was sealed; drained by
    /// `finalize_epoch` into the `rsmr.seal_to_finalize_us` histogram —
    /// the replica-local reconfiguration span.
    sealed_at: BTreeMap<Epoch, SimTime>,
    /// Base states this node can serve, keyed by anchored epoch. Pages
    /// are `Arc`-shared with the page cache and outgoing chunks, so
    /// keeping a few epochs costs little beyond the newest.
    bases: BTreeMap<Epoch, Arc<BaseState<S::Output>>>,

    /// Donor-side transfer plans, keyed by `(epoch, requester)`: chunks
    /// are served from the plan the requester's manifest described, so a
    /// full and a delta transfer of the same epoch never mix.
    serve_plans: BTreeMap<(Epoch, NodeId), TransferPlan>,

    /// Rolling page-encode cache (in-epoch incremental compaction). Entry
    /// `i` holds the last encode of snapshot page `i` and the page version
    /// it reflects; the seal reuses it when the version still matches.
    page_cache: Vec<CachedPage>,
    /// Next page the compaction cursor refreshes.
    compact_cursor: usize,
    /// Page versions as last persisted, so finalization re-puts only
    /// dirty pages.
    persisted_versions: Vec<Option<u64>>,

    /// Requests this node proposed and owes replies for.
    waiting: BTreeMap<(NodeId, u64), ()>,
    /// Requests parked while a reconfiguration this node proposed is in
    /// flight; flushed into the successor epoch.
    handoff: VecDeque<(NodeId, u64, S::Op)>,
    /// The reconfiguration this node proposed, if unresolved.
    closing: Option<Closing>,

    /// Joining-member bootstrap / catch-up transfer in flight.
    pending_transfer: Option<PendingTransfer>,

    /// Building-block messages for epochs whose instance does not exist
    /// here yet (e.g. a speculative successor's `Prepare` racing ahead of
    /// the `Activate` that announces the epoch). Replayed on instance
    /// creation — without this, the speculative handoff's first campaign
    /// can be lost and leadership waits out a full election timeout.
    stashed: BTreeMap<Epoch, Stash<S::Op>>,

    /// When each stash first received a message. A stash that *ages* —
    /// traffic keeps arriving for an epoch this node cannot reach locally —
    /// is the signature of a replica that restarted (or fell) behind the
    /// cluster: the tick loop then requests a state transfer from one of
    /// the stashed senders instead of stalling forever.
    stash_since: BTreeMap<Epoch, SimTime>,

    /// Leader-side batch accumulator (when `batch_size > 0`).
    batch_buf: Vec<(NodeId, u64, S::Op)>,

    /// The intra-batch tail of the batch that closed the current epoch:
    /// application commands that followed the first `Reconfigure` inside
    /// the same batch. Set by the apply pump at the close, drained by
    /// `finalize_epoch` in the very next pump iteration, where the tail
    /// is re-proposed into the successor *ahead of* the slot-granular
    /// discarded entries (it precedes them in composed log order).
    batch_tail: Vec<(NodeId, u64, S::Op)>,

    /// Commands applied by this replica (for tests and metrics).
    applied_count: u64,

    /// Newest epoch in which this replica has applied an application
    /// command — drives the `FirstCommit` observability event that closes
    /// the handoff-gap span. Epochs only move forward, so a single
    /// watermark suffices.
    commit_seen_epoch: Option<Epoch>,
}

impl<S: StateMachine + Default> RsmrNode<S> {
    /// Creates a genesis member: a replica of the initial configuration
    /// with a default-constructed application state.
    pub fn genesis(me: NodeId, initial: StaticConfig, tun: RsmrTunables) -> Self {
        Self::genesis_with(me, initial, tun, S::default())
    }
}

impl<S: StateMachine> RsmrNode<S> {
    /// Creates a genesis member with an explicit initial application state.
    pub fn genesis_with(me: NodeId, initial: StaticConfig, tun: RsmrTunables, sm: S) -> Self {
        assert!(initial.contains(me), "{me} is not in the genesis config");
        let chain = ConfigChain::genesis(initial.clone());
        let mut node = RsmrNode {
            me,
            tun: tun.clone(),
            chain: Some(chain),
            instances: BTreeMap::new(),
            sm,
            sessions: SessionTable::new(),
            anchor: Some(Anchor {
                epoch: Epoch::ZERO,
                next_slot: Slot::ZERO,
            }),
            buffers: BTreeMap::new(),
            sealed_at: BTreeMap::new(),
            bases: BTreeMap::new(),
            serve_plans: BTreeMap::new(),
            page_cache: Vec::new(),
            compact_cursor: 0,
            persisted_versions: Vec::new(),
            waiting: BTreeMap::new(),
            handoff: VecDeque::new(),
            closing: None,
            pending_transfer: None,
            stashed: BTreeMap::new(),
            stash_since: BTreeMap::new(),
            batch_buf: Vec::new(),
            batch_tail: Vec::new(),
            applied_count: 0,
            commit_seen_epoch: None,
        };
        node.instances.insert(
            Epoch::ZERO,
            Instance {
                paxos: MultiPaxos::new(me, initial, SimTime::ZERO, tun.paxos),
                closed: None,
                retire_at: None,
            },
        );
        let (genesis_base, _, _) = node.capture_base(Epoch::ZERO);
        node.bases.insert(Epoch::ZERO, Arc::new(genesis_base));
        node
    }

    /// Creates a **joining** replica: it knows nothing and waits for an
    /// [`RsmrMsg::Activate`] naming it a member of some epoch, then pulls
    /// the base state.
    pub fn joining(me: NodeId, tun: RsmrTunables) -> Self
    where
        S: Default,
    {
        Self::joining_with(me, tun, S::default())
    }

    /// Creates a joining replica with an explicit placeholder state (which
    /// is replaced wholesale when the base state arrives).
    pub fn joining_with(me: NodeId, tun: RsmrTunables, placeholder: S) -> Self {
        RsmrNode {
            me,
            tun,
            chain: None,
            instances: BTreeMap::new(),
            sm: placeholder,
            sessions: SessionTable::new(),
            anchor: None,
            buffers: BTreeMap::new(),
            sealed_at: BTreeMap::new(),
            bases: BTreeMap::new(),
            serve_plans: BTreeMap::new(),
            page_cache: Vec::new(),
            compact_cursor: 0,
            persisted_versions: Vec::new(),
            waiting: BTreeMap::new(),
            handoff: VecDeque::new(),
            closing: None,
            pending_transfer: None,
            stashed: BTreeMap::new(),
            stash_since: BTreeMap::new(),
            batch_buf: Vec::new(),
            batch_tail: Vec::new(),
            applied_count: 0,
            commit_seen_epoch: None,
        }
    }

    /// Rebuilds a replica after a crash from its stable storage: the last
    /// persisted base state plus the building block's persisted acceptor
    /// state. The log since the base is re-learned from peers via catch-up
    /// and replayed (sessions make replay exactly-once).
    pub fn recover(me: NodeId, tun: RsmrTunables, store: &StableStore) -> Option<Self> {
        let base = Self::read_persisted_base(store)?;
        let sm = S::restore_pages(&base.pages)?;
        let anchor_epoch = base.epoch;
        let chain = base.chain.clone();
        let mut node = RsmrNode {
            me,
            tun: tun.clone(),
            chain: Some(chain.clone()),
            instances: BTreeMap::new(),
            sm,
            sessions: base.sessions.clone(),
            anchor: Some(Anchor {
                epoch: anchor_epoch,
                next_slot: Slot::ZERO,
            }),
            buffers: BTreeMap::new(),
            sealed_at: BTreeMap::new(),
            bases: BTreeMap::new(),
            serve_plans: BTreeMap::new(),
            page_cache: Vec::new(),
            compact_cursor: 0,
            persisted_versions: Vec::new(),
            waiting: BTreeMap::new(),
            handoff: VecDeque::new(),
            closing: None,
            pending_transfer: None,
            stashed: BTreeMap::new(),
            stash_since: BTreeMap::new(),
            batch_buf: Vec::new(),
            batch_tail: Vec::new(),
            applied_count: 0,
            commit_seen_epoch: None,
        };
        // The page cache mirrors the recovered base, and those exact pages
        // are what stable storage holds.
        node.page_cache = base
            .pages
            .iter()
            .enumerate()
            .map(|(i, p)| CachedPage {
                version: node.sm.page_version(i),
                bytes: Arc::clone(p),
            })
            .collect();
        node.persisted_versions = node.page_cache.iter().map(|c| c.version).collect();
        node.bases.insert(anchor_epoch, Arc::new(base));
        // Rebuild instances (from the anchored epoch onward) whose acceptor
        // state was persisted and whose configuration we know.
        for (epoch, cfg) in chain.iter() {
            if epoch < anchor_epoch || !cfg.contains(me) {
                continue;
            }
            let prefix = px_prefix(epoch);
            let items: Vec<(String, Vec<u8>)> = store
                .keys_with_prefix(&prefix)
                .map(|k| {
                    (
                        k[prefix.len()..].to_owned(),
                        store.get(k).expect("listed").to_vec(),
                    )
                })
                .collect();
            node.instances.insert(
                epoch,
                Instance {
                    paxos: MultiPaxos::recover(
                        me,
                        cfg.clone(),
                        SimTime::ZERO,
                        tun.paxos.clone(),
                        items,
                    ),
                    closed: None,
                    retire_at: None,
                },
            );
        }
        Some(node)
    }

    // --- Introspection (used by tests, examples and experiments) ---------

    /// This replica's id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// The epoch the application state is anchored in, if anchored.
    pub fn anchored_epoch(&self) -> Option<Epoch> {
        self.anchor.map(|a| a.epoch)
    }

    /// The newest epoch this replica runs an instance for.
    pub fn active_epoch(&self) -> Option<Epoch> {
        self.instances.keys().next_back().copied()
    }

    /// True if this replica leads the active epoch's instance.
    pub fn is_active_leader(&self) -> bool {
        self.active_epoch()
            .and_then(|e| self.instances.get(&e))
            .map(|i| i.paxos.is_leader())
            .unwrap_or(false)
    }

    /// The configuration chain, if installed.
    pub fn chain(&self) -> Option<&ConfigChain> {
        self.chain.as_ref()
    }

    /// Read access to the application state machine.
    pub fn state_machine(&self) -> &S {
        &self.sm
    }

    /// Commands applied (externalized) by this replica.
    pub fn applied_count(&self) -> u64 {
        self.applied_count
    }

    /// The client session table.
    pub fn sessions(&self) -> &SessionTable<S::Output> {
        &self.sessions
    }

    /// The donor a pending state transfer is currently aimed at, if any.
    /// Chaos harnesses use this to resolve the "transfer donor" fault role.
    pub fn transfer_provider(&self) -> Option<NodeId> {
        self.pending_transfer.as_ref().map(|pt| pt.provider)
    }

    // --- Internals --------------------------------------------------------

    /// Reads the persisted base state: per-page keys first, falling back
    /// to the legacy monolithic blob.
    fn read_persisted_base(store: &StableStore) -> Option<BaseState<S::Output>> {
        if let Some(meta) = store.get(KEY_BASE_META) {
            let (epoch, count, header) = wire::from_bytes::<(Epoch, u64, Vec<u8>)>(meta)?;
            let mut pages = Vec::with_capacity(count as usize);
            for i in 0..count as usize {
                pages.push(Arc::new(store.get(&page_key(i))?.to_vec()));
            }
            return BaseState::from_parts(epoch, pages, &header);
        }
        BaseState::decode_bytes(store.get(KEY_BASE)?)
    }

    /// Captures the base state anchoring `epoch`, reusing cached page
    /// encodes whose version is unchanged since the compaction cursor
    /// last refreshed them. Returns `(base, pages encoded, pages
    /// reused)`.
    fn capture_base(&mut self, epoch: Epoch) -> (BaseState<S::Output>, u64, u64) {
        let n = self.sm.snapshot_pages();
        self.page_cache.truncate(n);
        let mut pages = Vec::with_capacity(n);
        let (mut encoded, mut reused) = (0u64, 0u64);
        for i in 0..n {
            let version = self.sm.page_version(i);
            let hit =
                version.is_some() && self.page_cache.get(i).is_some_and(|c| c.version == version);
            if hit {
                reused += 1;
                pages.push(Arc::clone(&self.page_cache[i].bytes));
            } else {
                encoded += 1;
                let bytes = Arc::new(self.sm.snapshot_page(i));
                let entry = CachedPage {
                    version,
                    bytes: Arc::clone(&bytes),
                };
                if i < self.page_cache.len() {
                    self.page_cache[i] = entry;
                } else {
                    self.page_cache.push(entry);
                }
                pages.push(bytes);
            }
        }
        let base = BaseState {
            epoch,
            pages,
            sessions: self.sessions.clone(),
            chain: self.chain.clone().expect("anchored nodes have a chain"),
        };
        (base, encoded, reused)
    }

    /// Persists `base` under the per-page keys, re-putting only pages
    /// whose version changed since the last persist. Callers must have
    /// `page_cache` mirroring `base.pages` (capture and install both do).
    fn persist_base(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        base: &BaseState<S::Output>,
    ) {
        let meta = wire::to_bytes(&(base.epoch, base.pages.len() as u64, base.header_bytes()));
        ctx.storage().put(KEY_BASE_META, meta);
        let mut persisted = 0u64;
        for (i, page) in base.pages.iter().enumerate() {
            let version = self.page_cache.get(i).and_then(|c| c.version);
            let clean =
                version.is_some() && self.persisted_versions.get(i).copied() == Some(version);
            if !clean {
                ctx.storage().put(&page_key(i), (**page).clone());
                persisted += 1;
            }
        }
        // Drop pages beyond the new count (page counts are constant per
        // state machine type, but a joiner's placeholder may differ).
        let mut stale = base.pages.len();
        while ctx.storage().get(&page_key(stale)).is_some() {
            ctx.storage().remove(&page_key(stale));
            stale += 1;
        }
        self.persisted_versions = (0..base.pages.len())
            .map(|i| self.page_cache.get(i).and_then(|c| c.version))
            .collect();
        ctx.metrics().incr("transfer.pages_persisted", persisted);
    }

    fn current_members(&self) -> Vec<NodeId> {
        self.chain
            .as_ref()
            .map(|c| c.latest_config().members().to_vec())
            .unwrap_or_default()
    }

    /// Routes one instance's effects into the world and pumps the apply
    /// loop.
    fn process_effects(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        epoch: Epoch,
        fx: consensus::Effects<Cmd<S::Op>>,
    ) {
        fx.record_stats(ctx.metrics());
        for (key, value) in fx.persist {
            ctx.storage()
                .put(&format!("{}{key}", px_prefix(epoch)), value);
        }
        for (to, inner) in fx.outbound {
            ctx.send(to, RsmrMsg::Paxos { epoch, inner });
        }
        if fx.became_leader {
            ctx.metrics().incr("rsmr.leader_elections", 1);
        }
        for &slot in &fx.proposed {
            ctx.emit_event(DomainEvent::CmdProposed {
                epoch: epoch.0,
                slot: slot.0,
            });
        }
        if !fx.committed.is_empty() {
            let now = ctx.now();
            let buf = self.buffers.entry(epoch).or_default();
            for (slot, cmd) in fx.committed {
                ctx.emit_event(DomainEvent::CmdCommitted {
                    epoch: epoch.0,
                    slot: slot.0,
                });
                buf.insert(slot, (now, cmd));
            }
            self.pump_apply(ctx);
        }
        // Group commit: a completed round frees the pipeline — flush the
        // commands that accumulated while it was in flight.
        if self.tun.batch_size > 0 && !self.batch_buf.is_empty() {
            if let Some(active) = self.active_epoch() {
                let idle = self
                    .instances
                    .get(&active)
                    .map(|i| i.paxos.is_leader() && i.paxos.inflight_len() == 0)
                    .unwrap_or(false);
                if idle {
                    self.flush_batch(ctx, active);
                }
            }
        }
    }

    /// Drains applicable committed entries in composed order, handling
    /// epoch closes and finalization. The heart of the composition.
    fn pump_apply(&mut self, ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>) {
        loop {
            let Some(anchor) = self.anchor else { return };
            let epoch = anchor.epoch;

            // Finalize the epoch once the close command has been applied.
            if let Some(inst) = self.instances.get(&epoch) {
                if let Some((close_slot, _)) = inst.closed {
                    if anchor.next_slot > close_slot {
                        self.finalize_epoch(ctx, epoch);
                        continue;
                    }
                }
            }

            let Some((committed_at, cmd)) = self
                .buffers
                .get_mut(&epoch)
                .and_then(|b| b.remove(&anchor.next_slot))
            else {
                return;
            };
            let slot = anchor.next_slot;
            self.anchor = Some(Anchor {
                epoch,
                next_slot: slot.next(),
            });
            let apply_lag = ctx.now().since(committed_at).as_micros();
            ctx.metrics().record("rsmr.commit_to_apply_us", apply_lag);

            match &*cmd {
                Cmd::Noop => {}
                Cmd::App { client, seq, op } => {
                    self.note_first_commit(ctx, epoch, slot);
                    self.apply_app(ctx, epoch, slot, *client, *seq, op)
                }
                Cmd::Batch { entries } => {
                    // Batch-aware close rule: apply the prefix before the
                    // first intra-batch `Reconfigure`, close the epoch at
                    // its position, and surface the tail (commands after
                    // the close point) for re-proposal in the successor.
                    let close = entries
                        .iter()
                        .position(|e| matches!(e, BatchEntry::Reconfigure { .. }));
                    let prefix_end = close.unwrap_or(entries.len());
                    if prefix_end > 0 {
                        self.note_first_commit(ctx, epoch, slot);
                    }
                    for entry in &entries[..prefix_end] {
                        if let BatchEntry::App { client, seq, op } = entry {
                            self.apply_app(ctx, epoch, slot, *client, *seq, op);
                        }
                    }
                    if let Some(idx) = close {
                        let BatchEntry::Reconfigure { members } = &entries[idx] else {
                            unreachable!("position() found a Reconfigure");
                        };
                        let members = members.clone();
                        self.batch_tail = entries[idx + 1..]
                            .iter()
                            .filter_map(|e| match e {
                                BatchEntry::App { client, seq, op } => {
                                    Some((*client, *seq, op.clone()))
                                }
                                // Only the *first* Reconfigure closes; any
                                // later one in the same batch is dropped,
                                // exactly like a buffered one at a later
                                // slot (its admin retries).
                                BatchEntry::Reconfigure { .. } => None,
                            })
                            .collect();
                        ctx.metrics()
                            .incr("rsmr.batch_close_tail", self.batch_tail.len() as u64);
                        self.close_epoch(ctx, epoch, slot, members);
                    }
                }
                Cmd::Reconfigure { members } => {
                    let members = members.clone();
                    self.close_epoch(ctx, epoch, slot, members)
                }
            }
        }
    }

    /// Marks the first applied application command of `epoch`, closing the
    /// handoff-gap span that opened at the predecessor's seal.
    fn note_first_commit(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        epoch: Epoch,
        slot: Slot,
    ) {
        if self.commit_seen_epoch.is_none_or(|e| e < epoch) {
            self.commit_seen_epoch = Some(epoch);
            ctx.emit_event(DomainEvent::FirstCommit {
                epoch: epoch.0,
                slot: slot.0,
            });
        }
    }

    fn apply_app(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        epoch: Epoch,
        slot: Slot,
        client: NodeId,
        seq: u64,
        op: &S::Op,
    ) {
        let output = match self.sessions.check(client, seq) {
            SessionDecision::Fresh => {
                let out = self.sm.apply(op);
                self.sessions.record(client, seq, out.clone());
                self.applied_count += 1;
                ctx.metrics().incr("rsmr.applied", 1);
                let now = ctx.now();
                ctx.metrics().timeline_push("rsmr.commits", now, 1.0);
                ctx.emit_event(DomainEvent::CmdApplied {
                    client,
                    seq,
                    epoch: epoch.0,
                    slot: slot.0,
                });
                out
            }
            SessionDecision::Duplicate(out) => {
                ctx.metrics().incr("rsmr.dedup_hits", 1);
                out
            }
            SessionDecision::Stale => {
                self.waiting.remove(&(client, seq));
                return;
            }
        };
        if self.waiting.remove(&(client, seq)).is_some() {
            let members = self.current_members();
            ctx.send(
                client,
                RsmrMsg::Reply {
                    seq,
                    output,
                    members,
                },
            );
        }
    }

    /// The apply pump hit the first `Reconfigure` of `epoch`, at `slot`.
    fn close_epoch(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        epoch: Epoch,
        slot: Slot,
        members: Vec<NodeId>,
    ) {
        let successor = epoch.next();
        let cfg = StaticConfig::new(members.clone());
        self.chain
            .as_mut()
            .expect("anchored")
            .append(successor, cfg);
        if let Some(inst) = self.instances.get_mut(&epoch) {
            inst.closed = Some((slot, members));
        }
        let now = ctx.now();
        self.sealed_at.insert(epoch, now);
        ctx.metrics().incr("rsmr.epochs_closed", 1);
        ctx.metrics()
            .timeline_push("rsmr.epoch_closed", now, epoch.0 as f64);
        ctx.emit_event(DomainEvent::EpochSealed {
            epoch: epoch.0,
            seal_slot: slot.0,
        });
        ctx.trace(|| format!("closed {epoch} at {slot}"));
        // Finalization (and successor creation) happens in the pump's next
        // iteration, via the `closed` marker.
    }

    /// The anchor has applied everything through `epoch`'s close: move to
    /// the successor.
    fn finalize_epoch(&mut self, ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>, epoch: Epoch) {
        let successor = epoch.next();
        let (was_leader, close_slot) = {
            let inst = self.instances.get(&epoch).expect("closing instance exists");
            (
                inst.paxos.is_leader(),
                inst.closed.as_ref().expect("closed").0,
            )
        };
        // The replica-local reconfiguration span: seal observed → epoch
        // finalized (base captured, successor anchored).
        if let Some(sealed) = self.sealed_at.remove(&epoch) {
            let span_us = ctx.now().since(sealed).as_micros();
            ctx.metrics().record("rsmr.seal_to_finalize_us", span_us);
        }

        // Anchor moves first so the captured base reflects exactly the
        // closed prefix.
        self.anchor = Some(Anchor {
            epoch: successor,
            next_slot: Slot::ZERO,
        });
        let (base, pages_encoded, pages_reused) = self.capture_base(successor);
        ctx.metrics()
            .incr("transfer.encode_bytes", base.byte_size() as u64);
        ctx.metrics()
            .incr("transfer.seal_pages_encoded", pages_encoded);
        ctx.metrics()
            .incr("transfer.seal_pages_reused", pages_reused);
        self.persist_base(ctx, &base);
        self.bases.insert(successor, Arc::new(base));
        while self.bases.len() > BASES_KEPT {
            let oldest = *self.bases.keys().next().expect("non-empty");
            self.bases.remove(&oldest);
        }
        let kept: Vec<Epoch> = self.bases.keys().copied().collect();
        self.serve_plans.retain(|&(e, _), _| kept.contains(&e));

        // Collect the discarded tail (entries the block committed past the
        // close point) for optional re-proposal. The intra-batch tail of
        // the closing batch comes first: it precedes any later-slot entry
        // in composed log order.
        let mut discarded: Vec<(NodeId, u64, S::Op)> = std::mem::take(&mut self.batch_tail);
        if let Some(tail) = self.buffers.remove(&epoch) {
            discarded.extend(tail.into_iter().filter(|(s, _)| *s > close_slot).flat_map(
                |(_, (_, cmd))| {
                    match &*cmd {
                        Cmd::App { client, seq, op } => vec![(*client, *seq, op.clone())],
                        Cmd::Batch { entries } => entries
                            .iter()
                            .filter_map(|e| match e {
                                BatchEntry::App { client, seq, op } => {
                                    Some((*client, *seq, op.clone()))
                                }
                                BatchEntry::Reconfigure { .. } => None,
                            })
                            .collect(),
                        _ => Vec::new(),
                    }
                },
            ));
        }
        ctx.metrics()
            .incr("rsmr.discarded_tail", discarded.len() as u64);

        let successor_cfg = self
            .chain
            .as_ref()
            .expect("anchored")
            .config(successor)
            .expect("appended at close")
            .clone();

        // Retire the closed instance after a catch-up grace period.
        let retire_at = ctx.now() + self.tun.retire_grace;
        if let Some(inst) = self.instances.get_mut(&epoch) {
            inst.retire_at = Some(inst.retire_at.unwrap_or(retire_at).min(retire_at));
        }

        // Speculative successor startup.
        if successor_cfg.contains(self.me) {
            self.ensure_instance(ctx, successor, &successor_cfg);
            if was_leader && self.tun.fast_handoff {
                let fx = self
                    .instances
                    .get_mut(&successor)
                    .expect("just ensured")
                    .paxos
                    .campaign(ctx.now());
                ctx.metrics().incr("rsmr.fast_handoffs", 1);
                self.process_effects(ctx, successor, fx);
            }
            // Re-propose discarded tail commands and flush parked handoff
            // requests into the successor.
            if self.tun.repropose_discarded {
                for (client, seq, op) in discarded {
                    if self.waiting.contains_key(&(client, seq)) {
                        self.submit_to_instance(ctx, successor, client, seq, op);
                    }
                }
            }
            let parked: Vec<(NodeId, u64, S::Op)> = self.handoff.drain(..).collect();
            for (client, seq, op) in parked {
                self.submit_to_instance(ctx, successor, client, seq, op);
            }
        } else {
            // Removed from the configuration: serve transfer during the
            // grace period, then this node is done. If this node *led* the
            // closed epoch, nominate a successor member to campaign
            // immediately — otherwise the new epoch waits out a full
            // election timeout (the leader-removal variant of speculative
            // handoff).
            ctx.metrics().incr("rsmr.removed_self", 1);
            let nominee = successor_cfg.members().first().copied();
            if was_leader && self.tun.fast_handoff {
                if let Some(n) = nominee {
                    ctx.metrics().incr("rsmr.nominations", 1);
                    ctx.send(n, RsmrMsg::Nominate { epoch: successor });
                }
            }
            // Point parked and in-flight clients at the successor right
            // away — silently dropping them would cost each a full
            // retransmission timeout.
            let members = successor_cfg.members().to_vec();
            for (client, seq, _) in discarded {
                if self.waiting.remove(&(client, seq)).is_some() {
                    ctx.send(
                        client,
                        RsmrMsg::Redirect {
                            seq,
                            leader: nominee,
                            members: members.clone(),
                        },
                    );
                }
            }
            let parked: Vec<(NodeId, u64, S::Op)> = self.handoff.drain(..).collect();
            for (client, seq, _) in parked {
                ctx.send(
                    client,
                    RsmrMsg::Redirect {
                        seq,
                        leader: nominee,
                        members: members.clone(),
                    },
                );
            }
            let waiting: Vec<(NodeId, u64)> = self.waiting.keys().copied().collect();
            for (client, seq) in waiting {
                ctx.send(
                    client,
                    RsmrMsg::Redirect {
                        seq,
                        leader: nominee,
                        members: members.clone(),
                    },
                );
            }
            self.waiting.clear();
        }

        // Tell every successor member the new epoch exists and that this
        // node can serve its base.
        for &m in successor_cfg.members() {
            if m != self.me {
                ctx.send(
                    m,
                    RsmrMsg::Activate {
                        epoch: successor,
                        members: successor_cfg.members().to_vec(),
                    },
                );
            }
        }

        // Resolve an admin reconfiguration this node proposed.
        if let Some(closing) = self.closing.take() {
            if closing.epoch == epoch {
                ctx.send(
                    closing.admin,
                    RsmrMsg::ReconfigureReply {
                        epoch: successor,
                        ok: true,
                        leader: None,
                    },
                );
            } else {
                self.closing = Some(closing);
            }
        }

        let now = ctx.now();
        ctx.metrics().incr("rsmr.epochs_finalized", 1);
        ctx.metrics()
            .timeline_push("rsmr.epoch_finalized", now, successor.0 as f64);
        ctx.emit_event(DomainEvent::Anchored { epoch: successor.0 });
        ctx.trace(|| format!("finalized {epoch}; anchored at {successor}"));
    }

    fn ensure_instance(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        epoch: Epoch,
        cfg: &StaticConfig,
    ) {
        if self.instances.contains_key(&epoch) || !cfg.contains(self.me) {
            return;
        }
        self.instances.insert(
            epoch,
            Instance {
                paxos: MultiPaxos::new(self.me, cfg.clone(), ctx.now(), self.tun.paxos.clone()),
                closed: None,
                retire_at: None,
            },
        );
        ctx.metrics().incr("rsmr.instances_created", 1);
        // Replay protocol messages that arrived before the instance did.
        self.stash_since.remove(&epoch);
        if let Some(stash) = self.stashed.remove(&epoch) {
            for (from, inner) in stash {
                if let Some(inst) = self.instances.get_mut(&epoch) {
                    let fx = inst.paxos.on_message(from, inner, ctx.now());
                    self.process_effects(ctx, epoch, fx);
                }
            }
        }
    }

    fn submit_to_instance(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        epoch: Epoch,
        client: NodeId,
        seq: u64,
        op: S::Op,
    ) {
        let Some(inst) = self.instances.get_mut(&epoch) else {
            return;
        };
        let (fx, outcome) = inst.paxos.propose(Cmd::App { client, seq, op }, ctx.now());
        match outcome {
            ProposeOutcome::Accepted => {
                self.waiting.insert((client, seq), ());
            }
            ProposeOutcome::NotLeader(leader) => {
                let members = self.current_members();
                ctx.send(
                    client,
                    RsmrMsg::Redirect {
                        seq,
                        leader,
                        members,
                    },
                );
            }
        }
        self.process_effects(ctx, epoch, fx);
    }

    fn handle_request(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        client: NodeId,
        seq: u64,
        op: S::Op,
    ) {
        // Session fast path: an already-applied command is answered from
        // the cache without re-proposing.
        match self.sessions.check(client, seq) {
            SessionDecision::Duplicate(output) => {
                let members = self.current_members();
                ctx.send(
                    client,
                    RsmrMsg::Reply {
                        seq,
                        output,
                        members,
                    },
                );
                return;
            }
            SessionDecision::Stale => return,
            SessionDecision::Fresh => {}
        }
        let Some(active) = self.active_epoch() else {
            // A joining node that is not yet participating: the client will
            // retransmit elsewhere.
            return;
        };
        // Lease-based local read: the leader of the active epoch answers
        // pure reads from its applied state while it holds a quorum lease
        // and is fully anchored (nothing committed-but-unapplied).
        if self.tun.local_reads && self.anchor.map(|a| a.epoch) == Some(active) {
            if let Some(output) = self.sm.query(&op) {
                let leased = self
                    .instances
                    .get(&active)
                    .map(|i| i.paxos.is_leader() && i.paxos.lease_valid(ctx.now()))
                    .unwrap_or(false);
                let fully_applied = self
                    .buffers
                    .get(&active)
                    .map(|b| b.is_empty())
                    .unwrap_or(true);
                if leased && fully_applied && self.closing.is_none() {
                    ctx.metrics().incr("rsmr.local_reads", 1);
                    let members = self.current_members();
                    ctx.send(
                        client,
                        RsmrMsg::Reply {
                            seq,
                            output,
                            members,
                        },
                    );
                    return;
                }
            }
        }

        // A node removed from the latest configuration no longer serves;
        // send the client straight to the successor's members.
        if let Some(chain) = &self.chain {
            let latest = chain.latest_config();
            if !latest.contains(self.me) {
                ctx.send(
                    client,
                    RsmrMsg::Redirect {
                        seq,
                        leader: latest.members().first().copied(),
                        members: latest.members().to_vec(),
                    },
                );
                return;
            }
        }
        // While a reconfiguration this node proposed is in flight, park new
        // requests for the successor instead of feeding the closing log.
        if self.closing.is_some() {
            self.handoff.push_back((client, seq, op));
            return;
        }
        // Adaptive batching (group commit): the leader accumulates while a
        // proposal is in flight and flushes the moment the pipeline is idle
        // or the batch is full — unloaded latency is unchanged, loaded
        // throughput amortizes consensus rounds.
        if self.tun.batch_size > 0 {
            let (is_leader, inflight) = self
                .instances
                .get(&active)
                .map(|i| (i.paxos.is_leader(), i.paxos.inflight_len()))
                .unwrap_or((false, 0));
            if is_leader {
                self.batch_buf.push((client, seq, op));
                if self.batch_buf.len() >= self.tun.batch_size || inflight == 0 {
                    self.flush_batch(ctx, active);
                }
                return;
            }
        }
        self.submit_to_instance(ctx, active, client, seq, op);
    }

    /// Proposes the accumulated batch as one log entry.
    fn flush_batch(&mut self, ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>, epoch: Epoch) {
        if self.batch_buf.is_empty() {
            return;
        }
        let entries = std::mem::take(&mut self.batch_buf);
        let Some(inst) = self.instances.get_mut(&epoch) else {
            // Instance vanished between accumulation and flush: the
            // clients retransmit.
            return;
        };
        let keys: Vec<(NodeId, u64)> = entries.iter().map(|(c, s, _)| (*c, *s)).collect();
        let entries: Vec<BatchEntry<S::Op>> = entries
            .into_iter()
            .map(|(client, seq, op)| BatchEntry::App { client, seq, op })
            .collect();
        let (fx, outcome) = inst.paxos.propose(Cmd::Batch { entries }, ctx.now());
        match outcome {
            ProposeOutcome::Accepted => {
                ctx.metrics().incr("rsmr.batches_proposed", 1);
                ctx.metrics().incr("rsmr.batched_cmds", keys.len() as u64);
                for key in keys {
                    self.waiting.insert(key, ());
                }
            }
            ProposeOutcome::NotLeader(leader) => {
                let members = self.current_members();
                for (client, seq) in keys {
                    ctx.send(
                        client,
                        RsmrMsg::Redirect {
                            seq,
                            leader,
                            members: members.clone(),
                        },
                    );
                }
            }
        }
        self.process_effects(ctx, epoch, fx);
    }

    fn handle_reconfigure(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        admin: NodeId,
        members: Vec<NodeId>,
    ) {
        let Some(active) = self.active_epoch() else {
            return;
        };
        let refuse = |this: &Self, ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>, leader| {
            ctx.send(
                admin,
                RsmrMsg::ReconfigureReply {
                    epoch: active,
                    ok: false,
                    leader,
                },
            );
            let _ = this;
        };
        if members.is_empty() {
            refuse(self, ctx, None);
            return;
        }
        // Idempotence: asking for the configuration we already have (e.g. an
        // admin retrying after its `ok` reply was lost) succeeds immediately.
        let requested = StaticConfig::new(members.clone());
        if self
            .chain
            .as_ref()
            .map(|c| c.latest_config() == &requested)
            .unwrap_or(false)
        {
            let epoch = self.chain.as_ref().expect("checked").latest_epoch();
            ctx.send(
                admin,
                RsmrMsg::ReconfigureReply {
                    epoch,
                    ok: true,
                    leader: None,
                },
            );
            return;
        }
        if self.closing.is_some() {
            refuse(self, ctx, Some(self.me));
            return;
        }
        let inst = self.instances.get_mut(&active).expect("active exists");
        if !inst.paxos.is_leader() {
            let hint = inst.paxos.leader_hint();
            refuse(self, ctx, hint);
            return;
        }
        let (fx, outcome) = inst.paxos.propose(Cmd::Reconfigure { members }, ctx.now());
        match outcome {
            ProposeOutcome::Accepted => {
                self.closing = Some(Closing {
                    epoch: active,
                    admin,
                    proposed_at: ctx.now(),
                });
                let now = ctx.now();
                ctx.metrics().incr("rsmr.reconfigs_proposed", 1);
                ctx.metrics()
                    .timeline_push("rsmr.reconfig_proposed", now, active.0 as f64);
                ctx.emit_event(DomainEvent::ReconfigProposed { epoch: active.0 });
            }
            ProposeOutcome::NotLeader(leader) => {
                ctx.send(
                    admin,
                    RsmrMsg::ReconfigureReply {
                        epoch: active,
                        ok: false,
                        leader,
                    },
                );
            }
        }
        self.process_effects(ctx, active, fx);
    }

    fn handle_activate(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        from: NodeId,
        epoch: Epoch,
        members: Vec<NodeId>,
    ) {
        let cfg = StaticConfig::new(members);
        match (&mut self.chain, self.anchor) {
            (Some(chain), Some(anchor)) => {
                // An existing member learning about the successor (possibly
                // before its own pump closes the predecessor).
                if chain.config(epoch).is_none() {
                    if chain.latest_epoch().next() == epoch {
                        chain.append(epoch, cfg.clone());
                    } else if epoch > chain.latest_epoch() {
                        // Too far behind to extend the chain contiguously:
                        // jump via state transfer.
                        self.request_transfer(ctx, epoch, from, cfg.members());
                        return;
                    } else {
                        return; // stale activate for an old epoch
                    }
                }
                self.ensure_instance(ctx, epoch, &cfg);
                // If our anchor can no longer reach `epoch` locally (the
                // predecessor instance is gone from the network), fall back
                // to transfer. Detected lazily in tick; nothing to do here.
                let _ = anchor;
            }
            _ => {
                // A joining member: participate immediately (buffer
                // commits), pull the base state.
                self.ensure_instance(ctx, epoch, &cfg);
                self.request_transfer(ctx, epoch, from, cfg.members());
            }
        }
    }

    fn request_transfer(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        epoch: Epoch,
        provider: NodeId,
        candidates: &[NodeId],
    ) {
        // Never regress: only transfer forward of the current anchor.
        if let Some(anchor) = self.anchor {
            if anchor.epoch >= epoch {
                return;
            }
        }
        if let Some(pt) = &mut self.pending_transfer {
            if pt.epoch > epoch {
                return;
            }
            if pt.epoch == epoch {
                // Already in flight: widen the donor pool, keep the timer.
                for &c in candidates.iter().chain(std::iter::once(&provider)) {
                    if c != self.me && !pt.candidates.contains(&c) {
                        pt.candidates.push(c);
                    }
                }
                return;
            }
        }
        let mut pool: Vec<NodeId> = Vec::new();
        for &c in std::iter::once(&provider).chain(candidates.iter()) {
            if c != self.me && !pool.contains(&c) {
                pool.push(c);
            }
        }
        // A replica that already holds anchored state is a *rejoiner*: it
        // advertises its delta watermark so the donor ships only what
        // changed. A blank joiner takes the full stream.
        let since = if self.anchor.is_some() {
            self.sm.delta_watermark()
        } else {
            None
        };
        self.pending_transfer = Some(PendingTransfer {
            epoch,
            provider,
            last_request: ctx.now(),
            attempts: 0,
            candidates: pool,
            since,
            assembly: None,
            inflight: Vec::new(),
            requested: BTreeSet::new(),
        });
        ctx.metrics().incr("rsmr.transfer_requests", 1);
        ctx.emit_event(DomainEvent::TransferRequested {
            epoch: epoch.0,
            provider,
        });
        ctx.send(provider, RsmrMsg::ManifestRequest { epoch, since });
    }

    /// Donor side, legacy path: serve the whole base as one blob. The
    /// composed replica no longer *requests* monolithic transfers, but
    /// keeps serving them (the stop-the-world control and older peers
    /// depend on the message shape).
    fn handle_transfer_request(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        from: NodeId,
        epoch: Epoch,
    ) {
        let base = self.bases.get(&epoch).map(|b| b.encode_bytes());
        if let Some(bytes) = base.as_ref() {
            ctx.metrics().incr("rsmr.transfers_served", 1);
            ctx.metrics()
                .incr("rsmr.transfer_bytes", bytes.len() as u64);
            ctx.emit_event(DomainEvent::TransferServed {
                epoch: epoch.0,
                to: from,
                bytes: bytes.len() as u64,
            });
        }
        ctx.send(from, RsmrMsg::TransferReply { epoch, base });
    }

    /// Legacy joiner path kept for robustness: a monolithic reply (e.g.
    /// from an old donor) still installs.
    fn handle_transfer_reply(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        epoch: Epoch,
        base: Option<Vec<u8>>,
    ) {
        let Some(pt) = &self.pending_transfer else {
            return;
        };
        if pt.epoch != epoch {
            return;
        }
        let Some(bytes) = base else {
            return; // provider not ready; the tick timer will retry
        };
        let Some(base) = BaseState::<S::Output>::decode_bytes(&bytes) else {
            ctx.metrics().incr("rsmr.transfer_decode_failures", 1);
            return;
        };
        let Some(sm) = S::restore_pages(&base.pages) else {
            ctx.metrics().incr("rsmr.transfer_decode_failures", 1);
            return;
        };
        // Never regress the anchor.
        if let Some(anchor) = self.anchor {
            if anchor.epoch >= epoch {
                self.pending_transfer = None;
                return;
            }
        }
        self.sm = sm;
        self.install_base(ctx, base);
    }

    /// Donor side: build (or reuse) the transfer plan for `from` and
    /// reply with its manifest.
    fn handle_manifest_request(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        from: NodeId,
        epoch: Epoch,
        since: Option<u64>,
    ) {
        let Some(base) = self.bases.get(&epoch).cloned() else {
            ctx.send(
                from,
                RsmrMsg::ManifestReply {
                    epoch,
                    manifest: None,
                },
            );
            return;
        };
        let plan = self.build_plan(ctx, &base, since);
        let manifest = plan.manifest.clone();
        ctx.metrics().incr("rsmr.transfers_served", 1);
        ctx.emit_event(DomainEvent::TransferServed {
            epoch: epoch.0,
            to: from,
            bytes: manifest.total_bytes(),
        });
        if self.serve_plans.len() >= SERVE_PLANS_KEPT {
            let oldest = *self.serve_plans.keys().next().expect("non-empty");
            self.serve_plans.remove(&oldest);
        }
        self.serve_plans.insert((epoch, from), plan);
        ctx.send(
            from,
            RsmrMsg::ManifestReply {
                epoch,
                manifest: Some(manifest),
            },
        );
    }

    /// Plans a transfer of `base`: a delta against the rejoiner's
    /// watermark when the state machine can serve one, otherwise the full
    /// chunked stream. Deterministic, so every donor holding `base`
    /// produces identical manifests and chunks.
    fn build_plan(
        &self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        base: &BaseState<S::Output>,
        since: Option<u64>,
    ) -> TransferPlan {
        if let Some(watermark) = since {
            if let Some(chunks) = S::delta_from_pages(&base.pages, watermark, CHUNK_TARGET) {
                let plan = TransferPlan::delta(base, chunks, watermark);
                let full = base.byte_size().max(1) as u64;
                ctx.metrics().record(
                    "transfer.delta_ratio",
                    plan.manifest.total_bytes() * 100 / full,
                );
                return plan;
            }
            ctx.metrics().incr("transfer.delta_refused", 1);
        }
        TransferPlan::full(base, CHUNK_TARGET)
    }

    /// Joiner side: a manifest arrived — adopt it (or resume a matching
    /// one) and keep the chunk-request window full.
    fn handle_manifest_reply(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        from: NodeId,
        epoch: Epoch,
        manifest: Option<TransferManifest>,
    ) {
        let now = ctx.now();
        {
            let Some(pt) = &mut self.pending_transfer else {
                return;
            };
            if pt.epoch != epoch {
                return;
            }
            let Some(manifest) = manifest else {
                return; // donor not finalized yet; the tick timer rotates
            };
            if manifest.epoch != epoch {
                return;
            }
            // Chunks flow from whoever answered the manifest request.
            pt.provider = from;
            pt.last_request = now;
            match &pt.assembly {
                Some(a) if *a.manifest() == manifest => {} // resume
                prior => {
                    if prior.is_some() {
                        ctx.metrics().incr("transfer.manifest_restarts", 1);
                    }
                    pt.assembly = Some(ChunkAssembly::new(manifest));
                    pt.inflight.clear();
                }
            }
        }
        self.pump_chunk_requests(ctx);
        self.try_complete_transfer(ctx);
    }

    /// Donor side: serve one chunk from the plan `from`'s manifest came
    /// from. No plan (evicted, or this donor never served the manifest)
    /// means `None`: the joiner rotates and re-requests the manifest.
    fn handle_chunk_request(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        from: NodeId,
        epoch: Epoch,
        index: u64,
    ) {
        let plan = self.serve_plans.get(&(epoch, from));
        let bytes = plan.and_then(|p| p.chunks.get(index as usize)).cloned();
        if let (Some(plan), Some(b)) = (plan, bytes.as_ref()) {
            ctx.metrics().incr("transfer.chunk_bytes", b.len() as u64);
            ctx.metrics().incr("rsmr.transfer_bytes", b.len() as u64);
            if matches!(plan.manifest.mode, TransferMode::Delta { .. }) {
                ctx.metrics()
                    .incr("transfer.delta_chunk_bytes", b.len() as u64);
            }
        }
        ctx.send(
            from,
            RsmrMsg::ChunkReply {
                epoch,
                index,
                bytes,
            },
        );
    }

    /// Joiner side: verify and store one chunk, then refill the window.
    fn handle_chunk_reply(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        epoch: Epoch,
        index: u64,
        bytes: Option<Arc<Vec<u8>>>,
    ) {
        let now = ctx.now();
        {
            let Some(pt) = &mut self.pending_transfer else {
                return;
            };
            if pt.epoch != epoch {
                return;
            }
            pt.inflight.retain(|&i| i != index);
            let Some(assembly) = &mut pt.assembly else {
                return;
            };
            let Some(bytes) = bytes else {
                return; // donor lost the base; the tick timer rotates
            };
            match assembly.accept(index as usize, bytes) {
                ChunkOutcome::Stored => {
                    // Progress: reset the rotation backoff.
                    pt.attempts = 0;
                    pt.last_request = now;
                }
                ChunkOutcome::Corrupt => {
                    // Discarded, never applied; stays missing, so the
                    // window refill re-requests it (counted as a resend).
                    ctx.metrics().incr("transfer.chunks_corrupt", 1);
                }
                ChunkOutcome::Duplicate | ChunkOutcome::OutOfRange => {}
            }
        }
        self.pump_chunk_requests(ctx);
        self.try_complete_transfer(ctx);
    }

    /// Keeps up to [`CHUNK_WINDOW`] chunk requests outstanding against the
    /// current provider.
    fn pump_chunk_requests(&mut self, ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>) {
        let Some(pt) = &mut self.pending_transfer else {
            return;
        };
        let Some(assembly) = &pt.assembly else {
            return;
        };
        let provider = pt.provider;
        let epoch = pt.epoch;
        let mut resent = 0u64;
        let mut sends: Vec<u64> = Vec::new();
        for i in assembly.missing() {
            if pt.inflight.len() >= CHUNK_WINDOW {
                break;
            }
            let index = i as u64;
            if pt.inflight.contains(&index) {
                continue;
            }
            if !pt.requested.insert(index) {
                resent += 1;
            }
            pt.inflight.push(index);
            sends.push(index);
        }
        if resent > 0 {
            ctx.metrics().incr("transfer.chunks_resent", resent);
        }
        for index in sends {
            ctx.send(provider, RsmrMsg::ChunkRequest { epoch, index });
        }
    }

    /// Installs the transfer once every chunk has arrived and verified.
    fn try_complete_transfer(&mut self, ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>) {
        let complete = self
            .pending_transfer
            .as_ref()
            .and_then(|pt| pt.assembly.as_ref())
            .is_some_and(|a| a.is_complete());
        if !complete {
            return;
        }
        let epoch = self.pending_transfer.as_ref().expect("checked").epoch;
        // Never regress the anchor.
        if let Some(anchor) = self.anchor {
            if anchor.epoch >= epoch {
                self.pending_transfer = None;
                return;
            }
        }
        let pt = self.pending_transfer.take().expect("checked");
        let assembly = pt.assembly.expect("checked");
        let manifest = assembly.manifest().clone();
        let chunks = assembly.into_chunks();
        // Validate the header *before* touching the state machine, so a
        // bad donor can never leave state half-mutated.
        let header_ok = {
            let mut buf = manifest.header.as_slice();
            SessionTable::<S::Output>::decode(&mut buf)
                .and_then(|_| ConfigChain::decode(&mut buf))
                .is_some()
                && buf.is_empty()
        };
        if !header_ok {
            ctx.metrics().incr("rsmr.transfer_decode_failures", 1);
            self.restart_transfer(ctx, pt.epoch, pt.provider, pt.candidates, None);
            return;
        }
        match manifest.mode {
            TransferMode::Full { pages } => {
                let assembled = assemble_full_pages(&chunks, pages as usize).and_then(|p| {
                    let sm = S::restore_pages(&p)?;
                    let base = BaseState::from_parts(epoch, p, &manifest.header)?;
                    Some((sm, base))
                });
                let Some((sm, base)) = assembled else {
                    ctx.metrics().incr("rsmr.transfer_decode_failures", 1);
                    self.restart_transfer(ctx, pt.epoch, pt.provider, pt.candidates, None);
                    return;
                };
                self.sm = sm;
                self.install_base(ctx, base);
            }
            TransferMode::Delta { since } => {
                let owned: Vec<Vec<u8>> = chunks.iter().map(|c| (**c).clone()).collect();
                if !self.sm.apply_delta(&owned) {
                    // Malformed or unusable delta: fall back to a full
                    // transfer (drop the watermark so the next manifest
                    // is `Full`).
                    ctx.metrics().incr("transfer.delta_fallbacks", 1);
                    self.restart_transfer(ctx, pt.epoch, pt.provider, pt.candidates, None);
                    return;
                }
                let _ = since;
                // Re-derive the pages from the now-complete state so this
                // replica can serve, seal and persist like any other.
                let n = self.sm.snapshot_pages();
                let pages: Vec<Arc<Vec<u8>>> =
                    (0..n).map(|i| Arc::new(self.sm.snapshot_page(i))).collect();
                let base = BaseState::from_parts(epoch, pages, &manifest.header)
                    .expect("header validated above");
                self.install_base(ctx, base);
            }
        }
    }

    /// Re-arms a pending transfer from scratch (new manifest request with
    /// watermark `since`), keeping the accumulated donor pool.
    fn restart_transfer(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        epoch: Epoch,
        provider: NodeId,
        candidates: Vec<NodeId>,
        since: Option<u64>,
    ) {
        self.pending_transfer = Some(PendingTransfer {
            epoch,
            provider,
            last_request: ctx.now(),
            attempts: 0,
            candidates,
            since,
            assembly: None,
            inflight: Vec::new(),
            requested: BTreeSet::new(),
        });
        ctx.send(provider, RsmrMsg::ManifestRequest { epoch, since });
    }

    /// Anchors this replica on `base` (its state machine must already
    /// hold the matching application state). Shared by the chunked, delta
    /// and legacy monolithic install paths. Callers check the
    /// never-regress rule *before* mutating the state machine.
    fn install_base(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        base: BaseState<S::Output>,
    ) {
        let epoch = base.epoch;
        self.pending_transfer = None;
        self.sessions = base.sessions.clone();
        self.chain = Some(base.chain.clone());
        self.anchor = Some(Anchor {
            epoch,
            next_slot: Slot::ZERO,
        });
        // The page cache mirrors the installed base; persisting below
        // re-puts everything (a joiner's storage is behind by definition).
        self.page_cache = base
            .pages
            .iter()
            .enumerate()
            .map(|(i, p)| CachedPage {
                version: self.sm.page_version(i),
                bytes: Arc::clone(p),
            })
            .collect();
        self.persisted_versions.clear();
        self.persist_base(ctx, &base);
        // Make sure we participate in the anchored epoch.
        let cfg = base
            .chain
            .config(epoch)
            .expect("validated by decode")
            .clone();
        self.bases.insert(epoch, Arc::new(base));
        // Drop buffers and instances for epochs we jumped over.
        self.buffers.retain(|&e, _| e >= epoch);
        self.sealed_at.retain(|&e, _| e >= epoch);
        let stale: Vec<Epoch> = self
            .instances
            .keys()
            .copied()
            .filter(|&e| e < epoch)
            .collect();
        for e in stale {
            if let Some(mut inst) = self.instances.remove(&e) {
                inst.paxos.halt();
            }
        }
        self.ensure_instance(ctx, epoch, &cfg);
        let now = ctx.now();
        ctx.metrics().incr("rsmr.transfers_installed", 1);
        ctx.metrics()
            .timeline_push("rsmr.anchored", now, epoch.0 as f64);
        ctx.emit_event(DomainEvent::Anchored { epoch: epoch.0 });
        ctx.trace(|| format!("installed base for {epoch}"));
        self.pump_apply(ctx);
    }

    fn tick_everything(&mut self, ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>) {
        let now = ctx.now();

        // Pump every instance's timers.
        let epochs: Vec<Epoch> = self.instances.keys().copied().collect();
        for epoch in epochs {
            let fx = {
                let Some(inst) = self.instances.get_mut(&epoch) else {
                    continue;
                };
                // A retired instance is halted and dropped.
                if let Some(at) = inst.retire_at {
                    if now >= at {
                        inst.paxos.halt();
                        let prefix = px_prefix(epoch);
                        let keys: Vec<String> = ctx.storage().keys_with_prefix(&prefix);
                        for k in keys {
                            ctx.storage().remove(&k);
                        }
                        self.instances.remove(&epoch);
                        self.buffers.remove(&epoch);
                        ctx.metrics().incr("rsmr.instances_retired", 1);
                        continue;
                    }
                }
                inst.paxos.tick(now)
            };
            self.process_effects(ctx, epoch, fx);
        }

        // Flush an accumulated batch (at most one tick of added latency).
        if !self.batch_buf.is_empty() {
            if let Some(active) = self.active_epoch() {
                self.flush_batch(ctx, active);
            }
        }

        // Drop stashes for epochs that can no longer matter.
        if let Some(anchor) = self.anchor {
            self.stashed.retain(|&e, _| e >= anchor.epoch);
            self.stash_since.retain(|&e, _| e >= anchor.epoch);
        }

        // In-epoch incremental compaction: the rolling cursor refreshes a
        // few page encodes per tick, so the epoch seal re-encodes only the
        // pages dirtied since the cursor last passed them (a bounded tail
        // instead of the full state).
        if self.anchor.is_some() && self.tun.compact_pages_per_tick > 0 {
            let n = self.sm.snapshot_pages();
            if n > 1 {
                let mut refreshed = 0u64;
                for _ in 0..self.tun.compact_pages_per_tick.min(n) {
                    let i = self.compact_cursor % n;
                    self.compact_cursor = (self.compact_cursor + 1) % n;
                    let version = self.sm.page_version(i);
                    let fresh = version.is_some()
                        && self.page_cache.get(i).is_some_and(|c| c.version == version);
                    if fresh {
                        continue;
                    }
                    let entry = CachedPage {
                        version,
                        bytes: Arc::new(self.sm.snapshot_page(i)),
                    };
                    if i < self.page_cache.len() {
                        self.page_cache[i] = entry;
                    } else {
                        // Cursor ahead of the cache: fill the gap lazily.
                        while self.page_cache.len() < i {
                            let j = self.page_cache.len();
                            self.page_cache.push(CachedPage {
                                version: self.sm.page_version(j),
                                bytes: Arc::new(self.sm.snapshot_page(j)),
                            });
                            refreshed += 1;
                        }
                        self.page_cache.push(entry);
                    }
                    refreshed += 1;
                }
                if refreshed > 0 {
                    ctx.metrics().incr("transfer.cursor_refreshes", refreshed);
                }
            }
        }

        // A stash that keeps aging means the cluster moved past this
        // replica while it was down (or it rejoined blank): peers are
        // running an epoch we cannot reach through the local chain. Pull a
        // base state from one of the stashed senders instead of waiting for
        // an `Activate` that already went by.
        let reachable = self.chain.as_ref().map(|c| c.latest_epoch());
        let aged: Option<Epoch> = self
            .stash_since
            .iter()
            .filter(|&(&e, &since)| {
                now.since(since) >= self.tun.transfer_retry * 2
                    && reachable.map(|r| e > r).unwrap_or(true)
                    && self
                        .pending_transfer
                        .as_ref()
                        .map(|pt| pt.epoch < e)
                        .unwrap_or(true)
            })
            .map(|(&e, _)| e)
            .next_back();
        if let Some(epoch) = aged {
            let senders: Vec<NodeId> = self
                .stashed
                .get(&epoch)
                .map(|s| s.iter().map(|(from, _)| *from).collect())
                .unwrap_or_default();
            if let Some(&first) = senders.first() {
                ctx.metrics().incr("rsmr.stash_aged_transfers", 1);
                ctx.trace(|| format!("stash for {epoch} aged; pulling base from {first}"));
                self.request_transfer(ctx, epoch, first, &senders);
            }
        }

        // Retry a stalled state transfer with exponential backoff, rotating
        // to an alternate donor each attempt so a crashed or partitioned
        // provider cannot stall the join forever. Chunk progress resets the
        // backoff, so a healthy stream never rotates; on rotation the
        // manifest is re-requested and — the manifest being deterministic —
        // the new donor resumes with only the missing chunks.
        let stalled = self.pending_transfer.as_ref().and_then(|pt| {
            let delay = self.tun.transfer_retry * (1u64 << pt.attempts.min(3));
            (now.since(pt.last_request) >= delay)
                .then(|| (pt.epoch, pt.provider, pt.candidates.clone(), pt.since))
        });
        if let Some((epoch, provider, candidates, since)) = stalled {
            let next_provider = self.pick_transfer_provider(epoch, provider, &candidates);
            if let Some(pt) = &mut self.pending_transfer {
                pt.provider = next_provider;
                pt.last_request = now;
                pt.attempts = pt.attempts.saturating_add(1);
                pt.inflight.clear();
            }
            ctx.metrics().incr("rsmr.transfer_retries", 1);
            ctx.send(next_provider, RsmrMsg::ManifestRequest { epoch, since });
        }

        // A reconfiguration proposal that lost its leader will never
        // finalize here: release parked clients so they retry elsewhere.
        if let Some(closing) = self.closing.clone() {
            let still_leading = self
                .instances
                .get(&closing.epoch)
                .map(|i| i.paxos.is_leader())
                .unwrap_or(false);
            let timed_out = now.since(closing.proposed_at) >= self.tun.paxos.election_timeout * 4;
            if !still_leading || timed_out {
                self.closing = None;
                let members = self.current_members();
                let parked: Vec<(NodeId, u64, S::Op)> = self.handoff.drain(..).collect();
                for (client, seq, _) in parked {
                    ctx.send(
                        client,
                        RsmrMsg::Redirect {
                            seq,
                            leader: None,
                            members: members.clone(),
                        },
                    );
                }
                ctx.send(
                    closing.admin,
                    RsmrMsg::ReconfigureReply {
                        epoch: closing.epoch,
                        ok: false,
                        leader: None,
                    },
                );
            }
        }
    }

    fn pick_transfer_provider(
        &self,
        epoch: Epoch,
        provider: NodeId,
        candidates: &[NodeId],
    ) -> NodeId {
        // Rotate deterministically through every donor we know about: the
        // target epoch's member set (any finalized member can serve) plus
        // the accumulated candidates (Activate sender, successor members,
        // stashed-traffic senders). A blank joiner whose sole announced
        // donor crashed or got partitioned fails over to the others.
        let mut pool: Vec<NodeId> = self
            .chain
            .as_ref()
            .and_then(|c| c.config(epoch))
            .map(|c| c.peers(self.me))
            .unwrap_or_default();
        for &c in candidates {
            if c != self.me && !pool.contains(&c) {
                pool.push(c);
            }
        }
        if pool.is_empty() {
            return provider;
        }
        let idx = pool.iter().position(|&m| m == provider);
        match idx {
            Some(i) => pool[(i + 1) % pool.len()],
            None => pool[0],
        }
    }
}

fn px_prefix(epoch: Epoch) -> String {
    format!("px/{:08x}/", epoch.0)
}

impl<S: StateMachine> Actor for RsmrNode<S> {
    type Msg = RsmrMsg<S::Op, S::Output>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        // Persist the genesis base so crash recovery always has one.
        if let Some(anchor) = self.anchor {
            if ctx.storage().get(KEY_BASE_META).is_none() && ctx.storage().get(KEY_BASE).is_none() {
                if let Some(base) = self.bases.get(&anchor.epoch).cloned() {
                    self.persist_base(ctx, &base);
                }
            }
        }
        ctx.set_timer(self.tun.tick, 0);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg) {
        match msg {
            RsmrMsg::Paxos { epoch, inner } => {
                if let Some(inst) = self.instances.get_mut(&epoch) {
                    let fx = inst.paxos.on_message(from, inner, ctx.now());
                    self.process_effects(ctx, epoch, fx);
                } else if self
                    .chain
                    .as_ref()
                    .map(|c| {
                        c.config(epoch)
                            .map(|cfg| cfg.contains(self.me))
                            .unwrap_or(false)
                    })
                    .unwrap_or(false)
                {
                    // Known epoch we should participate in (e.g. a lost
                    // Activate): create the instance, then deliver.
                    let cfg = self
                        .chain
                        .as_ref()
                        .and_then(|c| c.config(epoch))
                        .expect("checked")
                        .clone();
                    self.ensure_instance(ctx, epoch, &cfg);
                    if let Some(inst) = self.instances.get_mut(&epoch) {
                        let fx = inst.paxos.on_message(from, inner, ctx.now());
                        self.process_effects(ctx, epoch, fx);
                    }
                } else {
                    // An epoch we have not learned about yet: stash the
                    // message (bounded) and replay it when the instance is
                    // created; drop only clearly-stale traffic.
                    let stale = self.anchor.map(|a| epoch < a.epoch).unwrap_or(false);
                    if stale {
                        ctx.metrics().incr("rsmr.unroutable_paxos", 1);
                    } else {
                        let stash = self.stashed.entry(epoch).or_default();
                        if stash.len() < 256 {
                            stash.push((from, inner));
                            self.stash_since.entry(epoch).or_insert_with(|| ctx.now());
                            ctx.metrics().incr("rsmr.stashed_paxos", 1);
                        } else {
                            ctx.metrics().incr("rsmr.unroutable_paxos", 1);
                        }
                    }
                }
            }
            RsmrMsg::Request { seq, op } => self.handle_request(ctx, from, seq, op),
            RsmrMsg::Reconfigure { members } => self.handle_reconfigure(ctx, from, members),
            RsmrMsg::Activate { epoch, members } => self.handle_activate(ctx, from, epoch, members),
            RsmrMsg::TransferRequest { epoch } => self.handle_transfer_request(ctx, from, epoch),
            RsmrMsg::TransferReply { epoch, base } => self.handle_transfer_reply(ctx, epoch, base),
            RsmrMsg::ManifestRequest { epoch, since } => {
                self.handle_manifest_request(ctx, from, epoch, since)
            }
            RsmrMsg::ManifestReply { epoch, manifest } => {
                self.handle_manifest_reply(ctx, from, epoch, manifest)
            }
            RsmrMsg::ChunkRequest { epoch, index } => {
                self.handle_chunk_request(ctx, from, epoch, index)
            }
            RsmrMsg::ChunkReply {
                epoch,
                index,
                bytes,
            } => self.handle_chunk_reply(ctx, epoch, index, bytes),
            RsmrMsg::Nominate { epoch } => {
                // Campaign in the named epoch if we participate in it and
                // no leader is known yet (otherwise the nomination is
                // stale and ignored).
                if let Some(inst) = self.instances.get_mut(&epoch) {
                    if inst.paxos.leader_hint().is_none() {
                        let fx = inst.paxos.campaign(ctx.now());
                        ctx.metrics().incr("rsmr.nominated_campaigns", 1);
                        self.process_effects(ctx, epoch, fx);
                    }
                }
            }
            RsmrMsg::Reply { .. }
            | RsmrMsg::Redirect { .. }
            | RsmrMsg::ReconfigureReply { .. }
            | RsmrMsg::TransferAck { .. } => {
                // Client/admin-bound traffic (or baseline-only messages)
                // mis-delivered to a replica.
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, _timer: Timer) {
        self.tick_everything(ctx);
        ctx.set_timer(self.tun.tick, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state_machine::CounterSm;

    #[test]
    fn genesis_node_is_anchored_and_has_one_instance() {
        let cfg = StaticConfig::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        let node: RsmrNode<CounterSm> = RsmrNode::genesis(NodeId(0), cfg, RsmrTunables::default());
        assert_eq!(node.anchored_epoch(), Some(Epoch::ZERO));
        assert_eq!(node.active_epoch(), Some(Epoch::ZERO));
        assert_eq!(node.applied_count(), 0);
        assert!(node.chain().is_some());
    }

    #[test]
    #[should_panic(expected = "not in the genesis config")]
    fn genesis_requires_membership() {
        let cfg = StaticConfig::new(vec![NodeId(1)]);
        let _: RsmrNode<CounterSm> = RsmrNode::genesis(NodeId(0), cfg, RsmrTunables::default());
    }

    #[test]
    fn joining_node_is_unanchored() {
        let node: RsmrNode<CounterSm> = RsmrNode::joining(NodeId(9), RsmrTunables::default());
        assert_eq!(node.anchored_epoch(), None);
        assert_eq!(node.active_epoch(), None);
        assert!(node.chain().is_none());
    }

    #[test]
    fn recover_requires_a_persisted_base() {
        let store = StableStore::new();
        assert!(
            RsmrNode::<CounterSm>::recover(NodeId(0), RsmrTunables::default(), &store).is_none()
        );
    }

    // -- batch-aware close point: a `Reconfigure` at *every* intra-batch
    // index must close the epoch at that position, with the batch tail
    // re-proposed into the successor. Batches with an embedded close
    // cannot be produced through `handle_request` (requests park once the
    // epoch is closing), so the test injects a constructed batch directly
    // into whichever replica currently leads — private access is exactly
    // why this lives in the node's own test module.

    use std::cell::RefCell;
    use std::rc::Rc;

    use simnet::{NetConfig, Sim, SimTime, Timer};

    /// A command armed to fire at a given virtual time, shared with the
    /// driving test.
    type ArmedPayload = Rc<RefCell<Option<(SimTime, Cmd<u64>)>>>;

    /// A server that, once `payload` is armed and this replica leads the
    /// active epoch, proposes the constructed batch and seeds `waiting`
    /// for its app entries so the tail re-proposal path fires.
    struct Injector {
        node: RsmrNode<CounterSm>,
        payload: ArmedPayload,
    }

    impl Injector {
        fn try_inject(&mut self, ctx: &mut Context<'_, RsmrMsg<u64, u64>>) {
            let armed = {
                let p = self.payload.borrow();
                matches!(&*p, Some((at, _)) if ctx.now() >= *at)
            };
            if !armed {
                return;
            }
            let Some(epoch) = self.node.active_epoch() else {
                return;
            };
            let leading = self
                .node
                .instances
                .get(&epoch)
                .map(|i| i.paxos.is_leader())
                .unwrap_or(false);
            if !leading {
                return;
            }
            let (_, cmd) = self.payload.borrow_mut().take().expect("armed");
            if let Cmd::Batch { entries } = &cmd {
                for e in entries {
                    if let BatchEntry::App { client, seq, .. } = e {
                        self.node.waiting.insert((*client, *seq), ());
                    }
                }
            }
            let inst = self.node.instances.get_mut(&epoch).expect("active");
            let (fx, _) = inst.paxos.propose(cmd, ctx.now());
            self.node.process_effects(ctx, epoch, fx);
        }
    }

    impl Actor for Injector {
        type Msg = RsmrMsg<u64, u64>;
        fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
            self.node.on_start(ctx);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg) {
            self.node.on_message(ctx, from, msg);
            self.try_inject(ctx);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, timer: Timer) {
            self.node.on_timer(ctx, timer);
            self.try_inject(ctx);
        }
    }

    /// Runs a 3-server cluster, injects a batch of `n_apps` commands with
    /// a `Reconfigure` spliced in at `close_idx`, and returns per-server
    /// `(anchored epoch, applied count, counter value)` plus the summed
    /// `rsmr.batch_close_tail` metric.
    fn run_intra_batch_close(
        seed: u64,
        n_apps: u64,
        close_idx: usize,
    ) -> (Vec<(u64, u64, u64)>, u64) {
        let servers: Vec<NodeId> = (0..3).map(NodeId).collect();
        let mut entries: Vec<BatchEntry<u64>> = (0..n_apps)
            .map(|seq| BatchEntry::App {
                client: NodeId(100),
                seq,
                op: 1 << seq,
            })
            .collect();
        entries.insert(
            close_idx,
            BatchEntry::Reconfigure {
                members: servers.clone(),
            },
        );
        let payload = Rc::new(RefCell::new(Some((
            SimTime::from_millis(500),
            Cmd::Batch { entries },
        ))));

        let mut sim: Sim<Injector> = Sim::new(seed, NetConfig::lan());
        let genesis = StaticConfig::new(servers.clone());
        for &s in &servers {
            sim.add_node_with_id(
                s,
                Injector {
                    node: RsmrNode::genesis(s, genesis.clone(), RsmrTunables::default()),
                    payload: payload.clone(),
                },
            );
        }
        sim.run_until(SimTime::from_secs(5));
        assert!(payload.borrow().is_none(), "batch was injected");

        let states = servers
            .iter()
            .map(|&s| {
                let a = sim.actor(s).expect("server up");
                (
                    a.node.anchored_epoch().expect("anchored").0,
                    a.node.applied_count(),
                    a.node.state_machine().value(),
                )
            })
            .collect();
        (states, sim.metrics().counter("rsmr.batch_close_tail"))
    }

    #[test]
    fn reconfigure_at_every_intra_batch_index_closes_there_and_reproposes_the_tail() {
        const N_APPS: u64 = 5;
        for close_idx in 0..=N_APPS as usize {
            let (states, tail_metric) = run_intra_batch_close(0xC105E, N_APPS, close_idx);
            let tail = N_APPS as usize - close_idx;
            for &(epoch, applied, value) in &states {
                assert_eq!(epoch, 1, "close at index {close_idx}: epoch sealed");
                assert_eq!(
                    applied, N_APPS,
                    "close at index {close_idx}: prefix applied in epoch 0, \
                     tail re-proposed into epoch 1, each exactly once"
                );
                assert_eq!(
                    value,
                    (1 << N_APPS) - 1,
                    "close at index {close_idx}: every op applied exactly once"
                );
            }
            // Every epoch-0 member records the same intra-batch tail — the
            // close point is a pure function of the batch position.
            assert_eq!(
                tail_metric,
                3 * tail as u64,
                "close at index {close_idx}: deterministic tail length"
            );
        }
    }

    #[test]
    fn intra_batch_close_is_deterministic_across_replays() {
        let a = run_intra_batch_close(7, 4, 2);
        let b = run_intra_batch_close(7, 4, 2);
        assert_eq!(a, b, "same seed, same close point, same final state");
    }
}
