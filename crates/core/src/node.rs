//! The composed reconfigurable replica.
//!
//! [`RsmrNode`] glues the pieces together: it runs one static
//! [`MultiPaxos`] instance per epoch, routes client traffic to the active
//! instance, enforces the *close-at-first-`Reconfigure`* prefix rule,
//! starts successor instances speculatively, serves and consumes state
//! transfer, and externalizes application effects exactly once.
//!
//! ## Anchoring
//!
//! A replica's application state is always "anchored" at some `(epoch,
//! next_slot)`: the state equals the composed history through every epoch
//! before `epoch` plus `epoch`'s slots below `next_slot`. Committed entries
//! for *later* epochs (or for an epoch whose base the replica does not have
//! yet — a joining member) are buffered and drained in order by the apply
//! pump once the anchor reaches them. The pump is also where the close
//! rule lives: the first `Reconfigure` applied in slot order closes the
//! epoch, everything buffered after it is discarded (with discarded client
//! commands optionally re-proposed into the successor), and the anchor
//! moves to the successor's slot 0.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use consensus::{MultiPaxos, PaxosTunables, ProposeOutcome, Slot, StaticConfig};
use simnet::{Actor, Context, DomainEvent, NodeId, SimDuration, SimTime, StableStore, Timer};

use crate::chain::{ConfigChain, Epoch};
use crate::command::{BatchEntry, Cmd};
use crate::messages::RsmrMsg;
use crate::session::{SessionDecision, SessionTable};
use crate::state_machine::StateMachine;
use crate::transfer::BaseState;

/// Behaviour knobs of the composed replica.
#[derive(Clone, Debug)]
pub struct RsmrTunables {
    /// Tunables for every embedded building-block instance.
    pub paxos: PaxosTunables,
    /// Speculative handoff: the closing epoch's leader campaigns in the
    /// successor instance immediately, skipping the election timeout. This
    /// is the headline optimization; experiment E2/E5 toggles it.
    pub fast_handoff: bool,
    /// Re-propose client commands discarded from a closed epoch's tail into
    /// the successor (instead of waiting for client retransmission).
    pub repropose_discarded: bool,
    /// How often the node pumps instance timers.
    pub tick: SimDuration,
    /// Retry interval for state-transfer requests.
    pub transfer_retry: SimDuration,
    /// How long a closed epoch's instance keeps serving catch-up before it
    /// is halted and dropped.
    pub retire_grace: SimDuration,
    /// Leader-side group commit: while a proposal is in flight, accumulate
    /// up to this many client commands and propose them as one log entry
    /// (flushed when the pipeline idles, the buffer fills, or at the next
    /// tick). `0` disables batching.
    pub batch_size: usize,
    /// Serve pure reads (operations with a [`StateMachine::query`] answer)
    /// locally at the leader under a read lease, skipping the log.
    /// Requires `paxos.lease_duration` to be set; linearizable given the
    /// lease-safety constraint documented there.
    pub local_reads: bool,
}

impl Default for RsmrTunables {
    fn default() -> Self {
        RsmrTunables {
            paxos: PaxosTunables::default(),
            fast_handoff: true,
            repropose_discarded: true,
            tick: SimDuration::from_millis(5),
            transfer_retry: SimDuration::from_millis(100),
            retire_grace: SimDuration::from_secs(2),
            batch_size: 0,
            local_reads: false,
        }
    }
}

/// One epoch's embedded building block plus composition bookkeeping.
struct Instance<O: CmdOp> {
    paxos: MultiPaxos<Cmd<O>>,
    /// Set when the apply pump hits this epoch's first `Reconfigure`:
    /// `(close_slot, successor members)`.
    closed: Option<(Slot, Vec<NodeId>)>,
    /// When set, the instance is halted & dropped after this time.
    retire_at: Option<SimTime>,
}

/// Shorthand for the operation-type bounds.
trait CmdOp: Clone + std::fmt::Debug + PartialEq + simnet::wire::Wire + 'static {}
impl<T: Clone + std::fmt::Debug + PartialEq + simnet::wire::Wire + 'static> CmdOp for T {}

/// Where the application state currently sits.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct Anchor {
    epoch: Epoch,
    next_slot: Slot,
}

/// An in-flight reconfiguration this node proposed.
#[derive(Clone, Debug)]
struct Closing {
    epoch: Epoch,
    admin: NodeId,
    proposed_at: SimTime,
}

/// A state transfer this node is waiting on.
///
/// Tracks retry attempts (for exponential backoff) and every donor the node
/// has learned about — the `Activate` sender, the successor's members, and
/// senders of stashed building-block traffic — so a dead or partitioned
/// donor is failed over instead of retried forever.
#[derive(Clone, Debug)]
struct PendingTransfer {
    epoch: Epoch,
    provider: NodeId,
    last_request: SimTime,
    attempts: u32,
    candidates: Vec<NodeId>,
}

const KEY_BASE: &str = "base/latest";
const BASES_KEPT: usize = 4;

/// One epoch's committed-but-unapplied entries, by slot, each stamped
/// with its commit time so the apply pump can report the commit→apply
/// latency (`rsmr.commit_to_apply_us`).
type SlotBuffer<Op> = BTreeMap<Slot, (SimTime, Arc<Cmd<Op>>)>;
/// Building-block messages parked for an epoch whose instance does not
/// exist yet.
type Stash<Op> = Vec<(NodeId, consensus::PaxosMsg<Cmd<Op>>)>;

/// The reconfigurable replica actor. See the module docs for the design.
pub struct RsmrNode<S: StateMachine> {
    me: NodeId,
    tun: RsmrTunables,

    /// The agreed configuration chain (`None` until a joining member
    /// installs its first base state).
    chain: Option<ConfigChain>,
    instances: BTreeMap<Epoch, Instance<S::Op>>,

    // --- Externalized application state ---
    sm: S,
    sessions: SessionTable<S::Output>,
    anchor: Option<Anchor>,

    /// Committed-but-not-yet-applied entries, per epoch.
    buffers: BTreeMap<Epoch, SlotBuffer<S::Op>>,
    /// When each still-finalizing epoch was sealed; drained by
    /// `finalize_epoch` into the `rsmr.seal_to_finalize_us` histogram —
    /// the replica-local reconfiguration span.
    sealed_at: BTreeMap<Epoch, SimTime>,
    /// Encoded base states this node can serve, keyed by anchored epoch.
    bases: BTreeMap<Epoch, Vec<u8>>,

    /// Requests this node proposed and owes replies for.
    waiting: BTreeMap<(NodeId, u64), ()>,
    /// Requests parked while a reconfiguration this node proposed is in
    /// flight; flushed into the successor epoch.
    handoff: VecDeque<(NodeId, u64, S::Op)>,
    /// The reconfiguration this node proposed, if unresolved.
    closing: Option<Closing>,

    /// Joining-member bootstrap / catch-up transfer in flight.
    pending_transfer: Option<PendingTransfer>,

    /// Building-block messages for epochs whose instance does not exist
    /// here yet (e.g. a speculative successor's `Prepare` racing ahead of
    /// the `Activate` that announces the epoch). Replayed on instance
    /// creation — without this, the speculative handoff's first campaign
    /// can be lost and leadership waits out a full election timeout.
    stashed: BTreeMap<Epoch, Stash<S::Op>>,

    /// When each stash first received a message. A stash that *ages* —
    /// traffic keeps arriving for an epoch this node cannot reach locally —
    /// is the signature of a replica that restarted (or fell) behind the
    /// cluster: the tick loop then requests a state transfer from one of
    /// the stashed senders instead of stalling forever.
    stash_since: BTreeMap<Epoch, SimTime>,

    /// Leader-side batch accumulator (when `batch_size > 0`).
    batch_buf: Vec<(NodeId, u64, S::Op)>,

    /// The intra-batch tail of the batch that closed the current epoch:
    /// application commands that followed the first `Reconfigure` inside
    /// the same batch. Set by the apply pump at the close, drained by
    /// `finalize_epoch` in the very next pump iteration, where the tail
    /// is re-proposed into the successor *ahead of* the slot-granular
    /// discarded entries (it precedes them in composed log order).
    batch_tail: Vec<(NodeId, u64, S::Op)>,

    /// Scratch buffer reused across base-state encodes (epoch finalization
    /// happens once per reconfiguration; the capacity amortizes across the
    /// chain instead of growing a fresh `Vec` each time).
    base_scratch: Vec<u8>,

    /// Commands applied by this replica (for tests and metrics).
    applied_count: u64,

    /// Newest epoch in which this replica has applied an application
    /// command — drives the `FirstCommit` observability event that closes
    /// the handoff-gap span. Epochs only move forward, so a single
    /// watermark suffices.
    commit_seen_epoch: Option<Epoch>,
}

impl<S: StateMachine + Default> RsmrNode<S> {
    /// Creates a genesis member: a replica of the initial configuration
    /// with a default-constructed application state.
    pub fn genesis(me: NodeId, initial: StaticConfig, tun: RsmrTunables) -> Self {
        Self::genesis_with(me, initial, tun, S::default())
    }
}

impl<S: StateMachine> RsmrNode<S> {
    /// Creates a genesis member with an explicit initial application state.
    pub fn genesis_with(me: NodeId, initial: StaticConfig, tun: RsmrTunables, sm: S) -> Self {
        assert!(initial.contains(me), "{me} is not in the genesis config");
        let chain = ConfigChain::genesis(initial.clone());
        let mut node = RsmrNode {
            me,
            tun: tun.clone(),
            chain: Some(chain),
            instances: BTreeMap::new(),
            sm,
            sessions: SessionTable::new(),
            anchor: Some(Anchor {
                epoch: Epoch::ZERO,
                next_slot: Slot::ZERO,
            }),
            buffers: BTreeMap::new(),
            sealed_at: BTreeMap::new(),
            bases: BTreeMap::new(),
            waiting: BTreeMap::new(),
            handoff: VecDeque::new(),
            closing: None,
            pending_transfer: None,
            stashed: BTreeMap::new(),
            stash_since: BTreeMap::new(),
            batch_buf: Vec::new(),
            batch_tail: Vec::new(),
            base_scratch: Vec::new(),
            applied_count: 0,
            commit_seen_epoch: None,
        };
        node.instances.insert(
            Epoch::ZERO,
            Instance {
                paxos: MultiPaxos::new(me, initial, SimTime::ZERO, tun.paxos),
                closed: None,
                retire_at: None,
            },
        );
        node.bases
            .insert(Epoch::ZERO, node.capture_base(Epoch::ZERO).encode_bytes());
        node
    }

    /// Creates a **joining** replica: it knows nothing and waits for an
    /// [`RsmrMsg::Activate`] naming it a member of some epoch, then pulls
    /// the base state.
    pub fn joining(me: NodeId, tun: RsmrTunables) -> Self
    where
        S: Default,
    {
        Self::joining_with(me, tun, S::default())
    }

    /// Creates a joining replica with an explicit placeholder state (which
    /// is replaced wholesale when the base state arrives).
    pub fn joining_with(me: NodeId, tun: RsmrTunables, placeholder: S) -> Self {
        RsmrNode {
            me,
            tun,
            chain: None,
            instances: BTreeMap::new(),
            sm: placeholder,
            sessions: SessionTable::new(),
            anchor: None,
            buffers: BTreeMap::new(),
            sealed_at: BTreeMap::new(),
            bases: BTreeMap::new(),
            waiting: BTreeMap::new(),
            handoff: VecDeque::new(),
            closing: None,
            pending_transfer: None,
            stashed: BTreeMap::new(),
            stash_since: BTreeMap::new(),
            batch_buf: Vec::new(),
            batch_tail: Vec::new(),
            base_scratch: Vec::new(),
            applied_count: 0,
            commit_seen_epoch: None,
        }
    }

    /// Rebuilds a replica after a crash from its stable storage: the last
    /// persisted base state plus the building block's persisted acceptor
    /// state. The log since the base is re-learned from peers via catch-up
    /// and replayed (sessions make replay exactly-once).
    pub fn recover(me: NodeId, tun: RsmrTunables, store: &StableStore) -> Option<Self> {
        let base_bytes = store.get(KEY_BASE)?.to_vec();
        let base = BaseState::<S::Output>::decode_bytes(&base_bytes)?;
        let sm = S::restore(&base.app)?;
        let anchor_epoch = base.epoch;
        let chain = base.chain.clone();
        let mut node = RsmrNode {
            me,
            tun: tun.clone(),
            chain: Some(chain.clone()),
            instances: BTreeMap::new(),
            sm,
            sessions: base.sessions.clone(),
            anchor: Some(Anchor {
                epoch: anchor_epoch,
                next_slot: Slot::ZERO,
            }),
            buffers: BTreeMap::new(),
            sealed_at: BTreeMap::new(),
            bases: BTreeMap::new(),
            waiting: BTreeMap::new(),
            handoff: VecDeque::new(),
            closing: None,
            pending_transfer: None,
            stashed: BTreeMap::new(),
            stash_since: BTreeMap::new(),
            batch_buf: Vec::new(),
            batch_tail: Vec::new(),
            base_scratch: Vec::new(),
            applied_count: 0,
            commit_seen_epoch: None,
        };
        node.bases.insert(anchor_epoch, base_bytes);
        // Rebuild instances (from the anchored epoch onward) whose acceptor
        // state was persisted and whose configuration we know.
        for (epoch, cfg) in chain.iter() {
            if epoch < anchor_epoch || !cfg.contains(me) {
                continue;
            }
            let prefix = px_prefix(epoch);
            let items: Vec<(String, Vec<u8>)> = store
                .keys_with_prefix(&prefix)
                .map(|k| {
                    (
                        k[prefix.len()..].to_owned(),
                        store.get(k).expect("listed").to_vec(),
                    )
                })
                .collect();
            node.instances.insert(
                epoch,
                Instance {
                    paxos: MultiPaxos::recover(
                        me,
                        cfg.clone(),
                        SimTime::ZERO,
                        tun.paxos.clone(),
                        items,
                    ),
                    closed: None,
                    retire_at: None,
                },
            );
        }
        Some(node)
    }

    // --- Introspection (used by tests, examples and experiments) ---------

    /// This replica's id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// The epoch the application state is anchored in, if anchored.
    pub fn anchored_epoch(&self) -> Option<Epoch> {
        self.anchor.map(|a| a.epoch)
    }

    /// The newest epoch this replica runs an instance for.
    pub fn active_epoch(&self) -> Option<Epoch> {
        self.instances.keys().next_back().copied()
    }

    /// True if this replica leads the active epoch's instance.
    pub fn is_active_leader(&self) -> bool {
        self.active_epoch()
            .and_then(|e| self.instances.get(&e))
            .map(|i| i.paxos.is_leader())
            .unwrap_or(false)
    }

    /// The configuration chain, if installed.
    pub fn chain(&self) -> Option<&ConfigChain> {
        self.chain.as_ref()
    }

    /// Read access to the application state machine.
    pub fn state_machine(&self) -> &S {
        &self.sm
    }

    /// Commands applied (externalized) by this replica.
    pub fn applied_count(&self) -> u64 {
        self.applied_count
    }

    /// The client session table.
    pub fn sessions(&self) -> &SessionTable<S::Output> {
        &self.sessions
    }

    /// The donor a pending state transfer is currently aimed at, if any.
    /// Chaos harnesses use this to resolve the "transfer donor" fault role.
    pub fn transfer_provider(&self) -> Option<NodeId> {
        self.pending_transfer.as_ref().map(|pt| pt.provider)
    }

    // --- Internals --------------------------------------------------------

    fn capture_base(&self, epoch: Epoch) -> BaseState<S::Output> {
        BaseState {
            epoch,
            app: self.sm.snapshot(),
            sessions: self.sessions.clone(),
            chain: self.chain.clone().expect("anchored nodes have a chain"),
        }
    }

    fn current_members(&self) -> Vec<NodeId> {
        self.chain
            .as_ref()
            .map(|c| c.latest_config().members().to_vec())
            .unwrap_or_default()
    }

    /// Routes one instance's effects into the world and pumps the apply
    /// loop.
    fn process_effects(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        epoch: Epoch,
        fx: consensus::Effects<Cmd<S::Op>>,
    ) {
        fx.record_stats(ctx.metrics());
        for (key, value) in fx.persist {
            ctx.storage()
                .put(&format!("{}{key}", px_prefix(epoch)), value);
        }
        for (to, inner) in fx.outbound {
            ctx.send(to, RsmrMsg::Paxos { epoch, inner });
        }
        if fx.became_leader {
            ctx.metrics().incr("rsmr.leader_elections", 1);
        }
        for &slot in &fx.proposed {
            ctx.emit_event(DomainEvent::CmdProposed {
                epoch: epoch.0,
                slot: slot.0,
            });
        }
        if !fx.committed.is_empty() {
            let now = ctx.now();
            let buf = self.buffers.entry(epoch).or_default();
            for (slot, cmd) in fx.committed {
                ctx.emit_event(DomainEvent::CmdCommitted {
                    epoch: epoch.0,
                    slot: slot.0,
                });
                buf.insert(slot, (now, cmd));
            }
            self.pump_apply(ctx);
        }
        // Group commit: a completed round frees the pipeline — flush the
        // commands that accumulated while it was in flight.
        if self.tun.batch_size > 0 && !self.batch_buf.is_empty() {
            if let Some(active) = self.active_epoch() {
                let idle = self
                    .instances
                    .get(&active)
                    .map(|i| i.paxos.is_leader() && i.paxos.inflight_len() == 0)
                    .unwrap_or(false);
                if idle {
                    self.flush_batch(ctx, active);
                }
            }
        }
    }

    /// Drains applicable committed entries in composed order, handling
    /// epoch closes and finalization. The heart of the composition.
    fn pump_apply(&mut self, ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>) {
        loop {
            let Some(anchor) = self.anchor else { return };
            let epoch = anchor.epoch;

            // Finalize the epoch once the close command has been applied.
            if let Some(inst) = self.instances.get(&epoch) {
                if let Some((close_slot, _)) = inst.closed {
                    if anchor.next_slot > close_slot {
                        self.finalize_epoch(ctx, epoch);
                        continue;
                    }
                }
            }

            let Some((committed_at, cmd)) = self
                .buffers
                .get_mut(&epoch)
                .and_then(|b| b.remove(&anchor.next_slot))
            else {
                return;
            };
            let slot = anchor.next_slot;
            self.anchor = Some(Anchor {
                epoch,
                next_slot: slot.next(),
            });
            let apply_lag = ctx.now().since(committed_at).as_micros();
            ctx.metrics().record("rsmr.commit_to_apply_us", apply_lag);

            match &*cmd {
                Cmd::Noop => {}
                Cmd::App { client, seq, op } => {
                    self.note_first_commit(ctx, epoch, slot);
                    self.apply_app(ctx, epoch, slot, *client, *seq, op)
                }
                Cmd::Batch { entries } => {
                    // Batch-aware close rule: apply the prefix before the
                    // first intra-batch `Reconfigure`, close the epoch at
                    // its position, and surface the tail (commands after
                    // the close point) for re-proposal in the successor.
                    let close = entries
                        .iter()
                        .position(|e| matches!(e, BatchEntry::Reconfigure { .. }));
                    let prefix_end = close.unwrap_or(entries.len());
                    if prefix_end > 0 {
                        self.note_first_commit(ctx, epoch, slot);
                    }
                    for entry in &entries[..prefix_end] {
                        if let BatchEntry::App { client, seq, op } = entry {
                            self.apply_app(ctx, epoch, slot, *client, *seq, op);
                        }
                    }
                    if let Some(idx) = close {
                        let BatchEntry::Reconfigure { members } = &entries[idx] else {
                            unreachable!("position() found a Reconfigure");
                        };
                        let members = members.clone();
                        self.batch_tail = entries[idx + 1..]
                            .iter()
                            .filter_map(|e| match e {
                                BatchEntry::App { client, seq, op } => {
                                    Some((*client, *seq, op.clone()))
                                }
                                // Only the *first* Reconfigure closes; any
                                // later one in the same batch is dropped,
                                // exactly like a buffered one at a later
                                // slot (its admin retries).
                                BatchEntry::Reconfigure { .. } => None,
                            })
                            .collect();
                        ctx.metrics()
                            .incr("rsmr.batch_close_tail", self.batch_tail.len() as u64);
                        self.close_epoch(ctx, epoch, slot, members);
                    }
                }
                Cmd::Reconfigure { members } => {
                    let members = members.clone();
                    self.close_epoch(ctx, epoch, slot, members)
                }
            }
        }
    }

    /// Marks the first applied application command of `epoch`, closing the
    /// handoff-gap span that opened at the predecessor's seal.
    fn note_first_commit(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        epoch: Epoch,
        slot: Slot,
    ) {
        if self.commit_seen_epoch.is_none_or(|e| e < epoch) {
            self.commit_seen_epoch = Some(epoch);
            ctx.emit_event(DomainEvent::FirstCommit {
                epoch: epoch.0,
                slot: slot.0,
            });
        }
    }

    fn apply_app(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        epoch: Epoch,
        slot: Slot,
        client: NodeId,
        seq: u64,
        op: &S::Op,
    ) {
        let output = match self.sessions.check(client, seq) {
            SessionDecision::Fresh => {
                let out = self.sm.apply(op);
                self.sessions.record(client, seq, out.clone());
                self.applied_count += 1;
                ctx.metrics().incr("rsmr.applied", 1);
                let now = ctx.now();
                ctx.metrics().timeline_push("rsmr.commits", now, 1.0);
                ctx.emit_event(DomainEvent::CmdApplied {
                    client,
                    seq,
                    epoch: epoch.0,
                    slot: slot.0,
                });
                out
            }
            SessionDecision::Duplicate(out) => {
                ctx.metrics().incr("rsmr.dedup_hits", 1);
                out
            }
            SessionDecision::Stale => {
                self.waiting.remove(&(client, seq));
                return;
            }
        };
        if self.waiting.remove(&(client, seq)).is_some() {
            let members = self.current_members();
            ctx.send(
                client,
                RsmrMsg::Reply {
                    seq,
                    output,
                    members,
                },
            );
        }
    }

    /// The apply pump hit the first `Reconfigure` of `epoch`, at `slot`.
    fn close_epoch(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        epoch: Epoch,
        slot: Slot,
        members: Vec<NodeId>,
    ) {
        let successor = epoch.next();
        let cfg = StaticConfig::new(members.clone());
        self.chain
            .as_mut()
            .expect("anchored")
            .append(successor, cfg);
        if let Some(inst) = self.instances.get_mut(&epoch) {
            inst.closed = Some((slot, members));
        }
        let now = ctx.now();
        self.sealed_at.insert(epoch, now);
        ctx.metrics().incr("rsmr.epochs_closed", 1);
        ctx.metrics()
            .timeline_push("rsmr.epoch_closed", now, epoch.0 as f64);
        ctx.emit_event(DomainEvent::EpochSealed {
            epoch: epoch.0,
            seal_slot: slot.0,
        });
        ctx.trace(|| format!("closed {epoch} at {slot}"));
        // Finalization (and successor creation) happens in the pump's next
        // iteration, via the `closed` marker.
    }

    /// The anchor has applied everything through `epoch`'s close: move to
    /// the successor.
    fn finalize_epoch(&mut self, ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>, epoch: Epoch) {
        let successor = epoch.next();
        let (was_leader, close_slot) = {
            let inst = self.instances.get(&epoch).expect("closing instance exists");
            (
                inst.paxos.is_leader(),
                inst.closed.as_ref().expect("closed").0,
            )
        };
        // The replica-local reconfiguration span: seal observed → epoch
        // finalized (base captured, successor anchored).
        if let Some(sealed) = self.sealed_at.remove(&epoch) {
            let span_us = ctx.now().since(sealed).as_micros();
            ctx.metrics().record("rsmr.seal_to_finalize_us", span_us);
        }

        // Anchor moves first so the captured base reflects exactly the
        // closed prefix.
        self.anchor = Some(Anchor {
            epoch: successor,
            next_slot: Slot::ZERO,
        });
        let base = self.capture_base(successor);
        let mut scratch = std::mem::take(&mut self.base_scratch);
        base.encode_into(&mut scratch);
        ctx.metrics()
            .incr("transfer.encode_bytes", scratch.len() as u64);
        ctx.storage().put(KEY_BASE, scratch.clone());
        self.bases.insert(successor, scratch.clone());
        self.base_scratch = scratch;
        while self.bases.len() > BASES_KEPT {
            let oldest = *self.bases.keys().next().expect("non-empty");
            self.bases.remove(&oldest);
        }

        // Collect the discarded tail (entries the block committed past the
        // close point) for optional re-proposal. The intra-batch tail of
        // the closing batch comes first: it precedes any later-slot entry
        // in composed log order.
        let mut discarded: Vec<(NodeId, u64, S::Op)> = std::mem::take(&mut self.batch_tail);
        if let Some(tail) = self.buffers.remove(&epoch) {
            discarded.extend(tail.into_iter().filter(|(s, _)| *s > close_slot).flat_map(
                |(_, (_, cmd))| {
                    match &*cmd {
                        Cmd::App { client, seq, op } => vec![(*client, *seq, op.clone())],
                        Cmd::Batch { entries } => entries
                            .iter()
                            .filter_map(|e| match e {
                                BatchEntry::App { client, seq, op } => {
                                    Some((*client, *seq, op.clone()))
                                }
                                BatchEntry::Reconfigure { .. } => None,
                            })
                            .collect(),
                        _ => Vec::new(),
                    }
                },
            ));
        }
        ctx.metrics()
            .incr("rsmr.discarded_tail", discarded.len() as u64);

        let successor_cfg = self
            .chain
            .as_ref()
            .expect("anchored")
            .config(successor)
            .expect("appended at close")
            .clone();

        // Retire the closed instance after a catch-up grace period.
        let retire_at = ctx.now() + self.tun.retire_grace;
        if let Some(inst) = self.instances.get_mut(&epoch) {
            inst.retire_at = Some(inst.retire_at.unwrap_or(retire_at).min(retire_at));
        }

        // Speculative successor startup.
        if successor_cfg.contains(self.me) {
            self.ensure_instance(ctx, successor, &successor_cfg);
            if was_leader && self.tun.fast_handoff {
                let fx = self
                    .instances
                    .get_mut(&successor)
                    .expect("just ensured")
                    .paxos
                    .campaign(ctx.now());
                ctx.metrics().incr("rsmr.fast_handoffs", 1);
                self.process_effects(ctx, successor, fx);
            }
            // Re-propose discarded tail commands and flush parked handoff
            // requests into the successor.
            if self.tun.repropose_discarded {
                for (client, seq, op) in discarded {
                    if self.waiting.contains_key(&(client, seq)) {
                        self.submit_to_instance(ctx, successor, client, seq, op);
                    }
                }
            }
            let parked: Vec<(NodeId, u64, S::Op)> = self.handoff.drain(..).collect();
            for (client, seq, op) in parked {
                self.submit_to_instance(ctx, successor, client, seq, op);
            }
        } else {
            // Removed from the configuration: serve transfer during the
            // grace period, then this node is done. If this node *led* the
            // closed epoch, nominate a successor member to campaign
            // immediately — otherwise the new epoch waits out a full
            // election timeout (the leader-removal variant of speculative
            // handoff).
            ctx.metrics().incr("rsmr.removed_self", 1);
            let nominee = successor_cfg.members().first().copied();
            if was_leader && self.tun.fast_handoff {
                if let Some(n) = nominee {
                    ctx.metrics().incr("rsmr.nominations", 1);
                    ctx.send(n, RsmrMsg::Nominate { epoch: successor });
                }
            }
            // Point parked and in-flight clients at the successor right
            // away — silently dropping them would cost each a full
            // retransmission timeout.
            let members = successor_cfg.members().to_vec();
            for (client, seq, _) in discarded {
                if self.waiting.remove(&(client, seq)).is_some() {
                    ctx.send(
                        client,
                        RsmrMsg::Redirect {
                            seq,
                            leader: nominee,
                            members: members.clone(),
                        },
                    );
                }
            }
            let parked: Vec<(NodeId, u64, S::Op)> = self.handoff.drain(..).collect();
            for (client, seq, _) in parked {
                ctx.send(
                    client,
                    RsmrMsg::Redirect {
                        seq,
                        leader: nominee,
                        members: members.clone(),
                    },
                );
            }
            let waiting: Vec<(NodeId, u64)> = self.waiting.keys().copied().collect();
            for (client, seq) in waiting {
                ctx.send(
                    client,
                    RsmrMsg::Redirect {
                        seq,
                        leader: nominee,
                        members: members.clone(),
                    },
                );
            }
            self.waiting.clear();
        }

        // Tell every successor member the new epoch exists and that this
        // node can serve its base.
        for &m in successor_cfg.members() {
            if m != self.me {
                ctx.send(
                    m,
                    RsmrMsg::Activate {
                        epoch: successor,
                        members: successor_cfg.members().to_vec(),
                    },
                );
            }
        }

        // Resolve an admin reconfiguration this node proposed.
        if let Some(closing) = self.closing.take() {
            if closing.epoch == epoch {
                ctx.send(
                    closing.admin,
                    RsmrMsg::ReconfigureReply {
                        epoch: successor,
                        ok: true,
                        leader: None,
                    },
                );
            } else {
                self.closing = Some(closing);
            }
        }

        let now = ctx.now();
        ctx.metrics().incr("rsmr.epochs_finalized", 1);
        ctx.metrics()
            .timeline_push("rsmr.epoch_finalized", now, successor.0 as f64);
        ctx.emit_event(DomainEvent::Anchored { epoch: successor.0 });
        ctx.trace(|| format!("finalized {epoch}; anchored at {successor}"));
    }

    fn ensure_instance(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        epoch: Epoch,
        cfg: &StaticConfig,
    ) {
        if self.instances.contains_key(&epoch) || !cfg.contains(self.me) {
            return;
        }
        self.instances.insert(
            epoch,
            Instance {
                paxos: MultiPaxos::new(self.me, cfg.clone(), ctx.now(), self.tun.paxos.clone()),
                closed: None,
                retire_at: None,
            },
        );
        ctx.metrics().incr("rsmr.instances_created", 1);
        // Replay protocol messages that arrived before the instance did.
        self.stash_since.remove(&epoch);
        if let Some(stash) = self.stashed.remove(&epoch) {
            for (from, inner) in stash {
                if let Some(inst) = self.instances.get_mut(&epoch) {
                    let fx = inst.paxos.on_message(from, inner, ctx.now());
                    self.process_effects(ctx, epoch, fx);
                }
            }
        }
    }

    fn submit_to_instance(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        epoch: Epoch,
        client: NodeId,
        seq: u64,
        op: S::Op,
    ) {
        let Some(inst) = self.instances.get_mut(&epoch) else {
            return;
        };
        let (fx, outcome) = inst.paxos.propose(Cmd::App { client, seq, op }, ctx.now());
        match outcome {
            ProposeOutcome::Accepted => {
                self.waiting.insert((client, seq), ());
            }
            ProposeOutcome::NotLeader(leader) => {
                let members = self.current_members();
                ctx.send(
                    client,
                    RsmrMsg::Redirect {
                        seq,
                        leader,
                        members,
                    },
                );
            }
        }
        self.process_effects(ctx, epoch, fx);
    }

    fn handle_request(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        client: NodeId,
        seq: u64,
        op: S::Op,
    ) {
        // Session fast path: an already-applied command is answered from
        // the cache without re-proposing.
        match self.sessions.check(client, seq) {
            SessionDecision::Duplicate(output) => {
                let members = self.current_members();
                ctx.send(
                    client,
                    RsmrMsg::Reply {
                        seq,
                        output,
                        members,
                    },
                );
                return;
            }
            SessionDecision::Stale => return,
            SessionDecision::Fresh => {}
        }
        let Some(active) = self.active_epoch() else {
            // A joining node that is not yet participating: the client will
            // retransmit elsewhere.
            return;
        };
        // Lease-based local read: the leader of the active epoch answers
        // pure reads from its applied state while it holds a quorum lease
        // and is fully anchored (nothing committed-but-unapplied).
        if self.tun.local_reads && self.anchor.map(|a| a.epoch) == Some(active) {
            if let Some(output) = self.sm.query(&op) {
                let leased = self
                    .instances
                    .get(&active)
                    .map(|i| i.paxos.is_leader() && i.paxos.lease_valid(ctx.now()))
                    .unwrap_or(false);
                let fully_applied = self
                    .buffers
                    .get(&active)
                    .map(|b| b.is_empty())
                    .unwrap_or(true);
                if leased && fully_applied && self.closing.is_none() {
                    ctx.metrics().incr("rsmr.local_reads", 1);
                    let members = self.current_members();
                    ctx.send(
                        client,
                        RsmrMsg::Reply {
                            seq,
                            output,
                            members,
                        },
                    );
                    return;
                }
            }
        }

        // A node removed from the latest configuration no longer serves;
        // send the client straight to the successor's members.
        if let Some(chain) = &self.chain {
            let latest = chain.latest_config();
            if !latest.contains(self.me) {
                ctx.send(
                    client,
                    RsmrMsg::Redirect {
                        seq,
                        leader: latest.members().first().copied(),
                        members: latest.members().to_vec(),
                    },
                );
                return;
            }
        }
        // While a reconfiguration this node proposed is in flight, park new
        // requests for the successor instead of feeding the closing log.
        if self.closing.is_some() {
            self.handoff.push_back((client, seq, op));
            return;
        }
        // Adaptive batching (group commit): the leader accumulates while a
        // proposal is in flight and flushes the moment the pipeline is idle
        // or the batch is full — unloaded latency is unchanged, loaded
        // throughput amortizes consensus rounds.
        if self.tun.batch_size > 0 {
            let (is_leader, inflight) = self
                .instances
                .get(&active)
                .map(|i| (i.paxos.is_leader(), i.paxos.inflight_len()))
                .unwrap_or((false, 0));
            if is_leader {
                self.batch_buf.push((client, seq, op));
                if self.batch_buf.len() >= self.tun.batch_size || inflight == 0 {
                    self.flush_batch(ctx, active);
                }
                return;
            }
        }
        self.submit_to_instance(ctx, active, client, seq, op);
    }

    /// Proposes the accumulated batch as one log entry.
    fn flush_batch(&mut self, ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>, epoch: Epoch) {
        if self.batch_buf.is_empty() {
            return;
        }
        let entries = std::mem::take(&mut self.batch_buf);
        let Some(inst) = self.instances.get_mut(&epoch) else {
            // Instance vanished between accumulation and flush: the
            // clients retransmit.
            return;
        };
        let keys: Vec<(NodeId, u64)> = entries.iter().map(|(c, s, _)| (*c, *s)).collect();
        let entries: Vec<BatchEntry<S::Op>> = entries
            .into_iter()
            .map(|(client, seq, op)| BatchEntry::App { client, seq, op })
            .collect();
        let (fx, outcome) = inst.paxos.propose(Cmd::Batch { entries }, ctx.now());
        match outcome {
            ProposeOutcome::Accepted => {
                ctx.metrics().incr("rsmr.batches_proposed", 1);
                ctx.metrics().incr("rsmr.batched_cmds", keys.len() as u64);
                for key in keys {
                    self.waiting.insert(key, ());
                }
            }
            ProposeOutcome::NotLeader(leader) => {
                let members = self.current_members();
                for (client, seq) in keys {
                    ctx.send(
                        client,
                        RsmrMsg::Redirect {
                            seq,
                            leader,
                            members: members.clone(),
                        },
                    );
                }
            }
        }
        self.process_effects(ctx, epoch, fx);
    }

    fn handle_reconfigure(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        admin: NodeId,
        members: Vec<NodeId>,
    ) {
        let Some(active) = self.active_epoch() else {
            return;
        };
        let refuse = |this: &Self, ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>, leader| {
            ctx.send(
                admin,
                RsmrMsg::ReconfigureReply {
                    epoch: active,
                    ok: false,
                    leader,
                },
            );
            let _ = this;
        };
        if members.is_empty() {
            refuse(self, ctx, None);
            return;
        }
        // Idempotence: asking for the configuration we already have (e.g. an
        // admin retrying after its `ok` reply was lost) succeeds immediately.
        let requested = StaticConfig::new(members.clone());
        if self
            .chain
            .as_ref()
            .map(|c| c.latest_config() == &requested)
            .unwrap_or(false)
        {
            let epoch = self.chain.as_ref().expect("checked").latest_epoch();
            ctx.send(
                admin,
                RsmrMsg::ReconfigureReply {
                    epoch,
                    ok: true,
                    leader: None,
                },
            );
            return;
        }
        if self.closing.is_some() {
            refuse(self, ctx, Some(self.me));
            return;
        }
        let inst = self.instances.get_mut(&active).expect("active exists");
        if !inst.paxos.is_leader() {
            let hint = inst.paxos.leader_hint();
            refuse(self, ctx, hint);
            return;
        }
        let (fx, outcome) = inst.paxos.propose(Cmd::Reconfigure { members }, ctx.now());
        match outcome {
            ProposeOutcome::Accepted => {
                self.closing = Some(Closing {
                    epoch: active,
                    admin,
                    proposed_at: ctx.now(),
                });
                let now = ctx.now();
                ctx.metrics().incr("rsmr.reconfigs_proposed", 1);
                ctx.metrics()
                    .timeline_push("rsmr.reconfig_proposed", now, active.0 as f64);
                ctx.emit_event(DomainEvent::ReconfigProposed { epoch: active.0 });
            }
            ProposeOutcome::NotLeader(leader) => {
                ctx.send(
                    admin,
                    RsmrMsg::ReconfigureReply {
                        epoch: active,
                        ok: false,
                        leader,
                    },
                );
            }
        }
        self.process_effects(ctx, active, fx);
    }

    fn handle_activate(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        from: NodeId,
        epoch: Epoch,
        members: Vec<NodeId>,
    ) {
        let cfg = StaticConfig::new(members);
        match (&mut self.chain, self.anchor) {
            (Some(chain), Some(anchor)) => {
                // An existing member learning about the successor (possibly
                // before its own pump closes the predecessor).
                if chain.config(epoch).is_none() {
                    if chain.latest_epoch().next() == epoch {
                        chain.append(epoch, cfg.clone());
                    } else if epoch > chain.latest_epoch() {
                        // Too far behind to extend the chain contiguously:
                        // jump via state transfer.
                        self.request_transfer(ctx, epoch, from, cfg.members());
                        return;
                    } else {
                        return; // stale activate for an old epoch
                    }
                }
                self.ensure_instance(ctx, epoch, &cfg);
                // If our anchor can no longer reach `epoch` locally (the
                // predecessor instance is gone from the network), fall back
                // to transfer. Detected lazily in tick; nothing to do here.
                let _ = anchor;
            }
            _ => {
                // A joining member: participate immediately (buffer
                // commits), pull the base state.
                self.ensure_instance(ctx, epoch, &cfg);
                self.request_transfer(ctx, epoch, from, cfg.members());
            }
        }
    }

    fn request_transfer(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        epoch: Epoch,
        provider: NodeId,
        candidates: &[NodeId],
    ) {
        // Never regress: only transfer forward of the current anchor.
        if let Some(anchor) = self.anchor {
            if anchor.epoch >= epoch {
                return;
            }
        }
        if let Some(pt) = &mut self.pending_transfer {
            if pt.epoch > epoch {
                return;
            }
            if pt.epoch == epoch {
                // Already in flight: widen the donor pool, keep the timer.
                for &c in candidates.iter().chain(std::iter::once(&provider)) {
                    if c != self.me && !pt.candidates.contains(&c) {
                        pt.candidates.push(c);
                    }
                }
                return;
            }
        }
        let mut pool: Vec<NodeId> = Vec::new();
        for &c in std::iter::once(&provider).chain(candidates.iter()) {
            if c != self.me && !pool.contains(&c) {
                pool.push(c);
            }
        }
        self.pending_transfer = Some(PendingTransfer {
            epoch,
            provider,
            last_request: ctx.now(),
            attempts: 0,
            candidates: pool,
        });
        ctx.metrics().incr("rsmr.transfer_requests", 1);
        ctx.emit_event(DomainEvent::TransferRequested {
            epoch: epoch.0,
            provider,
        });
        ctx.send(provider, RsmrMsg::TransferRequest { epoch });
    }

    fn handle_transfer_request(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        from: NodeId,
        epoch: Epoch,
    ) {
        let base = self.bases.get(&epoch).cloned();
        if let Some(bytes) = base.as_ref() {
            ctx.metrics().incr("rsmr.transfers_served", 1);
            ctx.metrics()
                .incr("rsmr.transfer_bytes", bytes.len() as u64);
            ctx.emit_event(DomainEvent::TransferServed {
                epoch: epoch.0,
                to: from,
                bytes: bytes.len() as u64,
            });
        }
        ctx.send(from, RsmrMsg::TransferReply { epoch, base });
    }

    fn handle_transfer_reply(
        &mut self,
        ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>,
        epoch: Epoch,
        base: Option<Vec<u8>>,
    ) {
        let Some(pt) = &self.pending_transfer else {
            return;
        };
        if pt.epoch != epoch {
            return;
        }
        let Some(bytes) = base else {
            return; // provider not ready; the tick timer will retry
        };
        let Some(base) = BaseState::<S::Output>::decode_bytes(&bytes) else {
            ctx.metrics().incr("rsmr.transfer_decode_failures", 1);
            return;
        };
        let Some(sm) = S::restore(&base.app) else {
            ctx.metrics().incr("rsmr.transfer_decode_failures", 1);
            return;
        };
        // Never regress the anchor.
        if let Some(anchor) = self.anchor {
            if anchor.epoch >= epoch {
                self.pending_transfer = None;
                return;
            }
        }
        self.pending_transfer = None;
        self.sm = sm;
        self.sessions = base.sessions.clone();
        self.chain = Some(base.chain.clone());
        self.anchor = Some(Anchor {
            epoch,
            next_slot: Slot::ZERO,
        });
        ctx.storage().put(KEY_BASE, bytes.clone());
        self.bases.insert(epoch, bytes);
        // Drop buffers and instances for epochs we jumped over.
        self.buffers.retain(|&e, _| e >= epoch);
        self.sealed_at.retain(|&e, _| e >= epoch);
        let stale: Vec<Epoch> = self
            .instances
            .keys()
            .copied()
            .filter(|&e| e < epoch)
            .collect();
        for e in stale {
            if let Some(mut inst) = self.instances.remove(&e) {
                inst.paxos.halt();
            }
        }
        // Make sure we participate in the anchored epoch.
        let cfg = base
            .chain
            .config(epoch)
            .expect("validated by decode")
            .clone();
        self.ensure_instance(ctx, epoch, &cfg);
        let now = ctx.now();
        ctx.metrics().incr("rsmr.transfers_installed", 1);
        ctx.metrics()
            .timeline_push("rsmr.anchored", now, epoch.0 as f64);
        ctx.emit_event(DomainEvent::Anchored { epoch: epoch.0 });
        ctx.trace(|| format!("installed base for {epoch}"));
        self.pump_apply(ctx);
    }

    fn tick_everything(&mut self, ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>) {
        let now = ctx.now();

        // Pump every instance's timers.
        let epochs: Vec<Epoch> = self.instances.keys().copied().collect();
        for epoch in epochs {
            let fx = {
                let Some(inst) = self.instances.get_mut(&epoch) else {
                    continue;
                };
                // A retired instance is halted and dropped.
                if let Some(at) = inst.retire_at {
                    if now >= at {
                        inst.paxos.halt();
                        let prefix = px_prefix(epoch);
                        let keys: Vec<String> = ctx.storage().keys_with_prefix(&prefix);
                        for k in keys {
                            ctx.storage().remove(&k);
                        }
                        self.instances.remove(&epoch);
                        self.buffers.remove(&epoch);
                        ctx.metrics().incr("rsmr.instances_retired", 1);
                        continue;
                    }
                }
                inst.paxos.tick(now)
            };
            self.process_effects(ctx, epoch, fx);
        }

        // Flush an accumulated batch (at most one tick of added latency).
        if !self.batch_buf.is_empty() {
            if let Some(active) = self.active_epoch() {
                self.flush_batch(ctx, active);
            }
        }

        // Drop stashes for epochs that can no longer matter.
        if let Some(anchor) = self.anchor {
            self.stashed.retain(|&e, _| e >= anchor.epoch);
            self.stash_since.retain(|&e, _| e >= anchor.epoch);
        }

        // A stash that keeps aging means the cluster moved past this
        // replica while it was down (or it rejoined blank): peers are
        // running an epoch we cannot reach through the local chain. Pull a
        // base state from one of the stashed senders instead of waiting for
        // an `Activate` that already went by.
        let reachable = self.chain.as_ref().map(|c| c.latest_epoch());
        let aged: Option<Epoch> = self
            .stash_since
            .iter()
            .filter(|&(&e, &since)| {
                now.since(since) >= self.tun.transfer_retry * 2
                    && reachable.map(|r| e > r).unwrap_or(true)
                    && self
                        .pending_transfer
                        .as_ref()
                        .map(|pt| pt.epoch < e)
                        .unwrap_or(true)
            })
            .map(|(&e, _)| e)
            .next_back();
        if let Some(epoch) = aged {
            let senders: Vec<NodeId> = self
                .stashed
                .get(&epoch)
                .map(|s| s.iter().map(|(from, _)| *from).collect())
                .unwrap_or_default();
            if let Some(&first) = senders.first() {
                ctx.metrics().incr("rsmr.stash_aged_transfers", 1);
                ctx.trace(|| format!("stash for {epoch} aged; pulling base from {first}"));
                self.request_transfer(ctx, epoch, first, &senders);
            }
        }

        // Retry a pending state transfer with exponential backoff, rotating
        // to an alternate donor each attempt so a crashed or partitioned
        // provider cannot stall the join forever.
        if let Some(pt) = self.pending_transfer.clone() {
            let delay = self.tun.transfer_retry * (1u64 << pt.attempts.min(3));
            if now.since(pt.last_request) >= delay {
                let next_provider = self.pick_transfer_provider(&pt);
                self.pending_transfer = Some(PendingTransfer {
                    provider: next_provider,
                    last_request: now,
                    attempts: pt.attempts.saturating_add(1),
                    ..pt
                });
                ctx.metrics().incr("rsmr.transfer_retries", 1);
                ctx.send(next_provider, RsmrMsg::TransferRequest { epoch: pt.epoch });
            }
        }

        // A reconfiguration proposal that lost its leader will never
        // finalize here: release parked clients so they retry elsewhere.
        if let Some(closing) = self.closing.clone() {
            let still_leading = self
                .instances
                .get(&closing.epoch)
                .map(|i| i.paxos.is_leader())
                .unwrap_or(false);
            let timed_out = now.since(closing.proposed_at) >= self.tun.paxos.election_timeout * 4;
            if !still_leading || timed_out {
                self.closing = None;
                let members = self.current_members();
                let parked: Vec<(NodeId, u64, S::Op)> = self.handoff.drain(..).collect();
                for (client, seq, _) in parked {
                    ctx.send(
                        client,
                        RsmrMsg::Redirect {
                            seq,
                            leader: None,
                            members: members.clone(),
                        },
                    );
                }
                ctx.send(
                    closing.admin,
                    RsmrMsg::ReconfigureReply {
                        epoch: closing.epoch,
                        ok: false,
                        leader: None,
                    },
                );
            }
        }
    }

    fn pick_transfer_provider(&mut self, pt: &PendingTransfer) -> NodeId {
        // Rotate deterministically through every donor we know about: the
        // target epoch's member set (any finalized member can serve) plus
        // the accumulated candidates (Activate sender, successor members,
        // stashed-traffic senders). A blank joiner whose sole announced
        // donor crashed or got partitioned fails over to the others.
        let mut pool: Vec<NodeId> = self
            .chain
            .as_ref()
            .and_then(|c| c.config(pt.epoch))
            .map(|c| c.peers(self.me))
            .unwrap_or_default();
        for &c in &pt.candidates {
            if c != self.me && !pool.contains(&c) {
                pool.push(c);
            }
        }
        if pool.is_empty() {
            return pt.provider;
        }
        let idx = pool.iter().position(|&m| m == pt.provider);
        match idx {
            Some(i) => pool[(i + 1) % pool.len()],
            None => pool[0],
        }
    }
}

fn px_prefix(epoch: Epoch) -> String {
    format!("px/{:08x}/", epoch.0)
}

impl<S: StateMachine> Actor for RsmrNode<S> {
    type Msg = RsmrMsg<S::Op, S::Output>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        // Persist the genesis base so crash recovery always has one.
        if let Some(anchor) = self.anchor {
            if ctx.storage().get(KEY_BASE).is_none() {
                if let Some(bytes) = self.bases.get(&anchor.epoch) {
                    ctx.storage().put(KEY_BASE, bytes.clone());
                }
            }
        }
        ctx.set_timer(self.tun.tick, 0);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg) {
        match msg {
            RsmrMsg::Paxos { epoch, inner } => {
                if let Some(inst) = self.instances.get_mut(&epoch) {
                    let fx = inst.paxos.on_message(from, inner, ctx.now());
                    self.process_effects(ctx, epoch, fx);
                } else if self
                    .chain
                    .as_ref()
                    .map(|c| {
                        c.config(epoch)
                            .map(|cfg| cfg.contains(self.me))
                            .unwrap_or(false)
                    })
                    .unwrap_or(false)
                {
                    // Known epoch we should participate in (e.g. a lost
                    // Activate): create the instance, then deliver.
                    let cfg = self
                        .chain
                        .as_ref()
                        .and_then(|c| c.config(epoch))
                        .expect("checked")
                        .clone();
                    self.ensure_instance(ctx, epoch, &cfg);
                    if let Some(inst) = self.instances.get_mut(&epoch) {
                        let fx = inst.paxos.on_message(from, inner, ctx.now());
                        self.process_effects(ctx, epoch, fx);
                    }
                } else {
                    // An epoch we have not learned about yet: stash the
                    // message (bounded) and replay it when the instance is
                    // created; drop only clearly-stale traffic.
                    let stale = self.anchor.map(|a| epoch < a.epoch).unwrap_or(false);
                    if stale {
                        ctx.metrics().incr("rsmr.unroutable_paxos", 1);
                    } else {
                        let stash = self.stashed.entry(epoch).or_default();
                        if stash.len() < 256 {
                            stash.push((from, inner));
                            self.stash_since.entry(epoch).or_insert_with(|| ctx.now());
                            ctx.metrics().incr("rsmr.stashed_paxos", 1);
                        } else {
                            ctx.metrics().incr("rsmr.unroutable_paxos", 1);
                        }
                    }
                }
            }
            RsmrMsg::Request { seq, op } => self.handle_request(ctx, from, seq, op),
            RsmrMsg::Reconfigure { members } => self.handle_reconfigure(ctx, from, members),
            RsmrMsg::Activate { epoch, members } => self.handle_activate(ctx, from, epoch, members),
            RsmrMsg::TransferRequest { epoch } => self.handle_transfer_request(ctx, from, epoch),
            RsmrMsg::TransferReply { epoch, base } => self.handle_transfer_reply(ctx, epoch, base),
            RsmrMsg::Nominate { epoch } => {
                // Campaign in the named epoch if we participate in it and
                // no leader is known yet (otherwise the nomination is
                // stale and ignored).
                if let Some(inst) = self.instances.get_mut(&epoch) {
                    if inst.paxos.leader_hint().is_none() {
                        let fx = inst.paxos.campaign(ctx.now());
                        ctx.metrics().incr("rsmr.nominated_campaigns", 1);
                        self.process_effects(ctx, epoch, fx);
                    }
                }
            }
            RsmrMsg::Reply { .. }
            | RsmrMsg::Redirect { .. }
            | RsmrMsg::ReconfigureReply { .. }
            | RsmrMsg::TransferAck { .. } => {
                // Client/admin-bound traffic (or baseline-only messages)
                // mis-delivered to a replica.
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, _timer: Timer) {
        self.tick_everything(ctx);
        ctx.set_timer(self.tun.tick, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state_machine::CounterSm;

    #[test]
    fn genesis_node_is_anchored_and_has_one_instance() {
        let cfg = StaticConfig::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        let node: RsmrNode<CounterSm> = RsmrNode::genesis(NodeId(0), cfg, RsmrTunables::default());
        assert_eq!(node.anchored_epoch(), Some(Epoch::ZERO));
        assert_eq!(node.active_epoch(), Some(Epoch::ZERO));
        assert_eq!(node.applied_count(), 0);
        assert!(node.chain().is_some());
    }

    #[test]
    #[should_panic(expected = "not in the genesis config")]
    fn genesis_requires_membership() {
        let cfg = StaticConfig::new(vec![NodeId(1)]);
        let _: RsmrNode<CounterSm> = RsmrNode::genesis(NodeId(0), cfg, RsmrTunables::default());
    }

    #[test]
    fn joining_node_is_unanchored() {
        let node: RsmrNode<CounterSm> = RsmrNode::joining(NodeId(9), RsmrTunables::default());
        assert_eq!(node.anchored_epoch(), None);
        assert_eq!(node.active_epoch(), None);
        assert!(node.chain().is_none());
    }

    #[test]
    fn recover_requires_a_persisted_base() {
        let store = StableStore::new();
        assert!(
            RsmrNode::<CounterSm>::recover(NodeId(0), RsmrTunables::default(), &store).is_none()
        );
    }

    // -- batch-aware close point: a `Reconfigure` at *every* intra-batch
    // index must close the epoch at that position, with the batch tail
    // re-proposed into the successor. Batches with an embedded close
    // cannot be produced through `handle_request` (requests park once the
    // epoch is closing), so the test injects a constructed batch directly
    // into whichever replica currently leads — private access is exactly
    // why this lives in the node's own test module.

    use std::cell::RefCell;
    use std::rc::Rc;

    use simnet::{NetConfig, Sim, SimTime, Timer};

    /// A command armed to fire at a given virtual time, shared with the
    /// driving test.
    type ArmedPayload = Rc<RefCell<Option<(SimTime, Cmd<u64>)>>>;

    /// A server that, once `payload` is armed and this replica leads the
    /// active epoch, proposes the constructed batch and seeds `waiting`
    /// for its app entries so the tail re-proposal path fires.
    struct Injector {
        node: RsmrNode<CounterSm>,
        payload: ArmedPayload,
    }

    impl Injector {
        fn try_inject(&mut self, ctx: &mut Context<'_, RsmrMsg<u64, u64>>) {
            let armed = {
                let p = self.payload.borrow();
                matches!(&*p, Some((at, _)) if ctx.now() >= *at)
            };
            if !armed {
                return;
            }
            let Some(epoch) = self.node.active_epoch() else {
                return;
            };
            let leading = self
                .node
                .instances
                .get(&epoch)
                .map(|i| i.paxos.is_leader())
                .unwrap_or(false);
            if !leading {
                return;
            }
            let (_, cmd) = self.payload.borrow_mut().take().expect("armed");
            if let Cmd::Batch { entries } = &cmd {
                for e in entries {
                    if let BatchEntry::App { client, seq, .. } = e {
                        self.node.waiting.insert((*client, *seq), ());
                    }
                }
            }
            let inst = self.node.instances.get_mut(&epoch).expect("active");
            let (fx, _) = inst.paxos.propose(cmd, ctx.now());
            self.node.process_effects(ctx, epoch, fx);
        }
    }

    impl Actor for Injector {
        type Msg = RsmrMsg<u64, u64>;
        fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
            self.node.on_start(ctx);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg) {
            self.node.on_message(ctx, from, msg);
            self.try_inject(ctx);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, timer: Timer) {
            self.node.on_timer(ctx, timer);
            self.try_inject(ctx);
        }
    }

    /// Runs a 3-server cluster, injects a batch of `n_apps` commands with
    /// a `Reconfigure` spliced in at `close_idx`, and returns per-server
    /// `(anchored epoch, applied count, counter value)` plus the summed
    /// `rsmr.batch_close_tail` metric.
    fn run_intra_batch_close(
        seed: u64,
        n_apps: u64,
        close_idx: usize,
    ) -> (Vec<(u64, u64, u64)>, u64) {
        let servers: Vec<NodeId> = (0..3).map(NodeId).collect();
        let mut entries: Vec<BatchEntry<u64>> = (0..n_apps)
            .map(|seq| BatchEntry::App {
                client: NodeId(100),
                seq,
                op: 1 << seq,
            })
            .collect();
        entries.insert(
            close_idx,
            BatchEntry::Reconfigure {
                members: servers.clone(),
            },
        );
        let payload = Rc::new(RefCell::new(Some((
            SimTime::from_millis(500),
            Cmd::Batch { entries },
        ))));

        let mut sim: Sim<Injector> = Sim::new(seed, NetConfig::lan());
        let genesis = StaticConfig::new(servers.clone());
        for &s in &servers {
            sim.add_node_with_id(
                s,
                Injector {
                    node: RsmrNode::genesis(s, genesis.clone(), RsmrTunables::default()),
                    payload: payload.clone(),
                },
            );
        }
        sim.run_until(SimTime::from_secs(5));
        assert!(payload.borrow().is_none(), "batch was injected");

        let states = servers
            .iter()
            .map(|&s| {
                let a = sim.actor(s).expect("server up");
                (
                    a.node.anchored_epoch().expect("anchored").0,
                    a.node.applied_count(),
                    a.node.state_machine().value(),
                )
            })
            .collect();
        (states, sim.metrics().counter("rsmr.batch_close_tail"))
    }

    #[test]
    fn reconfigure_at_every_intra_batch_index_closes_there_and_reproposes_the_tail() {
        const N_APPS: u64 = 5;
        for close_idx in 0..=N_APPS as usize {
            let (states, tail_metric) = run_intra_batch_close(0xC105E, N_APPS, close_idx);
            let tail = N_APPS as usize - close_idx;
            for &(epoch, applied, value) in &states {
                assert_eq!(epoch, 1, "close at index {close_idx}: epoch sealed");
                assert_eq!(
                    applied, N_APPS,
                    "close at index {close_idx}: prefix applied in epoch 0, \
                     tail re-proposed into epoch 1, each exactly once"
                );
                assert_eq!(
                    value,
                    (1 << N_APPS) - 1,
                    "close at index {close_idx}: every op applied exactly once"
                );
            }
            // Every epoch-0 member records the same intra-batch tail — the
            // close point is a pure function of the batch position.
            assert_eq!(
                tail_metric,
                3 * tail as u64,
                "close at index {close_idx}: deterministic tail length"
            );
        }
    }

    #[test]
    fn intra_batch_close_is_deterministic_across_replays() {
        let a = run_intra_batch_close(7, 4, 2);
        let b = run_intra_batch_close(7, 4, 2);
        assert_eq!(a, b, "same seed, same close point, same final state");
    }
}
