//! A ready-made world actor for deployments of the composed machine:
//! servers, clients, paced clients and the admin in one `simnet` world.
//!
//! Examples, integration tests and the experiment harness all need the
//! same enum-dispatch boilerplate; this module provides it once.
//!
//! ```
//! use consensus::StaticConfig;
//! use rsmr_core::harness::World;
//! use rsmr_core::{CounterSm, RsmrClient, RsmrNode, RsmrTunables};
//! use simnet::{NetConfig, NodeId, Sim, SimDuration};
//!
//! let mut sim: Sim<World<CounterSm>> = Sim::new(7, NetConfig::lan());
//! let servers: Vec<NodeId> = (0..3).map(NodeId).collect();
//! let cfg = StaticConfig::new(servers.clone());
//! for &s in &servers {
//!     sim.add_node_with_id(s, World::server(RsmrNode::genesis(s, cfg.clone(), RsmrTunables::default())));
//! }
//! let c = NodeId(100);
//! sim.add_node_with_id(c, World::client(RsmrClient::new(servers, |_| 1, Some(10))));
//! sim.run_for(SimDuration::from_secs(5));
//! assert_eq!(sim.actor(c).unwrap().as_client().unwrap().completed(), 10);
//! ```

use simnet::{Actor, Context, NodeId, Timer};

use crate::client::{AdminActor, OpenLoopClient, RsmrClient};
use crate::messages::RsmrMsg;
use crate::node::RsmrNode;
use crate::state_machine::StateMachine;

/// One node of a composed-machine world.
///
/// Variant sizes are deliberately unboxed: exactly one `World` lives per
/// node, stored once in the simulator's slot table, so the size imbalance
/// between a replica and a client costs nothing per message.
#[allow(clippy::large_enum_variant)]
pub enum World<S: StateMachine> {
    /// A replica.
    Server(RsmrNode<S>),
    /// A closed-loop client.
    Client(RsmrClient<S>),
    /// A paced (open-loop-arrival) client.
    Paced(OpenLoopClient<S>),
    /// The reconfiguration admin.
    Admin(AdminActor<S>),
}

impl<S: StateMachine> World<S> {
    /// Wraps a server.
    pub fn server(node: RsmrNode<S>) -> Self {
        World::Server(node)
    }

    /// Wraps a closed-loop client.
    pub fn client(client: RsmrClient<S>) -> Self {
        World::Client(client)
    }

    /// Wraps a paced client.
    pub fn paced(client: OpenLoopClient<S>) -> Self {
        World::Paced(client)
    }

    /// Wraps an admin.
    pub fn admin(admin: AdminActor<S>) -> Self {
        World::Admin(admin)
    }

    /// The wrapped server, if this node is one.
    pub fn as_server(&self) -> Option<&RsmrNode<S>> {
        match self {
            World::Server(s) => Some(s),
            _ => None,
        }
    }

    /// The wrapped closed-loop client, if this node is one.
    pub fn as_client(&self) -> Option<&RsmrClient<S>> {
        match self {
            World::Client(c) => Some(c),
            _ => None,
        }
    }

    /// The wrapped paced client, if this node is one.
    pub fn as_paced(&self) -> Option<&OpenLoopClient<S>> {
        match self {
            World::Paced(c) => Some(c),
            _ => None,
        }
    }

    /// The wrapped admin, if this node is one.
    pub fn as_admin(&self) -> Option<&AdminActor<S>> {
        match self {
            World::Admin(a) => Some(a),
            _ => None,
        }
    }

    /// Requests completed, for either client flavour (0 otherwise).
    pub fn completed(&self) -> u64 {
        match self {
            World::Client(c) => c.completed(),
            World::Paced(c) => c.completed(),
            _ => 0,
        }
    }
}

impl<S: StateMachine> Actor for World<S> {
    type Msg = RsmrMsg<S::Op, S::Output>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        match self {
            World::Server(a) => a.on_start(ctx),
            World::Client(a) => a.on_start(ctx),
            World::Paced(a) => a.on_start(ctx),
            World::Admin(a) => a.on_start(ctx),
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg) {
        match self {
            World::Server(a) => a.on_message(ctx, from, msg),
            World::Client(a) => a.on_message(ctx, from, msg),
            World::Paced(a) => a.on_message(ctx, from, msg),
            World::Admin(a) => a.on_message(ctx, from, msg),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, timer: Timer) {
        match self {
            World::Server(a) => a.on_timer(ctx, timer),
            World::Client(a) => a.on_timer(ctx, timer),
            World::Paced(a) => a.on_timer(ctx, timer),
            World::Admin(a) => a.on_timer(ctx, timer),
        }
    }
}
