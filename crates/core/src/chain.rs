//! Epochs and the agreed chain of configurations.

use std::collections::BTreeMap;
use std::fmt;

use consensus::StaticConfig;
use simnet::wire::Wire;

/// A configuration epoch. Epoch `e+1`'s configuration is decided by a
/// command committed in epoch `e`, so the chain is itself agreed upon.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Epoch(pub u64);

impl Epoch {
    /// The genesis epoch.
    pub const ZERO: Epoch = Epoch(0);

    /// The successor epoch.
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }

    /// The predecessor epoch, saturating at genesis.
    pub fn prev(self) -> Epoch {
        Epoch(self.0.saturating_sub(1))
    }
}

impl fmt::Debug for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl Wire for Epoch {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(Epoch(u64::decode(buf)?))
    }
    fn encoded_size(&self) -> usize {
        8
    }
}

/// The agreed sequence of configurations, from genesis up to the newest
/// known epoch.
///
/// The chain's key invariant — enforced by [`ConfigChain::append`] — is
/// *contiguity*: configurations exist for every epoch from genesis to the
/// latest, with no gaps, because each link is created by exactly one
/// committed close command in the preceding epoch's log.
///
/// ```
/// use consensus::StaticConfig;
/// use rsmr_core::chain::{ConfigChain, Epoch};
/// use simnet::NodeId;
/// let mut chain = ConfigChain::genesis(StaticConfig::new(vec![NodeId(1), NodeId(2), NodeId(3)]));
/// chain.append(Epoch(1), StaticConfig::new(vec![NodeId(2), NodeId(3), NodeId(4)]));
/// assert_eq!(chain.latest_epoch(), Epoch(1));
/// assert!(chain.config(Epoch(1)).unwrap().contains(NodeId(4)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigChain {
    configs: BTreeMap<Epoch, StaticConfig>,
}

impl ConfigChain {
    /// Starts a chain with the genesis configuration at [`Epoch::ZERO`].
    pub fn genesis(cfg: StaticConfig) -> Self {
        let mut configs = BTreeMap::new();
        configs.insert(Epoch::ZERO, cfg);
        ConfigChain { configs }
    }

    /// Appends the configuration decided for `epoch`.
    ///
    /// Appending an epoch already in the chain with the *same*
    /// configuration is an idempotent no-op (replicas can learn a link
    /// through multiple paths).
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is not the successor of the latest epoch (a gap
    /// would mean the chain agreement was violated), or if the epoch is
    /// known with a *different* configuration.
    pub fn append(&mut self, epoch: Epoch, cfg: StaticConfig) {
        if let Some(existing) = self.configs.get(&epoch) {
            assert_eq!(
                existing, &cfg,
                "configuration chain fork at {epoch}: {existing} vs {cfg}"
            );
            return;
        }
        let latest = self.latest_epoch();
        assert_eq!(
            epoch,
            latest.next(),
            "non-contiguous chain append: latest is {latest}, got {epoch}"
        );
        self.configs.insert(epoch, cfg);
    }

    /// The newest epoch in the chain.
    pub fn latest_epoch(&self) -> Epoch {
        *self
            .configs
            .keys()
            .next_back()
            .expect("chain is never empty")
    }

    /// The configuration of the newest epoch.
    pub fn latest_config(&self) -> &StaticConfig {
        self.configs
            .get(&self.latest_epoch())
            .expect("latest epoch present")
    }

    /// The configuration of `epoch`, if known.
    pub fn config(&self, epoch: Epoch) -> Option<&StaticConfig> {
        self.configs.get(&epoch)
    }

    /// Iterates over `(epoch, configuration)` links in epoch order.
    pub fn iter(&self) -> impl Iterator<Item = (Epoch, &StaticConfig)> {
        self.configs.iter().map(|(&e, c)| (e, c))
    }

    /// Number of links in the chain.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Always false — a chain has at least the genesis link.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Drops links for epochs before `keep_from` (they can no longer be
    /// needed once every replica has moved past them), always retaining the
    /// latest link.
    pub fn compact(&mut self, keep_from: Epoch) {
        let latest = self.latest_epoch();
        self.configs.retain(|&e, _| e >= keep_from || e == latest);
    }
}

impl Wire for ConfigChain {
    fn encode(&self, buf: &mut Vec<u8>) {
        let links: Vec<(Epoch, StaticConfig)> =
            self.configs.iter().map(|(&e, c)| (e, c.clone())).collect();
        links.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let links = Vec::<(Epoch, StaticConfig)>::decode(buf)?;
        if links.is_empty() {
            return None;
        }
        let configs: BTreeMap<Epoch, StaticConfig> = links.into_iter().collect();
        Some(ConfigChain { configs })
    }
    fn encoded_size(&self) -> usize {
        8 + self
            .configs
            .values()
            .map(|c| 8 + c.encoded_size())
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::wire;
    use simnet::NodeId;

    fn cfg(ids: &[u64]) -> StaticConfig {
        StaticConfig::new(ids.iter().map(|&i| NodeId(i)).collect())
    }

    #[test]
    fn genesis_chain_has_one_link() {
        let chain = ConfigChain::genesis(cfg(&[1, 2, 3]));
        assert_eq!(chain.latest_epoch(), Epoch::ZERO);
        assert_eq!(chain.len(), 1);
        assert_eq!(chain.config(Epoch(0)), Some(&cfg(&[1, 2, 3])));
        assert_eq!(chain.config(Epoch(1)), None);
    }

    #[test]
    fn append_extends_and_is_idempotent() {
        let mut chain = ConfigChain::genesis(cfg(&[1, 2, 3]));
        chain.append(Epoch(1), cfg(&[2, 3, 4]));
        chain.append(Epoch(1), cfg(&[2, 3, 4])); // idempotent
        assert_eq!(chain.latest_epoch(), Epoch(1));
        assert_eq!(chain.latest_config(), &cfg(&[2, 3, 4]));
        assert_eq!(chain.len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-contiguous")]
    fn gaps_are_rejected() {
        let mut chain = ConfigChain::genesis(cfg(&[1]));
        chain.append(Epoch(2), cfg(&[2]));
    }

    #[test]
    #[should_panic(expected = "fork")]
    fn forks_are_rejected() {
        let mut chain = ConfigChain::genesis(cfg(&[1]));
        chain.append(Epoch(1), cfg(&[2]));
        chain.append(Epoch(1), cfg(&[3]));
    }

    #[test]
    fn compaction_keeps_recent_links() {
        let mut chain = ConfigChain::genesis(cfg(&[1]));
        for e in 1..=5u64 {
            chain.append(Epoch(e), cfg(&[e, e + 1]));
        }
        chain.compact(Epoch(4));
        assert_eq!(chain.config(Epoch(3)), None);
        assert!(chain.config(Epoch(4)).is_some());
        assert_eq!(chain.latest_epoch(), Epoch(5));
    }

    #[test]
    fn wire_round_trip() {
        let mut chain = ConfigChain::genesis(cfg(&[1, 2, 3]));
        chain.append(Epoch(1), cfg(&[2, 3, 4]));
        let bytes = wire::to_bytes(&chain);
        assert_eq!(wire::from_bytes::<ConfigChain>(&bytes), Some(chain));
        // An empty chain on the wire is malformed.
        let empty = wire::to_bytes(&Vec::<(Epoch, StaticConfig)>::new());
        assert_eq!(wire::from_bytes::<ConfigChain>(&empty), None);
    }

    #[test]
    fn epoch_navigation_and_display() {
        assert_eq!(Epoch(3).next(), Epoch(4));
        assert_eq!(Epoch(3).prev(), Epoch(2));
        assert_eq!(Epoch::ZERO.prev(), Epoch::ZERO);
        assert_eq!(Epoch(7).to_string(), "e7");
    }
}
