//! The replicated command wrapper.

use consensus::Command;
use simnet::wire::Wire;
use simnet::NodeId;

/// What flows through an epoch's static log.
///
/// `O` is the application operation type (the [`crate::StateMachine`]'s
/// input). The composition layer adds two non-application commands:
/// protocol no-ops (hole fillers) and the epoch-closing `Reconfigure`.
#[derive(Clone, Debug, PartialEq)]
pub enum Cmd<O> {
    /// A hole-filling no-op; invisible to the application.
    Noop,
    /// An application command, tagged for exactly-once client sessions.
    App {
        /// The submitting client.
        client: NodeId,
        /// The client's session sequence number.
        seq: u64,
        /// The application operation.
        op: O,
    },
    /// Closes the epoch and names the successor configuration's members.
    Reconfigure {
        /// Member ids of the next epoch's configuration.
        members: Vec<NodeId>,
    },
    /// A leader-side batch of application commands, amortizing one
    /// consensus round over many operations (E1's batching ablation).
    /// Batches never contain `Reconfigure`s, so the close rule is
    /// unaffected.
    Batch {
        /// The batched operations, in arrival order.
        entries: Vec<(NodeId, u64, O)>,
    },
}

impl<O> Cmd<O> {
    /// True for the epoch-closing command.
    pub fn is_reconfigure(&self) -> bool {
        matches!(self, Cmd::Reconfigure { .. })
    }
}

impl<O: Wire> Wire for Cmd<O> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Cmd::Noop => buf.push(0),
            Cmd::App { client, seq, op } => {
                buf.push(1);
                client.encode(buf);
                seq.encode(buf);
                op.encode(buf);
            }
            Cmd::Reconfigure { members } => {
                buf.push(2);
                members.encode(buf);
            }
            Cmd::Batch { entries } => {
                buf.push(3);
                entries.encode(buf);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(Cmd::Noop),
            1 => Some(Cmd::App {
                client: NodeId::decode(buf)?,
                seq: u64::decode(buf)?,
                op: O::decode(buf)?,
            }),
            2 => Some(Cmd::Reconfigure {
                members: Vec::<NodeId>::decode(buf)?,
            }),
            3 => Some(Cmd::Batch {
                entries: Vec::<(NodeId, u64, O)>::decode(buf)?,
            }),
            _ => None,
        }
    }
}

impl<O: Clone + std::fmt::Debug + PartialEq + Wire + 'static> Command for Cmd<O> {
    fn noop() -> Self {
        Cmd::Noop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::wire;

    #[test]
    fn wire_round_trip_all_variants() {
        let cases: Vec<Cmd<u64>> = vec![
            Cmd::Noop,
            Cmd::App {
                client: NodeId(9),
                seq: 3,
                op: 1234,
            },
            Cmd::Reconfigure {
                members: vec![NodeId(1), NodeId(2)],
            },
        ];
        for c in cases {
            let bytes = wire::to_bytes(&c);
            assert_eq!(wire::from_bytes::<Cmd<u64>>(&bytes), Some(c));
        }
    }

    #[test]
    fn bad_discriminant_is_rejected() {
        assert_eq!(wire::from_bytes::<Cmd<u64>>(&[9]), None);
    }

    #[test]
    fn noop_contract() {
        assert!(Cmd::<u64>::noop().is_noop());
        assert!(!Cmd::<u64>::App {
            client: NodeId(1),
            seq: 0,
            op: 0
        }
        .is_noop());
        assert!(Cmd::<u64>::Reconfigure { members: vec![] }.is_reconfigure());
        assert!(!Cmd::<u64>::Noop.is_reconfigure());
    }
}
