//! The replicated command wrapper.

use consensus::Command;
use simnet::wire::Wire;
use simnet::NodeId;

/// One element of a leader-side batch: an application command or an
/// epoch-closing `Reconfigure` embedded at its intra-batch position.
#[derive(Clone, Debug, PartialEq)]
pub enum BatchEntry<O> {
    /// An application command (the fields of [`Cmd::App`]).
    App {
        /// The submitting client.
        client: NodeId,
        /// The client's session sequence number.
        seq: u64,
        /// The application operation.
        op: O,
    },
    /// An epoch close. The apply pump truncates the epoch at this entry's
    /// intra-batch index; entries after it belong to the successor.
    Reconfigure {
        /// Member ids of the next epoch's configuration.
        members: Vec<NodeId>,
    },
}

impl<O: Wire> Wire for BatchEntry<O> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            BatchEntry::App { client, seq, op } => {
                buf.push(0);
                client.encode(buf);
                seq.encode(buf);
                op.encode(buf);
            }
            BatchEntry::Reconfigure { members } => {
                buf.push(1);
                members.encode(buf);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(BatchEntry::App {
                client: NodeId::decode(buf)?,
                seq: u64::decode(buf)?,
                op: O::decode(buf)?,
            }),
            1 => Some(BatchEntry::Reconfigure {
                members: Vec::<NodeId>::decode(buf)?,
            }),
            _ => None,
        }
    }

    fn encoded_size(&self) -> usize {
        1 + match self {
            BatchEntry::App { client, seq, op } => {
                client.encoded_size() + seq.encoded_size() + op.encoded_size()
            }
            BatchEntry::Reconfigure { members } => members.encoded_size(),
        }
    }
}

/// What flows through an epoch's static log.
///
/// `O` is the application operation type (the [`crate::StateMachine`]'s
/// input). The composition layer adds two non-application commands:
/// protocol no-ops (hole fillers) and the epoch-closing `Reconfigure`.
#[derive(Clone, Debug, PartialEq)]
pub enum Cmd<O> {
    /// A hole-filling no-op; invisible to the application.
    Noop,
    /// An application command, tagged for exactly-once client sessions.
    App {
        /// The submitting client.
        client: NodeId,
        /// The client's session sequence number.
        seq: u64,
        /// The application operation.
        op: O,
    },
    /// Closes the epoch and names the successor configuration's members.
    Reconfigure {
        /// Member ids of the next epoch's configuration.
        members: Vec<NodeId>,
    },
    /// A leader-side batch, amortizing one consensus round over many
    /// commands. A batch may carry a `Reconfigure` at any position: the
    /// apply pump closes the epoch at that intra-batch index and
    /// surfaces the batch tail for re-proposal in the successor (the
    /// batch-aware close-point rule). Batches never nest.
    Batch {
        /// The batched commands, in arrival order.
        entries: Vec<BatchEntry<O>>,
    },
}

impl<O> Cmd<O> {
    /// True for the epoch-closing command — including a batch that
    /// carries one at any intra-batch position.
    pub fn is_reconfigure(&self) -> bool {
        match self {
            Cmd::Reconfigure { .. } => true,
            Cmd::Batch { entries } => entries
                .iter()
                .any(|e| matches!(e, BatchEntry::Reconfigure { .. })),
            _ => false,
        }
    }
}

impl<O: Wire> Wire for Cmd<O> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Cmd::Noop => buf.push(0),
            Cmd::App { client, seq, op } => {
                buf.push(1);
                client.encode(buf);
                seq.encode(buf);
                op.encode(buf);
            }
            Cmd::Reconfigure { members } => {
                buf.push(2);
                members.encode(buf);
            }
            Cmd::Batch { entries } => {
                buf.push(3);
                entries.encode(buf);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(Cmd::Noop),
            1 => Some(Cmd::App {
                client: NodeId::decode(buf)?,
                seq: u64::decode(buf)?,
                op: O::decode(buf)?,
            }),
            2 => Some(Cmd::Reconfigure {
                members: Vec::<NodeId>::decode(buf)?,
            }),
            3 => Some(Cmd::Batch {
                entries: Vec::<BatchEntry<O>>::decode(buf)?,
            }),
            _ => None,
        }
    }

    fn encoded_size(&self) -> usize {
        1 + match self {
            Cmd::Noop => 0,
            Cmd::App { client, seq, op } => {
                client.encoded_size() + seq.encoded_size() + op.encoded_size()
            }
            Cmd::Reconfigure { members } => members.encoded_size(),
            Cmd::Batch { entries } => entries.encoded_size(),
        }
    }
}

impl<O: Clone + std::fmt::Debug + PartialEq + Wire + 'static> Command for Cmd<O> {
    fn noop() -> Self {
        Cmd::Noop
    }

    fn supports_batching() -> bool {
        true
    }

    /// Flattens `cmds` into one [`Cmd::Batch`], preserving order. No-ops
    /// are dropped (they carry no effect); nested batches — possible when
    /// the node-level group commit feeds the core accumulator — are
    /// spliced inline so batches never nest on the wire.
    fn batch(cmds: Vec<Self>) -> Option<Self> {
        let mut entries = Vec::with_capacity(cmds.len());
        for cmd in cmds {
            match cmd {
                Cmd::Noop => {}
                Cmd::App { client, seq, op } => entries.push(BatchEntry::App { client, seq, op }),
                Cmd::Reconfigure { members } => entries.push(BatchEntry::Reconfigure { members }),
                Cmd::Batch { entries: inner } => entries.extend(inner),
            }
        }
        Some(Cmd::Batch { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::wire;

    #[test]
    fn wire_round_trip_all_variants() {
        let cases: Vec<Cmd<u64>> = vec![
            Cmd::Noop,
            Cmd::App {
                client: NodeId(9),
                seq: 3,
                op: 1234,
            },
            Cmd::Reconfigure {
                members: vec![NodeId(1), NodeId(2)],
            },
            Cmd::Batch {
                entries: vec![
                    BatchEntry::App {
                        client: NodeId(4),
                        seq: 1,
                        op: 77,
                    },
                    BatchEntry::Reconfigure {
                        members: vec![NodeId(5)],
                    },
                    BatchEntry::App {
                        client: NodeId(4),
                        seq: 2,
                        op: 78,
                    },
                ],
            },
        ];
        for c in cases {
            let bytes = wire::to_bytes(&c);
            assert_eq!(wire::from_bytes::<Cmd<u64>>(&bytes), Some(c));
        }
    }

    #[test]
    fn bad_discriminant_is_rejected() {
        assert_eq!(wire::from_bytes::<Cmd<u64>>(&[9]), None);
    }

    #[test]
    fn noop_contract() {
        assert!(Cmd::<u64>::noop().is_noop());
        assert!(!Cmd::<u64>::App {
            client: NodeId(1),
            seq: 0,
            op: 0
        }
        .is_noop());
        assert!(Cmd::<u64>::Reconfigure { members: vec![] }.is_reconfigure());
        assert!(!Cmd::<u64>::Noop.is_reconfigure());
    }

    #[test]
    fn batch_constructor_flattens_and_preserves_order() {
        let batched = Cmd::<u64>::batch(vec![
            Cmd::App {
                client: NodeId(1),
                seq: 1,
                op: 10,
            },
            Cmd::Noop,
            Cmd::Reconfigure {
                members: vec![NodeId(2)],
            },
            Cmd::Batch {
                entries: vec![BatchEntry::App {
                    client: NodeId(1),
                    seq: 2,
                    op: 11,
                }],
            },
        ])
        .expect("Cmd supports batching");
        assert!(batched.is_reconfigure());
        let Cmd::Batch { entries } = batched else {
            panic!("expected a batch");
        };
        assert_eq!(
            entries,
            vec![
                BatchEntry::App {
                    client: NodeId(1),
                    seq: 1,
                    op: 10
                },
                BatchEntry::Reconfigure {
                    members: vec![NodeId(2)]
                },
                BatchEntry::App {
                    client: NodeId(1),
                    seq: 2,
                    op: 11
                },
            ]
        );
    }

    /// A random batch command — the corpus the fuzzers mangle. Mixed
    /// `App`/`Reconfigure` entries exercise both entry decoders plus the
    /// outer length prefix.
    fn fuzz_batch(rng: &mut simnet::SimRng) -> Cmd<u64> {
        let n = rng.gen_range(0..6usize);
        let entries = (0..n)
            .map(|_| {
                if rng.gen_bool(0.25) {
                    BatchEntry::Reconfigure {
                        members: (0..rng.gen_range(0..4u64)).map(NodeId).collect(),
                    }
                } else {
                    BatchEntry::App {
                        client: NodeId(rng.gen_range(100u64..164)),
                        seq: rng.gen_range(0..u64::MAX),
                        op: rng.gen_range(0..u64::MAX),
                    }
                }
            })
            .collect();
        Cmd::Batch { entries }
    }

    /// Seeded fuzz: every strict prefix of a valid batch encoding decodes
    /// to `None` — never panics, never over-allocates.
    #[test]
    fn fuzz_batch_truncations_are_rejected() {
        let mut rng = simnet::SimRng::seed_from_u64(0xBA7C41);
        for _ in 0..200 {
            let bytes = wire::to_bytes(&fuzz_batch(&mut rng));
            for cut in 0..bytes.len() {
                assert_eq!(
                    wire::from_bytes::<Cmd<u64>>(&bytes[..cut]),
                    None,
                    "accepted truncated batch at {cut}"
                );
            }
        }
    }

    /// Seeded fuzz: single-bit corruption of a batch either still decodes
    /// (a value byte flipped) or cleanly returns `None`.
    #[test]
    fn fuzz_batch_bit_flips_never_panic() {
        let mut rng = simnet::SimRng::seed_from_u64(0xBA7C42);
        for _ in 0..200 {
            let mut bytes = wire::to_bytes(&fuzz_batch(&mut rng));
            let byte = rng.gen_range(0..bytes.len());
            let bit = rng.gen_range(0..8u32);
            bytes[byte] ^= 1 << bit;
            let _ = wire::from_bytes::<Cmd<u64>>(&bytes);
        }
    }

    /// Seeded fuzz: trailing garbage after a valid batch is always
    /// rejected (full-consumption contract).
    #[test]
    fn fuzz_batch_trailing_garbage_is_always_rejected() {
        let mut rng = simnet::SimRng::seed_from_u64(0xBA7C43);
        for _ in 0..200 {
            let mut bytes = wire::to_bytes(&fuzz_batch(&mut rng));
            let extra = rng.gen_range(1..16usize);
            for _ in 0..extra {
                bytes.push(rng.gen_range(0..u64::MAX) as u8);
            }
            assert_eq!(wire::from_bytes::<Cmd<u64>>(&bytes), None);
        }
    }

    /// Seeded fuzz: arbitrary byte soup never panics the batch decoder.
    #[test]
    fn fuzz_batch_random_bytes_never_panic() {
        let mut rng = simnet::SimRng::seed_from_u64(0xBA7C44);
        for _ in 0..500 {
            let len = rng.gen_range(0..96usize);
            let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..u64::MAX) as u8).collect();
            let _ = wire::from_bytes::<Cmd<u64>>(&bytes);
        }
    }

    #[test]
    fn batch_without_reconfigure_is_not_a_close() {
        let b = Cmd::<u64>::Batch {
            entries: vec![BatchEntry::App {
                client: NodeId(1),
                seq: 1,
                op: 10,
            }],
        };
        assert!(!b.is_reconfigure());
    }
}
