//! Exactly-once client sessions.
//!
//! Clients tag every operation with a per-client sequence number.
//! Retransmissions — and re-proposals across a reconfiguration, where a
//! command discarded from a closing epoch's tail is resubmitted to the
//! successor — may cause the same `(client, seq)` to commit more than once
//! in the composed log. The session table makes application effects
//! exactly-once: a duplicate is *not* re-applied, and the cached output is
//! returned instead.

use std::collections::BTreeMap;

use simnet::wire::Wire;
use simnet::NodeId;

/// What [`SessionTable::check`] says about an incoming `(client, seq)`.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionDecision<R> {
    /// Never seen: apply it and record the output.
    Fresh,
    /// The most recent command from this client: return the cached output.
    Duplicate(R),
    /// Older than the most recent command: the client has already moved on;
    /// nothing to apply and no meaningful output to return.
    Stale,
}

/// Per-client deduplication state: the highest applied sequence number and
/// its output.
///
/// The table is part of the replicated state: it is applied
/// deterministically on every replica, included in [`crate::BaseState`]
/// snapshots, and therefore survives reconfigurations and crash recovery.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct SessionTable<R> {
    entries: BTreeMap<NodeId, (u64, R)>,
}

impl<R: Clone> SessionTable<R> {
    /// Creates an empty table.
    pub fn new() -> Self {
        SessionTable {
            entries: BTreeMap::new(),
        }
    }

    /// Classifies `(client, seq)` against the table.
    pub fn check(&self, client: NodeId, seq: u64) -> SessionDecision<R> {
        match self.entries.get(&client) {
            None => SessionDecision::Fresh,
            Some((last, output)) => {
                if seq > *last {
                    SessionDecision::Fresh
                } else if seq == *last {
                    SessionDecision::Duplicate(output.clone())
                } else {
                    SessionDecision::Stale
                }
            }
        }
    }

    /// Records the output of a freshly applied `(client, seq)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `seq` does not advance the client's
    /// session — callers must [`SessionTable::check`] first.
    pub fn record(&mut self, client: NodeId, seq: u64, output: R) {
        if let Some((last, _)) = self.entries.get(&client) {
            debug_assert!(seq > *last, "session went backwards for {client}");
        }
        self.entries.insert(client, (seq, output));
    }

    /// Number of known clients.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no client has been seen.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The last applied sequence number for `client`, if any.
    pub fn last_seq(&self, client: NodeId) -> Option<u64> {
        self.entries.get(&client).map(|(s, _)| *s)
    }
}

impl<R: Wire + Clone> Wire for SessionTable<R> {
    fn encode(&self, buf: &mut Vec<u8>) {
        let entries: Vec<(NodeId, (u64, R))> = self
            .entries
            .iter()
            .map(|(&c, (s, r))| (c, (*s, r.clone())))
            .collect();
        entries.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let entries = Vec::<(NodeId, (u64, R))>::decode(buf)?;
        Some(SessionTable {
            entries: entries.into_iter().collect(),
        })
    }
    fn encoded_size(&self) -> usize {
        8 + self
            .entries
            .values()
            .map(|(_, r)| 16 + r.encoded_size())
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::wire;

    #[test]
    fn fresh_then_duplicate_then_stale() {
        let mut t: SessionTable<u64> = SessionTable::new();
        let c = NodeId(1);
        assert_eq!(t.check(c, 0), SessionDecision::Fresh);
        t.record(c, 0, 100);
        assert_eq!(t.check(c, 0), SessionDecision::Duplicate(100));
        assert_eq!(t.check(c, 1), SessionDecision::Fresh);
        t.record(c, 1, 200);
        assert_eq!(t.check(c, 0), SessionDecision::Stale);
        assert_eq!(t.check(c, 1), SessionDecision::Duplicate(200));
        assert_eq!(t.last_seq(c), Some(1));
    }

    #[test]
    fn clients_are_independent() {
        let mut t: SessionTable<u64> = SessionTable::new();
        t.record(NodeId(1), 5, 1);
        assert_eq!(t.check(NodeId(2), 0), SessionDecision::Fresh);
        assert_eq!(t.len(), 1);
        t.record(NodeId(2), 0, 2);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn skipped_sequence_numbers_are_fine() {
        // A client may renumber after recovery; only monotonicity matters.
        let mut t: SessionTable<u64> = SessionTable::new();
        t.record(NodeId(1), 0, 1);
        assert_eq!(t.check(NodeId(1), 10), SessionDecision::Fresh);
        t.record(NodeId(1), 10, 2);
        assert_eq!(t.check(NodeId(1), 5), SessionDecision::Stale);
    }

    #[test]
    fn wire_round_trip() {
        let mut t: SessionTable<u64> = SessionTable::new();
        t.record(NodeId(1), 3, 30);
        t.record(NodeId(2), 7, 70);
        let bytes = wire::to_bytes(&t);
        assert_eq!(wire::from_bytes::<SessionTable<u64>>(&bytes), Some(t));
    }

    #[test]
    fn empty_table_round_trips() {
        let t: SessionTable<u64> = SessionTable::new();
        assert!(t.is_empty());
        let bytes = wire::to_bytes(&t);
        assert_eq!(wire::from_bytes::<SessionTable<u64>>(&bytes), Some(t));
    }
}
