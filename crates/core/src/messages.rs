//! Wire messages of the composed reconfigurable machine.

use consensus::PaxosMsg;
use simnet::wire::Wire;
use simnet::{Message, NodeId};

use crate::chain::Epoch;
use crate::command::Cmd;
use crate::transfer::TransferManifest;

/// Messages of a reconfigurable-SMR world.
///
/// `O` is the application operation type, `R` the output type. Replica ↔
/// replica protocol traffic is the building block's own [`PaxosMsg`],
/// tagged with the epoch whose instance it belongs to — the composition
/// layer is a pure router for it.
#[derive(Clone, Debug)]
pub enum RsmrMsg<O, R> {
    /// Building-block traffic for one epoch's instance.
    Paxos {
        /// The instance this message belongs to.
        epoch: Epoch,
        /// The building block's own message.
        inner: PaxosMsg<Cmd<O>>,
    },
    /// Client → replica: execute `op` under the client's session.
    Request {
        /// Per-client session sequence number.
        seq: u64,
        /// The application operation.
        op: O,
    },
    /// Replica → client: `op` executed with this output.
    Reply {
        /// Echo of the request sequence number.
        seq: u64,
        /// The operation's output.
        output: R,
        /// The current configuration's members, so clients track
        /// reconfigurations.
        members: Vec<NodeId>,
    },
    /// Replica → client: submit to `leader` instead.
    Redirect {
        /// Echo of the request sequence number.
        seq: u64,
        /// Best-known leader, if any.
        leader: Option<NodeId>,
        /// Current configuration members.
        members: Vec<NodeId>,
    },
    /// Admin → replica: reconfigure to exactly this member set.
    Reconfigure {
        /// The successor configuration's members.
        members: Vec<NodeId>,
    },
    /// Replica → admin: outcome of a reconfiguration request.
    ReconfigureReply {
        /// On success, the new epoch now serving; on refusal, the epoch
        /// that refused.
        epoch: Epoch,
        /// True once the new configuration is live.
        ok: bool,
        /// On refusal, where to retry.
        leader: Option<NodeId>,
    },
    /// Finalized member of epoch `epoch - 1` → member of `epoch`: the
    /// successor configuration exists; the sender can serve its base state.
    Activate {
        /// The successor epoch.
        epoch: Epoch,
        /// Its member set.
        members: Vec<NodeId>,
    },
    /// Joining member → finalized member: send me the base state anchoring
    /// `epoch`.
    TransferRequest {
        /// The epoch whose base is requested.
        epoch: Epoch,
    },
    /// Response to [`RsmrMsg::TransferRequest`]. `base` is `None` when the
    /// responder has not finalized the predecessor epoch yet (retry later).
    TransferReply {
        /// Echo of the requested epoch.
        epoch: Epoch,
        /// The encoded [`crate::BaseState`], if available.
        base: Option<Vec<u8>>,
    },
    /// Acknowledges an installed base state. Unused by the speculative
    /// composition (which pulls); the stop-the-world baseline pushes bases
    /// and blocks on these acks.
    TransferAck {
        /// The epoch whose base was installed.
        epoch: Epoch,
    },
    /// A leader that is *removed* by the epoch it just closed asks a
    /// member of the successor configuration to campaign immediately —
    /// extends the speculative handoff to leader-removal reconfigurations.
    Nominate {
        /// The successor epoch to campaign in.
        epoch: Epoch,
    },
    /// Joining member → finalized member: describe the base state
    /// anchoring `epoch`. A rejoiner with usable local state advertises
    /// its delta watermark in `since`; fresh joiners send `None`.
    ManifestRequest {
        /// The epoch whose base is requested.
        epoch: Epoch,
        /// The rejoiner's delta watermark, if it holds restorable state.
        since: Option<u64>,
    },
    /// Response to [`RsmrMsg::ManifestRequest`]. `manifest` is `None`
    /// when the responder has not finalized the predecessor epoch yet
    /// (retry later). A `since` the donor cannot serve (tombstones
    /// pruned past it) degrades to a `Full` manifest.
    ManifestReply {
        /// Echo of the requested epoch.
        epoch: Epoch,
        /// The transfer manifest, if the donor holds the base.
        manifest: Option<TransferManifest>,
    },
    /// Joining member → donor: send chunk `index` of the manifest for
    /// `epoch`.
    ChunkRequest {
        /// The epoch being transferred.
        epoch: Epoch,
        /// Zero-based chunk index within the manifest.
        index: u64,
    },
    /// Response to [`RsmrMsg::ChunkRequest`]. `bytes` is `None` when the
    /// donor no longer holds the base for `epoch` (the joiner rotates
    /// donors and re-requests the manifest).
    ChunkReply {
        /// The epoch being transferred.
        epoch: Epoch,
        /// Echo of the requested chunk index.
        index: u64,
        /// The chunk payload, shared so retries never copy.
        bytes: Option<std::sync::Arc<Vec<u8>>>,
    },
}

impl<O, R> Message for RsmrMsg<O, R>
where
    O: Wire + Clone + std::fmt::Debug + 'static,
    R: Clone + std::fmt::Debug + 'static,
{
    fn label(&self) -> &'static str {
        match self {
            RsmrMsg::Paxos { inner, .. } => inner.label(),
            RsmrMsg::Request { .. } => "rsmr.request",
            RsmrMsg::Reply { .. } => "rsmr.reply",
            RsmrMsg::Redirect { .. } => "rsmr.redirect",
            RsmrMsg::Reconfigure { .. } => "rsmr.reconfigure",
            RsmrMsg::ReconfigureReply { .. } => "rsmr.reconfigure_reply",
            RsmrMsg::Activate { .. } => "rsmr.activate",
            RsmrMsg::TransferRequest { .. } => "rsmr.transfer_req",
            RsmrMsg::TransferReply { .. } => "rsmr.transfer_reply",
            RsmrMsg::TransferAck { .. } => "rsmr.transfer_ack",
            RsmrMsg::Nominate { .. } => "rsmr.nominate",
            RsmrMsg::ManifestRequest { .. } => "rsmr.manifest_req",
            RsmrMsg::ManifestReply { .. } => "rsmr.manifest_reply",
            RsmrMsg::ChunkRequest { .. } => "rsmr.chunk_req",
            RsmrMsg::ChunkReply { .. } => "rsmr.chunk_reply",
        }
    }

    fn size_hint(&self) -> usize {
        match self {
            RsmrMsg::Paxos { inner, .. } => 8 + inner.size_hint(),
            RsmrMsg::Request { .. } => 48,
            RsmrMsg::Reply { members, .. } => 40 + members.len() * 8,
            RsmrMsg::Redirect { members, .. } => 32 + members.len() * 8,
            RsmrMsg::Reconfigure { members } => 16 + members.len() * 8,
            RsmrMsg::ReconfigureReply { .. } => 32,
            RsmrMsg::Activate { members, .. } => 16 + members.len() * 8,
            RsmrMsg::TransferRequest { .. } => 16,
            RsmrMsg::TransferReply { base, .. } => 16 + base.as_ref().map(Vec::len).unwrap_or(0),
            RsmrMsg::TransferAck { .. } => 16,
            RsmrMsg::Nominate { .. } => 16,
            RsmrMsg::ManifestRequest { .. } => 24,
            RsmrMsg::ManifestReply { manifest, .. } => {
                16 + manifest
                    .as_ref()
                    .map_or(0, simnet::wire::Wire::encoded_size)
            }
            RsmrMsg::ChunkRequest { .. } => 24,
            RsmrMsg::ChunkReply { bytes, .. } => 24 + bytes.as_ref().map_or(0, |b| b.len()),
        }
    }
}

/// Binary codec for shipping composed-machine messages over a real
/// transport: a one-byte variant tag, then the fields in declaration order.
/// Requires the operation and output types to be [`Wire`] themselves
/// (every state machine in this workspace already is).
impl<O: Wire, R: Wire> Wire for RsmrMsg<O, R> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            RsmrMsg::Paxos { epoch, inner } => {
                buf.push(0);
                epoch.encode(buf);
                inner.encode(buf);
            }
            RsmrMsg::Request { seq, op } => {
                buf.push(1);
                seq.encode(buf);
                op.encode(buf);
            }
            RsmrMsg::Reply {
                seq,
                output,
                members,
            } => {
                buf.push(2);
                seq.encode(buf);
                output.encode(buf);
                members.encode(buf);
            }
            RsmrMsg::Redirect {
                seq,
                leader,
                members,
            } => {
                buf.push(3);
                seq.encode(buf);
                leader.encode(buf);
                members.encode(buf);
            }
            RsmrMsg::Reconfigure { members } => {
                buf.push(4);
                members.encode(buf);
            }
            RsmrMsg::ReconfigureReply { epoch, ok, leader } => {
                buf.push(5);
                epoch.encode(buf);
                ok.encode(buf);
                leader.encode(buf);
            }
            RsmrMsg::Activate { epoch, members } => {
                buf.push(6);
                epoch.encode(buf);
                members.encode(buf);
            }
            RsmrMsg::TransferRequest { epoch } => {
                buf.push(7);
                epoch.encode(buf);
            }
            RsmrMsg::TransferReply { epoch, base } => {
                buf.push(8);
                epoch.encode(buf);
                base.encode(buf);
            }
            RsmrMsg::TransferAck { epoch } => {
                buf.push(9);
                epoch.encode(buf);
            }
            RsmrMsg::Nominate { epoch } => {
                buf.push(10);
                epoch.encode(buf);
            }
            RsmrMsg::ManifestRequest { epoch, since } => {
                buf.push(11);
                epoch.encode(buf);
                since.encode(buf);
            }
            RsmrMsg::ManifestReply { epoch, manifest } => {
                buf.push(12);
                epoch.encode(buf);
                manifest.encode(buf);
            }
            RsmrMsg::ChunkRequest { epoch, index } => {
                buf.push(13);
                epoch.encode(buf);
                index.encode(buf);
            }
            RsmrMsg::ChunkReply {
                epoch,
                index,
                bytes,
            } => {
                buf.push(14);
                epoch.encode(buf);
                index.encode(buf);
                bytes.encode(buf);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(match u8::decode(buf)? {
            0 => RsmrMsg::Paxos {
                epoch: Epoch::decode(buf)?,
                inner: PaxosMsg::decode(buf)?,
            },
            1 => RsmrMsg::Request {
                seq: u64::decode(buf)?,
                op: O::decode(buf)?,
            },
            2 => RsmrMsg::Reply {
                seq: u64::decode(buf)?,
                output: R::decode(buf)?,
                members: Vec::decode(buf)?,
            },
            3 => RsmrMsg::Redirect {
                seq: u64::decode(buf)?,
                leader: Option::decode(buf)?,
                members: Vec::decode(buf)?,
            },
            4 => RsmrMsg::Reconfigure {
                members: Vec::decode(buf)?,
            },
            5 => RsmrMsg::ReconfigureReply {
                epoch: Epoch::decode(buf)?,
                ok: bool::decode(buf)?,
                leader: Option::decode(buf)?,
            },
            6 => RsmrMsg::Activate {
                epoch: Epoch::decode(buf)?,
                members: Vec::decode(buf)?,
            },
            7 => RsmrMsg::TransferRequest {
                epoch: Epoch::decode(buf)?,
            },
            8 => RsmrMsg::TransferReply {
                epoch: Epoch::decode(buf)?,
                base: Option::decode(buf)?,
            },
            9 => RsmrMsg::TransferAck {
                epoch: Epoch::decode(buf)?,
            },
            10 => RsmrMsg::Nominate {
                epoch: Epoch::decode(buf)?,
            },
            11 => RsmrMsg::ManifestRequest {
                epoch: Epoch::decode(buf)?,
                since: Option::decode(buf)?,
            },
            12 => RsmrMsg::ManifestReply {
                epoch: Epoch::decode(buf)?,
                manifest: Option::decode(buf)?,
            },
            13 => RsmrMsg::ChunkRequest {
                epoch: Epoch::decode(buf)?,
                index: u64::decode(buf)?,
            },
            14 => RsmrMsg::ChunkReply {
                epoch: Epoch::decode(buf)?,
                index: u64::decode(buf)?,
                bytes: Option::decode(buf)?,
            },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus::Slot;

    #[test]
    fn labels_cover_every_variant() {
        let msgs: Vec<RsmrMsg<u64, u64>> = vec![
            RsmrMsg::Paxos {
                epoch: Epoch(0),
                inner: PaxosMsg::CatchupRequest { from_slot: Slot(0) },
            },
            RsmrMsg::Request { seq: 0, op: 0 },
            RsmrMsg::Reply {
                seq: 0,
                output: 0,
                members: vec![],
            },
            RsmrMsg::Redirect {
                seq: 0,
                leader: None,
                members: vec![],
            },
            RsmrMsg::Reconfigure { members: vec![] },
            RsmrMsg::ReconfigureReply {
                epoch: Epoch(0),
                ok: true,
                leader: None,
            },
            RsmrMsg::Activate {
                epoch: Epoch(1),
                members: vec![],
            },
            RsmrMsg::TransferRequest { epoch: Epoch(1) },
            RsmrMsg::TransferReply {
                epoch: Epoch(1),
                base: None,
            },
            RsmrMsg::TransferAck { epoch: Epoch(1) },
            RsmrMsg::Nominate { epoch: Epoch(1) },
            RsmrMsg::ManifestRequest {
                epoch: Epoch(1),
                since: None,
            },
            RsmrMsg::ManifestReply {
                epoch: Epoch(1),
                manifest: None,
            },
            RsmrMsg::ChunkRequest {
                epoch: Epoch(1),
                index: 0,
            },
            RsmrMsg::ChunkReply {
                epoch: Epoch(1),
                index: 0,
                bytes: None,
            },
        ];
        let mut labels: Vec<_> = msgs.iter().map(|m| m.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), msgs.len());
    }

    #[test]
    fn wire_codec_round_trips_every_variant() {
        use simnet::wire::{from_bytes, to_bytes};
        use std::sync::Arc;
        let msgs: Vec<RsmrMsg<u64, u64>> = vec![
            RsmrMsg::Paxos {
                epoch: Epoch(2),
                inner: PaxosMsg::Accept {
                    ballot: consensus::Ballot::new(1, NodeId(3)),
                    slot: Slot(4),
                    cmd: Arc::new(Cmd::App {
                        client: NodeId(100),
                        seq: 7,
                        op: 99,
                    }),
                },
            },
            RsmrMsg::Request { seq: 3, op: 17 },
            RsmrMsg::Reply {
                seq: 3,
                output: 21,
                members: vec![NodeId(0), NodeId(1)],
            },
            RsmrMsg::Redirect {
                seq: 4,
                leader: Some(NodeId(2)),
                members: vec![NodeId(0)],
            },
            RsmrMsg::Reconfigure {
                members: vec![NodeId(1), NodeId(2), NodeId(3)],
            },
            RsmrMsg::ReconfigureReply {
                epoch: Epoch(5),
                ok: false,
                leader: Some(NodeId(1)),
            },
            RsmrMsg::Activate {
                epoch: Epoch(6),
                members: vec![NodeId(4)],
            },
            RsmrMsg::TransferRequest { epoch: Epoch(6) },
            RsmrMsg::TransferReply {
                epoch: Epoch(6),
                base: Some(vec![1, 2, 3]),
            },
            RsmrMsg::TransferAck { epoch: Epoch(6) },
            RsmrMsg::Nominate { epoch: Epoch(7) },
            RsmrMsg::ManifestRequest {
                epoch: Epoch(8),
                since: Some(42),
            },
            RsmrMsg::ManifestReply {
                epoch: Epoch(8),
                manifest: Some(crate::transfer::TransferManifest {
                    epoch: Epoch(8),
                    mode: crate::transfer::TransferMode::Delta { since: 42 },
                    header: vec![1, 2, 3],
                    chunks: vec![crate::transfer::ChunkMeta { len: 3, crc: 7 }],
                }),
            },
            RsmrMsg::ChunkRequest {
                epoch: Epoch(8),
                index: 2,
            },
            RsmrMsg::ChunkReply {
                epoch: Epoch(8),
                index: 2,
                bytes: Some(Arc::new(vec![9, 9, 9])),
            },
        ];
        for msg in msgs {
            let bytes = to_bytes(&msg);
            let back: RsmrMsg<u64, u64> = from_bytes(&bytes).expect("decodes");
            // RsmrMsg has no PartialEq (outputs need not); Debug is total
            // on these payloads, so the formatted forms must match.
            assert_eq!(format!("{back:?}"), format!("{msg:?}"));
        }
        assert!(from_bytes::<RsmrMsg<u64, u64>>(&[200]).is_none());
        // The grouped envelope composes with the codec.
        let grouped = simnet::Grouped {
            group: simnet::GroupId(3),
            inner: RsmrMsg::<u64, u64>::Request { seq: 1, op: 2 },
        };
        let bytes = to_bytes(&grouped);
        let back: simnet::Grouped<RsmrMsg<u64, u64>> = from_bytes(&bytes).expect("decodes");
        assert_eq!(back.group, simnet::GroupId(3));
        assert_eq!(format!("{:?}", back.inner), format!("{:?}", grouped.inner));
    }

    #[test]
    fn transfer_size_reflects_payload() {
        let small: RsmrMsg<u64, u64> = RsmrMsg::TransferReply {
            epoch: Epoch(1),
            base: None,
        };
        let big: RsmrMsg<u64, u64> = RsmrMsg::TransferReply {
            epoch: Epoch(1),
            base: Some(vec![0; 4096]),
        };
        assert!(big.size_hint() >= small.size_hint() + 4096);
    }

    #[test]
    fn chunk_and_manifest_sizes_reflect_payload() {
        use std::sync::Arc;
        let small: RsmrMsg<u64, u64> = RsmrMsg::ChunkReply {
            epoch: Epoch(1),
            index: 0,
            bytes: None,
        };
        let big: RsmrMsg<u64, u64> = RsmrMsg::ChunkReply {
            epoch: Epoch(1),
            index: 0,
            bytes: Some(Arc::new(vec![0; 8192])),
        };
        assert!(big.size_hint() >= small.size_hint() + 8192);
        let manifest = crate::transfer::TransferManifest {
            epoch: Epoch(1),
            mode: crate::transfer::TransferMode::Full { pages: 4 },
            header: vec![0; 256],
            chunks: vec![crate::transfer::ChunkMeta { len: 10, crc: 1 }; 100],
        };
        let reply: RsmrMsg<u64, u64> = RsmrMsg::ManifestReply {
            epoch: Epoch(1),
            manifest: Some(manifest),
        };
        // The manifest cost scales with its chunk table and header.
        assert!(reply.size_hint() >= 256 + 100 * 12);
    }
}
