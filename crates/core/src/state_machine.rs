//! The application contract: a deterministic state machine.

use std::fmt;
use std::sync::Arc;

use simnet::wire::{self, Wire};

/// A deterministic application replicated by the composed machine.
///
/// Determinism is the only semantic requirement: applying the same sequence
/// of operations to the same starting state must produce the same outputs
/// and final state on every replica. Snapshots power state transfer to
/// joining members and crash recovery.
pub trait StateMachine: Sized + 'static {
    /// The operation type clients submit.
    type Op: Clone + fmt::Debug + PartialEq + Wire + 'static;
    /// The output returned to the client for each operation.
    type Output: Clone + fmt::Debug + PartialEq + Wire + 'static;

    /// Applies one operation, mutating the state and producing the output.
    fn apply(&mut self, op: &Self::Op) -> Self::Output;

    /// Answers `op` **without mutating state**, when `op` is a pure read.
    /// Returns `None` for mutating operations (the default), which forces
    /// them through the replicated log. Implementing this for read
    /// operations enables the composition's lease-based local reads.
    fn query(&self, _op: &Self::Op) -> Option<Self::Output> {
        None
    }

    /// Serializes the full state.
    fn snapshot(&self) -> Vec<u8>;

    /// Rebuilds the state from a snapshot. Returns `None` on malformed
    /// input.
    fn restore(bytes: &[u8]) -> Option<Self>;

    // --- Paged snapshots (chunked state transfer + incremental seal) ---
    //
    // State machines that partition their state expose it as a fixed set
    // of independently encoded pages. The composition uses them to stream
    // state transfer in bounded chunks, to re-encode only dirty pages at
    // epoch seal, and to persist only changed pages. The defaults present
    // the whole state as a single page, so small state machines (and the
    // monolithic stop-the-world control) need not implement anything.

    /// Number of snapshot pages (constant for a given state machine type).
    fn snapshot_pages(&self) -> usize {
        1
    }

    /// Encodes page `page` (`0..snapshot_pages()`). The concatenation of
    /// all pages, restored via [`StateMachine::restore_pages`], must
    /// reproduce the exact state.
    fn snapshot_page(&self, page: usize) -> Vec<u8> {
        debug_assert_eq!(page, 0, "default state machines have one page");
        self.snapshot()
    }

    /// A version counter for page `page` that changes whenever the page's
    /// content changes (encoding a page is a pure function of its
    /// version). `None` means "unknown": callers must treat the page as
    /// always dirty. Powers the donor's rolling snapshot cursor.
    fn page_version(&self, _page: usize) -> Option<u64> {
        None
    }

    /// Rebuilds the state from all pages in index order. Returns `None`
    /// on malformed input or a wrong page count.
    fn restore_pages(pages: &[Arc<Vec<u8>>]) -> Option<Self> {
        match pages {
            [single] => Self::restore(single),
            _ => None,
        }
    }

    // --- Delta sync (rejoiners fetch only what changed) ---

    /// The version stamp up to which this state is complete, advertised
    /// by a restarted member when it requests state transfer. `None`
    /// opts out of delta sync (the default): rejoiners always fetch the
    /// full snapshot.
    fn delta_watermark(&self) -> Option<u64> {
        None
    }

    /// Builds delta chunks from a donor's encoded snapshot `pages`
    /// covering everything that changed after `since`, each chunk
    /// roughly `chunk_target` bytes. Returns `None` when a delta cannot
    /// be constructed (malformed pages, watermark too old, or delta sync
    /// unsupported) — the caller then falls back to a full transfer.
    /// Must be deterministic: every replica holding the same pages must
    /// produce byte-identical chunks, so a rotated donor's chunks still
    /// match the original manifest.
    fn delta_from_pages(
        _pages: &[Arc<Vec<u8>>],
        _since: u64,
        _chunk_target: usize,
    ) -> Option<Vec<Vec<u8>>> {
        None
    }

    /// Applies delta chunks (in manifest order) on top of the current
    /// state, yielding exactly the state the donor's pages encode.
    /// Returns `false` (leaving the state unusable only if partially
    /// applied — implementations must validate all chunks before
    /// mutating) when the chunks are malformed; the caller then falls
    /// back to a full transfer.
    fn apply_delta(&mut self, _chunks: &[Vec<u8>]) -> bool {
        false
    }
}

/// A minimal state machine for tests and benchmarks: a counter supporting
/// add / read, whose output is the post-operation value.
///
/// ```
/// use rsmr_core::{CounterSm, StateMachine};
/// let mut sm = CounterSm::default();
/// assert_eq!(sm.apply(&5), 5);
/// assert_eq!(sm.apply(&0), 5); // add 0 = read
/// let snap = sm.snapshot();
/// let restored = CounterSm::restore(&snap).unwrap();
/// assert_eq!(restored.value(), 5);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterSm {
    value: u64,
    applied: u64,
}

impl CounterSm {
    /// The counter's current value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Number of operations applied since genesis or restore.
    pub fn applied_ops(&self) -> u64 {
        self.applied
    }
}

impl StateMachine for CounterSm {
    type Op = u64; // amount to add; 0 is a pure read
    type Output = u64; // the value after applying

    fn apply(&mut self, op: &u64) -> u64 {
        self.value = self.value.wrapping_add(*op);
        self.applied += 1;
        self.value
    }

    fn query(&self, op: &u64) -> Option<u64> {
        (*op == 0).then_some(self.value)
    }

    fn snapshot(&self) -> Vec<u8> {
        wire::to_bytes(&(self.value, self.applied))
    }

    fn restore(bytes: &[u8]) -> Option<Self> {
        let (value, applied) = wire::from_bytes::<(u64, u64)>(bytes)?;
        Some(CounterSm { value, applied })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_deterministic() {
        let ops = [3u64, 0, 7, 1];
        let run = || {
            let mut sm = CounterSm::default();
            ops.iter().map(|op| sm.apply(op)).collect::<Vec<u64>>()
        };
        assert_eq!(run(), run());
        assert_eq!(run(), vec![3, 3, 10, 11]);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut sm = CounterSm::default();
        sm.apply(&10);
        sm.apply(&20);
        let snap = sm.snapshot();
        let restored = CounterSm::restore(&snap).unwrap();
        assert_eq!(restored, sm);
        assert_eq!(restored.applied_ops(), 2);
    }

    #[test]
    fn malformed_snapshot_is_rejected() {
        assert_eq!(CounterSm::restore(&[1, 2, 3]), None);
    }
}
