//! The application contract: a deterministic state machine.

use std::fmt;

use simnet::wire::{self, Wire};

/// A deterministic application replicated by the composed machine.
///
/// Determinism is the only semantic requirement: applying the same sequence
/// of operations to the same starting state must produce the same outputs
/// and final state on every replica. Snapshots power state transfer to
/// joining members and crash recovery.
pub trait StateMachine: Sized + 'static {
    /// The operation type clients submit.
    type Op: Clone + fmt::Debug + PartialEq + Wire + 'static;
    /// The output returned to the client for each operation.
    type Output: Clone + fmt::Debug + PartialEq + Wire + 'static;

    /// Applies one operation, mutating the state and producing the output.
    fn apply(&mut self, op: &Self::Op) -> Self::Output;

    /// Answers `op` **without mutating state**, when `op` is a pure read.
    /// Returns `None` for mutating operations (the default), which forces
    /// them through the replicated log. Implementing this for read
    /// operations enables the composition's lease-based local reads.
    fn query(&self, _op: &Self::Op) -> Option<Self::Output> {
        None
    }

    /// Serializes the full state.
    fn snapshot(&self) -> Vec<u8>;

    /// Rebuilds the state from a snapshot. Returns `None` on malformed
    /// input.
    fn restore(bytes: &[u8]) -> Option<Self>;
}

/// A minimal state machine for tests and benchmarks: a counter supporting
/// add / read, whose output is the post-operation value.
///
/// ```
/// use rsmr_core::{CounterSm, StateMachine};
/// let mut sm = CounterSm::default();
/// assert_eq!(sm.apply(&5), 5);
/// assert_eq!(sm.apply(&0), 5); // add 0 = read
/// let snap = sm.snapshot();
/// let restored = CounterSm::restore(&snap).unwrap();
/// assert_eq!(restored.value(), 5);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterSm {
    value: u64,
    applied: u64,
}

impl CounterSm {
    /// The counter's current value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Number of operations applied since genesis or restore.
    pub fn applied_ops(&self) -> u64 {
        self.applied
    }
}

impl StateMachine for CounterSm {
    type Op = u64; // amount to add; 0 is a pure read
    type Output = u64; // the value after applying

    fn apply(&mut self, op: &u64) -> u64 {
        self.value = self.value.wrapping_add(*op);
        self.applied += 1;
        self.value
    }

    fn query(&self, op: &u64) -> Option<u64> {
        (*op == 0).then_some(self.value)
    }

    fn snapshot(&self) -> Vec<u8> {
        wire::to_bytes(&(self.value, self.applied))
    }

    fn restore(bytes: &[u8]) -> Option<Self> {
        let (value, applied) = wire::from_bytes::<(u64, u64)>(bytes)?;
        Some(CounterSm { value, applied })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_deterministic() {
        let ops = [3u64, 0, 7, 1];
        let run = || {
            let mut sm = CounterSm::default();
            ops.iter().map(|op| sm.apply(op)).collect::<Vec<u64>>()
        };
        assert_eq!(run(), run());
        assert_eq!(run(), vec![3, 3, 10, 11]);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut sm = CounterSm::default();
        sm.apply(&10);
        sm.apply(&20);
        let snap = sm.snapshot();
        let restored = CounterSm::restore(&snap).unwrap();
        assert_eq!(restored, sm);
        assert_eq!(restored.applied_ops(), 2);
    }

    #[test]
    fn malformed_snapshot_is_rejected() {
        assert_eq!(CounterSm::restore(&[1, 2, 3]), None);
    }
}
