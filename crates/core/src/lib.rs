//! # rsmr-core — reconfigurable SMR from non-reconfigurable building blocks
//!
//! This crate is the reproduction's primary contribution: a
//! **reconfigurable** replicated state machine assembled from the *static*
//! Multi-Paxos instances of the `consensus` crate, following the PODC 2012
//! brief announcement by Bortnikov, Chockler, Perelman, Roytman, Shachor and
//! Shnayderman.
//!
//! ## The construction
//!
//! * The machine's life is divided into **epochs**. Epoch `e` runs one
//!   static SMR instance over a fixed configuration; the instance knows
//!   nothing about reconfiguration.
//! * A [`Cmd::Reconfigure`] command committed in epoch `e`'s log **closes**
//!   the epoch: by definition, epoch `e`'s externally visible history is the
//!   log prefix up to and including the *first* `Reconfigure` in slot order.
//!   Anything the static block commits after that point is
//!   deterministically discarded by every replica — this *reinterpretation*
//!   of the block's output is what lets an unmodified, non-stoppable block
//!   be composed safely.
//! * The successor instance for epoch `e+1` starts **speculatively**: the
//!   moment a replica processes the committed close command it instantiates
//!   the next block, hands leadership off without an election timeout
//!   (`fast_handoff`), and begins ordering new client commands — while
//!   state transfer to joining members is still in flight. Replicas that
//!   lack the base state buffer the successor's commits and externalize
//!   them only once *anchored*.
//! * Joining members receive a [`BaseState`] (application snapshot + client
//!   session table + configuration chain) from any finalized member of the
//!   previous epoch, then replay the successor's log from slot 0.
//!
//! ## Map of the crate
//!
//! | module | contents |
//! |---|---|
//! | [`chain`] | epochs and the agreed configuration chain |
//! | [`command`] | the replicated command wrapper ([`Cmd`]) |
//! | [`state_machine`] | the application contract ([`StateMachine`]) |
//! | [`session`] | exactly-once client sessions ([`SessionTable`]) |
//! | [`transfer`] | base-state snapshots for state transfer |
//! | [`messages`] | the composed protocol's wire messages |
//! | [`node`] | [`RsmrNode`] — the reconfigurable replica actor |
//! | [`client`] | closed/open-loop clients and the admin actor |

pub mod chain;
pub mod client;
pub mod command;
pub mod harness;
pub mod messages;
pub mod node;
pub mod observe;
pub mod session;
pub mod state_machine;
pub mod transfer;

pub use chain::{ConfigChain, Epoch};
pub use client::{AdminActor, HistoryEntry, OpenLoopClient, RsmrClient, GROUP_COMPLETES_KEYS};
pub use command::{BatchEntry, Cmd};
pub use messages::RsmrMsg;
pub use node::{RsmrNode, RsmrTunables};
pub use observe::InvariantObserver;
pub use session::SessionTable;
pub use state_machine::{CounterSm, StateMachine};
pub use transfer::BaseState;
