//! Base-state snapshots: the unit of state transfer between epochs.

use simnet::wire::{self, Wire};

use crate::chain::{ConfigChain, Epoch};
use crate::session::SessionTable;

/// Everything a replica needs to start executing epoch `epoch` from its
/// log's slot 0: the application state and client sessions as of the
/// *previous* epoch's close, plus the configuration chain.
///
/// Captured by every member at the instant it finalizes an epoch (before
/// applying any successor command), served to joining members over
/// `TransferRequest`/`TransferReply`, and persisted for crash recovery.
#[derive(Clone, Debug, PartialEq)]
pub struct BaseState<R> {
    /// The epoch this base state anchors (its log applies on top).
    pub epoch: Epoch,
    /// Application snapshot at the predecessor's close.
    pub app: Vec<u8>,
    /// Client session table at the predecessor's close.
    pub sessions: SessionTable<R>,
    /// The configuration chain through `epoch`.
    pub chain: ConfigChain,
}

impl<R: Wire + Clone> BaseState<R> {
    /// Serializes the base state for the wire or stable storage.
    pub fn encode_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Serializes into a caller-owned buffer, clearing it first. Hot paths
    /// that encode repeatedly (epoch finalization, donor retries) pass a
    /// scratch buffer so the allocation is amortized across calls.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.clear();
        self.epoch.encode(buf);
        self.app.len().encode(buf);
        buf.extend_from_slice(&self.app);
        self.sessions.encode(buf);
        self.chain.encode(buf);
    }

    /// Deserializes a base state; `None` on malformed input.
    pub fn decode_bytes(bytes: &[u8]) -> Option<Self> {
        let mut buf = bytes;
        let epoch = Epoch::decode(&mut buf)?;
        let app_len = usize::decode(&mut buf)?;
        if buf.len() < app_len {
            return None;
        }
        let (app, rest) = buf.split_at(app_len);
        let mut buf = rest;
        let sessions = SessionTable::<R>::decode(&mut buf)?;
        let chain = ConfigChain::decode(&mut buf)?;
        if !buf.is_empty() {
            return None;
        }
        // The chain must actually cover the anchored epoch.
        chain.config(epoch)?;
        Some(BaseState {
            epoch,
            app: app.to_vec(),
            sessions,
            chain,
        })
    }

    /// Size of the encoded base state, dominating state-transfer cost.
    pub fn byte_size(&self) -> usize {
        self.encode_bytes().len()
    }
}

/// Convenience re-export for callers who need raw wire helpers.
pub use wire::{from_bytes, to_bytes};

#[cfg(test)]
mod tests {
    use super::*;
    use consensus::StaticConfig;
    use simnet::NodeId;

    fn sample() -> BaseState<u64> {
        let mut chain = ConfigChain::genesis(StaticConfig::new(vec![NodeId(1), NodeId(2)]));
        chain.append(Epoch(1), StaticConfig::new(vec![NodeId(2), NodeId(3)]));
        let mut sessions = SessionTable::new();
        sessions.record(NodeId(100), 4, 44);
        BaseState {
            epoch: Epoch(1),
            app: vec![1, 2, 3, 4, 5],
            sessions,
            chain,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let b = sample();
        let bytes = b.encode_bytes();
        assert_eq!(BaseState::<u64>::decode_bytes(&bytes), Some(b));
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = sample().encode_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(
                BaseState::<u64>::decode_bytes(&bytes[..cut]),
                None,
                "accepted truncated input at {cut}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample().encode_bytes();
        bytes.push(0);
        assert_eq!(BaseState::<u64>::decode_bytes(&bytes), None);
    }

    #[test]
    fn chain_must_cover_the_epoch() {
        let mut b = sample();
        b.epoch = Epoch(9); // chain only covers e0..e1
        let bytes = b.encode_bytes();
        assert_eq!(BaseState::<u64>::decode_bytes(&bytes), None);
    }

    #[test]
    fn encode_into_reuses_the_buffer_and_matches_encode_bytes() {
        let b = sample();
        let mut scratch = vec![9u8; 64]; // stale contents must be cleared
        b.encode_into(&mut scratch);
        assert_eq!(scratch, b.encode_bytes());
        let cap = scratch.capacity();
        b.encode_into(&mut scratch);
        assert_eq!(scratch.capacity(), cap, "re-encode must not reallocate");
        assert_eq!(BaseState::<u64>::decode_bytes(&scratch), Some(b));
    }

    #[test]
    fn byte_size_tracks_app_payload() {
        let mut b = sample();
        let small = b.byte_size();
        b.app = vec![0; 10_000];
        assert!(b.byte_size() > small + 9_000);
    }

    /// A randomized base state with varying chain length, session count and
    /// app payload — the corpus the fuzzers mangle.
    fn random_base(rng: &mut simnet::SimRng) -> BaseState<u64> {
        let mut chain = ConfigChain::genesis(StaticConfig::new(vec![NodeId(0), NodeId(1)]));
        let epochs = rng.gen_range(0u64..4);
        for e in 1..=epochs {
            let members: Vec<NodeId> = (0..rng.gen_range(1u64..5)).map(NodeId).collect();
            chain.append(Epoch(e), StaticConfig::new(members));
        }
        let mut sessions = SessionTable::new();
        for i in 0..rng.gen_range(0u64..6) {
            // One record per client: the table asserts per-client sequence
            // monotonicity.
            sessions.record(
                NodeId(100 + i),
                rng.gen_range(0u64..50),
                rng.gen_range(0u64..1000),
            );
        }
        BaseState {
            epoch: Epoch(rng.gen_range(0u64..=epochs)),
            app: (0..rng.gen_range(0usize..64))
                .map(|_| rng.gen_range(0u64..256) as u8)
                .collect(),
            sessions,
            chain,
        }
    }

    /// Seeded fuzz: every strict prefix of a valid encoding is rejected —
    /// and never panics.
    #[test]
    fn fuzz_truncations_are_rejected() {
        let mut rng = simnet::SimRng::seed_from_u64(0xBA5E1);
        for _ in 0..100 {
            let bytes = random_base(&mut rng).encode_bytes();
            for cut in 0..bytes.len() {
                assert_eq!(BaseState::<u64>::decode_bytes(&bytes[..cut]), None);
            }
        }
    }

    /// Seeded fuzz: single-bit corruption either still yields a structurally
    /// valid base state or a clean `None` — never a panic or runaway
    /// allocation.
    #[test]
    fn fuzz_bit_flips_never_panic() {
        let mut rng = simnet::SimRng::seed_from_u64(0xBA5E2);
        for _ in 0..200 {
            let mut bytes = random_base(&mut rng).encode_bytes();
            let byte = rng.gen_range(0..bytes.len());
            bytes[byte] ^= 1 << rng.gen_range(0u32..8);
            let _ = BaseState::<u64>::decode_bytes(&bytes);
        }
    }

    /// Seeded fuzz: trailing garbage always fails the full-consumption
    /// check, whatever the corpus shape.
    #[test]
    fn fuzz_trailing_garbage_is_always_rejected() {
        let mut rng = simnet::SimRng::seed_from_u64(0xBA5E3);
        for _ in 0..100 {
            let mut bytes = random_base(&mut rng).encode_bytes();
            for _ in 0..rng.gen_range(1usize..9) {
                bytes.push(rng.gen_range(0u64..256) as u8);
            }
            assert_eq!(BaseState::<u64>::decode_bytes(&bytes), None);
        }
    }

    /// Seeded fuzz: arbitrary byte soup never panics the decoder.
    #[test]
    fn fuzz_random_bytes_never_panic() {
        let mut rng = simnet::SimRng::seed_from_u64(0xBA5E4);
        for _ in 0..500 {
            let bytes: Vec<u8> = (0..rng.gen_range(0usize..128))
                .map(|_| rng.gen_range(0u64..256) as u8)
                .collect();
            let _ = BaseState::<u64>::decode_bytes(&bytes);
        }
    }
}
