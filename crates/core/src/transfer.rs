//! Base-state snapshots and the chunked transfer protocol.
//!
//! The unit of inter-epoch state transfer is the [`BaseState`]: the
//! application snapshot (as independently encoded pages), client session
//! table and configuration chain as of an epoch's start. Rather than
//! shipping it as one monolithic blob, donors describe it with a
//! [`TransferManifest`] (chunk count, per-chunk CRC-32C, mode) and stream
//! bounded chunks that interleave with live traffic on the capped wire.
//! Joiners reassemble through a [`ChunkAssembly`], which verifies every
//! chunk against the manifest and tracks exactly which indices are still
//! missing — a donor crash mid-transfer resumes on a rotated donor with
//! only the missing chunks, because chunking is a deterministic function
//! of the base pages and every replica serves identical chunks.

use std::sync::Arc;

use simnet::wire::{self, crc32c, Wire};

use crate::chain::{ConfigChain, Epoch};
use crate::session::SessionTable;

/// Target chunk payload size. Large enough to amortize per-message
/// overhead, small enough that a chunk never monopolizes the egress cap
/// (and sits far below the TCP backend's `max_frame`).
pub const CHUNK_TARGET: usize = 64 * 1024;

/// Everything a replica needs to start executing epoch `epoch` from its
/// log's slot 0: the application state and client sessions as of the
/// *previous* epoch's close, plus the configuration chain.
///
/// Captured by every member at the instant it finalizes an epoch (before
/// applying any successor command), served to joining members chunk by
/// chunk, and persisted page by page for crash recovery.
#[derive(Clone, Debug, PartialEq)]
pub struct BaseState<R> {
    /// The epoch this base state anchors (its log applies on top).
    pub epoch: Epoch,
    /// Application snapshot pages at the predecessor's close
    /// ([`crate::StateMachine::snapshot_page`] order). Shared so serving
    /// a chunk never copies page bytes.
    pub pages: Vec<Arc<Vec<u8>>>,
    /// Client session table at the predecessor's close.
    pub sessions: SessionTable<R>,
    /// The configuration chain through `epoch`.
    pub chain: ConfigChain,
}

impl<R: Wire + Clone> BaseState<R> {
    /// Serializes the base state for stable storage or a monolithic
    /// transfer (the stop-the-world control path).
    pub fn encode_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Serializes into a caller-owned buffer, clearing it first. Hot paths
    /// that encode repeatedly pass a scratch buffer so the allocation is
    /// amortized across calls.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.clear();
        self.epoch.encode(buf);
        self.pages.encode(buf);
        self.sessions.encode(buf);
        self.chain.encode(buf);
    }

    /// Deserializes a base state; `None` on malformed input.
    pub fn decode_bytes(bytes: &[u8]) -> Option<Self> {
        let mut buf = bytes;
        let epoch = Epoch::decode(&mut buf)?;
        let pages = Vec::<Arc<Vec<u8>>>::decode(&mut buf)?;
        let sessions = SessionTable::<R>::decode(&mut buf)?;
        let chain = ConfigChain::decode(&mut buf)?;
        if !buf.is_empty() {
            return None;
        }
        // The chain must actually cover the anchored epoch.
        chain.config(epoch)?;
        Some(BaseState {
            epoch,
            pages,
            sessions,
            chain,
        })
    }

    /// Size of the encoded base state, dominating state-transfer cost.
    /// Pure arithmetic over the already-encoded pages and the component
    /// sizes — no allocation, no re-encoding.
    pub fn byte_size(&self) -> usize {
        self.epoch.encoded_size()
            + 8
            + self.pages.iter().map(|p| 8 + p.len()).sum::<usize>()
            + self.sessions.encoded_size()
            + self.chain.encoded_size()
    }

    /// The manifest header: sessions and chain, encoded. Small next to
    /// the pages, so it rides inside the manifest message itself rather
    /// than a chunk.
    pub fn header_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.sessions.encode(&mut buf);
        self.chain.encode(&mut buf);
        buf
    }

    /// Rebuilds a base state from a manifest header plus reassembled
    /// pages. `None` on malformed input or a chain not covering `epoch`.
    pub fn from_parts(epoch: Epoch, pages: Vec<Arc<Vec<u8>>>, header: &[u8]) -> Option<Self> {
        let mut buf = header;
        let sessions = SessionTable::<R>::decode(&mut buf)?;
        let chain = ConfigChain::decode(&mut buf)?;
        if !buf.is_empty() {
            return None;
        }
        chain.config(epoch)?;
        Some(BaseState {
            epoch,
            pages,
            sessions,
            chain,
        })
    }
}

/// How the chunks of a transfer are to be interpreted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferMode {
    /// Chunks carry `(page index, page bytes)` pairs covering all
    /// `pages` snapshot pages; reassembly feeds
    /// [`crate::StateMachine::restore_pages`].
    Full {
        /// Total number of snapshot pages the chunks cover.
        pages: u64,
    },
    /// Chunks are opaque delta payloads produced by
    /// [`crate::StateMachine::delta_from_pages`] against the rejoiner's
    /// advertised watermark `since`; reassembly feeds
    /// [`crate::StateMachine::apply_delta`].
    Delta {
        /// The rejoiner watermark the delta was computed against.
        since: u64,
    },
}

/// Integrity metadata for one chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Exact payload length in bytes.
    pub len: u64,
    /// CRC-32C of the payload.
    pub crc: u32,
}

/// The donor's description of a transfer: what the chunks mean, their
/// integrity metadata, and the (small) session/chain header. Deterministic
/// for a given base state, so any donor's manifest validates any other
/// donor's chunks — the basis of mid-transfer donor rotation.
#[derive(Clone, Debug, PartialEq)]
pub struct TransferManifest {
    /// The epoch whose base state is being transferred.
    pub epoch: Epoch,
    /// Full snapshot or rejoiner delta.
    pub mode: TransferMode,
    /// Encoded sessions + chain (see [`BaseState::header_bytes`]).
    pub header: Vec<u8>,
    /// Per-chunk length and checksum, in fetch order.
    pub chunks: Vec<ChunkMeta>,
}

impl TransferManifest {
    /// Total payload bytes across all chunks.
    pub fn total_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.len).sum()
    }
}

impl Wire for TransferMode {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            TransferMode::Full { pages } => {
                buf.push(0);
                pages.encode(buf);
            }
            TransferMode::Delta { since } => {
                buf.push(1);
                since.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(TransferMode::Full {
                pages: u64::decode(buf)?,
            }),
            1 => Some(TransferMode::Delta {
                since: u64::decode(buf)?,
            }),
            _ => None,
        }
    }
    fn encoded_size(&self) -> usize {
        9
    }
}

impl Wire for ChunkMeta {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.len.encode(buf);
        self.crc.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(ChunkMeta {
            len: u64::decode(buf)?,
            crc: u32::decode(buf)?,
        })
    }
    fn encoded_size(&self) -> usize {
        12
    }
}

impl Wire for TransferManifest {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.epoch.encode(buf);
        self.mode.encode(buf);
        self.header.encode(buf);
        self.chunks.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(TransferManifest {
            epoch: Epoch::decode(buf)?,
            mode: TransferMode::decode(buf)?,
            header: Vec::decode(buf)?,
            chunks: Vec::decode(buf)?,
        })
    }
    fn encoded_size(&self) -> usize {
        self.epoch.encoded_size()
            + self.mode.encoded_size()
            + 8
            + self.header.len()
            + 8
            + 12 * self.chunks.len()
    }
}

/// A donor-side transfer: the manifest plus the chunk payloads it
/// describes. Built once per `(epoch, mode)` and cached; chunk payloads
/// are `Arc`-shared so serving a retry never re-encodes.
#[derive(Clone, Debug)]
pub struct TransferPlan {
    /// The manifest advertised to the joiner.
    pub manifest: TransferManifest,
    /// Chunk payloads, index-aligned with `manifest.chunks`.
    pub chunks: Vec<Arc<Vec<u8>>>,
}

fn chunk_metas(chunks: &[Arc<Vec<u8>>]) -> Vec<ChunkMeta> {
    chunks
        .iter()
        .map(|c| ChunkMeta {
            len: c.len() as u64,
            crc: crc32c::checksum(c),
        })
        .collect()
}

impl TransferPlan {
    /// Plans a full transfer: pages are greedily packed into chunks of
    /// roughly `target` bytes, each chunk a self-describing list of
    /// `(page index, page bytes)` pairs so reordered or rotated delivery
    /// still reassembles.
    pub fn full<R: Wire + Clone>(base: &BaseState<R>, target: usize) -> Self {
        let mut chunks = Vec::new();
        let mut cur: Vec<(u64, Arc<Vec<u8>>)> = Vec::new();
        let mut cur_bytes = 0usize;
        for (i, page) in base.pages.iter().enumerate() {
            cur_bytes += page.len() + 16;
            cur.push((i as u64, Arc::clone(page)));
            if cur_bytes >= target {
                chunks.push(Arc::new(wire::to_bytes(&std::mem::take(&mut cur))));
                cur_bytes = 0;
            }
        }
        if !cur.is_empty() {
            chunks.push(Arc::new(wire::to_bytes(&cur)));
        }
        TransferPlan {
            manifest: TransferManifest {
                epoch: base.epoch,
                mode: TransferMode::Full {
                    pages: base.pages.len() as u64,
                },
                header: base.header_bytes(),
                chunks: chunk_metas(&chunks),
            },
            chunks,
        }
    }

    /// Plans a delta transfer from chunks already produced by
    /// [`crate::StateMachine::delta_from_pages`] against watermark
    /// `since`.
    pub fn delta<R: Wire + Clone>(
        base: &BaseState<R>,
        delta_chunks: Vec<Vec<u8>>,
        since: u64,
    ) -> Self {
        let chunks: Vec<Arc<Vec<u8>>> = delta_chunks.into_iter().map(Arc::new).collect();
        TransferPlan {
            manifest: TransferManifest {
                epoch: base.epoch,
                mode: TransferMode::Delta { since },
                header: base.header_bytes(),
                chunks: chunk_metas(&chunks),
            },
            chunks,
        }
    }
}

/// Reassembles full-mode chunks into the page vector. Every page index in
/// `0..page_count` must appear exactly once across the chunks; duplicates,
/// gaps, out-of-range indices or malformed payloads yield `None`.
pub fn assemble_full_pages(
    chunks: &[Arc<Vec<u8>>],
    page_count: usize,
) -> Option<Vec<Arc<Vec<u8>>>> {
    let mut pages: Vec<Option<Arc<Vec<u8>>>> = vec![None; page_count];
    for chunk in chunks {
        for (idx, page) in wire::from_bytes::<Vec<(u64, Arc<Vec<u8>>)>>(chunk)? {
            let slot = pages.get_mut(usize::try_from(idx).ok()?)?;
            if slot.is_some() {
                return None; // duplicate page
            }
            *slot = Some(page);
        }
    }
    pages.into_iter().collect()
}

/// What [`ChunkAssembly::accept`] decided about a delivered chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkOutcome {
    /// Verified against the manifest and stored.
    Stored,
    /// Already held (duplicate delivery); ignored.
    Duplicate,
    /// Index beyond the manifest; ignored.
    OutOfRange,
    /// Length or checksum mismatch: the chunk is discarded and must be
    /// re-fetched. Never applied.
    Corrupt,
}

/// Joiner-side reassembly state: which chunks of a manifest have arrived
/// and verified. Survives donor rotation — a new donor serving the same
/// deterministic manifest fills in only what is missing.
#[derive(Clone, Debug)]
pub struct ChunkAssembly {
    manifest: TransferManifest,
    received: Vec<Option<Arc<Vec<u8>>>>,
    stored: usize,
}

impl ChunkAssembly {
    /// Starts an empty assembly for `manifest`.
    pub fn new(manifest: TransferManifest) -> Self {
        let received = vec![None; manifest.chunks.len()];
        ChunkAssembly {
            manifest,
            received,
            stored: 0,
        }
    }

    /// The manifest being assembled.
    pub fn manifest(&self) -> &TransferManifest {
        &self.manifest
    }

    /// Indices not yet received, in fetch order.
    pub fn missing(&self) -> Vec<usize> {
        self.received
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.is_none().then_some(i))
            .collect()
    }

    /// Chunks received and verified so far.
    pub fn stored(&self) -> usize {
        self.stored
    }

    /// True when every chunk has arrived and verified.
    pub fn is_complete(&self) -> bool {
        self.stored == self.received.len()
    }

    /// Verifies `bytes` against the manifest entry for `index` and stores
    /// it. Corrupt chunks are rejected — a checksum mismatch can never
    /// reach the state machine.
    pub fn accept(&mut self, index: usize, bytes: Arc<Vec<u8>>) -> ChunkOutcome {
        let Some(meta) = self.manifest.chunks.get(index) else {
            return ChunkOutcome::OutOfRange;
        };
        if self.received[index].is_some() {
            return ChunkOutcome::Duplicate;
        }
        if bytes.len() as u64 != meta.len || crc32c::checksum(&bytes) != meta.crc {
            return ChunkOutcome::Corrupt;
        }
        self.received[index] = Some(bytes);
        self.stored += 1;
        ChunkOutcome::Stored
    }

    /// The verified chunk payloads in manifest order. Panics if called
    /// before [`ChunkAssembly::is_complete`].
    pub fn into_chunks(self) -> Vec<Arc<Vec<u8>>> {
        self.received
            .into_iter()
            .map(|c| c.expect("assembly incomplete"))
            .collect()
    }
}

/// Convenience re-export for callers who need raw wire helpers.
pub use wire::{from_bytes, to_bytes};

#[cfg(test)]
mod tests {
    use super::*;
    use consensus::StaticConfig;
    use simnet::NodeId;

    fn sample() -> BaseState<u64> {
        let mut chain = ConfigChain::genesis(StaticConfig::new(vec![NodeId(1), NodeId(2)]));
        chain.append(Epoch(1), StaticConfig::new(vec![NodeId(2), NodeId(3)]));
        let mut sessions = SessionTable::new();
        sessions.record(NodeId(100), 4, 44);
        BaseState {
            epoch: Epoch(1),
            pages: vec![Arc::new(vec![1, 2, 3, 4, 5])],
            sessions,
            chain,
        }
    }

    fn multi_page() -> BaseState<u64> {
        let mut base = sample();
        base.pages = (0..16u8)
            .map(|i| Arc::new(vec![i; 100 + usize::from(i) * 37]))
            .collect();
        base
    }

    #[test]
    fn encode_decode_round_trip() {
        let b = sample();
        let bytes = b.encode_bytes();
        assert_eq!(BaseState::<u64>::decode_bytes(&bytes), Some(b));
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = sample().encode_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(
                BaseState::<u64>::decode_bytes(&bytes[..cut]),
                None,
                "accepted truncated input at {cut}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample().encode_bytes();
        bytes.push(0);
        assert_eq!(BaseState::<u64>::decode_bytes(&bytes), None);
    }

    #[test]
    fn chain_must_cover_the_epoch() {
        let mut b = sample();
        b.epoch = Epoch(9); // chain only covers e0..e1
        let bytes = b.encode_bytes();
        assert_eq!(BaseState::<u64>::decode_bytes(&bytes), None);
    }

    #[test]
    fn encode_into_reuses_the_buffer_and_matches_encode_bytes() {
        let b = sample();
        let mut scratch = vec![9u8; 64]; // stale contents must be cleared
        b.encode_into(&mut scratch);
        assert_eq!(scratch, b.encode_bytes());
        let cap = scratch.capacity();
        b.encode_into(&mut scratch);
        assert_eq!(scratch.capacity(), cap, "re-encode must not reallocate");
        assert_eq!(BaseState::<u64>::decode_bytes(&scratch), Some(b));
    }

    #[test]
    fn byte_size_is_exact_without_encoding() {
        for b in [sample(), multi_page()] {
            assert_eq!(b.byte_size(), b.encode_bytes().len());
        }
        let mut b = sample();
        b.pages.push(Arc::new(vec![0; 10_000]));
        assert_eq!(b.byte_size(), b.encode_bytes().len());
    }

    #[test]
    fn header_and_parts_round_trip() {
        let b = multi_page();
        let header = b.header_bytes();
        let rebuilt = BaseState::<u64>::from_parts(b.epoch, b.pages.clone(), &header).unwrap();
        assert_eq!(rebuilt, b);
        // A header whose chain misses the epoch is rejected.
        assert_eq!(
            BaseState::<u64>::from_parts(Epoch(7), b.pages.clone(), &header),
            None
        );
        // Trailing bytes are rejected.
        let mut long = header.clone();
        long.push(0);
        assert_eq!(
            BaseState::<u64>::from_parts(b.epoch, b.pages.clone(), &long),
            None
        );
    }

    #[test]
    fn full_plan_round_trips_through_assembly() {
        let b = multi_page();
        let plan = TransferPlan::full(&b, 400);
        assert!(plan.chunks.len() > 2, "target must split into chunks");
        assert_eq!(plan.manifest.chunks.len(), plan.chunks.len());
        let mut asm = ChunkAssembly::new(plan.manifest.clone());
        // Deliver out of order: reassembly is order-independent.
        for i in (0..plan.chunks.len()).rev() {
            assert_eq!(
                asm.accept(i, Arc::clone(&plan.chunks[i])),
                ChunkOutcome::Stored
            );
        }
        assert!(asm.is_complete());
        let TransferMode::Full { pages } = plan.manifest.mode else {
            panic!("full plan must carry Full mode");
        };
        let reassembled = assemble_full_pages(&asm.into_chunks(), pages as usize).unwrap();
        let rebuilt =
            BaseState::<u64>::from_parts(plan.manifest.epoch, reassembled, &plan.manifest.header)
                .unwrap();
        assert_eq!(rebuilt, b);
    }

    #[test]
    fn plans_are_deterministic_across_donors() {
        let b = multi_page();
        let a = TransferPlan::full(&b, 400);
        let c = TransferPlan::full(&b.clone(), 400);
        assert_eq!(a.manifest, c.manifest);
        assert_eq!(a.chunks, c.chunks);
    }

    #[test]
    fn assembly_rejects_corrupt_duplicate_and_out_of_range() {
        let b = multi_page();
        let plan = TransferPlan::full(&b, 400);
        let mut asm = ChunkAssembly::new(plan.manifest.clone());
        // Bit-flipped payload: rejected, stays missing.
        let mut bad = (*plan.chunks[0]).clone();
        bad[0] ^= 0x01;
        assert_eq!(asm.accept(0, Arc::new(bad)), ChunkOutcome::Corrupt);
        assert!(asm.missing().contains(&0));
        // Truncated payload: rejected by the length check.
        let short = plan.chunks[0][..plan.chunks[0].len() - 1].to_vec();
        assert_eq!(asm.accept(0, Arc::new(short)), ChunkOutcome::Corrupt);
        // The genuine chunk still lands.
        assert_eq!(
            asm.accept(0, Arc::clone(&plan.chunks[0])),
            ChunkOutcome::Stored
        );
        assert_eq!(
            asm.accept(0, Arc::clone(&plan.chunks[0])),
            ChunkOutcome::Duplicate
        );
        assert_eq!(
            asm.accept(99, Arc::clone(&plan.chunks[0])),
            ChunkOutcome::OutOfRange
        );
    }

    #[test]
    fn reordered_or_duplicated_pages_inside_chunks_are_rejected() {
        let b = multi_page();
        let plan = TransferPlan::full(&b, usize::MAX); // one chunk
        let TransferMode::Full { pages } = plan.manifest.mode else {
            unreachable!()
        };
        // A chunk that lists the same page twice must not assemble.
        let dup: Vec<(u64, Arc<Vec<u8>>)> =
            vec![(0, Arc::clone(&b.pages[0])), (0, Arc::clone(&b.pages[0]))];
        assert_eq!(
            assemble_full_pages(&[Arc::new(wire::to_bytes(&dup))], pages as usize),
            None
        );
        // An out-of-range page index must not assemble.
        let oob: Vec<(u64, Arc<Vec<u8>>)> = vec![(pages, Arc::clone(&b.pages[0]))];
        assert_eq!(
            assemble_full_pages(&[Arc::new(wire::to_bytes(&oob))], pages as usize),
            None
        );
        // Missing pages must not assemble.
        assert_eq!(assemble_full_pages(&[], pages as usize), None);
    }

    /// A randomized base state with varying chain length, session count and
    /// page layout — the corpus the fuzzers mangle.
    fn random_base(rng: &mut simnet::SimRng) -> BaseState<u64> {
        let mut chain = ConfigChain::genesis(StaticConfig::new(vec![NodeId(0), NodeId(1)]));
        let epochs = rng.gen_range(0u64..4);
        for e in 1..=epochs {
            let members: Vec<NodeId> = (0..rng.gen_range(1u64..5)).map(NodeId).collect();
            chain.append(Epoch(e), StaticConfig::new(members));
        }
        let mut sessions = SessionTable::new();
        for i in 0..rng.gen_range(0u64..6) {
            // One record per client: the table asserts per-client sequence
            // monotonicity.
            sessions.record(
                NodeId(100 + i),
                rng.gen_range(0u64..50),
                rng.gen_range(0u64..1000),
            );
        }
        BaseState {
            epoch: Epoch(rng.gen_range(0u64..=epochs)),
            pages: (0..rng.gen_range(0usize..5))
                .map(|_| {
                    Arc::new(
                        (0..rng.gen_range(0usize..48))
                            .map(|_| rng.gen_range(0u64..256) as u8)
                            .collect::<Vec<u8>>(),
                    )
                })
                .collect(),
            sessions,
            chain,
        }
    }

    fn random_manifest(rng: &mut simnet::SimRng) -> TransferManifest {
        let base = random_base(rng);
        let plan = if rng.gen_bool(0.5) {
            TransferPlan::full(&base, rng.gen_range(1usize..256))
        } else {
            let chunks = (0..rng.gen_range(0usize..4))
                .map(|_| {
                    (0..rng.gen_range(0usize..32))
                        .map(|_| rng.gen_range(0u64..256) as u8)
                        .collect::<Vec<u8>>()
                })
                .collect();
            TransferPlan::delta(&base, chunks, rng.gen_range(0u64..1000))
        };
        plan.manifest
    }

    /// Seeded fuzz: every strict prefix of a valid encoding is rejected —
    /// and never panics.
    #[test]
    fn fuzz_truncations_are_rejected() {
        let mut rng = simnet::SimRng::seed_from_u64(0xBA5E1);
        for _ in 0..100 {
            let bytes = random_base(&mut rng).encode_bytes();
            for cut in 0..bytes.len() {
                assert_eq!(BaseState::<u64>::decode_bytes(&bytes[..cut]), None);
            }
        }
    }

    /// Seeded fuzz: single-bit corruption either still yields a structurally
    /// valid base state or a clean `None` — never a panic or runaway
    /// allocation.
    #[test]
    fn fuzz_bit_flips_never_panic() {
        let mut rng = simnet::SimRng::seed_from_u64(0xBA5E2);
        for _ in 0..200 {
            let mut bytes = random_base(&mut rng).encode_bytes();
            let byte = rng.gen_range(0..bytes.len());
            bytes[byte] ^= 1 << rng.gen_range(0u32..8);
            let _ = BaseState::<u64>::decode_bytes(&bytes);
        }
    }

    /// Seeded fuzz: trailing garbage always fails the full-consumption
    /// check, whatever the corpus shape.
    #[test]
    fn fuzz_trailing_garbage_is_always_rejected() {
        let mut rng = simnet::SimRng::seed_from_u64(0xBA5E3);
        for _ in 0..100 {
            let mut bytes = random_base(&mut rng).encode_bytes();
            for _ in 0..rng.gen_range(1usize..9) {
                bytes.push(rng.gen_range(0u64..256) as u8);
            }
            assert_eq!(BaseState::<u64>::decode_bytes(&bytes), None);
        }
    }

    /// Seeded fuzz: arbitrary byte soup never panics the decoder.
    #[test]
    fn fuzz_random_bytes_never_panic() {
        let mut rng = simnet::SimRng::seed_from_u64(0xBA5E4);
        for _ in 0..500 {
            let bytes: Vec<u8> = (0..rng.gen_range(0usize..128))
                .map(|_| rng.gen_range(0u64..256) as u8)
                .collect();
            let _ = BaseState::<u64>::decode_bytes(&bytes);
        }
    }

    /// Seeded fuzz (manifest codec): truncations of a valid manifest
    /// encoding never decode and never panic.
    #[test]
    fn fuzz_manifest_truncations_are_rejected() {
        let mut rng = simnet::SimRng::seed_from_u64(0xC4F0_01);
        for _ in 0..100 {
            let bytes = wire::to_bytes(&random_manifest(&mut rng));
            for cut in 0..bytes.len() {
                assert_eq!(wire::from_bytes::<TransferManifest>(&bytes[..cut]), None);
            }
        }
    }

    /// Seeded fuzz (manifest codec): single-bit flips decode cleanly or
    /// not at all; `encoded_size` stays exact on everything that decodes.
    #[test]
    fn fuzz_manifest_bit_flips_never_panic() {
        let mut rng = simnet::SimRng::seed_from_u64(0xC4F0_02);
        for _ in 0..200 {
            let m = random_manifest(&mut rng);
            let mut bytes = wire::to_bytes(&m);
            assert_eq!(m.encoded_size(), bytes.len());
            let byte = rng.gen_range(0..bytes.len());
            bytes[byte] ^= 1 << rng.gen_range(0u32..8);
            if let Some(decoded) = wire::from_bytes::<TransferManifest>(&bytes) {
                assert_eq!(decoded.encoded_size(), bytes.len());
            }
        }
    }

    /// Seeded fuzz (manifest codec): trailing garbage is always rejected.
    #[test]
    fn fuzz_manifest_trailing_garbage_is_rejected() {
        let mut rng = simnet::SimRng::seed_from_u64(0xC4F0_03);
        for _ in 0..100 {
            let mut bytes = wire::to_bytes(&random_manifest(&mut rng));
            for _ in 0..rng.gen_range(1usize..9) {
                bytes.push(rng.gen_range(0u64..256) as u8);
            }
            assert_eq!(wire::from_bytes::<TransferManifest>(&bytes), None);
        }
    }

    /// Seeded fuzz (manifest codec): random byte soup never panics.
    #[test]
    fn fuzz_manifest_random_bytes_never_panic() {
        let mut rng = simnet::SimRng::seed_from_u64(0xC4F0_04);
        for _ in 0..500 {
            let bytes: Vec<u8> = (0..rng.gen_range(0usize..160))
                .map(|_| rng.gen_range(0u64..256) as u8)
                .collect();
            let _ = wire::from_bytes::<TransferManifest>(&bytes);
        }
    }

    /// Seeded fuzz (chunk payloads): mangled full-mode chunks either fail
    /// the manifest checksum (the normal path) or — if forced past it —
    /// fail reassembly cleanly. Never a panic, never a silent apply.
    #[test]
    fn fuzz_mangled_chunks_never_assemble_silently() {
        let mut rng = simnet::SimRng::seed_from_u64(0xC4F0_05);
        for _ in 0..200 {
            let base = random_base(&mut rng);
            let plan = TransferPlan::full(&base, rng.gen_range(1usize..128));
            if plan.chunks.is_empty() {
                continue;
            }
            let victim = rng.gen_range(0..plan.chunks.len());
            let mut mangled = (*plan.chunks[victim]).clone();
            if mangled.is_empty() {
                continue;
            }
            let byte = rng.gen_range(0..mangled.len());
            mangled[byte] ^= 1 << rng.gen_range(0u32..8);
            let mut asm = ChunkAssembly::new(plan.manifest.clone());
            assert_eq!(
                asm.accept(victim, Arc::new(mangled.clone())),
                ChunkOutcome::Corrupt,
                "checksum must catch a bit flip"
            );
            // Even bypassing the checksum, reassembly validates structure:
            // it may fail (None) but must not panic, and a success must
            // reproduce a permutation-complete page set (the CRC pass is
            // what guarantees exactness; this guards the decoder).
            let mut chunks = plan.chunks.clone();
            chunks[victim] = Arc::new(mangled);
            let TransferMode::Full { pages } = plan.manifest.mode else {
                unreachable!()
            };
            let _ = assemble_full_pages(&chunks, pages as usize);
        }
    }
}
