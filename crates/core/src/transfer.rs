//! Base-state snapshots: the unit of state transfer between epochs.

use simnet::wire::{self, Wire};

use crate::chain::{ConfigChain, Epoch};
use crate::session::SessionTable;

/// Everything a replica needs to start executing epoch `epoch` from its
/// log's slot 0: the application state and client sessions as of the
/// *previous* epoch's close, plus the configuration chain.
///
/// Captured by every member at the instant it finalizes an epoch (before
/// applying any successor command), served to joining members over
/// `TransferRequest`/`TransferReply`, and persisted for crash recovery.
#[derive(Clone, Debug, PartialEq)]
pub struct BaseState<R> {
    /// The epoch this base state anchors (its log applies on top).
    pub epoch: Epoch,
    /// Application snapshot at the predecessor's close.
    pub app: Vec<u8>,
    /// Client session table at the predecessor's close.
    pub sessions: SessionTable<R>,
    /// The configuration chain through `epoch`.
    pub chain: ConfigChain,
}

impl<R: Wire + Clone> BaseState<R> {
    /// Serializes the base state for the wire or stable storage.
    pub fn encode_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.epoch.encode(&mut buf);
        self.app.len().encode(&mut buf);
        buf.extend_from_slice(&self.app);
        self.sessions.encode(&mut buf);
        self.chain.encode(&mut buf);
        buf
    }

    /// Deserializes a base state; `None` on malformed input.
    pub fn decode_bytes(bytes: &[u8]) -> Option<Self> {
        let mut buf = bytes;
        let epoch = Epoch::decode(&mut buf)?;
        let app_len = usize::decode(&mut buf)?;
        if buf.len() < app_len {
            return None;
        }
        let (app, rest) = buf.split_at(app_len);
        let mut buf = rest;
        let sessions = SessionTable::<R>::decode(&mut buf)?;
        let chain = ConfigChain::decode(&mut buf)?;
        if !buf.is_empty() {
            return None;
        }
        // The chain must actually cover the anchored epoch.
        chain.config(epoch)?;
        Some(BaseState {
            epoch,
            app: app.to_vec(),
            sessions,
            chain,
        })
    }

    /// Size of the encoded base state, dominating state-transfer cost.
    pub fn byte_size(&self) -> usize {
        self.encode_bytes().len()
    }
}

/// Convenience re-export for callers who need raw wire helpers.
pub use wire::{from_bytes, to_bytes};

#[cfg(test)]
mod tests {
    use super::*;
    use consensus::StaticConfig;
    use simnet::NodeId;

    fn sample() -> BaseState<u64> {
        let mut chain = ConfigChain::genesis(StaticConfig::new(vec![NodeId(1), NodeId(2)]));
        chain.append(Epoch(1), StaticConfig::new(vec![NodeId(2), NodeId(3)]));
        let mut sessions = SessionTable::new();
        sessions.record(NodeId(100), 4, 44);
        BaseState {
            epoch: Epoch(1),
            app: vec![1, 2, 3, 4, 5],
            sessions,
            chain,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let b = sample();
        let bytes = b.encode_bytes();
        assert_eq!(BaseState::<u64>::decode_bytes(&bytes), Some(b));
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = sample().encode_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(
                BaseState::<u64>::decode_bytes(&bytes[..cut]),
                None,
                "accepted truncated input at {cut}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample().encode_bytes();
        bytes.push(0);
        assert_eq!(BaseState::<u64>::decode_bytes(&bytes), None);
    }

    #[test]
    fn chain_must_cover_the_epoch() {
        let mut b = sample();
        b.epoch = Epoch(9); // chain only covers e0..e1
        let bytes = b.encode_bytes();
        assert_eq!(BaseState::<u64>::decode_bytes(&bytes), None);
    }

    #[test]
    fn byte_size_tracks_app_payload() {
        let mut b = sample();
        let small = b.byte_size();
        b.app = vec![0; 10_000];
        assert!(b.byte_size() > small + 9_000);
    }
}
