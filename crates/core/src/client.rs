//! Clients of the composed machine: closed-loop, paced (open-loop style)
//! and the reconfiguration admin.

use std::collections::VecDeque;

use simnet::{Actor, Context, DomainEvent, NodeId, RetryBackoff, SimDuration, SimTime, Timer};

use crate::chain::Epoch;
use crate::messages::RsmrMsg;
use crate::state_machine::StateMachine;

/// Timer kinds shared by the client actors.
const TIMER_RETRANSMIT: u32 = 0;
const TIMER_PACE: u32 = 1;

/// Per-group completion timeline keys for sharded worlds, indexed by
/// group id. Metric names must be `&'static str`, so the supported group
/// count for per-shard client gap measurement is bounded by this table.
pub const GROUP_COMPLETES_KEYS: [&str; 8] = [
    "client.completes.g0",
    "client.completes.g1",
    "client.completes.g2",
    "client.completes.g3",
    "client.completes.g4",
    "client.completes.g5",
    "client.completes.g6",
    "client.completes.g7",
];

/// A closed-loop session client: one request in flight, sequential session
/// numbers, retransmission on timeout, redirect-following, and member-set
/// tracking across reconfigurations.
pub struct RsmrClient<S: StateMachine> {
    servers: Vec<NodeId>,
    target: NodeId,
    gen: Box<dyn FnMut(u64) -> S::Op>,
    next_seq: u64,
    inflight: Option<Inflight<S::Op>>,
    limit: Option<u64>,
    completed: u64,
    retransmit_after: SimDuration,
    backoff: RetryBackoff,
    last_output: Option<S::Output>,
    record_history: bool,
    history: Vec<HistoryEntry<S::Op, S::Output>>,
    /// When false (paced mode), a completion does not auto-issue the next
    /// request — the pacing wrapper admits them instead.
    auto_issue: bool,
    /// Extra timeline key completions are also pushed to (per-shard gap
    /// measurement in sharded worlds; see [`GROUP_COMPLETES_KEYS`]).
    completes_key: Option<&'static str>,
}

/// One completed operation, as observed at the client: `(seq, op, output,
/// invocation time, response time)`. Used by linearizability checking.
pub type HistoryEntry<O, R> = (u64, O, R, SimTime, SimTime);

struct Inflight<O> {
    seq: u64,
    op: O,
    sent_at: SimTime,
    first_sent_at: SimTime,
}

impl<S: StateMachine> RsmrClient<S> {
    /// Creates a client issuing operations from `gen`, completing at most
    /// `limit` requests (`None` = unbounded).
    pub fn new(
        servers: Vec<NodeId>,
        gen: impl FnMut(u64) -> S::Op + 'static,
        limit: Option<u64>,
    ) -> Self {
        assert!(!servers.is_empty(), "need at least one server");
        let target = servers[0];
        RsmrClient {
            servers,
            target,
            gen: Box::new(gen),
            next_seq: 0,
            inflight: None,
            limit,
            completed: 0,
            retransmit_after: SimDuration::from_millis(300),
            backoff: RetryBackoff::new(SimDuration::from_millis(300)),
            last_output: None,
            record_history: false,
            history: Vec::new(),
            auto_issue: true,
            completes_key: None,
        }
    }

    /// Also pushes every completion to `key` (in addition to the aggregate
    /// `client.completes` timeline), builder-style. Sharded harnesses pass a
    /// per-group key from [`GROUP_COMPLETES_KEYS`] so per-shard client gaps
    /// stay measurable after merging.
    pub fn with_completes_key(mut self, key: &'static str) -> Self {
        self.completes_key = Some(key);
        self
    }

    /// Enables per-operation history recording (for linearizability
    /// checking), builder-style.
    pub fn with_history(mut self) -> Self {
        self.record_history = true;
        self
    }

    /// The recorded history of completed operations (empty unless
    /// [`RsmrClient::with_history`] was used).
    pub fn history(&self) -> &[HistoryEntry<S::Op, S::Output>] {
        &self.history
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// The output of the most recently completed request.
    pub fn last_output(&self) -> Option<&S::Output> {
        self.last_output.as_ref()
    }

    /// The servers this client currently knows about.
    pub fn known_servers(&self) -> &[NodeId] {
        &self.servers
    }

    fn issue_next(&mut self, ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>) {
        if let Some(limit) = self.limit {
            if self.next_seq >= limit {
                return;
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.backoff.reset();
        let op = (self.gen)(seq);
        self.inflight = Some(Inflight {
            seq,
            op: op.clone(),
            sent_at: ctx.now(),
            first_sent_at: ctx.now(),
        });
        // Fresh submission only — retransmits go through `resend` and do
        // not reopen the command's latency span.
        ctx.emit_event(DomainEvent::CmdSubmitted {
            client: ctx.node_id(),
            seq,
        });
        ctx.send(self.target, RsmrMsg::Request { seq, op });
    }

    fn rotate_target(&mut self) {
        let idx = self
            .servers
            .iter()
            .position(|&s| s == self.target)
            .unwrap_or(0);
        self.target = self.servers[(idx + 1) % self.servers.len()];
    }

    fn adopt_members(&mut self, members: &[NodeId]) {
        if !members.is_empty() && self.servers != members {
            self.servers = members.to_vec();
            if !self.servers.contains(&self.target) {
                self.target = self.servers[0];
            }
        }
    }

    fn resend(&mut self, ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>) {
        if let Some(inflight) = &mut self.inflight {
            inflight.sent_at = ctx.now();
            let msg = RsmrMsg::Request {
                seq: inflight.seq,
                op: inflight.op.clone(),
            };
            let target = self.target;
            ctx.send(target, msg);
        }
    }
}

impl<S: StateMachine> Actor for RsmrClient<S> {
    type Msg = RsmrMsg<S::Op, S::Output>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        self.issue_next(ctx);
        ctx.set_timer(self.retransmit_after, TIMER_RETRANSMIT);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, _from: NodeId, msg: Self::Msg) {
        match msg {
            RsmrMsg::Reply {
                seq,
                output,
                members,
            } => {
                self.adopt_members(&members);
                let Some(inflight) = &self.inflight else {
                    return;
                };
                if seq != inflight.seq {
                    return; // stale duplicate reply
                }
                let latency = ctx.now().since(inflight.first_sent_at);
                ctx.metrics()
                    .observe("client.latency_us", latency.as_micros() as f64);
                let now = ctx.now();
                ctx.metrics().timeline_push("client.completes", now, 1.0);
                if let Some(key) = self.completes_key {
                    ctx.metrics().timeline_push(key, now, 1.0);
                }
                if self.record_history {
                    self.history.push((
                        seq,
                        inflight.op.clone(),
                        output.clone(),
                        inflight.first_sent_at,
                        now,
                    ));
                }
                self.inflight = None;
                self.completed += 1;
                self.last_output = Some(output);
                if self.auto_issue {
                    self.issue_next(ctx);
                }
            }
            RsmrMsg::Redirect {
                seq,
                leader,
                members,
            } => {
                self.adopt_members(&members);
                let Some(inflight) = &self.inflight else {
                    return;
                };
                if seq != inflight.seq {
                    return;
                }
                match leader {
                    Some(l) if self.servers.contains(&l) => self.target = l,
                    _ => self.rotate_target(),
                }
                // A redirect is fresh routing information, not a timeout:
                // restart the backoff.
                self.backoff.reset();
                self.resend(ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, _timer: Timer) {
        if let Some(inflight) = &self.inflight {
            let salt = ctx.node_id().0 ^ inflight.seq.rotate_left(20);
            if ctx.now().since(inflight.sent_at) >= self.backoff.current_delay(salt) {
                if self.backoff.record_attempt() {
                    ctx.metrics().incr("client.backoff_exhausted", 1);
                }
                self.rotate_target();
                ctx.metrics().incr("client.retransmits", 1);
                self.resend(ctx);
            }
        }
        ctx.set_timer(self.retransmit_after, TIMER_RETRANSMIT);
    }
}

/// A paced client: *intends* to issue one operation every `interval`
/// (open-loop arrivals) while respecting the one-outstanding-per-session
/// rule — overflow arrivals queue locally, and latency is measured from
/// the **intended** issue time, so coordinated omission during stalls (e.g.
/// a reconfiguration gap) is visible in the tail.
pub struct OpenLoopClient<S: StateMachine> {
    inner: RsmrClient<S>,
    interval: SimDuration,
    /// Intended issue times not yet admitted to the session.
    backlog: VecDeque<SimTime>,
    started: bool,
}

impl<S: StateMachine> OpenLoopClient<S> {
    /// Creates a paced client issuing `gen` operations every `interval`,
    /// stopping after `limit` completions (`None` = unbounded).
    pub fn new(
        servers: Vec<NodeId>,
        gen: impl FnMut(u64) -> S::Op + 'static,
        interval: SimDuration,
        limit: Option<u64>,
    ) -> Self {
        let mut inner = RsmrClient::new(servers, gen, limit);
        inner.auto_issue = false;
        OpenLoopClient {
            inner,
            interval,
            backlog: VecDeque::new(),
            started: false,
        }
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.inner.completed()
    }

    /// See [`RsmrClient::with_completes_key`].
    pub fn with_completes_key(mut self, key: &'static str) -> Self {
        self.inner.completes_key = Some(key);
        self
    }

    /// See [`RsmrClient::with_history`]. Invocation timestamps are the
    /// *intended* issue times, so recorded latencies include any local
    /// queueing delay (coordinated-omission-safe).
    pub fn with_history(mut self) -> Self {
        self.inner = self.inner.with_history();
        self
    }

    /// See [`RsmrClient::history`].
    pub fn history(&self) -> &[HistoryEntry<S::Op, S::Output>] {
        self.inner.history()
    }

    fn admit(&mut self, ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>) {
        if self.inner.inflight.is_some() {
            return;
        }
        let Some(intended) = self.backlog.pop_front() else {
            return;
        };
        self.inner.issue_next(ctx);
        // Rewrite the latency origin to the intended issue time.
        if let Some(inflight) = &mut self.inner.inflight {
            inflight.first_sent_at = intended;
        }
    }
}

impl<S: StateMachine> Actor for OpenLoopClient<S> {
    type Msg = RsmrMsg<S::Op, S::Output>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        if !self.started {
            self.started = true;
        }
        ctx.set_timer(self.interval, TIMER_PACE);
        ctx.set_timer(self.inner.retransmit_after, TIMER_RETRANSMIT);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg) {
        self.inner.on_message(ctx, from, msg);
        self.admit(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, timer: Timer) {
        match timer.kind {
            TIMER_PACE => {
                if self
                    .inner
                    .limit
                    .map(|l| self.inner.next_seq < l)
                    .unwrap_or(true)
                {
                    self.backlog.push_back(ctx.now());
                    ctx.metrics().incr("client.arrivals", 1);
                }
                self.admit(ctx);
                ctx.set_timer(self.interval, TIMER_PACE);
            }
            _ => self.inner.on_timer(ctx, timer),
        }
    }
}

/// What the admin does next.
enum AdminPhase {
    /// Waiting to start step `idx` at the scheduled time.
    Waiting { idx: usize },
    /// Reconfiguration sent; waiting for the `ok` reply.
    Pending { idx: usize, started: SimTime },
    /// All steps done.
    Done,
}

/// Drives a scripted sequence of reconfigurations and records their
/// latencies: each step is `(at, members)` — at virtual time `at`,
/// reconfigure the machine to exactly `members`.
pub struct AdminActor<S: StateMachine> {
    servers: Vec<NodeId>,
    target: NodeId,
    script: Vec<(SimTime, Vec<NodeId>)>,
    phase: AdminPhase,
    retry: SimDuration,
    /// `(started, finished, resulting epoch)` per completed step.
    results: Vec<(SimTime, SimTime, Epoch)>,
    _marker: std::marker::PhantomData<S>,
}

impl<S: StateMachine> AdminActor<S> {
    /// Creates an admin executing `script` against `servers`.
    pub fn new(servers: Vec<NodeId>, script: Vec<(SimTime, Vec<NodeId>)>) -> Self {
        assert!(!servers.is_empty());
        let target = servers[0];
        AdminActor {
            servers,
            target,
            script,
            phase: AdminPhase::Waiting { idx: 0 },
            retry: SimDuration::from_millis(100),
            results: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Completed reconfigurations as `(started, finished, new_epoch)`.
    pub fn results(&self) -> &[(SimTime, SimTime, Epoch)] {
        &self.results
    }

    /// True once the whole script has executed.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, AdminPhase::Done)
    }

    fn rotate_target(&mut self) {
        let idx = self
            .servers
            .iter()
            .position(|&s| s == self.target)
            .unwrap_or(0);
        self.target = self.servers[(idx + 1) % self.servers.len()];
    }

    fn pump(&mut self, ctx: &mut Context<'_, RsmrMsg<S::Op, S::Output>>) {
        if let AdminPhase::Waiting { idx } = self.phase {
            let Some((at, members)) = self.script.get(idx).cloned() else {
                self.phase = AdminPhase::Done;
                return;
            };
            if ctx.now() >= at {
                self.phase = AdminPhase::Pending {
                    idx,
                    started: ctx.now(),
                };
                ctx.send(self.target, RsmrMsg::Reconfigure { members });
            }
        }
    }
}

impl<S: StateMachine> Actor for AdminActor<S> {
    type Msg = RsmrMsg<S::Op, S::Output>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        self.pump(ctx);
        ctx.set_timer(self.retry, TIMER_RETRANSMIT);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, _from: NodeId, msg: Self::Msg) {
        if let RsmrMsg::ReconfigureReply { epoch, ok, leader } = msg {
            let AdminPhase::Pending { idx, started } = self.phase else {
                return;
            };
            if ok {
                let finished = ctx.now();
                self.results.push((started, finished, epoch));
                ctx.metrics().observe(
                    "admin.reconfig_latency_us",
                    finished.since(started).as_micros() as f64,
                );
                // The member set changed: refresh our server list.
                if let Some((_, members)) = self.script.get(idx) {
                    if !members.is_empty() {
                        self.servers = members.clone();
                        self.target = self.servers[0];
                    }
                }
                self.phase = AdminPhase::Waiting { idx: idx + 1 };
                self.pump(ctx);
            } else {
                match leader {
                    Some(l) if self.servers.contains(&l) => self.target = l,
                    _ => self.rotate_target(),
                }
                // Re-send the refused step.
                if let Some((_, members)) = self.script.get(idx).cloned() {
                    ctx.send(self.target, RsmrMsg::Reconfigure { members });
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, _timer: Timer) {
        // Drive scheduled steps and retry a pending one that got lost.
        match self.phase {
            AdminPhase::Pending { idx, started } => {
                if ctx.now().since(started) >= self.retry * 4 {
                    self.rotate_target();
                    if let Some((_, members)) = self.script.get(idx).cloned() {
                        ctx.send(self.target, RsmrMsg::Reconfigure { members });
                    }
                    // Keep the original start time: retries are part of the
                    // reconfiguration latency.
                    self.phase = AdminPhase::Pending { idx, started };
                }
            }
            _ => self.pump(ctx),
        }
        ctx.set_timer(self.retry, TIMER_RETRANSMIT);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state_machine::CounterSm;

    #[test]
    fn client_tracks_member_updates() {
        let mut c: RsmrClient<CounterSm> = RsmrClient::new(vec![NodeId(1), NodeId(2)], |_| 1, None);
        assert_eq!(c.known_servers(), &[NodeId(1), NodeId(2)]);
        c.adopt_members(&[NodeId(2), NodeId(3)]);
        assert_eq!(c.known_servers(), &[NodeId(2), NodeId(3)]);
        // Target left the set → snapped to a member.
        assert!(c.known_servers().contains(&c.target));
        // Empty member lists are ignored.
        c.adopt_members(&[]);
        assert_eq!(c.known_servers(), &[NodeId(2), NodeId(3)]);
    }

    #[test]
    fn client_rotates_through_servers() {
        let mut c: RsmrClient<CounterSm> =
            RsmrClient::new(vec![NodeId(1), NodeId(2), NodeId(3)], |_| 1, None);
        assert_eq!(c.target, NodeId(1));
        c.rotate_target();
        assert_eq!(c.target, NodeId(2));
        c.rotate_target();
        c.rotate_target();
        assert_eq!(c.target, NodeId(1));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn client_needs_servers() {
        let _: RsmrClient<CounterSm> = RsmrClient::new(vec![], |_| 1, None);
    }

    #[test]
    fn admin_script_is_sequenced() {
        let a: AdminActor<CounterSm> = AdminActor::new(
            vec![NodeId(1)],
            vec![(SimTime::from_secs(1), vec![NodeId(1), NodeId(2)])],
        );
        assert!(!a.is_done());
        assert!(a.results().is_empty());
    }
}
