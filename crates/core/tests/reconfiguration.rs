//! End-to-end tests of the composed reconfigurable machine: clients keep
//! completing operations exactly-once while the member set changes under
//! them, new members anchor via state transfer, and crashes during
//! reconfiguration do not lose history.

use std::cell::RefCell;
use std::rc::Rc;

use consensus::StaticConfig;
use rsmr_core::{
    AdminActor, CounterSm, Epoch, InvariantObserver, OpenLoopClient, RsmrClient, RsmrMsg, RsmrNode,
    RsmrTunables,
};
use simnet::observe::shared;
use simnet::{Actor, Context, NetConfig, NodeId, Sim, SimDuration, SimTime, Timer};

type Msg = RsmrMsg<u64, u64>;

/// One world actor: server, client, paced client or admin.
#[allow(clippy::large_enum_variant)] // one value per node, stored once
enum Node {
    Server(RsmrNode<CounterSm>),
    Client(RsmrClient<CounterSm>),
    Paced(OpenLoopClient<CounterSm>),
    Admin(AdminActor<CounterSm>),
}

impl Actor for Node {
    type Msg = Msg;
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        match self {
            Node::Server(a) => a.on_start(ctx),
            Node::Client(a) => a.on_start(ctx),
            Node::Paced(a) => a.on_start(ctx),
            Node::Admin(a) => a.on_start(ctx),
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        match self {
            Node::Server(a) => a.on_message(ctx, from, msg),
            Node::Client(a) => a.on_message(ctx, from, msg),
            Node::Paced(a) => a.on_message(ctx, from, msg),
            Node::Admin(a) => a.on_message(ctx, from, msg),
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, timer: Timer) {
        match self {
            Node::Server(a) => a.on_timer(ctx, timer),
            Node::Client(a) => a.on_timer(ctx, timer),
            Node::Paced(a) => a.on_timer(ctx, timer),
            Node::Admin(a) => a.on_timer(ctx, timer),
        }
    }
}

struct World {
    sim: Sim<Node>,
    servers: Vec<NodeId>,
    /// Checks protocol invariants online; strict, so a violation panics
    /// mid-run rather than at the final assertion.
    checker: Rc<RefCell<InvariantObserver>>,
}

const CLIENT_BASE: u64 = 100;
const ADMIN: NodeId = NodeId(99);

impl World {
    fn new(seed: u64, n_servers: u64) -> Self {
        let mut sim: Sim<Node> = Sim::new(seed, NetConfig::lan());
        let checker = shared(InvariantObserver::strict());
        sim.add_observer(checker.clone());
        let servers: Vec<NodeId> = (0..n_servers).map(NodeId).collect();
        let genesis = StaticConfig::new(servers.clone());
        for &s in &servers {
            sim.add_node_with_id(
                s,
                Node::Server(RsmrNode::genesis(
                    s,
                    genesis.clone(),
                    RsmrTunables::default(),
                )),
            );
        }
        World {
            sim,
            servers,
            checker,
        }
    }

    /// Re-asserts the online invariant check and that events flowed at all.
    fn assert_invariants(&self) {
        let checker = self.checker.borrow();
        checker.assert_clean();
        assert!(
            checker.domain_events_seen() > 0,
            "the invariant observer saw no domain events"
        );
    }

    fn add_client(&mut self, idx: u64, limit: Option<u64>) -> NodeId {
        let id = NodeId(CLIENT_BASE + idx);
        self.sim.add_node_with_id(
            id,
            Node::Client(RsmrClient::new(self.servers.clone(), |_| 1, limit)),
        );
        id
    }

    fn add_admin(&mut self, script: Vec<(SimTime, Vec<NodeId>)>) {
        self.sim.add_node_with_id(
            ADMIN,
            Node::Admin(AdminActor::new(self.servers.clone(), script)),
        );
    }

    /// Adds a *joining* server (not in the genesis config).
    fn add_joiner(&mut self, id: NodeId) {
        self.sim.add_node_with_id(
            id,
            Node::Server(RsmrNode::joining(id, RsmrTunables::default())),
        );
    }

    fn completed(&self, client: NodeId) -> u64 {
        match self.sim.actor(client) {
            Some(Node::Client(c)) => c.completed(),
            Some(Node::Paced(c)) => c.completed(),
            _ => 0,
        }
    }

    fn server(&self, id: NodeId) -> Option<&RsmrNode<CounterSm>> {
        match self.sim.actor(id) {
            Some(Node::Server(s)) => Some(s),
            _ => None,
        }
    }

    fn admin_results(&self) -> Vec<(SimTime, SimTime, Epoch)> {
        match self.sim.actor(ADMIN) {
            Some(Node::Admin(a)) => a.results().to_vec(),
            _ => vec![],
        }
    }

    /// Counter values of all live servers anchored in the newest epoch.
    fn anchored_values(&self, members: &[NodeId]) -> Vec<(NodeId, u64, Option<Epoch>)> {
        members
            .iter()
            .filter_map(|&m| {
                self.server(m)
                    .map(|s| (m, s.state_machine().value(), s.anchored_epoch()))
            })
            .collect()
    }
}

#[test]
fn steady_state_without_reconfiguration() {
    let mut w = World::new(1, 3);
    let c = w.add_client(0, Some(100));
    w.sim.run_for(SimDuration::from_secs(10));
    assert_eq!(w.completed(c), 100);
    // Every server applied the same 100 increments.
    for &s in &w.servers.clone() {
        let server = w.server(s).unwrap();
        assert_eq!(server.state_machine().value(), 100, "server {s}");
        assert_eq!(server.anchored_epoch(), Some(Epoch(0)));
    }
}

#[test]
fn add_one_member_under_load() {
    let mut w = World::new(2, 3);
    let c = w.add_client(0, Some(600));
    let joiner = NodeId(3);
    w.add_joiner(joiner);
    w.add_admin(vec![(
        SimTime::from_millis(500),
        vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
    )]);

    w.sim.run_for(SimDuration::from_secs(20));

    assert_eq!(
        w.completed(c),
        600,
        "client must finish across the reconfig"
    );
    let results = w.admin_results();
    assert_eq!(results.len(), 1, "reconfiguration must complete");
    assert_eq!(results[0].2, Epoch(1));

    // The joiner anchored, installed the chain, and converged to the same
    // application state as the old members.
    let joiner_node = w.server(joiner).unwrap();
    assert!(joiner_node.anchored_epoch() >= Some(Epoch(1)));
    assert_eq!(joiner_node.chain().unwrap().latest_epoch(), Epoch(1));
    let vals = w.anchored_values(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    for (id, v, _) in &vals {
        assert_eq!(*v, 600, "server {id} diverged: {vals:?}");
    }
    w.assert_invariants();
}

#[test]
fn remove_one_member_under_load() {
    let mut w = World::new(3, 5);
    let c = w.add_client(0, Some(500));
    w.add_admin(vec![(
        SimTime::from_millis(400),
        vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
    )]);
    w.sim.run_for(SimDuration::from_secs(20));
    assert_eq!(w.completed(c), 500);
    assert_eq!(w.admin_results().len(), 1);
    // The removed node finalized the old epoch but runs no new instance.
    let removed = w.server(NodeId(4)).unwrap();
    assert_eq!(removed.anchored_epoch(), Some(Epoch(1)));
    let survivors = w.anchored_values(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    for (id, v, _) in &survivors {
        assert_eq!(*v, 500, "server {id} diverged");
    }
    w.assert_invariants();
}

#[test]
fn replace_the_entire_configuration() {
    let mut w = World::new(4, 3);
    let c = w.add_client(0, Some(800));
    for id in [3, 4, 5] {
        w.add_joiner(NodeId(id));
    }
    w.add_admin(vec![(
        SimTime::from_millis(500),
        vec![NodeId(3), NodeId(4), NodeId(5)],
    )]);

    w.sim.run_for(SimDuration::from_secs(30));

    assert_eq!(
        w.completed(c),
        800,
        "client must finish across full replacement"
    );
    assert_eq!(w.admin_results().len(), 1);
    for id in [3u64, 4, 5] {
        let s = w.server(NodeId(id)).unwrap();
        assert_eq!(s.anchored_epoch(), Some(Epoch(1)), "n{id} not anchored");
        assert_eq!(s.state_machine().value(), 800, "n{id} diverged");
    }
}

#[test]
fn back_to_back_reconfigurations() {
    let mut w = World::new(5, 3);
    let c = w.add_client(0, Some(1000));
    for id in [3, 4, 5, 6] {
        w.add_joiner(NodeId(id));
    }
    // Grow 3→5, then rotate two members, then shrink to 3.
    w.add_admin(vec![
        (
            SimTime::from_millis(300),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)],
        ),
        (
            SimTime::from_millis(900),
            vec![NodeId(0), NodeId(3), NodeId(4), NodeId(5), NodeId(6)],
        ),
        (
            SimTime::from_millis(1500),
            vec![NodeId(4), NodeId(5), NodeId(6)],
        ),
    ]);

    w.sim.run_for(SimDuration::from_secs(40));

    assert_eq!(w.completed(c), 1000);
    let results = w.admin_results();
    assert_eq!(
        results.len(),
        3,
        "all three reconfigs must land: {results:?}"
    );
    assert_eq!(results[2].2, Epoch(3));
    for id in [4u64, 5, 6] {
        let s = w.server(NodeId(id)).unwrap();
        assert_eq!(s.anchored_epoch(), Some(Epoch(3)), "n{id}");
        assert_eq!(s.state_machine().value(), 1000, "n{id} diverged");
    }
    w.assert_invariants();
}

#[test]
fn leader_crash_during_reconfiguration() {
    let mut w = World::new(6, 3);
    let c = w.add_client(0, Some(800));
    let joiner = NodeId(3);
    w.add_joiner(joiner);
    w.add_admin(vec![(
        SimTime::from_millis(500),
        vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
    )]);

    // Find the current leader just before the reconfiguration fires, then
    // kill it right after the admin's request lands.
    w.sim.run_for(SimDuration::from_millis(520));
    let leader = w
        .servers
        .clone()
        .into_iter()
        .find(|&s| w.server(s).map(|n| n.is_active_leader()).unwrap_or(false));
    if let Some(l) = leader {
        w.sim.crash(l);
    }
    w.sim.run_for(SimDuration::from_secs(40));

    assert_eq!(w.completed(c), 800, "client must finish despite the crash");
    // Survivors agree.
    let mut values = vec![];
    for id in [0u64, 1, 2, 3] {
        if Some(NodeId(id)) == leader {
            continue;
        }
        if let Some(s) = w.server(NodeId(id)) {
            if s.anchored_epoch() >= Some(Epoch(1)) {
                values.push(s.state_machine().value());
            }
        }
    }
    assert!(!values.is_empty());
    assert!(values.iter().all(|&v| v == 800), "{values:?}");
    w.assert_invariants();
}

#[test]
fn crashed_member_recovers_from_stable_storage() {
    let mut w = World::new(7, 3);
    let c = w.add_client(0, Some(900));
    w.sim.run_for(SimDuration::from_millis(400));
    // Crash a follower mid-run.
    let victim = w
        .servers
        .clone()
        .into_iter()
        .find(|&s| w.server(s).map(|n| !n.is_active_leader()).unwrap_or(false))
        .unwrap();
    w.sim.crash(victim);
    w.sim.run_for(SimDuration::from_secs(2));
    let recovered =
        RsmrNode::<CounterSm>::recover(victim, RsmrTunables::default(), w.sim.storage(victim))
            .expect("persisted base must exist");
    w.sim.restart(victim, Node::Server(recovered));
    w.sim.run_for(SimDuration::from_secs(30));

    assert_eq!(w.completed(c), 900);
    let s = w.server(victim).unwrap();
    assert_eq!(
        s.state_machine().value(),
        900,
        "recovered replica must replay to the same state"
    );
}

#[test]
fn exactly_once_across_reconfigurations_with_paced_load() {
    // A paced client straddling a reconfiguration: every arrival completes
    // exactly once even though retransmissions and tail-reproposals can
    // commit the same command in two epochs.
    let mut w = World::new(8, 3);
    let joiner = NodeId(3);
    w.add_joiner(joiner);
    let client = NodeId(CLIENT_BASE);
    let servers = w.servers.clone();
    w.sim.add_node_with_id(
        client,
        Node::Paced(OpenLoopClient::new(
            servers,
            |_| 1,
            SimDuration::from_millis(2),
            Some(700),
        )),
    );
    w.add_admin(vec![(
        SimTime::from_millis(400),
        vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
    )]);
    w.sim.run_for(SimDuration::from_secs(25));

    assert_eq!(w.completed(client), 700);
    for id in [0u64, 1, 2, 3] {
        let s = w.server(NodeId(id)).unwrap();
        assert_eq!(
            s.state_machine().value(),
            700,
            "n{id}: duplicate application would overshoot"
        );
    }
    // Dedup must actually have been exercised somewhere (retransmits or
    // reproposals) — if not, this test isn't testing anything; tolerate
    // zero but record the count for visibility.
    let _ = w.sim.metrics().counter("rsmr.dedup_hits");
}

#[test]
fn old_instances_are_retired_and_storage_reclaimed() {
    let mut w = World::new(9, 3);
    let c = w.add_client(0, Some(300));
    w.add_admin(vec![(
        SimTime::from_millis(300),
        vec![NodeId(0), NodeId(1)],
    )]);
    w.sim.run_for(SimDuration::from_secs(20));
    assert_eq!(w.completed(c), 300);
    // After the retire grace period, survivors run only the new instance.
    for id in [0u64, 1] {
        let s = w.server(NodeId(id)).unwrap();
        assert_eq!(s.active_epoch(), Some(Epoch(1)));
        assert_eq!(s.anchored_epoch(), Some(Epoch(1)));
    }
    assert!(w.sim.metrics().counter("rsmr.instances_retired") > 0);
}

#[test]
fn local_reads_skip_the_log_and_survive_reconfiguration() {
    // Counter op 0 is a pure read (query-able). With leases on, reads are
    // served locally; across a reconfiguration the counts stay exact.
    let mut tun = RsmrTunables {
        local_reads: true,
        ..RsmrTunables::default()
    };
    tun.paxos.lease_duration = Some(SimDuration::from_millis(100));

    let mut sim: Sim<Node> = Sim::new(15, NetConfig::lan());
    let servers: Vec<NodeId> = (0..3).map(NodeId).collect();
    let genesis = StaticConfig::new(servers.clone());
    for &s in &servers {
        sim.add_node_with_id(
            s,
            Node::Server(RsmrNode::genesis(s, genesis.clone(), tun.clone())),
        );
    }
    sim.add_node_with_id(NodeId(3), Node::Server(RsmrNode::joining(NodeId(3), tun)));
    // Alternate write (add 1) and read (add 0).
    let client = NodeId(CLIENT_BASE);
    sim.add_node_with_id(
        client,
        Node::Client(RsmrClient::new(
            servers.clone(),
            |seq| if seq % 2 == 0 { 1 } else { 0 },
            Some(600),
        )),
    );
    sim.add_node_with_id(
        NodeId(99),
        Node::Admin(AdminActor::new(
            servers,
            vec![(
                SimTime::from_millis(300),
                vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            )],
        )),
    );
    sim.run_for(SimDuration::from_secs(20));

    assert_eq!(w_completed(&sim, client), 600);
    assert!(
        sim.metrics().counter("rsmr.local_reads") > 100,
        "reads must actually be served locally: {}",
        sim.metrics().counter("rsmr.local_reads")
    );
    // 300 writes of +1 → every anchored server agrees on 300, and only the
    // 300 writes went through apply (reads were pure queries).
    for id in [0u64, 1, 2, 3] {
        if let Some(Node::Server(s)) = sim.actor(NodeId(id)) {
            assert_eq!(s.state_machine().value(), 300, "n{id}");
        }
    }
}

fn w_completed(sim: &Sim<Node>, client: NodeId) -> u64 {
    match sim.actor(client) {
        Some(Node::Client(c)) => c.completed(),
        Some(Node::Paced(c)) => c.completed(),
        _ => 0,
    }
}

#[test]
fn batching_preserves_exactly_once_and_cuts_proposals() {
    // Same workload with and without leader-side batching: identical
    // results, far fewer consensus entries.
    let run = |batch_size: usize| {
        let mut sim: Sim<Node> = Sim::new(77, NetConfig::lan());
        let servers: Vec<NodeId> = (0..3).map(NodeId).collect();
        let genesis = StaticConfig::new(servers.clone());
        let tun = RsmrTunables {
            batch_size,
            ..RsmrTunables::default()
        };
        for &s in &servers {
            sim.add_node_with_id(
                s,
                Node::Server(RsmrNode::genesis(s, genesis.clone(), tun.clone())),
            );
        }
        for c in 0..4u64 {
            sim.add_node_with_id(
                NodeId(CLIENT_BASE + c),
                Node::Client(RsmrClient::new(servers.clone(), |_| 1, Some(200))),
            );
        }
        sim.run_for(SimDuration::from_secs(20));
        let done: u64 = (0..4u64)
            .map(|c| match sim.actor(NodeId(CLIENT_BASE + c)) {
                Some(Node::Client(cl)) => cl.completed(),
                _ => 0,
            })
            .sum();
        let value = match sim.actor(NodeId(0)) {
            Some(Node::Server(s)) => s.state_machine().value(),
            _ => 0,
        };
        let accepts = sim.metrics().label_count("paxos.accept");
        (done, value, accepts)
    };
    let (done_plain, value_plain, accepts_plain) = run(0);
    let (done_batch, value_batch, accepts_batch) = run(64);
    assert_eq!(done_plain, 800);
    assert_eq!(done_batch, 800);
    assert_eq!(value_plain, 800, "exactly-once without batching");
    assert_eq!(value_batch, 800, "exactly-once with batching");
    // Adaptive group commit flushes eagerly when the pipeline idles, so
    // with only 4 closed-loop clients batches stay small; require a solid
    // (not maximal) reduction.
    assert!(
        accepts_batch * 4 < accepts_plain * 3,
        "batching should cut accept traffic by ≥25%: {accepts_batch} vs {accepts_plain}"
    );
}

#[test]
fn paced_client_respects_its_arrival_rate() {
    // Regression test: the paced client must be arrival-limited (one op
    // per interval), not closed-loop at completion speed.
    let mut w = World::new(12, 3);
    let client = NodeId(CLIENT_BASE);
    let servers = w.servers.clone();
    w.sim.add_node_with_id(
        client,
        Node::Paced(OpenLoopClient::new(
            servers,
            |_| 1,
            SimDuration::from_millis(10), // 100 ops/s intended
            None,
        )),
    );
    w.sim.run_for(SimDuration::from_secs(5));
    let done = w.completed(client);
    // 5s at 100/s = ~500; allow startup slack but reject closed-loop rates
    // (which would be in the thousands).
    assert!(
        (350..=520).contains(&done),
        "paced client completed {done}, expected ≈500"
    );
}

#[test]
fn removing_the_leader_nominates_a_successor() {
    // Reconfigure away exactly the current leader: the closing leader is
    // not in the successor, so it must nominate a member to campaign
    // immediately instead of letting the new epoch wait out an election
    // timeout.
    let mut w = World::new(10, 3);
    let c = w.add_client(0, Some(600));
    w.sim.run_for(SimDuration::from_millis(400));
    let leader = w
        .servers
        .clone()
        .into_iter()
        .find(|&s| w.server(s).map(|n| n.is_active_leader()).unwrap_or(false))
        .expect("leader elected");
    let survivors: Vec<NodeId> = w
        .servers
        .clone()
        .into_iter()
        .filter(|&s| s != leader)
        .collect();
    w.add_admin(vec![(
        w.sim.now() + SimDuration::from_millis(100),
        survivors.clone(),
    )]);
    w.sim.run_for(SimDuration::from_secs(20));

    assert_eq!(w.completed(c), 600);
    assert_eq!(w.admin_results().len(), 1);
    assert!(
        w.sim.metrics().counter("rsmr.nominations") >= 1,
        "the removed leader must nominate a successor"
    );
    for &s in &survivors {
        let n = w.server(s).unwrap();
        assert_eq!(n.anchored_epoch(), Some(Epoch(1)));
        assert_eq!(n.state_machine().value(), 600);
    }
}

#[test]
fn deterministic_replay_same_seed_same_outcome() {
    let run = |seed: u64| {
        let mut w = World::new(seed, 3);
        let c = w.add_client(0, Some(200));
        w.add_joiner(NodeId(3));
        w.add_admin(vec![(
            SimTime::from_millis(300),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
        )]);
        w.sim.run_for(SimDuration::from_secs(15));
        (
            w.completed(c),
            w.sim.metrics().counter("net.sent"),
            w.sim.metrics().counter("rsmr.applied"),
        )
    };
    assert_eq!(run(42), run(42));
}
