//! Adversarial scenarios for the composed machine: lossy networks,
//! partitions across reconfigurations, racing admins, and randomized churn.

use consensus::StaticConfig;
use rsmr_core::harness::World;
use rsmr_core::{AdminActor, CounterSm, Epoch, RsmrClient, RsmrNode, RsmrTunables};
use simnet::{NetConfig, NodeId, Sim, SimDuration, SimRng, SimTime};

const ADMIN: NodeId = NodeId(99);
const ADMIN2: NodeId = NodeId(98);

fn world(seed: u64, n: u64, net: NetConfig) -> (Sim<World<CounterSm>>, Vec<NodeId>) {
    let mut sim: Sim<World<CounterSm>> = Sim::new(seed, net);
    let servers: Vec<NodeId> = (0..n).map(NodeId).collect();
    let genesis = StaticConfig::new(servers.clone());
    for &s in &servers {
        sim.add_node_with_id(
            s,
            World::server(RsmrNode::genesis(
                s,
                genesis.clone(),
                RsmrTunables::default(),
            )),
        );
    }
    (sim, servers)
}

#[test]
fn reconfiguration_completes_on_a_lossy_network() {
    let (mut sim, servers) = world(1, 3, NetConfig::lossy(0.03));
    sim.add_node_with_id(
        NodeId(3),
        World::server(RsmrNode::joining(NodeId(3), RsmrTunables::default())),
    );
    let client = NodeId(100);
    sim.add_node_with_id(
        client,
        World::client(RsmrClient::new(servers.clone(), |_| 1, Some(300))),
    );
    sim.add_node_with_id(
        ADMIN,
        World::admin(AdminActor::new(
            servers,
            vec![(
                SimTime::from_millis(400),
                vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            )],
        )),
    );
    sim.run_for(SimDuration::from_secs(90));
    assert_eq!(sim.actor(client).unwrap().completed(), 300);
    let admin = sim.actor(ADMIN).unwrap().as_admin().unwrap();
    assert_eq!(admin.results().len(), 1, "reconfig must survive loss");
    let joiner = sim.actor(NodeId(3)).unwrap().as_server().unwrap();
    assert_eq!(joiner.state_machine().value(), 300);
}

#[test]
fn partition_of_the_minority_does_not_block_reconfiguration() {
    let (mut sim, servers) = world(2, 5, NetConfig::lan());
    let client = NodeId(100);
    sim.add_node_with_id(
        client,
        World::client(RsmrClient::new(servers.clone(), |_| 1, Some(400))),
    );
    // Cut two nodes off, then reconfigure to exactly the majority side.
    sim.run_for(SimDuration::from_millis(300));
    sim.partition(&[NodeId(3), NodeId(4)], &[NodeId(0), NodeId(1), NodeId(2)]);
    sim.add_node_with_id(
        ADMIN,
        World::admin(AdminActor::new(
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![(
                sim.now() + SimDuration::from_millis(100),
                vec![NodeId(0), NodeId(1), NodeId(2)],
            )],
        )),
    );
    sim.run_for(SimDuration::from_secs(30));
    assert_eq!(sim.actor(client).unwrap().completed(), 400);
    let admin = sim.actor(ADMIN).unwrap().as_admin().unwrap();
    assert_eq!(admin.results().len(), 1);
    // The majority side finalized epoch 1 and keeps serving.
    for id in [0u64, 1, 2] {
        let s = sim.actor(NodeId(id)).unwrap().as_server().unwrap();
        assert_eq!(s.anchored_epoch(), Some(Epoch(1)), "n{id}");
    }
    // The partitioned minority never saw the new epoch.
    for id in [3u64, 4] {
        let s = sim.actor(NodeId(id)).unwrap().as_server().unwrap();
        assert_eq!(s.anchored_epoch(), Some(Epoch(0)), "n{id}");
    }
}

#[test]
fn racing_admins_yield_a_linear_configuration_chain() {
    let (mut sim, servers) = world(3, 3, NetConfig::lan());
    let client = NodeId(100);
    sim.add_node_with_id(
        client,
        World::client(RsmrClient::new(servers.clone(), |_| 1, Some(400))),
    );
    for id in [3u64, 4] {
        sim.add_node_with_id(
            NodeId(id),
            World::server(RsmrNode::joining(NodeId(id), RsmrTunables::default())),
        );
    }
    // Two admins fire conflicting reconfigurations at the same instant.
    sim.add_node_with_id(
        ADMIN,
        World::admin(AdminActor::new(
            servers.clone(),
            vec![(
                SimTime::from_millis(500),
                vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            )],
        )),
    );
    sim.add_node_with_id(
        ADMIN2,
        World::admin(AdminActor::new(
            servers.clone(),
            vec![(
                SimTime::from_millis(500),
                vec![NodeId(0), NodeId(1), NodeId(2), NodeId(4)],
            )],
        )),
    );
    sim.run_for(SimDuration::from_secs(40));

    assert_eq!(sim.actor(client).unwrap().completed(), 400);
    // Both admins eventually succeed (their targets are applied in *some*
    // order), and every replica agrees on one linear chain.
    let a1 = sim
        .actor(ADMIN)
        .unwrap()
        .as_admin()
        .unwrap()
        .results()
        .len();
    let a2 = sim
        .actor(ADMIN2)
        .unwrap()
        .as_admin()
        .unwrap()
        .results()
        .len();
    assert_eq!(a1 + a2, 2, "both reconfigurations must land");
    let mut chains = Vec::new();
    for id in 0..3u64 {
        let s = sim.actor(NodeId(id)).unwrap().as_server().unwrap();
        if let Some(chain) = s.chain() {
            chains.push(
                chain
                    .iter()
                    .map(|(e, c)| (e, c.members().to_vec()))
                    .collect::<Vec<_>>(),
            );
        }
    }
    // All replicas that still track the chain agree on its latest link.
    let latest: Vec<_> = chains.iter().filter_map(|c| c.last().cloned()).collect();
    assert!(
        latest.windows(2).all(|w| w[0] == w[1]),
        "chain fork observed: {latest:?}"
    );
}

/// Donor failover: the joiner's *sole original* transfer donor is cut off
/// for the entire handoff window, and the joiner must still anchor the new
/// epoch by retrying against an alternate donor — the handoff never pins
/// itself to one provider.
#[test]
fn joiner_anchors_despite_its_original_donor_partitioned_all_window() {
    let (mut sim, servers) = world(7, 3, NetConfig::lan());
    sim.add_node_with_id(
        NodeId(3),
        World::server(RsmrNode::joining(NodeId(3), RsmrTunables::default())),
    );
    let client = NodeId(100);
    sim.add_node_with_id(
        client,
        World::client(RsmrClient::new(servers.clone(), |_| 1, Some(300))),
    );
    sim.add_node_with_id(
        ADMIN,
        World::admin(AdminActor::new(
            servers,
            vec![(
                SimTime::from_millis(400),
                vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            )],
        )),
    );
    // Advance in small steps until the joiner has picked its donor.
    sim.run_for(SimDuration::from_millis(399));
    let donor = loop {
        assert!(
            sim.now() < SimTime::from_millis(600),
            "joiner never started its transfer"
        );
        let provider = sim
            .actor(NodeId(3))
            .and_then(|w| w.as_server())
            .and_then(|n| n.transfer_provider());
        if let Some(p) = provider {
            break p;
        }
        sim.run_for(SimDuration::from_micros(20));
    };
    // Cut the donor off from everyone for the whole remaining window.
    let others: Vec<NodeId> = (0..4)
        .map(NodeId)
        .filter(|&n| n != donor)
        .chain([client, ADMIN])
        .collect();
    sim.partition(&[donor], &others);
    sim.run_for(SimDuration::from_secs(10));
    // Still partitioned: the joiner anchored through an alternate donor.
    let joiner = sim.actor(NodeId(3)).unwrap().as_server().unwrap();
    assert_eq!(
        joiner.anchored_epoch(),
        Some(Epoch(1)),
        "failover to an alternate donor must complete the handoff"
    );
    let admin = sim.actor(ADMIN).unwrap().as_admin().unwrap();
    assert_eq!(admin.results().len(), 1);
    // After healing, the cut donor catches up and the workload finishes.
    sim.heal_all();
    sim.run_for(SimDuration::from_secs(30));
    assert_eq!(sim.actor(client).unwrap().completed(), 300);
    let s = sim.actor(donor).unwrap().as_server().unwrap();
    assert_eq!(s.anchored_epoch(), Some(Epoch(1)));
}

/// Random churn schedules preserve exactly-once application: the counter's
/// final value equals the number of completed increments. Cases are drawn
/// from a seeded generator so every failure is reproducible.
#[test]
fn exactly_once_under_random_churn() {
    let mut gen = SimRng::seed_from_u64(0xC0FFEE);
    for _case in 0..10 {
        let seed = gen.gen_range(0u64..50_000);
        let n_reconfigs = gen.gen_range(1usize..4);
        let spacing_ms = gen.gen_range(300u64..900);

        let (mut sim, servers) = world(seed, 3, NetConfig::lan());
        let client = NodeId(100);
        sim.add_node_with_id(
            client,
            World::client(RsmrClient::new(servers.clone(), |_| 1, Some(500))),
        );
        sim.add_node_with_id(
            NodeId(3),
            World::server(RsmrNode::joining(NodeId(3), RsmrTunables::default())),
        );
        let script: Vec<(SimTime, Vec<NodeId>)> = (0..n_reconfigs)
            .map(|i| {
                let at =
                    SimTime::from_millis(400) + SimDuration::from_millis(spacing_ms) * i as u64;
                let members = if i % 2 == 0 {
                    vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
                } else {
                    vec![NodeId(0), NodeId(1), NodeId(2)]
                };
                (at, members)
            })
            .collect();
        sim.add_node_with_id(ADMIN, World::admin(AdminActor::new(servers, script)));
        sim.run_for(SimDuration::from_secs(45));

        assert_eq!(sim.actor(client).unwrap().completed(), 500);
        let admin_done = sim
            .actor(ADMIN)
            .unwrap()
            .as_admin()
            .unwrap()
            .results()
            .len();
        assert_eq!(admin_done, n_reconfigs, "seed={seed}");
        // Exactly-once: whatever nodes still serve agree on value 500.
        for id in 0..3u64 {
            let s = sim.actor(NodeId(id)).unwrap().as_server().unwrap();
            if s.anchored_epoch() == Some(Epoch(n_reconfigs as u64)) {
                assert_eq!(s.state_machine().value(), 500, "n{id} seed={seed}");
            }
        }
    }
}
