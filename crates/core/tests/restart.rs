//! Crash/restart paths through the stable store: replicas recover with
//! [`RsmrNode::recover`] from what they persisted, mid-handoff and across
//! repeated failures, without double-applying client work.

use consensus::StaticConfig;
use rsmr_core::harness::World;
use rsmr_core::{AdminActor, CounterSm, Epoch, RsmrClient, RsmrNode, RsmrTunables};
use simnet::{NetConfig, NodeId, Sim, SimDuration, SimTime};

const ADMIN: NodeId = NodeId(99);
const CLIENT: NodeId = NodeId(100);
const OPS: u64 = 300;

/// 3 genesis servers, one joiner (node 3), a 300-op client and an admin
/// that widens the configuration to all four at `reconfig_at`.
fn reconfig_world(seed: u64, reconfig_at: SimTime) -> (Sim<World<CounterSm>>, Vec<NodeId>) {
    let mut sim: Sim<World<CounterSm>> = Sim::new(seed, NetConfig::lan());
    let servers: Vec<NodeId> = (0..3).map(NodeId).collect();
    let genesis = StaticConfig::new(servers.clone());
    for &s in &servers {
        sim.add_node_with_id(
            s,
            World::server(RsmrNode::genesis(
                s,
                genesis.clone(),
                RsmrTunables::default(),
            )),
        );
    }
    sim.add_node_with_id(
        NodeId(3),
        World::server(RsmrNode::joining(NodeId(3), RsmrTunables::default())),
    );
    sim.add_node_with_id(
        CLIENT,
        World::client(RsmrClient::new(servers.clone(), |_| 1, Some(OPS))),
    );
    sim.add_node_with_id(
        ADMIN,
        World::admin(AdminActor::new(
            servers.clone(),
            vec![(
                reconfig_at,
                vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            )],
        )),
    );
    (sim, servers)
}

/// Recovers `id` from its surviving stable store and restarts it.
fn recover_and_restart(sim: &mut Sim<World<CounterSm>>, id: NodeId) {
    let node = RsmrNode::<CounterSm>::recover(id, RsmrTunables::default(), sim.storage(id))
        .expect("a genesis member always has a persisted base");
    sim.restart(id, World::server(node));
}

/// Advances the sim in 200µs steps until `probe` is true, or panics after
/// `limit`. Returns the time at which the probe first held.
fn run_until_probe(
    sim: &mut Sim<World<CounterSm>>,
    limit: SimTime,
    what: &str,
    probe: impl Fn(&Sim<World<CounterSm>>) -> bool,
) -> SimTime {
    while !probe(sim) {
        assert!(sim.now() < limit, "never observed: {what}");
        sim.run_for(SimDuration::from_micros(200));
    }
    sim.now()
}

#[test]
fn restart_mid_transfer_recovers_from_the_stable_store() {
    let reconfig_at = SimTime::from_millis(400);
    let (mut sim, _servers) = reconfig_world(11, reconfig_at);
    sim.run_for(SimDuration::from_millis(399));
    // Wait for the joiner's state transfer to be in flight.
    run_until_probe(
        &mut sim,
        SimTime::from_millis(600),
        "joiner mid-transfer",
        |s| {
            s.actor(NodeId(3))
                .and_then(|w| w.as_server())
                .and_then(|n| n.transfer_provider())
                .is_some()
        },
    );
    // Crash a member that is not the donor, while the handoff is running.
    let donor = sim
        .actor(NodeId(3))
        .unwrap()
        .as_server()
        .unwrap()
        .transfer_provider()
        .unwrap();
    let victim = (0..3).map(NodeId).find(|&n| n != donor).unwrap();
    sim.crash(victim);
    sim.run_for(SimDuration::from_millis(50));
    recover_and_restart(&mut sim, victim);
    sim.run_for(SimDuration::from_secs(40));

    assert_eq!(sim.actor(CLIENT).unwrap().completed(), OPS);
    let admin = sim.actor(ADMIN).unwrap().as_admin().unwrap();
    assert_eq!(admin.results().len(), 1, "reconfig must complete");
    for id in [victim, NodeId(3)] {
        let s = sim.actor(id).unwrap().as_server().unwrap();
        assert_eq!(s.anchored_epoch(), Some(Epoch(1)), "{id}");
        assert_eq!(s.state_machine().value(), OPS, "{id} replays exactly once");
    }
}

#[test]
fn restart_with_an_epoch_sealed_but_not_anchored_catches_up() {
    let reconfig_at = SimTime::from_millis(400);
    let (mut sim, _servers) = reconfig_world(12, reconfig_at);
    sim.run_for(SimDuration::from_millis(399));
    // Wait for a genesis member that has sealed epoch 0 (it already runs an
    // epoch-1 instance) but has not yet anchored epoch 1.
    run_until_probe(
        &mut sim,
        SimTime::from_millis(600),
        "a member with epoch 0 sealed and epoch 1 unanchored",
        |s| {
            (0..3).map(NodeId).any(|n| {
                let node = s.actor(n).and_then(|w| w.as_server());
                node.is_some_and(|node| {
                    node.active_epoch() == Some(Epoch(1)) && node.anchored_epoch() == Some(Epoch(0))
                })
            })
        },
    );
    let victim = (0..3)
        .map(NodeId)
        .find(|&n| {
            let node = sim.actor(n).unwrap().as_server().unwrap();
            node.active_epoch() == Some(Epoch(1)) && node.anchored_epoch() == Some(Epoch(0))
        })
        .unwrap();
    sim.crash(victim);
    sim.run_for(SimDuration::from_millis(50));
    recover_and_restart(&mut sim, victim);
    // Its store still anchors epoch 0 — it must re-learn the seal and move
    // its anchor forward, not re-serve the stale configuration.
    sim.run_for(SimDuration::from_secs(40));

    assert_eq!(sim.actor(CLIENT).unwrap().completed(), OPS);
    let s = sim.actor(victim).unwrap().as_server().unwrap();
    assert_eq!(s.anchored_epoch(), Some(Epoch(1)));
    assert_eq!(s.state_machine().value(), OPS);
}

#[test]
fn double_restart_within_one_epoch_preserves_exactly_once() {
    let mut sim: Sim<World<CounterSm>> = Sim::new(13, NetConfig::lan());
    let servers: Vec<NodeId> = (0..3).map(NodeId).collect();
    let genesis = StaticConfig::new(servers.clone());
    for &s in &servers {
        sim.add_node_with_id(
            s,
            World::server(RsmrNode::genesis(
                s,
                genesis.clone(),
                RsmrTunables::default(),
            )),
        );
    }
    sim.add_node_with_id(
        CLIENT,
        World::client(RsmrClient::new(servers, |_| 1, Some(OPS))),
    );
    let victim = NodeId(2);
    sim.run_for(SimDuration::from_millis(150));
    sim.crash(victim);
    sim.run_for(SimDuration::from_millis(100));
    recover_and_restart(&mut sim, victim);
    sim.run_for(SimDuration::from_millis(200));
    sim.crash(victim);
    sim.run_for(SimDuration::from_millis(100));
    recover_and_restart(&mut sim, victim);
    sim.run_for(SimDuration::from_secs(30));

    assert_eq!(sim.actor(CLIENT).unwrap().completed(), OPS);
    let s = sim.actor(victim).unwrap().as_server().unwrap();
    assert_eq!(s.anchored_epoch(), Some(Epoch(0)), "no epoch ever changed");
    assert_eq!(
        s.state_machine().value(),
        OPS,
        "two replays from the store must not double-apply"
    );
}
