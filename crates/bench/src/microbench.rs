//! A minimal micro-benchmark harness.
//!
//! `cargo bench` invokes bench binaries with `--bench`, in which case each
//! benchmark runs a warm-up plus a fixed number of timed samples and prints
//! the median. Under `cargo test` (no `--bench` flag) every benchmark runs
//! exactly once as a smoke test, so the bench targets stay cheap in the
//! tier-1 gate.

use std::time::{Duration, Instant};

/// True when invoked by `cargo bench` (full measurement requested).
pub fn full_run() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// One benchmark's measured result.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name as printed.
    pub name: String,
    /// Median wall time of one routine invocation.
    pub median: Duration,
    /// Work items per routine invocation (for the per-element rate).
    pub elements: u64,
}

impl BenchResult {
    /// Median nanoseconds per element.
    pub fn ns_per_element(&self) -> f64 {
        self.median.as_nanos() as f64 / self.elements.max(1) as f64
    }
}

/// Runs `routine` over fresh `setup()` state, timing only the routine, and
/// prints the median sample. `elements` is how many logical work items one
/// routine invocation performs.
pub fn bench<T>(
    name: &str,
    elements: u64,
    mut setup: impl FnMut() -> T,
    mut routine: impl FnMut(&mut T),
) -> BenchResult {
    let samples = if full_run() { 10 } else { 1 };
    if full_run() {
        // Warm-up: one untimed invocation.
        let mut state = setup();
        routine(&mut state);
    }
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut state = setup();
        let start = Instant::now();
        routine(&mut state);
        times.push(start.elapsed());
    }
    times.sort();
    let median = times[times.len() / 2];
    let result = BenchResult {
        name: name.to_owned(),
        median,
        elements,
    };
    let rate = if median.as_nanos() > 0 {
        elements as f64 / median.as_secs_f64()
    } else {
        f64::INFINITY
    };
    println!(
        "{name:<40} median {:>12.3?}   {:>10.1} ns/elem   {:>12.0} elem/s",
        median,
        result.ns_per_element(),
        rate,
    );
    result
}
