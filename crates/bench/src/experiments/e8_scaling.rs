//! **E8 (Table 5)** — quorum-size scaling is inherited from the block.
//!
//! The composition's steady-state performance at size `n` should track the
//! bare static block at size `n`: the wrapper neither amplifies nor hides
//! the cost of bigger quorums.

use simnet::SimTime;

use super::ExpOutput;
use crate::runner::{run_many, Scenario, SystemKind};
use crate::table::Table;

/// One measurement row.
pub struct Row {
    /// System under test.
    pub kind: SystemKind,
    /// Cluster size.
    pub n: u64,
    /// Throughput, op/s.
    pub tput: f64,
    /// p50 latency, ms.
    pub p50_ms: f64,
    /// p99 latency, ms.
    pub p99_ms: f64,
}

/// Runs the sweep.
pub fn run_rows(quick: bool) -> Vec<Row> {
    let sizes: &[u64] = if quick { &[3, 7] } else { &[3, 5, 7, 9] };
    let horizon = SimTime::from_secs(if quick { 6 } else { 10 });
    // Independent runs: fan the (n, system) grid across cores.
    let cells: Vec<(SystemKind, u64)> = sizes
        .iter()
        .flat_map(|&n| [(SystemKind::Static, n), (SystemKind::Rsmr, n)])
        .collect();
    let jobs: Vec<(SystemKind, Scenario)> = cells
        .iter()
        .map(|&(kind, n)| {
            let sc = Scenario::new(0xE8 + n).servers(n).clients(4).until(horizon);
            (kind, sc)
        })
        .collect();
    run_many(jobs)
        .into_iter()
        .zip(cells)
        .map(|(mut out, (kind, n))| Row {
            kind,
            n,
            tput: out.throughput(SimTime::from_secs(1), horizon),
            p50_ms: out.latency_us(0.5) / 1000.0,
            p99_ms: out.latency_us(0.99) / 1000.0,
        })
        .collect()
}

/// Runs E8, returning the rendered text plus its table.
pub fn run_structured(quick: bool) -> ExpOutput {
    let rows = run_rows(quick);
    let mut t = Table::new(
        "E8 / Table 5 — scaling with configuration size (no reconfiguration)",
        &["n", "system", "throughput (op/s)", "p50 (ms)", "p99 (ms)"],
    );
    for r in &rows {
        t.row(&[
            r.n.to_string(),
            r.kind.name().into(),
            format!("{:.0}", r.tput),
            format!("{:.3}", r.p50_ms),
            format!("{:.3}", r.p99_ms),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "Shape expected from the paper: both curves degrade identically with \
         n (bigger quorums, more acks) — the composition inherits the block's \
         scaling behaviour verbatim.\n\n",
    );
    ExpOutput {
        histograms: Vec::new(),
        rendered: out,
        tables: vec![t],
    }
}

/// Renders E8.
pub fn run(quick: bool) -> String {
    run_structured(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_rsmr_tracks_static_at_every_size() {
        let rows = run_rows(true);
        let sizes: Vec<u64> = {
            let mut v: Vec<u64> = rows.iter().map(|r| r.n).collect();
            v.dedup();
            v
        };
        for n in sizes {
            let tput = |k: SystemKind| {
                rows.iter()
                    .find(|r| r.kind == k && r.n == n)
                    .map(|r| r.tput)
                    .unwrap()
            };
            let (s, r) = (tput(SystemKind::Static), tput(SystemKind::Rsmr));
            assert!(
                (r - s).abs() / s < 0.2,
                "n={n}: rsmr {r:.0} vs static {s:.0} diverge more than 20%"
            );
        }
    }
}
