//! **E2 (Figure 1)** — throughput timeline around one reconfiguration.
//!
//! The headline figure: the speculative composition shows no visible
//! service-interruption window when a member is replaced mid-run, while
//! the stop-the-world composition stalls for drain + transfer + election,
//! and disabling speculative handoff re-introduces an election-timeout
//! sized dent.

use simnet::{SimDuration, SimTime};

use super::ExpOutput;
use crate::runner::{run as run_scenario, RunOut, Scenario, SystemKind};
use crate::table::{sparkline, Table};

const BIN: SimDuration = SimDuration::from_millis(50);

fn times(quick: bool) -> (SimTime, SimTime, u64) {
    // (reconfig_at, horizon, clients)
    if quick {
        (SimTime::from_secs(3), SimTime::from_secs(6), 4)
    } else {
        (SimTime::from_secs(5), SimTime::from_secs(10), 8)
    }
}

/// One system's measurements for the figure.
pub struct Series {
    /// System under test.
    pub kind: SystemKind,
    /// Completes per 50ms bin.
    pub bins: Vec<f64>,
    /// Longest empty-bin run after the reconfiguration, in ms.
    pub gap_ms: u64,
    /// Total completions over the run.
    pub total: u64,
    /// The admin-observed reconfiguration latency in µs.
    pub reconfig_us: Option<u64>,
}

/// Runs E2 for all four reconfigurable systems.
pub fn run_series(quick: bool) -> Vec<Series> {
    let (reconfig_at, horizon, clients) = times(quick);
    SystemKind::reconfigurable()
        .into_iter()
        .map(|kind| {
            let sc = Scenario::new(0xE2)
                .clients(clients)
                .joiners(&[3])
                .reconfigure_at(reconfig_at, &[0, 1, 3])
                .until(horizon);
            let out: RunOut = run_scenario(kind, &sc);
            Series {
                kind,
                bins: out.completes_bins(BIN),
                gap_ms: out.longest_gap_ms(reconfig_at, horizon, BIN),
                total: out.completed,
                reconfig_us: out.reconfig_latency_us(),
            }
        })
        .collect()
}

/// Runs E2, returning the rendered text plus its summary table.
pub fn run_structured(quick: bool) -> ExpOutput {
    let series = run_series(quick);
    let (reconfig_at, _, _) = times(quick);
    let mut out = format!(
        "## E2 / Figure 1 — commit throughput timeline, one member replacement at t={}s\n\n\
         One glyph per 50ms of virtual time; `·` marks a bin with zero completions.\n\n",
        reconfig_at.as_secs_f64()
    );
    // Show the window from 1s before to 2s after the event.
    let first_bin = (reconfig_at.as_millis().saturating_sub(1000) / BIN.as_millis()) as usize;
    let last_bin = ((reconfig_at.as_millis() + 2000) / BIN.as_millis()) as usize;
    for s in &series {
        let window = &s.bins[first_bin.min(s.bins.len())..last_bin.min(s.bins.len())];
        out.push_str(&format!("{:>15} |{}|\n", s.kind.name(), sparkline(window)));
    }
    out.push('\n');
    let mut t = Table::new(
        "E2 summary — service interruption",
        &[
            "system",
            "longest gap after reconfig (ms)",
            "total completes",
            "reconfig latency (ms)",
        ],
    );
    for s in &series {
        t.row(&[
            s.kind.name().into(),
            s.gap_ms.to_string(),
            s.total.to_string(),
            s.reconfig_us
                .map(|us| format!("{:.2}", us as f64 / 1000.0))
                .unwrap_or_else(|| "—".into()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "Shape expected from the paper: rsmr(spec) gap ≈ 0 (below one bin); \
         rsmr(no-spec) gap ≈ one election timeout; stop-the-world gap covers \
         drain+transfer+election; raft-lite sits between, paying its \
         change-entry commit but no instance restart.\n\n",
    );
    ExpOutput {
        histograms: Vec::new(),
        rendered: out,
        tables: vec![t],
    }
}

/// Renders E2.
pub fn run(quick: bool) -> String {
    run_structured(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_speculation_beats_stop_the_world() {
        let series = run_series(true);
        let gap = |k: SystemKind| {
            series
                .iter()
                .find(|s| s.kind == k)
                .map(|s| s.gap_ms)
                .unwrap()
        };
        assert!(
            gap(SystemKind::Rsmr) <= gap(SystemKind::Stw),
            "speculative composition must not stall longer than stop-the-world"
        );
        // Everyone keeps serving overall.
        for s in &series {
            assert!(s.total > 500, "{} barely served", s.kind.name());
            assert!(s.reconfig_us.is_some(), "{} reconfig lost", s.kind.name());
        }
    }
}
