//! **E1 (Table 1)** — steady-state overhead of the composition.
//!
//! Claim: wrapping the static block in the reconfigurable composition adds
//! negligible steady-state cost; the natively reconfigurable design pays
//! its own baseline price too. No reconfiguration occurs in this
//! experiment — it isolates the composition tax.

use simnet::SimTime;

use super::ExpOutput;
use crate::runner::{run_many, Scenario, SystemKind};
use crate::table::Table;

/// Runs E1 and renders Table 1.
pub fn run_table(quick: bool) -> Table {
    let sizes: &[u64] = if quick { &[3, 5] } else { &[3, 5, 7] };
    let systems = [
        SystemKind::Static,
        SystemKind::Rsmr,
        SystemKind::RsmrBatched,
        SystemKind::Stw,
        SystemKind::Raft,
    ];
    let mut table = Table::new(
        "E1 / Table 1 — steady-state throughput and latency (no reconfiguration)",
        &[
            "system",
            "n",
            "throughput (op/s)",
            "p50 (ms)",
            "p99 (ms)",
            "vs static",
        ],
    );
    let horizon = if quick {
        SimTime::from_secs(6)
    } else {
        SimTime::from_secs(12)
    };
    let measure_from = SimTime::from_secs(1);
    let clients = if quick { 4 } else { 8 };
    // Every (size, system) cell is an independent simulation; fan the whole
    // sweep across cores and render from the ordered results.
    let jobs: Vec<(SystemKind, Scenario)> = sizes
        .iter()
        .flat_map(|&n| {
            systems.map(|kind| {
                let sc = Scenario::new(0xE1 + n)
                    .servers(n)
                    .clients(clients)
                    .until(horizon);
                (kind, sc)
            })
        })
        .collect();
    let mut outs = run_many(jobs).into_iter();
    for &n in sizes {
        let mut static_tput = 0.0;
        for kind in systems {
            let mut out = outs.next().expect("one result per job");
            let tput = out.throughput(measure_from, horizon);
            if kind == SystemKind::Static {
                static_tput = tput;
            }
            let rel = if static_tput > 0.0 {
                format!("{:+.1}%", (tput / static_tput - 1.0) * 100.0)
            } else {
                "—".into()
            };
            table.row(&[
                kind.name().into(),
                n.to_string(),
                format!("{tput:.0}"),
                format!("{:.3}", out.latency_us(0.5) / 1000.0),
                format!("{:.3}", out.latency_us(0.99) / 1000.0),
                rel,
            ]);
        }
    }
    table
}

/// Runs E1, returning the rendered text plus its table.
pub fn run_structured(quick: bool) -> ExpOutput {
    let table = run_table(quick);
    let mut out = table.render();
    out.push_str(
        "Shape expected from the paper: the composition (rsmr) tracks the bare \
         static block within a few percent — with the same seed its runs are \
         message-for-message identical to the block's, the strongest form of \
         zero overhead (virtual time charges no CPU; execution cost is not \
         modelled). The batching ablation routes through the in-core leader \
         accumulator (batch=64, 1ms deadline, 8-slot window) and *loses* \
         ~16-19% here: on an uncontended LAN with few closed-loop clients, \
         rounds are not the bottleneck, so the bounded window and batch \
         queueing only add latency — the knob pays off when the replication \
         fabric is the constraint (E13 measures 44x at a 200 KB/s fabric \
         cap). raft-lite is in the same band — reconfigurability costs \
         nothing while idle.\n\n",
    );
    ExpOutput {
        histograms: Vec::new(),
        rendered: out,
        tables: vec![table],
    }
}

/// Renders E1.
pub fn run(quick: bool) -> String {
    run_structured(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_produces_rows_for_every_system_and_size() {
        let t = run_table(true);
        let s = t.render();
        assert!(s.contains("static-paxos"));
        assert!(s.contains("rsmr (spec)"));
        assert!(s.contains("raft-lite"));
        // 4 systems × 2 sizes = 8 data rows + header + separator.
        assert!(s.lines().filter(|l| l.starts_with('|')).count() >= 9);
    }
}
