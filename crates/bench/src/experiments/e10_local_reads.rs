//! **E10 (Table 7)** — lease-based local reads (extension).
//!
//! The composition's leader can serve pure reads from its applied state
//! under a quorum read lease, skipping the log entirely. This ablation
//! sweeps the read ratio and compares log-reads vs local-reads on
//! throughput and read latency; linearizability under leases is separately
//! machine-checked in the test suite.

use simnet::SimTime;

use super::ExpOutput;
use crate::runner::{run as run_scenario, Scenario, SystemKind};
use crate::table::Table;

/// One measurement row.
pub struct Row {
    /// Fraction of reads in the workload.
    pub read_ratio: f64,
    /// Local reads enabled?
    pub local: bool,
    /// Throughput, op/s.
    pub tput: f64,
    /// p50 latency, ms (all ops).
    pub p50_ms: f64,
    /// Reads served locally (without a log round).
    pub local_reads: u64,
}

/// Runs the sweep.
pub fn run_rows(quick: bool) -> Vec<Row> {
    let ratios: &[f64] = if quick {
        &[0.5, 0.95]
    } else {
        &[0.1, 0.5, 0.9, 0.99]
    };
    let horizon = SimTime::from_secs(if quick { 6 } else { 10 });
    let mut rows = Vec::new();
    for &read_ratio in ratios {
        for local in [false, true] {
            let mut sc = Scenario::new(0xE10).clients(6).until(horizon);
            sc.read_ratio = read_ratio;
            sc.local_reads = local;
            let mut out = run_scenario(SystemKind::Rsmr, &sc);
            rows.push(Row {
                read_ratio,
                local,
                tput: out.throughput(SimTime::from_secs(1), horizon),
                p50_ms: out.latency_us(0.5) / 1000.0,
                local_reads: out.metrics.counter("rsmr.local_reads"),
            });
        }
    }
    rows
}

/// Runs E10, returning the rendered text plus its table.
pub fn run_structured(quick: bool) -> ExpOutput {
    let rows = run_rows(quick);
    let mut t = Table::new(
        "E10 / Table 7 — lease-based local reads vs log reads (extension)",
        &[
            "read ratio",
            "reads",
            "throughput (op/s)",
            "p50 (ms)",
            "reads served locally",
        ],
    );
    for r in &rows {
        t.row(&[
            format!("{:.2}", r.read_ratio),
            if r.local { "local (leased)" } else { "via log" }.into(),
            format!("{:.0}", r.tput),
            format!("{:.3}", r.p50_ms),
            r.local_reads.to_string(),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "Shape expected: local reads cut a full consensus round off every \
         read (p50 approaches one client RTT as the read ratio grows) and \
         lift throughput in read-heavy workloads; at low read ratios the \
         two configurations converge. Linearizability with leases enabled \
         is machine-checked in `kvstore`'s test suite.\n\n",
    );
    ExpOutput {
        histograms: Vec::new(),
        rendered: out,
        tables: vec![t],
    }
}

/// Renders E10.
pub fn run(quick: bool) -> String {
    run_structured(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_local_reads_fire_and_help_read_heavy_workloads() {
        let rows = run_rows(true);
        let find = |ratio: f64, local: bool| {
            rows.iter()
                .find(|r| (r.read_ratio - ratio).abs() < 1e-9 && r.local == local)
                .expect("row exists")
        };
        // Leased reads actually happen.
        assert!(find(0.95, true).local_reads > 1_000);
        assert_eq!(find(0.95, false).local_reads, 0);
        // And pay off at a 95% read ratio.
        assert!(
            find(0.95, true).tput > find(0.95, false).tput * 1.2,
            "local reads should clearly lift read-heavy throughput: {} vs {}",
            find(0.95, true).tput,
            find(0.95, false).tput
        );
        assert!(find(0.95, true).p50_ms < find(0.95, false).p50_ms);
    }
}
