//! **E5 (Table 3)** — elastic churn: back-to-back reconfigurations.
//!
//! Elastic services scale repeatedly. This experiment fires `k`
//! consecutive membership changes, 700ms apart, under constant load, and
//! measures the aggregate throughput loss relative to a churn-free run of
//! the same system — plus the worst single service gap.

use simnet::{SimDuration, SimTime};

use super::ExpOutput;
use crate::runner::{run as run_scenario, Scenario, SystemKind};
use crate::table::Table;

/// One measurement row.
pub struct Row {
    /// System under test.
    pub kind: SystemKind,
    /// Number of consecutive reconfigurations.
    pub k: usize,
    /// Completions with churn.
    pub completed: u64,
    /// Completions of the churn-free control run.
    pub baseline: u64,
    /// Throughput loss in percent.
    pub loss_pct: f64,
    /// Worst single gap, ms.
    pub worst_gap_ms: u64,
    /// Reconfigurations that actually completed.
    pub reconfigs_done: usize,
}

fn scripted(k: usize) -> Vec<(SimTime, Vec<u64>)> {
    // Alternate between {0,1,2} and {0,1,2,3}: add node 3, drop it, add it…
    (0..k)
        .map(|i| {
            let at = SimTime::from_secs(2) + SimDuration::from_millis(700) * i as u64;
            let members: Vec<u64> = if i % 2 == 0 {
                vec![0, 1, 2, 3]
            } else {
                vec![0, 1, 2]
            };
            (at, members)
        })
        .collect()
}

/// Runs the sweep.
pub fn run_rows(quick: bool) -> Vec<Row> {
    let ks: &[usize] = if quick { &[1, 3] } else { &[1, 2, 4, 8] };
    let systems = [SystemKind::Rsmr, SystemKind::RsmrNoSpec, SystemKind::Stw];
    let horizon = if quick {
        SimTime::from_secs(8)
    } else {
        SimTime::from_secs(12)
    };
    let clients = if quick { 4 } else { 8 };
    let mut rows = Vec::new();
    for kind in systems {
        // One churn-free control run per system, shared by every k.
        let base_sc = Scenario::new(0xE5)
            .clients(clients)
            .joiners(&[3])
            .until(horizon);
        let baseline = run_scenario(kind, &base_sc).completed;
        for &k in ks {
            let mut sc = base_sc.clone();
            sc.script = scripted(k);
            let out = run_scenario(kind, &sc);
            rows.push(Row {
                kind,
                k,
                completed: out.completed,
                baseline,
                loss_pct: (1.0 - out.completed as f64 / baseline.max(1) as f64) * 100.0,
                worst_gap_ms: out.longest_gap_ms(
                    SimTime::from_secs(2),
                    horizon,
                    SimDuration::from_millis(50),
                ),
                reconfigs_done: out.admin.len(),
            });
        }
    }
    rows
}

/// Runs E5, returning the rendered text plus its table.
pub fn run_structured(quick: bool) -> ExpOutput {
    let rows = run_rows(quick);
    let mut t = Table::new(
        "E5 / Table 3 — k back-to-back reconfigurations under constant load",
        &[
            "k",
            "system",
            "completes",
            "baseline",
            "loss %",
            "worst gap (ms)",
            "reconfigs done",
        ],
    );
    for r in &rows {
        t.row(&[
            r.k.to_string(),
            r.kind.name().into(),
            r.completed.to_string(),
            r.baseline.to_string(),
            format!("{:.1}", r.loss_pct),
            r.worst_gap_ms.to_string(),
            r.reconfigs_done.to_string(),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "Shape expected from the paper: rsmr's loss stays near zero and grows \
         sub-linearly with k; stop-the-world loses roughly one blocking window \
         per reconfiguration. (Odd k ends the run in the 4-member \
         configuration, whose larger quorum costs ~5% throughput against the \
         3-member control — visible as the loss floor at k=1.)\n\n",
    );
    ExpOutput {
        histograms: Vec::new(),
        rendered: out,
        tables: vec![t],
    }
}

/// Renders E5.
pub fn run(quick: bool) -> String {
    run_structured(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_all_reconfigs_complete_and_rsmr_loses_least() {
        let rows = run_rows(true);
        for r in &rows {
            assert_eq!(r.reconfigs_done, r.k, "{} k={}", r.kind.name(), r.k);
        }
        // At the largest k, the speculative composition must lose no more
        // throughput than stop-the-world.
        let k_max = rows.iter().map(|r| r.k).max().unwrap();
        let loss = |kind: SystemKind| {
            rows.iter()
                .find(|r| r.kind == kind && r.k == k_max)
                .map(|r| r.loss_pct)
                .unwrap()
        };
        assert!(
            loss(SystemKind::Rsmr) <= loss(SystemKind::Stw) + 1.0,
            "rsmr {} vs stw {}",
            loss(SystemKind::Rsmr),
            loss(SystemKind::Stw)
        );
    }
}
