//! **E6 (Figure 3)** — crash of the leader in the middle of a
//! reconfiguration.
//!
//! The adversarial moment: the leader that proposed the membership change
//! dies 30ms after proposing it. The run measures how long the service
//! stalls, confirms all client work eventually completes, and — for the
//! composed machine — checks the full client history for linearizability.

use kvstore::{linearizable, KvStore};
use simnet::{SimDuration, SimTime};

use super::ExpOutput;
use crate::runner::{run as run_scenario, Scenario, SystemKind};
use crate::table::Table;

const RECONFIG_AT: SimTime = SimTime::from_millis(400);

/// One system's outcome.
pub struct Row {
    /// System under test.
    pub kind: SystemKind,
    /// All clients finished their workload.
    pub all_completed: bool,
    /// Longest service gap in the 1.5s after the crash, ms (in-flight
    /// replies land just after the crash, so first-completion-time alone
    /// would under-report).
    pub recovery_ms: Option<u64>,
    /// The reconfiguration still completed.
    pub reconfig_done: bool,
    /// Linearizability verdict (None when no history was recorded).
    pub linearizable: Option<bool>,
}

/// Runs the experiment.
pub fn run_rows(quick: bool) -> Vec<Row> {
    // Clients must still be mid-workload when the crash hits at ~430ms
    // *and* throughout the recovery window (4 closed-loop clients sustain
    // ≈1.7k op/s each, so 3000+ ops spans ~1.8s).
    let ops = if quick { 3_000 } else { 4_000 };
    let mut rows = Vec::new();
    for kind in [SystemKind::Rsmr, SystemKind::Raft] {
        let mut sc = Scenario::new(0xE6)
            .clients(4)
            .joiners(&[3])
            .reconfigure_at(RECONFIG_AT, &[0, 1, 2, 3])
            .until(SimTime::from_secs(if quick { 40 } else { 60 }));
        sc.ops_per_client = Some(ops);
        sc.crash_leader_at = Some(RECONFIG_AT + SimDuration::from_millis(30));
        sc.record_history = kind == SystemKind::Rsmr;
        let out = run_scenario(kind, &sc);
        let expected = 4 * ops;
        rows.push(Row {
            kind,
            all_completed: out.completed == expected,
            recovery_ms: {
                let crash = RECONFIG_AT + SimDuration::from_millis(30);
                Some(out.longest_gap_ms(
                    crash,
                    crash + SimDuration::from_millis(1_500),
                    SimDuration::from_millis(50),
                ))
            },
            reconfig_done: !out.admin.is_empty(),
            linearizable: if out.histories.is_empty() {
                None
            } else {
                Some(linearizable(KvStore::new(), &out.histories))
            },
        });
    }
    rows
}

/// Runs E6, returning the rendered text plus its table.
pub fn run_structured(quick: bool) -> ExpOutput {
    let rows = run_rows(quick);
    let mut t = Table::new(
        "E6 / Figure 3 — leader crash 30ms into a reconfiguration",
        &[
            "system",
            "workload completed",
            "recovery time after crash (ms)",
            "reconfig completed",
            "linearizable",
        ],
    );
    for r in &rows {
        t.row(&[
            r.kind.name().into(),
            if r.all_completed { "yes" } else { "NO" }.into(),
            r.recovery_ms
                .map(|m| m.to_string())
                .unwrap_or_else(|| "∞".into()),
            if r.reconfig_done { "yes" } else { "NO" }.into(),
            match r.linearizable {
                Some(true) => "PASS".into(),
                Some(false) => "FAIL".into(),
                None => "(not recorded)".into(),
            },
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "Shape expected from the paper: both systems recover within an \
         election timeout and lose nothing; the composed machine's recovery \
         involves the predecessor *and* successor instances re-electing, yet \
         the client history stays linearizable.\n\n",
    );
    ExpOutput {
        rendered: out,
        tables: vec![t],
    }
}

/// Renders E6.
pub fn run(quick: bool) -> String {
    run_structured(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_both_systems_survive_the_crash() {
        let rows = run_rows(true);
        for r in &rows {
            assert!(r.all_completed, "{} lost client work", r.kind.name());
            assert!(r.reconfig_done, "{} lost the reconfig", r.kind.name());
        }
        let rsmr = rows.iter().find(|r| r.kind == SystemKind::Rsmr).unwrap();
        assert_eq!(rsmr.linearizable, Some(true));
    }
}
