//! **E6 (Figure 3)** — crash of the leader in the middle of a
//! reconfiguration.
//!
//! The adversarial moment: the leader that proposed the membership change
//! dies 30ms after proposing it. The run measures how long the service
//! stalls, confirms all client work eventually completes, and — for the
//! composed machine — checks the full client history for linearizability.
//!
//! The **chaos variant** (second table) compounds the crash with a 200ms
//! partition of the state-transfer donor: the joiner's catch-up source
//! vanishes mid-handoff, so anchoring must fail over to an alternate donor.
//! All three reconfigurable systems are measured with the same declarative
//! [`simnet::FaultPlan`], with invariant checking on.

use kvstore::{linearizable, KvStore};
use simnet::{FaultPlan, FaultTarget, SimDuration, SimTime};

use super::ExpOutput;
use crate::runner::{run as run_scenario, Scenario, SystemKind};
use crate::table::Table;

const RECONFIG_AT: SimTime = SimTime::from_millis(400);
const CRASH_AT: SimTime = SimTime::from_micros(RECONFIG_AT.as_micros() + 30_000);

/// One system's outcome.
pub struct Row {
    /// System under test.
    pub kind: SystemKind,
    /// All clients finished their workload.
    pub all_completed: bool,
    /// Longest service gap in the 1.5s after the crash, ms (in-flight
    /// replies land just after the crash, so first-completion-time alone
    /// would under-report).
    pub recovery_ms: Option<u64>,
    /// The reconfiguration still completed.
    pub reconfig_done: bool,
    /// Linearizability verdict (None when no history was recorded).
    pub linearizable: Option<bool>,
    /// Safety violations flagged by the invariant observer.
    pub invariant_violations: Vec<String>,
}

fn base_scenario(quick: bool, ops: u64) -> Scenario {
    let mut sc = Scenario::new(0xE6)
        .clients(4)
        .joiners(&[3])
        .reconfigure_at(RECONFIG_AT, &[0, 1, 2, 3])
        .until(SimTime::from_secs(if quick { 40 } else { 60 }));
    sc.ops_per_client = Some(ops);
    sc
}

fn measure(kind: SystemKind, sc: &Scenario, ops: u64) -> Row {
    let out = run_scenario(kind, sc);
    let expected = 4 * ops;
    Row {
        kind,
        all_completed: out.completed == expected,
        recovery_ms: Some(out.longest_gap_ms(
            CRASH_AT,
            CRASH_AT + SimDuration::from_millis(1_500),
            SimDuration::from_millis(50),
        )),
        reconfig_done: !out.admin.is_empty(),
        linearizable: if out.histories.is_empty() {
            None
        } else {
            Some(linearizable(KvStore::new(), &out.histories))
        },
        invariant_violations: out.invariant_violations,
    }
}

/// Runs the classic experiment: leader crash alone.
pub fn run_rows(quick: bool) -> Vec<Row> {
    // Clients must still be mid-workload when the crash hits at ~430ms
    // *and* throughout the recovery window (4 closed-loop clients sustain
    // ≈1.7k op/s each, so 3000+ ops spans ~1.8s).
    let ops = if quick { 3_000 } else { 4_000 };
    [SystemKind::Rsmr, SystemKind::Raft]
        .into_iter()
        .map(|kind| {
            let mut sc = base_scenario(quick, ops).crash_leader_at(CRASH_AT);
            sc.record_history = kind == SystemKind::Rsmr;
            measure(kind, &sc, ops)
        })
        .collect()
}

/// Runs the chaos variant: leader crash plus a 200ms partition of the
/// transfer donor 5ms later, while the joiner is mid-catch-up.
pub fn run_chaos_rows(quick: bool) -> Vec<Row> {
    let ops = if quick { 3_000 } else { 4_000 };
    let plan = FaultPlan::new()
        .crash_at(CRASH_AT, FaultTarget::CurrentLeader, None)
        .partition_at(
            CRASH_AT + SimDuration::from_millis(5),
            FaultTarget::TransferDonor,
            SimDuration::from_millis(200),
        );
    [SystemKind::Rsmr, SystemKind::Stw, SystemKind::Raft]
        .into_iter()
        .map(|kind| {
            let mut sc = base_scenario(quick, ops)
                .with_faults(plan.clone())
                .checked();
            sc.record_history = matches!(kind, SystemKind::Rsmr | SystemKind::Raft);
            measure(kind, &sc, ops)
        })
        .collect()
}

fn table_for(title: &str, rows: &[Row]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "system",
            "workload completed",
            "recovery time after crash (ms)",
            "reconfig completed",
            "linearizable",
            "invariants",
        ],
    );
    for r in rows {
        t.row(&[
            r.kind.name().into(),
            if r.all_completed { "yes" } else { "NO" }.into(),
            r.recovery_ms
                .map(|m| m.to_string())
                .unwrap_or_else(|| "∞".into()),
            if r.reconfig_done { "yes" } else { "NO" }.into(),
            match r.linearizable {
                Some(true) => "PASS".into(),
                Some(false) => "FAIL".into(),
                None => "(not recorded)".into(),
            },
            if r.invariant_violations.is_empty() {
                "clean".into()
            } else {
                format!("{} VIOLATIONS", r.invariant_violations.len())
            },
        ]);
    }
    t
}

/// Runs E6, returning the rendered text plus its tables.
pub fn run_structured(quick: bool) -> ExpOutput {
    let classic = table_for(
        "E6 / Figure 3 — leader crash 30ms into a reconfiguration",
        &run_rows(quick),
    );
    let chaos = table_for(
        "E6b — leader crash + 200ms donor partition during the handoff",
        &run_chaos_rows(quick),
    );
    let mut out = classic.render();
    out.push_str(&chaos.render());
    out.push_str(
        "Shape expected from the paper: both systems recover within an \
         election timeout and lose nothing; the composed machine's recovery \
         involves the predecessor *and* successor instances re-electing, yet \
         the client history stays linearizable. In the chaos variant the \
         joiner's first donor disappears mid-transfer, so anchoring relies \
         on the retry-with-failover path picking an alternate donor.\n\n",
    );
    ExpOutput {
        histograms: Vec::new(),
        rendered: out,
        tables: vec![classic, chaos],
    }
}

/// Renders E6.
pub fn run(quick: bool) -> String {
    run_structured(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_both_systems_survive_the_crash() {
        let rows = run_rows(true);
        for r in &rows {
            assert!(r.all_completed, "{} lost client work", r.kind.name());
            assert!(r.reconfig_done, "{} lost the reconfig", r.kind.name());
        }
        let rsmr = rows.iter().find(|r| r.kind == SystemKind::Rsmr).unwrap();
        assert_eq!(rsmr.linearizable, Some(true));
    }

    #[test]
    fn e6b_donor_partition_does_not_break_safety_or_the_handoff() {
        let rows = run_chaos_rows(true);
        for r in &rows {
            assert!(
                r.invariant_violations.is_empty(),
                "{}: {:?}",
                r.kind.name(),
                r.invariant_violations
            );
        }
        for r in rows
            .iter()
            .filter(|r| matches!(r.kind, SystemKind::Rsmr | SystemKind::Raft))
        {
            assert!(r.all_completed, "{} lost client work", r.kind.name());
            assert!(r.reconfig_done, "{} lost the reconfig", r.kind.name());
            assert_eq!(r.linearizable, Some(true), "{}", r.kind.name());
        }
    }
}
