//! **E7 (Table 4)** — message cost: per command and per reconfiguration.
//!
//! The composition is a router over unmodified building-block traffic, so
//! its steady-state message count per command should match the bare block
//! exactly; a reconfiguration costs one command in the old epoch plus
//! activation, transfer and catch-up traffic, quantified here by
//! differencing an idle run with and without one reconfiguration.

use simnet::SimTime;

use super::ExpOutput;
use crate::runner::{run as run_scenario, Scenario, SystemKind};
use crate::table::Table;

/// Steady-state messages per committed command.
pub struct SteadyRow {
    /// System under test.
    pub kind: SystemKind,
    /// Protocol messages per completed command.
    pub msgs_per_cmd: f64,
    /// Completions measured.
    pub completed: u64,
}

/// Runs the steady-state half.
pub fn run_steady(quick: bool) -> Vec<SteadyRow> {
    let horizon = SimTime::from_secs(if quick { 5 } else { 10 });
    let systems = [
        SystemKind::Static,
        SystemKind::Rsmr,
        SystemKind::Stw,
        SystemKind::Raft,
    ];
    systems
        .into_iter()
        .map(|kind| {
            let sc = Scenario::new(0xE7).clients(4).until(horizon);
            let out = run_scenario(kind, &sc);
            let prefix = if kind == SystemKind::Raft {
                "raft."
            } else {
                "paxos."
            };
            let msgs = out.msgs_with_prefix(prefix);
            SteadyRow {
                kind,
                msgs_per_cmd: msgs as f64 / out.completed.max(1) as f64,
                completed: out.completed,
            }
        })
        .collect()
}

/// Extra messages caused by one add-one-member reconfiguration, by label.
pub struct ReconfigCost {
    /// System under test.
    pub kind: SystemKind,
    /// `(label, extra messages)` sorted by label.
    pub extra: Vec<(String, i64)>,
    /// Total extra messages.
    pub total_extra: i64,
}

/// Runs the reconfiguration-cost half: identical idle runs (no clients),
/// with and without one reconfiguration; the counter difference is the
/// cost of the reconfiguration itself.
pub fn run_reconfig_cost(quick: bool) -> Vec<ReconfigCost> {
    let _ = quick;
    [SystemKind::Rsmr, SystemKind::Stw, SystemKind::Raft]
        .into_iter()
        .map(|kind| {
            let horizon = SimTime::from_secs(6);
            let idle = {
                let sc = Scenario::new(0xE7C).clients(0).until(horizon);
                run_scenario(kind, &sc)
            };
            let reconfig = {
                let sc = Scenario::new(0xE7C)
                    .clients(0)
                    .joiners(&[3])
                    .reconfigure_at(SimTime::from_secs(2), &[0, 1, 2, 3])
                    .until(horizon);
                run_scenario(kind, &sc)
            };
            let base = idle.metrics.labels_with_prefix("");
            let with = reconfig.metrics.labels_with_prefix("");
            let mut extra: Vec<(String, i64)> = Vec::new();
            for (label, count) in &with {
                let before = base
                    .iter()
                    .find(|(l, _)| l == label)
                    .map(|(_, v)| *v)
                    .unwrap_or(0);
                let diff = *count as i64 - before as i64;
                if diff != 0 {
                    extra.push(((*label).to_owned(), diff));
                }
            }
            let total_extra = extra.iter().map(|(_, d)| d).sum();
            ReconfigCost {
                kind,
                extra,
                total_extra,
            }
        })
        .collect()
}

/// Runs E7, returning the rendered text plus both tables.
pub fn run_structured(quick: bool) -> ExpOutput {
    let steady = run_steady(quick);
    let mut t = Table::new(
        "E7 / Table 4a — protocol messages per command (steady state)",
        &["system", "msgs/cmd", "commands measured"],
    );
    for r in &steady {
        t.row(&[
            r.kind.name().into(),
            format!("{:.2}", r.msgs_per_cmd),
            r.completed.to_string(),
        ]);
    }
    let mut out = t.render();

    let costs = run_reconfig_cost(quick);
    let mut t2 = Table::new(
        "E7 / Table 4b — extra messages for one add-one-member reconfiguration",
        &["system", "total extra msgs", "dominant kinds"],
    );
    for c in &costs {
        let mut sorted = c.extra.clone();
        sorted.sort_by_key(|(_, d)| -d);
        let top: Vec<String> = sorted
            .iter()
            .take(4)
            .map(|(l, d)| format!("{l}:{d}"))
            .collect();
        t2.row(&[
            c.kind.name().into(),
            c.total_extra.to_string(),
            top.join(" "),
        ]);
    }
    out.push_str(&t2.render());
    out.push_str(
        "Shape expected from the paper: rsmr's steady-state msgs/cmd equals \
         the bare block's (the composition adds zero protocol overhead per \
         command); a reconfiguration costs a bounded burst of activation + \
         transfer + election traffic. (Most of the composed systems' \
         heartbeat delta is the steady cost of the larger successor \
         configuration plus the retire-grace overlap of two instances, not \
         per-reconfiguration traffic.)\n\n",
    );
    ExpOutput {
        histograms: Vec::new(),
        rendered: out,
        tables: vec![t, t2],
    }
}

/// Renders E7.
pub fn run(quick: bool) -> String {
    run_structured(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_composition_matches_block_msgs_per_cmd() {
        let steady = run_steady(true);
        let get = |k: SystemKind| {
            steady
                .iter()
                .find(|r| r.kind == k)
                .map(|r| r.msgs_per_cmd)
                .unwrap()
        };
        let staticp = get(SystemKind::Static);
        let rsmr = get(SystemKind::Rsmr);
        assert!(
            (rsmr - staticp).abs() / staticp < 0.15,
            "composition per-command message cost diverges: static={staticp:.2} rsmr={rsmr:.2}"
        );
    }

    #[test]
    fn e7_reconfig_costs_messages_but_not_many() {
        for c in run_reconfig_cost(true) {
            assert!(c.total_extra > 0, "{}", c.kind.name());
            assert!(
                c.total_extra < 20_000,
                "{} reconfig message burst suspiciously large: {}",
                c.kind.name(),
                c.total_extra
            );
        }
    }
}
