//! **E3 (Table 2)** — reconfiguration latency vs application state size.
//!
//! Adding a member requires moving the application state to it. The
//! speculative composition overlaps the transfer with continued service in
//! the successor epoch (whose quorum of already-anchored members keeps
//! committing); stop-the-world blocks on it; raft-lite's leader ships an
//! `InstallSnapshot` but does not block the cluster either.

use simnet::{SimDuration, SimTime};

use super::ExpOutput;
use crate::runner::{run as run_scenario, Scenario, SystemKind};
use crate::table::Table;

const RECONFIG_AT: SimTime = SimTime::from_secs(1);

/// One measurement row.
pub struct Row {
    /// System under test.
    pub kind: SystemKind,
    /// Pre-filled state size, KiB (approximate).
    pub state_kib: usize,
    /// Admin-observed reconfiguration latency, ms.
    pub reconfig_ms: f64,
    /// Longest client-visible gap, ms.
    pub gap_ms: u64,
    /// Total completions.
    pub total: u64,
    /// Base-state bytes served for the new epoch (KiB), from the span
    /// aggregation over the structured event stream. 0 for systems that
    /// report no transfer events (raft-lite ships snapshots internally).
    pub span_transfer_kib: f64,
    /// Predecessor-sealed → first-commit-in-successor gap (ms), from the
    /// span aggregation.
    pub span_gap_ms: Option<f64>,
}

/// Runs the sweep.
pub fn run_rows(quick: bool) -> Vec<Row> {
    let sizes: &[usize] = if quick {
        &[64, 512, 2048]
    } else {
        &[64, 1024, 4096, 16384]
    };
    let mut rows = Vec::new();
    for &keys in sizes {
        for kind in [SystemKind::Rsmr, SystemKind::Stw, SystemKind::Raft] {
            // A 1 Gbit/s link makes the state-size dependence visible.
            let sc = Scenario::new(0xE3 ^ keys as u64)
                .clients(if quick { 2 } else { 4 })
                .joiners(&[3])
                .filler(keys, 1024)
                .bandwidth(125_000_000)
                .reconfigure_at(RECONFIG_AT, &[0, 1, 2, 3])
                .until(SimTime::from_secs(8))
                .with_events();
            let out = run_scenario(kind, &sc);
            // The epoch spans give the protocol's own account of the
            // reconfiguration, independent of client-side timelines.
            let (span_bytes, span_gap) = out
                .spans
                .as_ref()
                .map(|s| {
                    let bds = s.epoch_breakdowns();
                    let bytes: u64 = bds.iter().map(|b| b.transfer_bytes).sum();
                    let gap = bds.iter().filter_map(|b| b.handoff_gap).max();
                    (bytes, gap)
                })
                .unwrap_or((0, None));
            rows.push(Row {
                kind,
                state_kib: keys, // 1 KiB values ⇒ keys ≈ KiB
                reconfig_ms: out.reconfig_latency_us().unwrap_or(0) as f64 / 1000.0,
                gap_ms: out.longest_gap_ms(
                    RECONFIG_AT,
                    SimTime::from_secs(8),
                    SimDuration::from_millis(50),
                ),
                total: out.completed,
                span_transfer_kib: span_bytes as f64 / 1024.0,
                span_gap_ms: span_gap.map(|d| d.as_micros() as f64 / 1000.0),
            });
        }
    }
    rows
}

/// Runs E3, returning the rendered text plus its table.
pub fn run_structured(quick: bool) -> ExpOutput {
    let rows = run_rows(quick);
    let mut t = Table::new(
        "E3 / Table 2 — add-one-member reconfiguration vs state size",
        &[
            "state (KiB)",
            "system",
            "reconfig latency (ms)",
            "client gap (ms)",
            "completes",
            "transferred (KiB, spans)",
            "handoff gap (ms, spans)",
        ],
    );
    for r in &rows {
        t.row(&[
            r.state_kib.to_string(),
            r.kind.name().into(),
            format!("{:.2}", r.reconfig_ms),
            r.gap_ms.to_string(),
            r.total.to_string(),
            if r.span_transfer_kib > 0.0 {
                format!("{:.0}", r.span_transfer_kib)
            } else {
                "—".into()
            },
            r.span_gap_ms
                .map(|g| format!("{g:.2}"))
                .unwrap_or_else(|| "—".into()),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "Shape expected from the paper: the *client-visible gap* of rsmr stays \
         flat as state grows (the transfer happens off the critical path), \
         while stop-the-world's gap grows with the state size it must ship \
         before serving again. The span columns come from the structured \
         event stream: transferred KiB is the base state the protocol \
         actually shipped, and the handoff gap is seal → first successor \
         commit as the protocol saw it (raft-lite reports no transfer \
         events — its snapshots ship inside AppendEntries).\n\n",
    );
    ExpOutput {
        histograms: Vec::new(),
        rendered: out,
        tables: vec![t],
    }
}

/// Renders E3.
pub fn run(quick: bool) -> String {
    run_structured(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_reconfigurations_complete_at_every_size() {
        let rows = run_rows(true);
        for r in &rows {
            assert!(
                r.reconfig_ms > 0.0,
                "{} @ {} KiB: reconfiguration did not complete",
                r.kind.name(),
                r.state_kib
            );
            assert!(r.total > 0);
        }
    }

    #[test]
    fn e3_span_columns_reflect_the_transfer() {
        let rows = run_rows(true);
        for kind in [SystemKind::Rsmr, SystemKind::Stw] {
            let kib: Vec<f64> = rows
                .iter()
                .filter(|r| r.kind == kind)
                .map(|r| r.span_transfer_kib)
                .collect();
            assert!(
                kib.iter().all(|&b| b > 0.0),
                "{} spans saw no transfer: {kib:?}",
                kind.name()
            );
            // More pre-filled state ⇒ more bytes actually shipped.
            assert!(
                kib.windows(2).all(|w| w[0] < w[1]),
                "{} transfer bytes not increasing with state: {kib:?}",
                kind.name()
            );
        }
    }

    #[test]
    fn e3_rsmr_gap_does_not_grow_with_state() {
        let rows = run_rows(true);
        let gaps: Vec<u64> = rows
            .iter()
            .filter(|r| r.kind == SystemKind::Rsmr)
            .map(|r| r.gap_ms)
            .collect();
        let (min, max) = (*gaps.iter().min().unwrap(), *gaps.iter().max().unwrap());
        assert!(
            max.saturating_sub(min) <= 200,
            "rsmr gap should stay flat across state sizes: {gaps:?}"
        );
    }
}
