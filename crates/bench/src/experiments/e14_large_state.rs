//! **E14** — large-state transfer at scale: chunked streaming, delta
//! rejoin, and in-epoch compaction.
//!
//! Two questions, one state-size axis (10³ → 10⁶ keys):
//!
//! 1. **Does the handoff stay flat as state grows?** The composed machine
//!    streams the sealed base state in bounded chunks off the critical
//!    path, so its seal → first-successor-commit gap and its client p99
//!    should not grow with the state. The stop-the-world control ships one
//!    monolithic blob *before* serving again, so its gap grows linearly —
//!    that contrast is the point of the control.
//! 2. **Does a rejoiner move only what changed?** A member that restarts
//!    after a mutation window advertises its per-key version watermark and
//!    fetches a delta instead of the full snapshot; the delta bytes are
//!    compared against the bytes a fresh joiner moves in the same run.
//!
//! The `bench_pr10` bin gates on both: at the largest size the chunked
//! handoff gap must stay within [`GATE_MAX_RSMR_GAP_GROWTH`]× of the
//! smallest-size gap while the control grows at least
//! [`GATE_MIN_STW_GAP_GROWTH`]× (full axis; the CI-smoke quick axis tops
//! out at 10⁵ keys and gates at [`GATE_MIN_STW_GAP_GROWTH_QUICK`]×), and
//! the rejoin delta must move under [`GATE_MAX_DELTA_PCT`]% of the fresh
//! joiner's full-snapshot bytes.

use simnet::{FaultPlan, FaultTarget, SimDuration, SimTime};

use super::ExpOutput;
use crate::runner::{run as run_scenario, Scenario, SystemKind};
use crate::table::Table;

const RECONFIG_AT: SimTime = SimTime::from_secs(1);
/// Long enough for the monolithic control to finish shipping the 10⁶-key
/// blob (~12 s at the scenario fabric) and commit in the successor.
const HORIZON: SimTime = SimTime::from_secs(16);

/// Gate: largest-size rsmr handoff gap ≤ this × its smallest-size gap.
pub const GATE_MAX_RSMR_GAP_GROWTH: f64 = 3.0;
/// Gate (full axis, 10³ → 10⁶ keys): largest-size stw handoff gap ≥ this
/// × its smallest-size gap (the monolithic control must actually degrade,
/// or the comparison is vacuous).
pub const GATE_MIN_STW_GAP_GROWTH: f64 = 10.0;
/// Gate (quick axis, 10³ → 10⁵ keys): the trimmed axis moves 10× less
/// state at the top, so the control's expected degradation is ~8× — the
/// smoke gate checks the mechanism at 4×, the nightly full axis enforces
/// the headline 10×.
pub const GATE_MIN_STW_GAP_GROWTH_QUICK: f64 = 4.0;

/// The stw-degradation gate that applies to the axis actually swept.
pub fn gate_min_stw_gap_growth(quick: bool) -> f64 {
    if quick {
        GATE_MIN_STW_GAP_GROWTH_QUICK
    } else {
        GATE_MIN_STW_GAP_GROWTH
    }
}
/// Gate: rejoin delta bytes < this % of the fresh joiner's full bytes.
pub const GATE_MAX_DELTA_PCT: f64 = 20.0;

/// The state-size axis, in pre-filled keys (64-byte values).
pub fn sizes(quick: bool) -> &'static [usize] {
    if quick {
        &[1_000, 100_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    }
}

/// One row of the handoff-vs-state-size table.
pub struct SizeRow {
    /// System under test.
    pub kind: SystemKind,
    /// Pre-filled keys.
    pub keys: usize,
    /// Seal → first-successor-commit gap from the span aggregation, ms.
    pub handoff_gap_ms: f64,
    /// Longest client-visible gap (50ms bins), ms.
    pub client_gap_ms: u64,
    /// Client p99 latency, ms — donor interference shows up here.
    pub p99_ms: f64,
    /// Base-state bytes moved as chunks (KiB); 0 for the monolithic
    /// control, which ships one blob.
    pub chunk_kib: f64,
    /// Seal-time pages served from the compaction cursor's cache.
    pub seal_pages_reused: u64,
    /// Total client completions.
    pub completed: u64,
}

fn size_scenario(keys: usize) -> Scenario {
    // A deliberately thin 64 Mbit/s fabric with serialized egress ports:
    // the blob's wire time, not the fixed drain/election cost, must
    // dominate the control's interruption for state size to show up at
    // all (at 10⁶ keys the blob is ~95 MB ≈ 12 s of wire time), and the
    // donor's chunk stream shares one port with its protocol traffic so
    // head-of-line blocking is visible in client latency.
    Scenario::new(0xE14 ^ keys as u64)
        .clients(4)
        .joiners(&[3])
        .filler(keys, 64)
        .bandwidth(8_000_000)
        .egress_queueing()
        .reconfigure_at(RECONFIG_AT, &[0, 1, 2, 3])
        .until(HORIZON)
        .with_events()
}

/// Runs the handoff-gap sweep. Rows run serially — the 10⁶-key scenarios
/// hold ~100 MB of application state per replica.
pub fn size_rows(quick: bool) -> Vec<SizeRow> {
    let mut rows = Vec::new();
    for &keys in sizes(quick) {
        for kind in [SystemKind::Rsmr, SystemKind::Stw] {
            let sc = size_scenario(keys);
            let mut out = run_scenario(kind, &sc);
            let handoff_gap = out
                .spans
                .as_ref()
                .and_then(|s| {
                    s.epoch_breakdowns()
                        .iter()
                        .filter_map(|b| b.handoff_gap)
                        .max()
                })
                .map(|d| d.as_micros() as f64 / 1000.0)
                .unwrap_or(f64::NAN);
            rows.push(SizeRow {
                kind,
                keys,
                handoff_gap_ms: handoff_gap,
                client_gap_ms: out.longest_gap_ms(
                    RECONFIG_AT,
                    HORIZON,
                    SimDuration::from_millis(50),
                ),
                p99_ms: out.latency_us(0.99) / 1000.0,
                chunk_kib: out.metrics.counter("transfer.chunk_bytes") as f64 / 1024.0,
                seal_pages_reused: out.metrics.counter("transfer.seal_pages_reused"),
                completed: out.completed,
            });
        }
    }
    rows
}

/// The rejoin-delta measurement for one state size.
pub struct RejoinRow {
    /// Pre-filled keys.
    pub keys: usize,
    /// Bytes the fresh joiner moved (full chunked snapshot), KiB.
    pub full_kib: f64,
    /// Bytes the rejoining member moved (delta), KiB.
    pub delta_kib: f64,
    /// `delta / full`, percent.
    pub delta_pct: f64,
    /// Times a delta request fell back to a full snapshot.
    pub delta_fallbacks: u64,
    /// Total client completions.
    pub completed: u64,
}

/// Runs the rejoin scenario: member 2 crashes before the reconfiguration,
/// clients keep mutating a keyspace sized at 5% of the pre-filled state,
/// the epoch advances while the member is down, and on restart it
/// re-enters with its version watermark. The same run adds a fresh joiner,
/// whose full chunked snapshot is the denominator for the delta ratio.
pub fn rejoin_row(quick: bool) -> RejoinRow {
    let keys = if quick { 50_000 } else { 200_000 };
    // Down past `retire_grace`: by the time the member returns the
    // survivors have retired the old epoch, so local log replay cannot
    // reach the head and the member must take a transfer — a delta one,
    // since it recovers an anchored base.
    let plan = FaultPlan::new().crash_at(
        SimTime::from_millis(600),
        FaultTarget::ServerIdx(2),
        Some(SimDuration::from_millis(2_600)),
    );
    let mut sc = Scenario::new(0xE14D ^ keys as u64)
        .clients(4)
        .joiners(&[3])
        .filler(keys, 64)
        .bandwidth(8_000_000)
        .egress_queueing()
        .reconfigure_at(RECONFIG_AT, &[0, 1, 2, 3])
        .with_faults(plan)
        .until(HORIZON)
        .with_events();
    // The mutation window: writes land uniformly in a keyspace that is 5%
    // of the pre-filled state, stamping fresh versions above the crashed
    // member's watermark.
    sc.keyspace = keys / 20;
    let out = run_scenario(SystemKind::Rsmr, &sc);
    let delta = out.metrics.counter("transfer.delta_chunk_bytes");
    let all = out.metrics.counter("transfer.chunk_bytes");
    let full = all.saturating_sub(delta);
    RejoinRow {
        keys,
        full_kib: full as f64 / 1024.0,
        delta_kib: delta as f64 / 1024.0,
        delta_pct: if full > 0 {
            delta as f64 * 100.0 / full as f64
        } else {
            f64::NAN
        },
        delta_fallbacks: out.metrics.counter("transfer.delta_fallbacks"),
        completed: out.completed,
    }
}

/// The handoff-gap growth factors `(rsmr, stw)` between the smallest and
/// largest state sizes — the quantities the `bench_pr10` gate checks.
pub fn gap_growth(rows: &[SizeRow]) -> (f64, f64) {
    let growth = |kind: SystemKind| {
        let gaps: Vec<f64> = rows
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.handoff_gap_ms)
            .collect();
        match (gaps.first(), gaps.last()) {
            (Some(&first), Some(&last)) if first > 0.0 => last / first,
            _ => f64::NAN,
        }
    };
    (growth(SystemKind::Rsmr), growth(SystemKind::Stw))
}

/// Runs E14, returning the rendered text plus its tables.
pub fn run_structured(quick: bool) -> ExpOutput {
    let rows = size_rows(quick);
    let rejoin = rejoin_row(quick);
    let (rsmr_growth, stw_growth) = gap_growth(&rows);

    let mut t1 = Table::new(
        "E14 / Table 10a — handoff cost vs state size (chunked vs monolithic)",
        &[
            "keys",
            "system",
            "handoff gap (ms)",
            "client gap (ms)",
            "p99 (ms)",
            "chunk KiB",
            "seal pages reused",
            "completes",
        ],
    );
    for r in &rows {
        t1.row(&[
            r.keys.to_string(),
            r.kind.name().into(),
            format!("{:.2}", r.handoff_gap_ms),
            r.client_gap_ms.to_string(),
            format!("{:.3}", r.p99_ms),
            if r.chunk_kib > 0.0 {
                format!("{:.0}", r.chunk_kib)
            } else {
                "—".into()
            },
            r.seal_pages_reused.to_string(),
            r.completed.to_string(),
        ]);
    }
    let mut t2 = Table::new(
        "E14 / Table 10b — rejoin after a 5%-key mutation window: delta vs full",
        &[
            "keys",
            "full snapshot (KiB)",
            "delta (KiB)",
            "delta/full (%)",
            "delta fallbacks",
            "completes",
        ],
    );
    t2.row(&[
        rejoin.keys.to_string(),
        format!("{:.0}", rejoin.full_kib),
        format!("{:.0}", rejoin.delta_kib),
        format!("{:.1}", rejoin.delta_pct),
        rejoin.delta_fallbacks.to_string(),
        rejoin.completed.to_string(),
    ]);

    let stw_gate = gate_min_stw_gap_growth(quick);
    let mut out = t1.render();
    out.push_str(&t2.render());
    out.push_str(&format!(
        "Handoff-gap growth smallest → largest size: rsmr {rsmr_growth:.2}x \
         (gate: <= {GATE_MAX_RSMR_GAP_GROWTH:.0}x), stop-the-world \
         {stw_growth:.1}x (control, expected >= {stw_gate:.0}x). \
         The chunked machine streams the sealed state in 64 KiB chunks off \
         the critical path while the successor's anchored quorum keeps \
         committing, so its gap and p99 stay flat; the monolithic control \
         blocks on shipping the whole blob. The rejoin row: a member that \
         restarted behind the epoch advertised its version watermark and \
         moved {:.1}% of the bytes a fresh joiner needed (gate: < \
         {GATE_MAX_DELTA_PCT:.0}%).\n\n",
        rejoin.delta_pct
    ));
    ExpOutput {
        histograms: Vec::new(),
        rendered: out,
        tables: vec![t1, t2],
    }
}

/// Renders E14.
pub fn run(quick: bool) -> String {
    run_structured(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_chunked_gap_flat_monolithic_gap_grows() {
        let rows = size_rows(true);
        for r in &rows {
            assert!(
                r.completed > 0,
                "{} @ {}: no completions",
                r.kind.name(),
                r.keys
            );
            assert!(
                r.handoff_gap_ms.is_finite(),
                "{} @ {}: no handoff gap observed",
                r.kind.name(),
                r.keys
            );
        }
        let (rsmr_growth, stw_growth) = gap_growth(&rows);
        assert!(
            rsmr_growth <= GATE_MAX_RSMR_GAP_GROWTH,
            "chunked handoff gap grew {rsmr_growth:.2}x across the state axis"
        );
        assert!(
            stw_growth >= GATE_MIN_STW_GAP_GROWTH_QUICK,
            "monolithic control gap grew only {stw_growth:.2}x — the \
             comparison lost its contrast"
        );
        // The chunked machine actually moved the state as chunks.
        assert!(rows
            .iter()
            .filter(|r| r.kind == SystemKind::Rsmr)
            .all(|r| r.chunk_kib > 0.0));
    }

    #[test]
    fn e14_rejoin_delta_moves_a_fraction_of_the_snapshot() {
        let r = rejoin_row(true);
        assert!(r.completed > 0);
        assert!(r.delta_kib > 0.0, "the rejoiner never took the delta path");
        assert!(
            r.delta_pct < GATE_MAX_DELTA_PCT,
            "rejoin delta moved {:.1}% of the full snapshot (gate: < {:.0}%)",
            r.delta_pct,
            GATE_MAX_DELTA_PCT
        );
        assert_eq!(r.delta_fallbacks, 0, "delta requests fell back to full");
    }
}
