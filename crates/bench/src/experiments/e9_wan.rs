//! **E9 (Table 6)** — geo-replicated deployment: reconfiguration over a
//! wide-area network.
//!
//! On a WAN (20ms ± 4ms one-way), every protocol round costs real time, so
//! the *number of rounds* between "close decided" and "successor serving"
//! becomes the dominant term. The speculative composition needs one round
//! (the handoff campaign piggybacks on the close); the no-spec ablation
//! waits out an election timeout; stop-the-world serializes drain,
//! transfer, acks and an election.

use simnet::{SimDuration, SimTime};

use super::ExpOutput;
use crate::runner::{run as run_scenario, Scenario, SystemKind};
use crate::table::Table;

const RECONFIG_AT: SimTime = SimTime::from_secs(4);

/// One system's WAN measurements.
pub struct Row {
    /// System under test.
    pub kind: SystemKind,
    /// Steady-state p50 latency before the reconfig, ms.
    pub p50_ms: f64,
    /// Service gap after the reconfiguration, ms.
    pub gap_ms: u64,
    /// Reconfiguration latency, ms.
    pub reconfig_ms: f64,
    /// Total completes.
    pub total: u64,
}

/// Runs the WAN sweep.
pub fn run_rows(quick: bool) -> Vec<Row> {
    let horizon = SimTime::from_secs(if quick { 8 } else { 12 });
    SystemKind::reconfigurable()
        .into_iter()
        .map(|kind| {
            let sc = Scenario::new(0xE9)
                .clients(4)
                .joiners(&[3])
                .over_wan()
                .reconfigure_at(RECONFIG_AT, &[0, 1, 3])
                .until(horizon);
            let mut out = run_scenario(kind, &sc);
            Row {
                kind,
                p50_ms: out.latency_us(0.5) / 1000.0,
                gap_ms: out.longest_gap_ms(RECONFIG_AT, horizon, SimDuration::from_millis(50)),
                reconfig_ms: out.reconfig_latency_us().unwrap_or(0) as f64 / 1000.0,
                total: out.completed,
            }
        })
        .collect()
}

/// Runs E9, returning the rendered text plus its table.
pub fn run_structured(quick: bool) -> ExpOutput {
    let rows = run_rows(quick);
    let mut t = Table::new(
        "E9 / Table 6 — member replacement over a WAN (20ms ± 4ms one-way)",
        &[
            "system",
            "steady p50 (ms)",
            "gap after reconfig (ms)",
            "reconfig latency (ms)",
            "completes",
        ],
    );
    for r in &rows {
        t.row(&[
            r.kind.name().into(),
            format!("{:.1}", r.p50_ms),
            r.gap_ms.to_string(),
            format!("{:.1}", r.reconfig_ms),
            r.total.to_string(),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "Shape expected from the paper: on a WAN every protocol round costs \
         ~2×20ms, so the gap reflects round counts. This scenario replaces \
         whichever node leads (worst case): the composition pays \
         close-commit + nomination + election + first-commit; stop-the-world \
         additionally serializes drain and transfer-ack rounds. When the \
         leader survives the change (add-member), the composition's gap \
         shrinks to the close-commit alone.\n\n",
    );
    ExpOutput {
        histograms: Vec::new(),
        rendered: out,
        tables: vec![t],
    }
}

/// Renders E9.
pub fn run(quick: bool) -> String {
    run_structured(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_reconfigurations_land_on_the_wan() {
        let rows = run_rows(true);
        for r in &rows {
            assert!(r.reconfig_ms > 0.0, "{}", r.kind.name());
            assert!(r.total > 100, "{} starved", r.kind.name());
            // WAN p50 must reflect the RTT (sanity that the profile is on).
            assert!(
                r.p50_ms > 20.0,
                "{} p50 {} looks like a LAN",
                r.kind.name(),
                r.p50_ms
            );
        }
        let gap = |k: SystemKind| rows.iter().find(|r| r.kind == k).map(|r| r.gap_ms).unwrap();
        assert!(
            gap(SystemKind::Rsmr) <= gap(SystemKind::Stw),
            "speculation must win on the WAN too"
        );
    }
}
