//! **E4 (Figure 2)** — client-visible latency for commands issued around a
//! reconfiguration.
//!
//! Clients start shortly before the membership change and run straight
//! through it; the latency distribution (p50/p90/p99/max) captures how
//! disruptive the change is to in-flight traffic. A static, never
//! reconfigured cluster serves as the control.

use simnet::SimTime;

use super::ExpOutput;
use crate::runner::{run as run_scenario, Scenario, SystemKind};
use crate::table::Table;

/// One system's latency summary.
pub struct Row {
    /// System under test.
    pub kind: SystemKind,
    /// Latency quantiles in ms: (p50, p90, p99, max).
    pub quantiles: (f64, f64, f64, f64),
    /// Completions (all clients).
    pub total: u64,
}

/// Runs the experiment.
pub fn run_rows(quick: bool) -> Vec<Row> {
    // The workload must straddle the reconfiguration: clients start at
    // 1.8s, the change fires at 1.9s, and the op budget keeps every client
    // busy well past it.
    let (clients, ops) = if quick { (4, 800) } else { (6, 1500) };
    let mut rows = Vec::new();
    let systems = [
        SystemKind::Static, // control: no reconfiguration happens
        SystemKind::Rsmr,
        SystemKind::RsmrNoSpec,
        SystemKind::Stw,
        SystemKind::Raft,
    ];
    for kind in systems {
        let mut sc = Scenario::new(0xE4)
            .clients(clients)
            .joiners(&[3])
            .until(SimTime::from_secs(30));
        sc.client_start = SimTime::from_millis(1_800);
        sc.ops_per_client = Some(ops);
        if kind != SystemKind::Static {
            sc = sc.reconfigure_at(SimTime::from_millis(1_900), &[0, 1, 3]);
        }
        let mut out = run_scenario(kind, &sc);
        rows.push(Row {
            kind,
            quantiles: (
                out.latency_us(0.5) / 1000.0,
                out.latency_us(0.9) / 1000.0,
                out.latency_us(0.99) / 1000.0,
                out.latency_us(1.0) / 1000.0,
            ),
            total: out.completed,
        });
    }
    rows
}

/// Runs E4, returning the rendered text plus its table.
pub fn run_structured(quick: bool) -> ExpOutput {
    let rows = run_rows(quick);
    let mut t = Table::new(
        "E4 / Figure 2 — latency of commands issued across a member replacement (ms)",
        &["system", "p50", "p90", "p99", "max", "completes"],
    );
    for r in &rows {
        let (p50, p90, p99, max) = r.quantiles;
        t.row(&[
            r.kind.name().into(),
            format!("{p50:.3}"),
            format!("{p90:.3}"),
            format!("{p99:.3}"),
            format!("{max:.1}"),
            r.total.to_string(),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "Shape expected from the paper: rsmr's tail stays within a small \
         factor of the static control; stop-the-world's max spikes to the \
         full blocking window (client retransmission intervals included); \
         no-spec sits between, its tail an election timeout wide.\n\n",
    );
    ExpOutput {
        histograms: Vec::new(),
        rendered: out,
        tables: vec![t],
    }
}

/// Renders E4.
pub fn run(quick: bool) -> String {
    run_structured(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_everyone_finishes_and_quantiles_are_ordered() {
        let rows = run_rows(true);
        for r in &rows {
            assert_eq!(r.total, 3_200, "{}", r.kind.name());
            let (p50, p90, p99, max) = r.quantiles;
            assert!(p50 <= p90 && p90 <= p99 && p99 <= max);
            assert!(p50 > 0.0);
        }
    }

    #[test]
    fn e4_stw_tail_is_worse_than_rsmr() {
        let rows = run_rows(true);
        let max_of = |k: SystemKind| {
            rows.iter()
                .find(|r| r.kind == k)
                .map(|r| r.quantiles.3)
                .unwrap()
        };
        assert!(
            max_of(SystemKind::Rsmr) <= max_of(SystemKind::Stw),
            "speculation must not have a worse max than stop-the-world"
        );
    }
}
