//! **E11 (Table 8)** — sharded multi-group composition.
//!
//! The keyspace is hash-partitioned over `G` composition groups on a
//! shared 8-node pool with per-node egress bandwidth capped, so a single
//! saturated leader is a real bottleneck. Three claims:
//!
//! * **8a** — aggregate throughput scales with `G` under the *same*
//!   per-node load limits (distinct leaders spread the egress load);
//! * **8b** — rolling per-shard reconfiguration (every shard replaces a
//!   member, back-to-back) keeps the *aggregate* client timeline gap-free
//!   with the composed machine, while the stop-the-world baseline stalls
//!   each reconfiguring shard in turn;
//! * **8c** — when no faults couple the groups, the split driver (one
//!   simulation per group, fanned across the worker pool) merges to a
//!   digest byte-identical with serial execution.

use simnet::{SimDuration, SimTime};

use super::ExpOutput;
use crate::sharded::{run_sharded, run_split, ShardScenario, ShardSystem};
use crate::table::Table;

/// Per-node egress bandwidth for the scaling sweep, bytes/second. Low
/// enough that one leader's egress queue is the G=1 bottleneck, high
/// enough that queueing delay stays far below the client retransmit
/// timeout.
const BANDWIDTH: u64 = 150_000;

/// One row of the scaling sweep (Table 8a).
pub struct ScalingRow {
    /// Group count.
    pub groups: u32,
    /// Aggregate committed operations per second.
    pub tput: f64,
    /// p99 client latency, ms.
    pub p99_ms: f64,
    /// Total completed operations.
    pub completed: u64,
}

/// One row of the rolling-churn comparison (Table 8b).
pub struct RollingRow {
    /// System under test.
    pub kind: ShardSystem,
    /// Reconfiguration steps finished (should equal the group count).
    pub reconfigs: usize,
    /// Longest empty run in the aggregate completion timeline, ms.
    pub aggregate_gap_ms: u64,
    /// Worst per-shard gap over all groups, ms.
    pub max_shard_gap_ms: u64,
    /// Total completed operations.
    pub completed: u64,
}

/// The split-driver determinism check (Table 8c).
pub struct SplitRow {
    /// Group count.
    pub groups: u32,
    /// Merged digest of the serial pass.
    pub serial_digest: u64,
    /// Merged digest of the parallel pass.
    pub parallel_digest: u64,
    /// Total completions (identical by construction when digests match).
    pub completed: u64,
}

fn scaling_scenario(groups: u32, quick: bool) -> ShardScenario {
    let horizon = SimTime::from_secs(if quick { 6 } else { 10 });
    ShardScenario::new(0xE11 + groups as u64, groups)
        .until(horizon)
        .bandwidth(BANDWIDTH)
}

/// Runs the Table 8a sweep (coupled simulations, one thread per cell).
pub fn scaling_rows(quick: bool) -> Vec<ScalingRow> {
    let gs: &[u32] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let horizon = SimTime::from_secs(if quick { 6 } else { 10 });
    let warmup = SimTime::from_secs(1);
    std::thread::scope(|s| {
        let handles: Vec<_> = gs
            .iter()
            .map(|&g| {
                s.spawn(move || {
                    let sc = scaling_scenario(g, quick);
                    let mut out = run_sharded(ShardSystem::Rsmr, &sc);
                    ScalingRow {
                        groups: g,
                        tput: out.run.throughput(warmup, horizon),
                        p99_ms: out.run.latency_us(0.99) / 1000.0,
                        completed: out.run.completed,
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

fn rolling_scenario(quick: bool) -> ShardScenario {
    let groups = if quick { 2 } else { 4 };
    let horizon = SimTime::from_secs(if quick { 6 } else { 8 });
    ShardScenario::new(0xE11B, groups)
        .until(horizon)
        .bandwidth(BANDWIDTH)
        .rolling(SimTime::from_secs(2), SimDuration::from_millis(600))
}

/// Runs the Table 8b rolling-churn comparison.
pub fn rolling_rows(quick: bool) -> Vec<RollingRow> {
    let bin = SimDuration::from_millis(100);
    std::thread::scope(|s| {
        let handles: Vec<_> = [ShardSystem::Rsmr, ShardSystem::Stw]
            .into_iter()
            .map(|kind| {
                s.spawn(move || {
                    let sc = rolling_scenario(quick);
                    let from = SimTime::from_secs(1);
                    let to = sc.horizon;
                    let out = run_sharded(kind, &sc);
                    RollingRow {
                        kind,
                        reconfigs: out.per_group_admin.iter().map(Vec::len).sum(),
                        aggregate_gap_ms: out.aggregate_gap_ms(from, to, bin),
                        max_shard_gap_ms: out.max_group_gap_ms(from, to, bin),
                        completed: out.run.completed,
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Runs the Table 8c split-driver check: serial and parallel group
/// execution must merge to the same digest.
pub fn split_row(quick: bool) -> SplitRow {
    let groups = if quick { 2 } else { 4 };
    let sc =
        ShardScenario::new(0xE11C, groups).until(SimTime::from_secs(if quick { 3 } else { 5 }));
    let serial = run_split(&sc, false);
    let parallel = run_split(&sc, true);
    assert_eq!(serial.completed, parallel.completed);
    SplitRow {
        groups,
        serial_digest: serial.digest,
        parallel_digest: parallel.digest,
        completed: serial.completed,
    }
}

/// Runs E11, returning the rendered text plus its tables.
pub fn run_structured(quick: bool) -> ExpOutput {
    let scaling = scaling_rows(quick);
    let rolling = rolling_rows(quick);
    let split = split_row(quick);

    let base_tput = scaling.first().map(|r| r.tput).unwrap_or(0.0);
    let mut t8a = Table::new(
        "E11 / Table 8a — sharded composition: aggregate throughput vs group count",
        &[
            "G",
            "aggregate throughput (op/s)",
            "p99 (ms)",
            "speedup vs G=1",
            "completed",
        ],
    );
    for r in &scaling {
        t8a.row(&[
            r.groups.to_string(),
            format!("{:.0}", r.tput),
            format!("{:.3}", r.p99_ms),
            format!("{:.2}x", r.tput / base_tput),
            r.completed.to_string(),
        ]);
    }

    let mut t8b = Table::new(
        "E11 / Table 8b — rolling per-shard reconfiguration (every shard, back-to-back)",
        &[
            "system",
            "reconfigs",
            "aggregate gap (ms)",
            "max shard gap (ms)",
            "completed",
        ],
    );
    for r in &rolling {
        t8b.row(&[
            r.kind.name().into(),
            r.reconfigs.to_string(),
            r.aggregate_gap_ms.to_string(),
            r.max_shard_gap_ms.to_string(),
            r.completed.to_string(),
        ]);
    }

    let mut t8c = Table::new(
        "E11 / Table 8c — split driver: serial vs parallel group execution",
        &[
            "G",
            "serial digest",
            "parallel digest",
            "equal",
            "completed",
        ],
    );
    t8c.row(&[
        split.groups.to_string(),
        format!("{:016x}", split.serial_digest),
        format!("{:016x}", split.parallel_digest),
        (split.serial_digest == split.parallel_digest).to_string(),
        split.completed.to_string(),
    ]);

    let mut rendered = t8a.render();
    rendered.push_str(&t8b.render());
    rendered.push_str(&t8c.render());
    rendered.push_str(
        "Shape expected: 8a — with per-node egress capped, G distinct leaders \
         lift aggregate throughput near-linearly (>=3x at G=4); past G=4 the \
         fixed 8-node pool saturates (every node then serves several groups) \
         and the curve flattens. 8b — the composed machine absorbs a full \
         rolling replacement with zero aggregate gap and only a brief \
         per-shard dip (state transfer competing for the capped egress), \
         while the stop-the-world baseline freezes each shard for several \
         times longer as its turn comes. 8c — group independence makes the \
         parallel split driver bit-identical with serial execution.\n\n",
    );
    ExpOutput {
        histograms: Vec::new(),
        rendered,
        tables: vec![t8a, t8b, t8c],
    }
}

/// Renders E11.
pub fn run(quick: bool) -> String {
    run_structured(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_aggregate_throughput_scales_3x_at_four_groups() {
        let rows = scaling_rows(true);
        let tput = |g: u32| rows.iter().find(|r| r.groups == g).map(|r| r.tput).unwrap();
        let speedup = tput(4) / tput(1);
        assert!(
            speedup >= 3.0,
            "G=4 speedup {speedup:.2}x below the 3x acceptance bar \
             (G=1: {:.0} op/s, G=4: {:.0} op/s)",
            tput(1),
            tput(4)
        );
    }

    #[test]
    fn e11_rolling_churn_leaves_no_aggregate_gap_for_rsmr() {
        let rows = rolling_rows(true);
        let row = |k: ShardSystem| rows.iter().find(|r| r.kind == k).unwrap();
        let rsmr = row(ShardSystem::Rsmr);
        assert_eq!(rsmr.reconfigs, 2, "every shard must finish its step");
        assert_eq!(
            rsmr.aggregate_gap_ms, 0,
            "aggregate timeline must not pause"
        );
        let stw = row(ShardSystem::Stw);
        assert_eq!(stw.reconfigs, 2);
        assert!(
            stw.max_shard_gap_ms > rsmr.max_shard_gap_ms,
            "stop-the-world should stall the reconfiguring shard \
             (stw {} ms vs rsmr {} ms)",
            stw.max_shard_gap_ms,
            rsmr.max_shard_gap_ms
        );
    }

    #[test]
    fn e11_split_driver_digests_match() {
        let row = split_row(true);
        assert_eq!(row.serial_digest, row.parallel_digest);
        assert!(row.completed > 0);
    }
}
