//! **E13 (Table 15)** — leader-side batching under an egress cap.
//!
//! Claim: when the replication fabric is the bottleneck, per-command
//! fan-out caps single-group throughput; amortizing the per-message
//! framing over `max_batch` commands recovers an order of magnitude —
//! not because the payload bytes shrink (the wire model charges a
//! batch's full serialized size), but because the unbatched point sits
//! past its saturation knee: closed-loop clients time out and
//! retransmit, the duplicates eat the capped fabric, and goodput
//! collapses. Batching absorbs the same offered load with fabric to
//! spare. The latency columns show the price: a non-full batch waits up
//! to `max_delay` before it flushes, and queueing behind larger slots
//! thickens the tail.
//!
//! The cap is applied as a [`Scenario::fabric_cap`]: every server↔server
//! link carries the capped bandwidth with a *serialized egress port*
//! (concurrent sends queue — see `NetConfig::with_egress_queueing`),
//! while client access stays on the uncapped local segment. Unbatched,
//! every command costs the leader two `Accept`s plus two `Chosen`
//! broadcasts (~208 bytes of framing on top of the ~50-byte command);
//! batched, that framing is shared by up to `max_batch` commands.
//!
//! Every row runs the *same* composed system at the same fabric cap with
//! the same client fleet — only the batching knobs
//! `(max_batch, max_delay, window)` differ.

use simnet::{HistogramSummary, SimTime};

use super::ExpOutput;
use crate::runner::{run_many, Scenario, SystemKind};
use crate::table::Table;

/// Server↔server fabric cap, bytes/second. Tight enough that the
/// unbatched run is fabric-limited (~200 KB/s ÷ ~300 B of per-command
/// framing + payload ≈ 650 op/s — below what 64 closed-loop clients
/// offer, so it collapses under retransmissions), while a batched
/// leader absorbs the same load.
const EGRESS_CAP: u64 = 200_000;

/// The batching points swept: `(label, Some((max_batch, max_delay_ms,
/// window)))`, with `None` as the unbatched baseline.
type Point = (&'static str, Option<(usize, u64, usize)>);

fn points(quick: bool) -> Vec<Point> {
    let mut pts: Vec<Point> = vec![("unbatched", None)];
    if !quick {
        pts.push(("batch=8 w=4", Some((8, 1, 4))));
    }
    pts.push(("batch=64 w=8", Some((64, 1, 8))));
    if !quick {
        pts.push(("batch=256 w=16", Some((256, 2, 16))));
    }
    pts
}

/// The regression gate the CI smoke step holds the sweep to: the best
/// batched point must beat the unbatched baseline by at least this
/// factor (the full run lands well above — see `BENCH_PR7.json`).
pub const GATE_MIN_SPEEDUP: f64 = 10.0;

/// One measured point of the sweep, for tables and the CI artifact.
pub struct Row {
    /// Point label, e.g. `batch=64 w=8`.
    pub label: &'static str,
    /// Committed ops/second over the measurement window.
    pub throughput: f64,
    /// Client-observed latency percentiles, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile, milliseconds.
    pub p95_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// Throughput relative to the unbatched baseline.
    pub speedup: f64,
}

/// Runs the sweep, returning one [`Row`] per point.
pub fn run_rows(quick: bool) -> Vec<Row> {
    run_sweep(quick).0
}

/// Runs the sweep, also exporting the leader-side `paxos.*` telemetry
/// histograms (batch size, flush wait, pipeline occupancy, slot latency)
/// of the `batch=64 w=8` point — the configuration both modes share —
/// for the schema-2 JSONL artifact.
pub fn run_sweep(quick: bool) -> (Vec<Row>, Vec<HistogramSummary>) {
    // The unbatched point's retransmission collapse deepens over the
    // first several seconds; a horizon shorter than ~8 s measures the
    // transient instead of the settled regime.
    let horizon = if quick {
        SimTime::from_secs(9)
    } else {
        SimTime::from_secs(12)
    };
    let measure_from = SimTime::from_secs(1);
    // Both modes run the same 64-client load: with honest per-entry
    // `Accept` sizes the unbatched point only shows its collapse (client
    // retransmissions eating the capped fabric) at full load — a lighter
    // quick axis would sit below the knee and measure a different regime.
    let clients = 64;
    let pts = points(quick);
    let jobs: Vec<(SystemKind, Scenario)> = pts
        .iter()
        .map(|&(_, batching)| {
            let mut sc = Scenario::new(0xE13)
                .servers(3)
                .clients(clients)
                .fabric_cap(EGRESS_CAP)
                .until(horizon);
            sc.value_size = 16;
            sc.batching = batching;
            (SystemKind::Rsmr, sc)
        })
        .collect();
    let mut outs = run_many(jobs).into_iter();
    let mut base_tput = 0.0;
    let mut telemetry = Vec::new();
    let rows = pts
        .iter()
        .map(|&(label, batching)| {
            let mut out = outs.next().expect("one result per point");
            let tput = out.throughput(measure_from, horizon);
            if batching.is_none() {
                base_tput = tput;
            }
            if label == "batch=64 w=8" {
                telemetry = out
                    .metrics
                    .snapshot()
                    .histograms
                    .into_iter()
                    .filter(|h| h.name.starts_with("paxos."))
                    .collect();
            }
            Row {
                label,
                throughput: tput,
                p50_ms: out.latency_us(0.5) / 1000.0,
                p95_ms: out.latency_us(0.95) / 1000.0,
                p99_ms: out.latency_us(0.99) / 1000.0,
                speedup: if base_tput > 0.0 {
                    tput / base_tput
                } else {
                    0.0
                },
            }
        })
        .collect();
    (rows, telemetry)
}

/// Renders Table 15 from measured rows.
fn table_from(rows: &[Row]) -> Table {
    let mut table = Table::new(
        "E13 / Table 15 — leader-side batching at a fixed egress cap (1 group, 3 servers)",
        &[
            "config",
            "throughput (op/s)",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "vs unbatched",
        ],
    );
    for r in rows {
        table.row(&[
            r.label.to_owned(),
            format!("{:.0}", r.throughput),
            format!("{:.3}", r.p50_ms),
            format!("{:.3}", r.p95_ms),
            format!("{:.3}", r.p99_ms),
            if r.speedup > 0.0 {
                format!("{:.1}x", r.speedup)
            } else {
                "—".into()
            },
        ]);
    }
    table
}

/// Runs E13 and renders Table 15.
pub fn run_table(quick: bool) -> Table {
    table_from(&run_rows(quick))
}

/// Runs E13, returning the rendered text, its table, and the exported
/// leader-side telemetry histograms.
pub fn run_structured(quick: bool) -> ExpOutput {
    let (rows, telemetry) = run_sweep(quick);
    let table = table_from(&rows);
    let mut out = table.render();
    out.push_str(
        "Shape expected: with the replication fabric capped and egress \
         serialized, the unbatched leader spends ~208 bytes of framing \
         (`Accept` ×2 + `Chosen` ×2) per command, so throughput saturates \
         near cap ÷ framing while closed-loop clients queue (fat p50). \
         Batching amortizes that framing across `max_batch` commands per \
         slot — throughput recovers an order of magnitude at the same cap \
         — and the latency columns expose the tradeoff: the flush deadline \
         (`max_delay`) bounds how long a non-full batch idles, so bigger \
         batches buy throughput with a thicker tail once the batch no \
         longer fills instantly.\n\n",
    );
    ExpOutput {
        histograms: telemetry,
        rendered: out,
        tables: vec![table],
    }
}

/// Renders E13.
pub fn run(quick: bool) -> String {
    run_structured(quick).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_reports_every_point_with_speedup_column() {
        let t = run_table(true);
        let s = t.render();
        assert!(s.contains("unbatched"));
        assert!(s.contains("batch=64 w=8"));
        assert!(s.contains('x'), "speedup column present");
        assert!(s.lines().filter(|l| l.starts_with('|')).count() >= 4);
    }
}
