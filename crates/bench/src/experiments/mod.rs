//! The experiments (one module per table/figure of `EXPERIMENTS.md`).
//!
//! Every experiment is a pure function of its parameters — results are
//! reproducible across machines because all measurements are in *virtual*
//! time. `quick` trims sweep dimensions for CI.

pub mod e10_local_reads;
pub mod e1_steady_state;
pub mod e2_timeline;
pub mod e3_state_transfer;
pub mod e4_latency_window;
pub mod e5_churn;
pub mod e6_faults;
pub mod e7_messages;
pub mod e8_scaling;
pub mod e9_wan;

/// Experiment ids in presentation order.
pub const ALL: [&str; 10] = ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"];

/// Runs one experiment by id, returning its rendered output.
pub fn run_one(id: &str, quick: bool) -> Option<String> {
    match id {
        "e1" => Some(e1_steady_state::run(quick)),
        "e2" => Some(e2_timeline::run(quick)),
        "e3" => Some(e3_state_transfer::run(quick)),
        "e4" => Some(e4_latency_window::run(quick)),
        "e5" => Some(e5_churn::run(quick)),
        "e6" => Some(e6_faults::run(quick)),
        "e7" => Some(e7_messages::run(quick)),
        "e8" => Some(e8_scaling::run(quick)),
        "e9" => Some(e9_wan::run(quick)),
        "e10" => Some(e10_local_reads::run(quick)),
        _ => None,
    }
}
