//! The experiments (one module per table/figure of `EXPERIMENTS.md`).
//!
//! Every experiment is a pure function of its parameters — results are
//! reproducible across machines because all measurements are in *virtual*
//! time. `quick` trims sweep dimensions for CI.

pub mod chaos_sweep;
pub mod e10_local_reads;
pub mod e11_sharding;
pub mod e13_batching;
pub mod e14_large_state;
pub mod e1_steady_state;
pub mod e2_timeline;
pub mod e3_state_transfer;
pub mod e4_latency_window;
pub mod e5_churn;
pub mod e6_faults;
pub mod e7_messages;
pub mod e8_scaling;
pub mod e9_wan;

use crate::table::{json_escape_into, Table};
use simnet::HistogramSummary;

/// Experiment ids in presentation order.
pub const ALL: [&str; 14] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e13", "e14", "chaos",
];

/// One-line description per experiment id (same order as [`ALL`]; the
/// source for `exp_all --list`).
pub fn describe(id: &str) -> &'static str {
    match id {
        "e1" => "steady-state throughput/latency across all five systems",
        "e2" => "client-visible timeline through a planned reconfiguration",
        "e3" => "state-transfer cost vs application state size",
        "e4" => "latency distribution inside the reconfiguration window",
        "e5" => "sustained membership churn",
        "e6" => "faults during reconfiguration (leader crash, donor crash)",
        "e7" => "message complexity accounting",
        "e8" => "scaling with configuration size",
        "e9" => "WAN latency profile",
        "e10" => "leader-local reads vs full ordering",
        "e11" => "sharded multi-group composition: scaling + rolling churn",
        "e13" => "leader-side batching + pipelined window at a fixed egress cap",
        "e14" => "large-state transfer: chunked streaming, delta rejoin, compaction",
        "chaos" => "randomized fault sweep with safety oracles",
        _ => "unknown experiment",
    }
}

/// One experiment's full output: the rendered presentation text plus the
/// structured tables behind it (the source for machine-readable artifacts).
pub struct ExpOutput {
    /// Tables, figures and commentary, ready to print.
    pub rendered: String,
    /// The tables in presentation order.
    pub tables: Vec<Table>,
    /// Telemetry histogram summaries the experiment chose to export
    /// (schema-2 artifact lines; empty for experiments with none).
    pub histograms: Vec<HistogramSummary>,
}

impl ExpOutput {
    /// Serializes the experiment as a JSONL artifact: one meta line, one
    /// line per table row, then one line per exported histogram summary
    /// (schema documented in `EXPERIMENTS.md`).
    ///
    /// Artifacts carry no timestamps or host data, so two same-seed runs —
    /// and the serial and parallel drivers — produce byte-identical files.
    pub fn to_jsonl(&self, id: &str, quick: bool) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"experiment\":\"{id}\",\"schema\":2,\"quick\":{quick},\"tables\":["
        ));
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape_into(t.title(), &mut out);
            out.push('"');
        }
        out.push_str("]}\n");
        for (i, t) in self.tables.iter().enumerate() {
            t.jsonl_into(id, i, &mut out);
        }
        for h in &self.histograms {
            out.push_str(&format!("{{\"experiment\":\"{id}\",\"histogram\":\""));
            json_escape_into(&h.name, &mut out);
            out.push_str(&format!(
                "\",\"count\":{},\"mean\":{:.3},\"min\":{:.3},\"max\":{:.3},\
                 \"p50\":{:.3},\"p90\":{:.3},\"p99\":{:.3}}}\n",
                h.count, h.mean, h.min, h.max, h.p50, h.p90, h.p99
            ));
        }
        out
    }
}

/// Runs one experiment by id, returning its rendered output plus tables.
pub fn run_structured(id: &str, quick: bool) -> Option<ExpOutput> {
    match id {
        "e1" => Some(e1_steady_state::run_structured(quick)),
        "e2" => Some(e2_timeline::run_structured(quick)),
        "e3" => Some(e3_state_transfer::run_structured(quick)),
        "e4" => Some(e4_latency_window::run_structured(quick)),
        "e5" => Some(e5_churn::run_structured(quick)),
        "e6" => Some(e6_faults::run_structured(quick)),
        "e7" => Some(e7_messages::run_structured(quick)),
        "e8" => Some(e8_scaling::run_structured(quick)),
        "e9" => Some(e9_wan::run_structured(quick)),
        "e10" => Some(e10_local_reads::run_structured(quick)),
        "e11" => Some(e11_sharding::run_structured(quick)),
        "e13" => Some(e13_batching::run_structured(quick)),
        "e14" => Some(e14_large_state::run_structured(quick)),
        "chaos" => Some(chaos_sweep::run_structured(quick)),
        _ => None,
    }
}

/// Runs one experiment by id, returning its rendered output.
pub fn run_one(id: &str, quick: bool) -> Option<String> {
    run_structured(id, quick).map(|o| o.rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_artifact_has_meta_line_and_fixed_schema() {
        let mut t = Table::new("Table A", &["x"]);
        t.row(&["1".into()]);
        let out = ExpOutput {
            histograms: vec![HistogramSummary {
                name: "paxos.batch_size".into(),
                count: 3,
                mean: 2.0,
                min: 1.0,
                max: 4.0,
                p50: 2.0,
                p90: 4.0,
                p99: 4.0,
            }],
            rendered: String::new(),
            tables: vec![t],
        };
        let art = out.to_jsonl("e1", true);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"experiment\":\"e1\",\"schema\":2,\"quick\":true,\"tables\":[\"Table A\"]}"
        );
        assert_eq!(
            lines[1],
            "{\"experiment\":\"e1\",\"table\":0,\"title\":\"Table A\",\"row\":0,\"cells\":{\"x\":\"1\"}}"
        );
        assert_eq!(
            lines[2],
            "{\"experiment\":\"e1\",\"histogram\":\"paxos.batch_size\",\"count\":3,\
             \"mean\":2.000,\"min\":1.000,\"max\":4.000,\
             \"p50\":2.000,\"p90\":4.000,\"p99\":4.000}"
        );
    }

    #[test]
    fn unknown_experiment_ids_are_rejected() {
        assert!(run_structured("e0", true).is_none());
        assert!(run_one("nope", true).is_none());
    }
}
