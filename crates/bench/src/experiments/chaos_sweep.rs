//! **Chaos** — multi-seed fault-schedule sweep.
//!
//! Every seed deterministically expands (via [`simnet::ChaosGen`]) into a
//! [`simnet::FaultPlan`] of crashes-with-restart, partitions and link-degradation
//! windows aimed at role targets (leader, transfer donor, joiner), fired
//! while a reconfiguration and a client workload are in flight. For each
//! seed the composed machine and the raft baseline must stay *safe*
//! (invariant observer clean, client history linearizable) and *live*
//! (every client op completes once the faults heal).
//!
//! A failing seed is fully described by its number: replay it with
//!
//! ```sh
//! cargo run --release -p bench --bin exp_all -- chaos --seeds 1@<seed>
//! ```

use kvstore::{linearizable, KvStore};
use simnet::{ChaosGen, SimTime};

use super::ExpOutput;
use crate::runner::{run_many, Scenario, SystemKind};
use crate::table::Table;

const RECONFIG_AT: SimTime = SimTime::from_millis(400);
/// Faults fire inside this window — before, during and after the handoff.
const FAULTS_FROM: SimTime = SimTime::from_millis(200);
const FAULTS_UNTIL: SimTime = SimTime::from_millis(1_500);
const FAULTS_PER_SEED: usize = 3;
const OPS_PER_CLIENT: u64 = 600;
const N_CLIENTS: u64 = 2;

/// The systems the sweep holds to the safety + liveness bar. The batched
/// composition runs the same fault plans with the leader accumulator and
/// pipelined window live, so crashes land mid-batch-flush.
pub const SWEPT: [SystemKind; 3] = [SystemKind::Rsmr, SystemKind::RsmrBatched, SystemKind::Raft];

/// One `(seed, system)` outcome.
pub struct SeedRow {
    /// The chaos seed (fully determines the fault plan).
    pub seed: u64,
    /// System under test.
    pub kind: SystemKind,
    /// Human-readable plan, for failure reports.
    pub plan: String,
    /// Client completions observed / expected.
    pub completed: u64,
    /// Expected completions (all clients finish once faults heal).
    pub expected: u64,
    /// Safety violations from the invariant observer.
    pub invariant_violations: Vec<String>,
    /// Linearizability of the recorded client history.
    pub linearizable: bool,
}

impl SeedRow {
    /// Safety and liveness both held.
    pub fn passed(&self) -> bool {
        self.invariant_violations.is_empty() && self.linearizable && self.completed == self.expected
    }
}

/// The deterministic scenario a chaos seed expands into.
pub fn scenario_for(seed: u64) -> Scenario {
    let plan = ChaosGen::new(seed).sample(FAULTS_FROM, FAULTS_UNTIL, FAULTS_PER_SEED);
    let mut sc = Scenario::new(seed)
        .clients(N_CLIENTS)
        .joiners(&[3])
        .reconfigure_at(RECONFIG_AT, &[0, 1, 2, 3])
        .with_faults(plan)
        .checked()
        .until(SimTime::from_secs(30));
    sc.ops_per_client = Some(OPS_PER_CLIENT);
    sc.record_history = true;
    sc
}

/// Runs the sweep over `seeds`, fanning `(seed, system)` jobs across cores.
pub fn run_rows(seeds: &[u64]) -> Vec<SeedRow> {
    let jobs: Vec<(SystemKind, Scenario)> = seeds
        .iter()
        .flat_map(|&s| SWEPT.into_iter().map(move |k| (k, scenario_for(s))))
        .collect();
    let outs = run_many(jobs.clone());
    jobs.iter()
        .zip(outs)
        .map(|((kind, sc), out)| SeedRow {
            seed: sc.seed,
            kind: *kind,
            plan: sc.faults.describe(),
            completed: out.completed,
            expected: N_CLIENTS * OPS_PER_CLIENT,
            invariant_violations: out.invariant_violations,
            linearizable: linearizable(KvStore::new(), &out.histories),
        })
        .collect()
}

/// The seeds whose runs failed on any system, deduplicated, in order.
pub fn failing_seeds(rows: &[SeedRow]) -> Vec<u64> {
    let mut out: Vec<u64> = Vec::new();
    for r in rows.iter().filter(|r| !r.passed()) {
        if !out.contains(&r.seed) {
            out.push(r.seed);
        }
    }
    out
}

/// The default seed set: `base..base+n`.
pub fn seed_range(n: u64, base: u64) -> Vec<u64> {
    (base..base.saturating_add(n)).collect()
}

/// Runs the sweep and renders it, returning the failing seeds alongside.
pub fn run_structured_seeds(seeds: &[u64]) -> (ExpOutput, Vec<u64>) {
    let rows = run_rows(seeds);
    let mut t = Table::new(
        "Chaos — seeded fault-schedule sweep (safety + liveness)",
        &[
            "seed",
            "system",
            "completed",
            "invariants",
            "linearizable",
            "verdict",
        ],
    );
    for r in &rows {
        t.row(&[
            r.seed.to_string(),
            r.kind.name().into(),
            format!("{}/{}", r.completed, r.expected),
            if r.invariant_violations.is_empty() {
                "clean".into()
            } else {
                format!("{} VIOLATIONS", r.invariant_violations.len())
            },
            if r.linearizable { "PASS" } else { "FAIL" }.into(),
            if r.passed() { "ok" } else { "FAILED" }.into(),
        ]);
    }
    let mut out = t.render();
    let failing = failing_seeds(&rows);
    if failing.is_empty() {
        out.push_str(&format!(
            "All {} seeds passed on {} systems: no invariant violations, \
             every history linearizable, all client work completed after the \
             faults healed.\n\n",
            seeds.len(),
            SWEPT.len()
        ));
    } else {
        out.push_str("FAILING SEEDS — replay each with:\n");
        for s in &failing {
            out.push_str(&format!(
                "  cargo run --release -p bench --bin exp_all -- chaos --seeds 1@{s}\n"
            ));
        }
        for r in rows.iter().filter(|r| !r.passed()) {
            out.push_str(&format!(
                "  seed {} on {}: plan {}\n",
                r.seed,
                r.kind.name(),
                r.plan
            ));
            for v in &r.invariant_violations {
                out.push_str(&format!("    violation: {v}\n"));
            }
        }
        out.push('\n');
    }
    (
        ExpOutput {
            histograms: Vec::new(),
            rendered: out,
            tables: vec![t],
        },
        failing,
    )
}

/// Runs the sweep over the default seed set.
pub fn run_structured(quick: bool) -> ExpOutput {
    let seeds = seed_range(if quick { 8 } else { 24 }, 1);
    run_structured_seeds(&seeds).0
}

/// Renders the sweep.
pub fn run(quick: bool) -> String {
    run_structured(quick).rendered
}
