//! **Chaos** — seeded fault-schedule sweep plus a coverage-guided mode.
//!
//! ## Uniform safety sweep
//!
//! Every seed deterministically expands (via [`simnet::ChaosGen`]) into a
//! [`simnet::FaultPlan`] of crashes-with-restart, partitions, link
//! degradation, message-corruption windows and disk faults aimed at role
//! targets (leader, transfer donor, joiner), fired while a reconfiguration
//! and a client workload are in flight. For each seed the composed machine
//! and the raft baseline must stay *safe* (invariant observer clean,
//! client history linearizable) and *live* (every client op completes once
//! the faults heal).
//!
//! A failing seed is fully described by its number: replay it with
//!
//! ```sh
//! cargo run --release -p bench --bin exp_all -- chaos --seeds 1@<seed>
//! ```
//!
//! ## Coverage-guided mode
//!
//! The uniform sweep draws every fault plan independently; it has no
//! notion of which executions it has already seen. The coverage-guided
//! mode closes that loop: each run reports its event-digest prefix
//! checkpoints ([`simnet::EventDigest::prefix_digests`]) and its
//! lifecycle-interleaving signature ([`simnet::LifecycleCoverage`]), a
//! [`simnet::CoverageMap`] accumulates them across runs, and candidates
//! that contributed *novel* coverage join a corpus. Subsequent candidates
//! are deterministic mutations of corpus parents
//! ([`simnet::mutate_plan`] via [`PlanLineage::child`]) combined with a
//! DPOR-flavoured sweep of the 27 fixed delivery-order assignments for
//! the three inter-server links ([`simnet::link_delay_permutation`] via
//! [`PlanLineage::with_perm`]).
//!
//! The comparison harness holds the *simulator* seed fixed
//! ([`COVERAGE_SIM_SEED`]) in both arms so the measured quantity is the
//! exploration power of the *sweep strategy* — how plans and delivery
//! orders are chosen — not the incidental entropy of network latency
//! draws. Under a fixed simulator seed every uniform run replays the same
//! event prefix until its first fault fires (the plan only diverges the
//! execution from `FAULTS_FROM` onwards), while guided candidates also
//! diverge *before* the first fault through the delivery-order
//! permutation. The gate: at equal run budget, guided coverage must find
//! at least [`GATE_MIN_COVERAGE_GAIN_PCT`]% more unique digest prefixes
//! than uniform sampling.
//!
//! A coverage candidate is fully described by its printed lineage
//! (`base[:m1,m2,..][#perm]`): replay it with
//!
//! ```sh
//! cargo run --release -p bench --bin exp_all -- chaos --replay <lineage>
//! ```

use kvstore::{linearizable, KvStore};
use simnet::{ChaosGen, CoverageMap, PlanLineage, SimTime};

use super::ExpOutput;
use crate::runner::{run_many, Scenario, SystemKind};
use crate::table::Table;

const RECONFIG_AT: SimTime = SimTime::from_millis(400);
/// Faults fire inside this window — before, during and after the handoff.
const FAULTS_FROM: SimTime = SimTime::from_millis(200);
const FAULTS_UNTIL: SimTime = SimTime::from_millis(1_500);
const FAULTS_PER_SEED: usize = 3;
const OPS_PER_CLIENT: u64 = 600;
const N_CLIENTS: u64 = 2;

/// Fixed simulator seed for both arms of the coverage comparison (see the
/// module docs for why the simulator seed is held constant).
pub const COVERAGE_SIM_SEED: u64 = 0x5EED;
/// The nightly gate: guided coverage must beat uniform unique-prefix
/// coverage by at least this much at equal run budget.
pub const GATE_MIN_COVERAGE_GAIN_PCT: f64 = 25.0;
/// Candidates per guided generation: the corpus is consulted between
/// generations (runs within a generation fan across cores).
const GENERATION: usize = 8;

/// The systems the sweep holds to the safety + liveness bar. The batched
/// composition runs the same fault plans with the leader accumulator and
/// pipelined window live, so crashes land mid-batch-flush.
pub const SWEPT: [SystemKind; 3] = [SystemKind::Rsmr, SystemKind::RsmrBatched, SystemKind::Raft];

/// One `(seed, system)` outcome.
pub struct SeedRow {
    /// The chaos seed (fully determines the fault plan).
    pub seed: u64,
    /// System under test.
    pub kind: SystemKind,
    /// Human-readable plan, for failure reports.
    pub plan: String,
    /// Client completions observed / expected.
    pub completed: u64,
    /// Expected completions (all clients finish once faults heal).
    pub expected: u64,
    /// Safety violations from the invariant observer.
    pub invariant_violations: Vec<String>,
    /// Linearizability of the recorded client history.
    pub linearizable: bool,
}

impl SeedRow {
    /// Safety and liveness both held.
    pub fn passed(&self) -> bool {
        self.invariant_violations.is_empty() && self.linearizable && self.completed == self.expected
    }
}

/// The deterministic scenario a chaos seed expands into.
pub fn scenario_for(seed: u64) -> Scenario {
    let plan = ChaosGen::new(seed).sample(FAULTS_FROM, FAULTS_UNTIL, FAULTS_PER_SEED);
    let mut sc = Scenario::new(seed)
        .clients(N_CLIENTS)
        .joiners(&[3])
        .reconfigure_at(RECONFIG_AT, &[0, 1, 2, 3])
        .with_faults(plan)
        .checked()
        .until(SimTime::from_secs(30));
    sc.ops_per_client = Some(OPS_PER_CLIENT);
    sc.record_history = true;
    sc
}

/// The deterministic scenario a coverage lineage expands into: same
/// workload and safety checks as [`scenario_for`], but the simulator seed
/// is pinned to [`COVERAGE_SIM_SEED`], event probes are on (the coverage
/// signals come from them), and a non-zero `perm` pins the inter-server
/// delivery orders.
pub fn lineage_scenario(l: &PlanLineage) -> Scenario {
    let plan = l.materialize(FAULTS_FROM, FAULTS_UNTIL, FAULTS_PER_SEED);
    let mut sc = Scenario::new(COVERAGE_SIM_SEED)
        .clients(N_CLIENTS)
        .joiners(&[3])
        .reconfigure_at(RECONFIG_AT, &[0, 1, 2, 3])
        .with_faults(plan)
        .checked()
        .with_events()
        .until(SimTime::from_secs(30));
    if l.perm != 0 {
        sc = sc.delay_perm(l.perm);
    }
    sc.ops_per_client = Some(OPS_PER_CLIENT);
    sc.record_history = true;
    sc
}

/// Runs the sweep over `seeds`, fanning `(seed, system)` jobs across cores.
pub fn run_rows(seeds: &[u64]) -> Vec<SeedRow> {
    let jobs: Vec<(SystemKind, Scenario)> = seeds
        .iter()
        .flat_map(|&s| SWEPT.into_iter().map(move |k| (k, scenario_for(s))))
        .collect();
    let outs = run_many(jobs.clone());
    jobs.iter()
        .zip(outs)
        .map(|((kind, sc), out)| SeedRow {
            seed: sc.seed,
            kind: *kind,
            plan: sc.faults.describe(),
            completed: out.completed,
            expected: N_CLIENTS * OPS_PER_CLIENT,
            invariant_violations: out.invariant_violations,
            linearizable: linearizable(KvStore::new(), &out.histories),
        })
        .collect()
}

/// The seeds whose runs failed on any system, deduplicated, in order.
pub fn failing_seeds(rows: &[SeedRow]) -> Vec<u64> {
    let mut out: Vec<u64> = Vec::new();
    for r in rows.iter().filter(|r| !r.passed()) {
        if !out.contains(&r.seed) {
            out.push(r.seed);
        }
    }
    out
}

/// The default seed set: `base..base+n`.
pub fn seed_range(n: u64, base: u64) -> Vec<u64> {
    (base..base.saturating_add(n)).collect()
}

/// One coverage-comparison run outcome.
pub struct CoverageRow {
    /// `"uniform"` or `"coverage"`.
    pub mode: &'static str,
    /// The full plan lineage — the replay key.
    pub lineage: PlanLineage,
    /// Human-readable plan, for failure reports.
    pub plan: String,
    /// Novel coverage units (digest prefixes + signatures) this run
    /// contributed to its arm's map.
    pub novel: u64,
    /// Digest-prefix checkpoints the run recorded.
    pub checkpoints: usize,
    /// The run's lifecycle-interleaving signature bitmask.
    pub signature: u64,
    /// Client completions observed / expected.
    pub completed: u64,
    /// Expected completions.
    pub expected: u64,
    /// Safety violations from the invariant observer.
    pub invariant_violations: Vec<String>,
    /// Linearizability of the recorded client history.
    pub linearizable: bool,
}

impl CoverageRow {
    /// Safety and liveness both held.
    pub fn passed(&self) -> bool {
        self.invariant_violations.is_empty() && self.linearizable && self.completed == self.expected
    }
}

/// The uniform-vs-guided comparison at equal run budget.
pub struct CoverageReport {
    /// Runs per arm.
    pub budget: usize,
    /// Uniform-arm rows followed by guided-arm rows.
    pub rows: Vec<CoverageRow>,
    /// Unique digest prefixes the uniform arm accumulated.
    pub uniform_prefixes: usize,
    /// Unique lifecycle signatures the uniform arm accumulated.
    pub uniform_signatures: usize,
    /// Unique digest prefixes the guided arm accumulated.
    pub guided_prefixes: usize,
    /// Unique lifecycle signatures the guided arm accumulated.
    pub guided_signatures: usize,
    /// Lineages that contributed novel coverage, in discovery order —
    /// the corpus a longer guided run would keep mutating from.
    pub corpus: Vec<PlanLineage>,
}

impl CoverageReport {
    /// Percentage gain of guided over uniform unique-prefix coverage.
    pub fn gain_pct(&self) -> f64 {
        if self.uniform_prefixes == 0 {
            return 0.0;
        }
        (self.guided_prefixes as f64 / self.uniform_prefixes as f64 - 1.0) * 100.0
    }

    /// The nightly coverage gate.
    pub fn gate_ok(&self) -> bool {
        self.gain_pct() >= GATE_MIN_COVERAGE_GAIN_PCT
    }

    /// Lineages of failing runs (safety or liveness), deduplicated.
    pub fn failing_lineages(&self) -> Vec<PlanLineage> {
        let mut out: Vec<PlanLineage> = Vec::new();
        for r in self.rows.iter().filter(|r| !r.passed()) {
            if !out.contains(&r.lineage) {
                out.push(r.lineage.clone());
            }
        }
        out
    }
}

/// Runs `cands` (one run each, composed machine) and folds their coverage
/// into `map` in candidate order.
fn coverage_rows(
    mode: &'static str,
    cands: &[PlanLineage],
    map: &mut CoverageMap,
) -> Vec<CoverageRow> {
    let jobs: Vec<(SystemKind, Scenario)> = cands
        .iter()
        .map(|l| (SystemKind::Rsmr, lineage_scenario(l)))
        .collect();
    let outs = run_many(jobs);
    cands
        .iter()
        .zip(outs)
        .map(|(l, out)| CoverageRow {
            mode,
            lineage: l.clone(),
            plan: l
                .materialize(FAULTS_FROM, FAULTS_UNTIL, FAULTS_PER_SEED)
                .describe(),
            novel: map.observe(&out.digest_prefixes, out.lifecycle_signature),
            checkpoints: out.digest_prefixes.len(),
            signature: out.lifecycle_signature,
            completed: out.completed,
            expected: N_CLIENTS * OPS_PER_CLIENT,
            invariant_violations: out.invariant_violations,
            linearizable: linearizable(KvStore::new(), &out.histories),
        })
        .collect()
}

/// Runs both arms of the comparison at `budget` runs each.
///
/// The uniform arm draws fresh independent chaos seeds `base..base+budget`
/// — exactly the plans the uniform sweep would use. The guided arm starts
/// from `base` and evolves a corpus: generation 0 spreads the base plan
/// across delivery-order permutations, every run that contributes novel
/// coverage joins the corpus, and later generations mutate corpus parents
/// round-robin while cycling through the remaining permutations. Both the
/// candidate schedule and the runs themselves are deterministic: the whole
/// report is a pure function of `(budget, base)`.
pub fn run_coverage(budget: usize, base: u64) -> CoverageReport {
    // Uniform arm.
    let mut umap = CoverageMap::new();
    let ucands: Vec<PlanLineage> = (0..budget as u64)
        .map(|i| PlanLineage::seed(base + i))
        .collect();
    let mut rows = coverage_rows("uniform", &ucands, &mut umap);

    // Guided arm.
    let mut gmap = CoverageMap::new();
    let mut corpus: Vec<PlanLineage> = Vec::new();
    let mut next_mutation: u32 = 0;
    // Stride 5 is coprime with 27, so successive candidates cycle through
    // every delivery-order assignment before repeating one.
    let mut next_perm: u64 = 1;
    let mut parent_cursor = 0usize;
    let mut remaining = budget;
    let mut gen: Vec<PlanLineage> = (0..GENERATION.min(remaining) as u64)
        .map(|i| PlanLineage::seed(base).with_perm((i * 5) % 27))
        .collect();
    while remaining > 0 {
        gen.truncate(remaining);
        let batch = coverage_rows("coverage", &gen, &mut gmap);
        remaining -= batch.len();
        for r in &batch {
            if r.novel > 0 {
                corpus.push(r.lineage.clone());
            }
        }
        rows.extend(batch);
        if remaining == 0 {
            break;
        }
        if corpus.is_empty() {
            corpus.push(PlanLineage::seed(base));
        }
        gen = (0..GENERATION.min(remaining))
            .map(|_| {
                let parent = corpus[parent_cursor % corpus.len()].clone();
                parent_cursor += 1;
                let child = parent.child(next_mutation);
                next_mutation += 1;
                let perm = next_perm % 27;
                next_perm += 5;
                child.with_perm(perm)
            })
            .collect();
    }

    CoverageReport {
        budget,
        rows,
        uniform_prefixes: umap.unique_prefixes(),
        uniform_signatures: umap.unique_signatures(),
        guided_prefixes: gmap.unique_prefixes(),
        guided_signatures: gmap.unique_signatures(),
        corpus,
    }
}

/// Renders the coverage comparison as two tables (per-run rows, then the
/// summary with the gate verdict).
pub fn coverage_tables(report: &CoverageReport) -> (Table, Table) {
    let mut runs = Table::new(
        "Chaos coverage — per-run novelty (uniform vs coverage-guided)",
        &[
            "mode",
            "lineage",
            "perm",
            "checkpoints",
            "novel",
            "signature",
            "completed",
            "verdict",
        ],
    );
    for r in &report.rows {
        runs.row(&[
            r.mode.into(),
            r.lineage.to_string(),
            r.lineage.perm.to_string(),
            r.checkpoints.to_string(),
            r.novel.to_string(),
            format!("{:#04x}", r.signature),
            format!("{}/{}", r.completed, r.expected),
            if r.passed() { "ok" } else { "FAILED" }.into(),
        ]);
    }
    let mut summary = Table::new(
        "Chaos coverage — summary (equal run budget)",
        &[
            "mode",
            "runs",
            "unique_prefixes",
            "unique_signatures",
            "gain_pct",
            "gate",
        ],
    );
    summary.row(&[
        "uniform".into(),
        report.budget.to_string(),
        report.uniform_prefixes.to_string(),
        report.uniform_signatures.to_string(),
        String::new(),
        String::new(),
    ]);
    summary.row(&[
        "coverage".into(),
        report.budget.to_string(),
        report.guided_prefixes.to_string(),
        report.guided_signatures.to_string(),
        format!("{:+.1}", report.gain_pct()),
        if report.gate_ok() {
            format!("ok (>= {GATE_MIN_COVERAGE_GAIN_PCT:.0}%)")
        } else {
            format!("FAILED (< {GATE_MIN_COVERAGE_GAIN_PCT:.0}%)")
        },
    ]);
    (runs, summary)
}

/// Renders `report`, appending replay lines for failing lineages.
fn render_coverage(report: &CoverageReport) -> (String, Vec<Table>) {
    let (runs, summary) = coverage_tables(report);
    let mut out = runs.render();
    out.push_str(&summary.render());
    out.push_str(&format!(
        "Coverage-guided exploration found {} unique digest prefixes vs {} \
         uniform ({:+.1}% at equal budget of {} runs each); {} corpus \
         entries contributed novel coverage.\n\n",
        report.guided_prefixes,
        report.uniform_prefixes,
        report.gain_pct(),
        report.budget,
        report.corpus.len(),
    ));
    let failing = report.failing_lineages();
    if !failing.is_empty() {
        out.push_str("FAILING LINEAGES — replay each with:\n");
        for l in &failing {
            out.push_str(&format!(
                "  cargo run --release -p bench --bin exp_all -- chaos --replay {l}\n"
            ));
        }
        for r in report.rows.iter().filter(|r| !r.passed()) {
            out.push_str(&format!("  lineage {} plan {}\n", r.lineage, r.plan));
            for v in &r.invariant_violations {
                out.push_str(&format!("    violation: {v}\n"));
            }
        }
        out.push('\n');
    }
    (out, vec![runs, summary])
}

/// The full sweep outcome: rendered output plus everything the CLI needs
/// for exit codes and replay lines.
pub struct SweepOutcome {
    /// Rendered tables + artifact tables.
    pub output: ExpOutput,
    /// Uniform-sweep seeds that failed safety or liveness.
    pub failing_seeds: Vec<u64>,
    /// Coverage-run lineages that failed safety or liveness.
    pub failing_lineages: Vec<PlanLineage>,
    /// Whether the coverage gate held (`true` when no coverage arm ran).
    pub coverage_gate_ok: bool,
}

impl SweepOutcome {
    /// Every run safe + live and the coverage gate held.
    pub fn passed(&self) -> bool {
        self.failing_seeds.is_empty() && self.failing_lineages.is_empty() && self.coverage_gate_ok
    }
}

/// Runs the uniform sweep over `seeds` and, when `coverage_budget` is
/// set, the coverage comparison alongside.
pub fn run_sweep(seeds: &[u64], coverage_budget: Option<usize>) -> SweepOutcome {
    let rows = run_rows(seeds);
    let mut t = Table::new(
        "Chaos — seeded fault-schedule sweep (safety + liveness)",
        &[
            "seed",
            "system",
            "completed",
            "invariants",
            "linearizable",
            "verdict",
        ],
    );
    for r in &rows {
        t.row(&[
            r.seed.to_string(),
            r.kind.name().into(),
            format!("{}/{}", r.completed, r.expected),
            if r.invariant_violations.is_empty() {
                "clean".into()
            } else {
                format!("{} VIOLATIONS", r.invariant_violations.len())
            },
            if r.linearizable { "PASS" } else { "FAIL" }.into(),
            if r.passed() { "ok" } else { "FAILED" }.into(),
        ]);
    }
    let mut out = t.render();
    let failing = failing_seeds(&rows);
    if failing.is_empty() {
        out.push_str(&format!(
            "All {} seeds passed on {} systems: no invariant violations, \
             every history linearizable, all client work completed after the \
             faults healed.\n\n",
            seeds.len(),
            SWEPT.len()
        ));
    } else {
        out.push_str("FAILING SEEDS — replay each with:\n");
        for s in &failing {
            out.push_str(&format!(
                "  cargo run --release -p bench --bin exp_all -- chaos --seeds 1@{s}\n"
            ));
        }
        for r in rows.iter().filter(|r| !r.passed()) {
            out.push_str(&format!(
                "  seed {} on {}: plan {}\n",
                r.seed,
                r.kind.name(),
                r.plan
            ));
            for v in &r.invariant_violations {
                out.push_str(&format!("    violation: {v}\n"));
            }
        }
        out.push('\n');
    }
    let mut tables = vec![t];
    let mut failing_lineages = Vec::new();
    let mut coverage_gate_ok = true;
    if let Some(budget) = coverage_budget {
        let report = run_coverage(budget, seeds.first().copied().unwrap_or(1));
        let (rendered, cov_tables) = render_coverage(&report);
        out.push_str(&rendered);
        tables.extend(cov_tables);
        failing_lineages = report.failing_lineages();
        coverage_gate_ok = report.gate_ok();
    }
    SweepOutcome {
        output: ExpOutput {
            histograms: Vec::new(),
            rendered: out,
            tables,
        },
        failing_seeds: failing,
        failing_lineages,
        coverage_gate_ok,
    }
}

/// Runs the uniform sweep and renders it, returning the failing seeds
/// alongside (the `--seeds` override path: no coverage arm).
pub fn run_structured_seeds(seeds: &[u64]) -> (ExpOutput, Vec<u64>) {
    let outcome = run_sweep(seeds, None);
    (outcome.output, outcome.failing_seeds)
}

/// Runs the sweep over the default seed set, coverage comparison included.
pub fn run_structured(quick: bool) -> ExpOutput {
    let seeds = seed_range(if quick { 8 } else { 24 }, 1);
    run_sweep(&seeds, Some(if quick { 8 } else { 24 })).output
}

/// Renders the sweep.
pub fn run(quick: bool) -> String {
    run_structured(quick).rendered
}
