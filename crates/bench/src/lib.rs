//! # bench — the experiment harness
//!
//! Shared machinery for reproducing every table and figure of the
//! evaluation (`EXPERIMENTS.md`): scenario definitions, one runner per
//! system, metric extraction and table formatting.
//!
//! The five system variants (see `DESIGN.md` §5):
//!
//! * **static** — the bare non-reconfigurable Multi-Paxos building block;
//! * **rsmr** — the paper's composition, speculation on (`fast_handoff`);
//! * **rsmr-nospec** — the composition with speculative handoff disabled;
//! * **stw** — stop-the-world composition baseline;
//! * **raft** — raft-lite, natively reconfigurable.
//!
//! Run everything with `cargo run --release -p bench --bin exp_all`.

pub mod experiments;
pub mod microbench;
pub mod runner;
pub mod sharded;
pub mod table;

pub use runner::{RunOut, Scenario, SystemKind};
pub use sharded::{MergedOut, ShardRunOut, ShardScenario, ShardSystem};
pub use table::Table;
