//! Minimal aligned-table rendering for experiment output.

/// A simple left-aligned text table with a title and column headers.
///
/// ```
/// use bench::Table;
/// let mut t = Table::new("Demo", &["system", "value"]);
/// t.row(&["rsmr".into(), format!("{:.1}", 1.5)]);
/// let s = t.render();
/// assert!(s.contains("rsmr"));
/// ```
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; pads or truncates to the header width.
    pub fn row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.iter().take(self.headers.len()).cloned().collect();
        while row.len() < self.headers.len() {
            row.push(String::new());
        }
        self.rows.push(row);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<w$} |", c, w = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out.push('\n');
        out
    }
}

/// Renders an ASCII sparkline figure from binned values (one line per bin
/// group is too verbose; this compresses to a fixed-width bar row).
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 {
                ' '
            } else if v <= 0.0 {
                '·'
            } else {
                let idx = ((v / max) * 7.0).round() as usize;
                GLYPHS[idx.min(7)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = Table::new("T", &["a", "long-header"]);
        t.row(&["xxxxx".into(), "1".into()]);
        t.row(&["y".into()]); // short row is padded
        let s = t.render();
        assert!(s.starts_with("## T"));
        assert!(s.contains("| xxxxx | 1           |"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn sparkline_marks_gaps() {
        let s = sparkline(&[10.0, 0.0, 5.0]);
        assert_eq!(s.chars().count(), 3);
        assert_eq!(s.chars().nth(1), Some('·'));
        assert_eq!(s.chars().next(), Some('█'));
    }

    #[test]
    fn sparkline_of_zeroes_is_blank() {
        assert_eq!(sparkline(&[0.0, 0.0]), "  ".to_owned());
    }
}
