//! Minimal aligned-table rendering for experiment output.

/// A simple left-aligned text table with a title and column headers.
///
/// ```
/// use bench::Table;
/// let mut t = Table::new("Demo", &["system", "value"]);
/// t.row(&["rsmr".into(), format!("{:.1}", 1.5)]);
/// let s = t.render();
/// assert!(s.contains("rsmr"));
/// ```
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; pads or truncates to the header width.
    pub fn row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.iter().take(self.headers.len()).cloned().collect();
        while row.len() < self.headers.len() {
            row.push(String::new());
        }
        self.rows.push(row);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The rows, each padded to the header width.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Appends this table's rows to `out` as JSON Lines, one object per
    /// row. The key order is fixed (see EXPERIMENTS.md for the schema):
    ///
    /// ```json
    /// {"experiment":"e1","table":0,"title":"...","row":0,
    ///  "cells":{"<header>":"<cell>",...}}
    /// ```
    ///
    /// Cells stay strings: artifacts must be byte-stable across runs and
    /// the rendered strings already carry the intended precision.
    pub fn jsonl_into(&self, experiment: &str, table_idx: usize, out: &mut String) {
        for (r, row) in self.rows.iter().enumerate() {
            out.push_str("{\"experiment\":\"");
            json_escape_into(experiment, out);
            out.push_str(&format!("\",\"table\":{table_idx},\"title\":\""));
            json_escape_into(&self.title, out);
            out.push_str(&format!("\",\"row\":{r},\"cells\":{{"));
            for (i, (h, c)) in self.headers.iter().zip(row).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                json_escape_into(h, out);
                out.push_str("\":\"");
                json_escape_into(c, out);
                out.push('"');
            }
            out.push_str("}}\n");
        }
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<w$} |", c, w = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out.push('\n');
        out
    }
}

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// control characters). Table content is ASCII in practice, but headers may
/// carry unit glyphs, so the full escape set is handled.
pub fn json_escape_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders an ASCII sparkline figure from binned values (one line per bin
/// group is too verbose; this compresses to a fixed-width bar row).
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 {
                ' '
            } else if v <= 0.0 {
                '·'
            } else {
                let idx = ((v / max) * 7.0).round() as usize;
                GLYPHS[idx.min(7)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = Table::new("T", &["a", "long-header"]);
        t.row(&["xxxxx".into(), "1".into()]);
        t.row(&["y".into()]); // short row is padded
        let s = t.render();
        assert!(s.starts_with("## T"));
        assert!(s.contains("| xxxxx | 1           |"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn jsonl_emits_one_object_per_row_with_escaped_strings() {
        let mut t = Table::new("T \"quoted\"", &["sys", "p50 (µs)"]);
        t.row(&["a\\b".into(), "1".into()]);
        t.row(&["y".into(), "2".into()]);
        let mut out = String::new();
        t.jsonl_into("e9", 1, &mut out);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"experiment\":\"e9\",\"table\":1,\"title\":\"T \\\"quoted\\\"\",\
             \"row\":0,\"cells\":{\"sys\":\"a\\\\b\",\"p50 (µs)\":\"1\"}}"
        );
        assert!(lines[1].contains("\"row\":1"));
    }

    #[test]
    fn json_escape_handles_control_characters() {
        let mut out = String::new();
        json_escape_into("a\nb\t\u{1}c", &mut out);
        assert_eq!(out, "a\\nb\\t\\u0001c");
    }

    #[test]
    fn sparkline_marks_gaps() {
        let s = sparkline(&[10.0, 0.0, 5.0]);
        assert_eq!(s.chars().count(), 3);
        assert_eq!(s.chars().nth(1), Some('·'));
        assert_eq!(s.chars().next(), Some('█'));
    }

    #[test]
    fn sparkline_of_zeroes_is_blank() {
        assert_eq!(sparkline(&[0.0, 0.0]), "  ".to_owned());
    }
}
