//! Scenario definitions and per-system runners.

use std::cell::RefCell;
use std::rc::Rc;

use baselines::{
    RaftAdmin, RaftClient, RaftNode, RaftTunables, RaftWorld, StwNode, StwTunables, StwWorld,
};
use consensus::actor::{ReplicaActor, SmrClient, SmrMsg};
use consensus::{PaxosTunables, StaticConfig};
use kvstore::{HistoryOp, KeyDist, KvOp, KvOutput, KvStore, WorkloadGen};
use rsmr_core::harness::World;
use rsmr_core::{AdminActor, InvariantObserver, RsmrClient, RsmrNode, RsmrTunables};
use simnet::observe::shared;
use simnet::{
    Actor, ChaosDriver, Context, EventDigest, FaultPlan, FaultTarget, LatencyModel,
    LifecycleCoverage, Metrics, NetConfig, NodeId, Sim, SimDuration, SimTime, Spans, Timer,
};

/// Which system a scenario runs on.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SystemKind {
    /// The bare static Multi-Paxos block (no reconfiguration support).
    Static,
    /// The composed reconfigurable machine, speculation on.
    Rsmr,
    /// The composition with speculative handoff disabled (ablation).
    RsmrNoSpec,
    /// The composition with in-core leader batching and a pipelined
    /// proposal window (64 commands/slot, 1ms flush deadline, 8-slot
    /// window by default; [`Scenario::batching`] overrides).
    RsmrBatched,
    /// Stop-the-world composition baseline.
    Stw,
    /// Raft-lite (natively reconfigurable).
    Raft,
}

impl SystemKind {
    /// Short display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Static => "static-paxos",
            SystemKind::Rsmr => "rsmr (spec)",
            SystemKind::RsmrNoSpec => "rsmr (no-spec)",
            SystemKind::RsmrBatched => "rsmr (batched)",
            SystemKind::Stw => "stop-the-world",
            SystemKind::Raft => "raft-lite",
        }
    }

    /// Every reconfigurable system.
    pub fn reconfigurable() -> [SystemKind; 4] {
        [
            SystemKind::Rsmr,
            SystemKind::RsmrNoSpec,
            SystemKind::Stw,
            SystemKind::Raft,
        ]
    }
}

/// A parameterized experiment run. Construct with [`Scenario::new`] and
/// chain the builder methods.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// RNG seed (a run is a pure function of the scenario).
    pub seed: u64,
    /// Genesis cluster size (ids `0..n_servers`).
    pub n_servers: u64,
    /// Ids of standby joiners to spawn (must appear in `script` targets).
    pub joiners: Vec<u64>,
    /// Number of closed-loop clients (ids `100..`).
    pub n_clients: u64,
    /// Per-client operation limit (`None` = run until the horizon).
    pub ops_per_client: Option<u64>,
    /// Virtual time at which clients are added.
    pub client_start: SimTime,
    /// Fraction of reads in the workload.
    pub read_ratio: f64,
    /// Value size for writes, bytes.
    pub value_size: usize,
    /// Keyspace size.
    pub keyspace: usize,
    /// Pre-filled application state `(keys, bytes_per_key)` — controls
    /// state-transfer size.
    pub filler: Option<(usize, usize)>,
    /// Reconfiguration script: `(at, target member ids)`.
    pub script: Vec<(SimTime, Vec<u64>)>,
    /// Declarative fault schedule, applied by a [`ChaosDriver`]. Role
    /// targets (leader, donor, joiner) are resolved against the system
    /// under test at fire time.
    pub faults: FaultPlan,
    /// Install a collecting [`InvariantObserver`]; violations surface in
    /// [`RunOut::invariant_violations`].
    pub check_invariants: bool,
    /// End of the run.
    pub horizon: SimTime,
    /// Record client histories (for linearizability checking).
    pub record_history: bool,
    /// Link bandwidth override in bytes/second (`None` keeps the LAN
    /// default).
    pub bandwidth: Option<u64>,
    /// Model each sender's egress port as a serial queue (see
    /// [`NetConfig::with_egress_queueing`]). Needs a finite `bandwidth`
    /// to matter; turns the cap into a real throughput ceiling instead
    /// of a per-message delay.
    pub egress_queueing: bool,
    /// Cap the replication fabric: every server↔server (and joiner) link
    /// gets this bandwidth in bytes/second *with egress queueing*, while
    /// client links keep the scenario default. Models a constrained
    /// cross-replica backbone (e.g. cross-AZ) with local client access —
    /// the regime where per-message framing caps a leader's throughput.
    pub fabric_cap: Option<u64>,
    /// Use the wide-area network profile (20ms ± 4ms one-way, light loss)
    /// instead of the datacenter LAN.
    pub wan: bool,
    /// Enable lease-based local reads on the composed machine (100ms
    /// leases; only affects `Rsmr*` kinds).
    pub local_reads: bool,
    /// Record the event trace (for determinism digests). Off by default —
    /// tracing allocates a line per event.
    pub record_trace: bool,
    /// Install structured-event observers ([`EventDigest`] + [`Spans`]).
    /// Off by default — with no observer the event path costs one branch.
    pub record_events: bool,
    /// Restrict the workload to one hash partition `(shard, groups)` of the
    /// keyspace (see [`kvstore::shard_of`]) — the split-mode sharded driver
    /// runs each group as its own scenario with this set.
    pub shard: Option<(u32, u32)>,
    /// In-core leader batching `(max_batch, max_delay_ms, window)`:
    /// commands per proposal, flush deadline, and pipelined in-flight
    /// slots (see [`consensus::PaxosTunables`]). Applies to `Rsmr*` and
    /// `Stw` via the embedded Paxos tunables and to `Raft` via its
    /// `cmd_batch` knob (`max_batch` only). `None` = unbatched.
    pub batching: Option<(usize, u64, usize)>,
    /// Fixed-delay link permutation for DPOR-flavoured delivery-order
    /// exploration (see [`simnet::link_delay_permutation`]): the three
    /// links among the first three servers get fixed one-way delays chosen
    /// by this index. `None` = the scenario's default links.
    pub delay_perm: Option<u64>,
}

impl Scenario {
    /// A 3-server, 4-client scenario with a 10s horizon.
    pub fn new(seed: u64) -> Self {
        Scenario {
            seed,
            n_servers: 3,
            joiners: Vec::new(),
            n_clients: 4,
            ops_per_client: None,
            client_start: SimTime::ZERO,
            read_ratio: 0.5,
            value_size: 64,
            keyspace: 1024,
            filler: None,
            script: Vec::new(),
            faults: FaultPlan::new(),
            check_invariants: false,
            horizon: SimTime::from_secs(10),
            record_history: false,
            bandwidth: None,
            egress_queueing: false,
            fabric_cap: None,
            wan: false,
            local_reads: false,
            record_trace: false,
            record_events: false,
            shard: None,
            batching: None,
            delay_perm: None,
        }
    }

    /// Pins the inter-server link delays to permutation `perm`,
    /// builder-style (see [`simnet::link_delay_permutation`]).
    pub fn delay_perm(mut self, perm: u64) -> Self {
        self.delay_perm = Some(perm);
        self
    }

    /// Enables in-core leader batching, builder-style: up to `max_batch`
    /// commands per proposal, flushed within `max_delay_ms`, with a
    /// pipelined window of `window` outstanding slots (`0` = unbounded).
    pub fn batching(mut self, max_batch: usize, max_delay_ms: u64, window: usize) -> Self {
        self.batching = Some((max_batch, max_delay_ms, window));
        self
    }

    /// Enables the structured-event observers, builder-style.
    pub fn with_events(mut self) -> Self {
        self.record_events = true;
        self
    }

    /// Sets the genesis cluster size.
    pub fn servers(mut self, n: u64) -> Self {
        self.n_servers = n;
        self
    }

    /// Sets the client count.
    pub fn clients(mut self, n: u64) -> Self {
        self.n_clients = n;
        self
    }

    /// Sets standby joiners.
    pub fn joiners(mut self, ids: &[u64]) -> Self {
        self.joiners = ids.to_vec();
        self
    }

    /// Appends a reconfiguration step.
    pub fn reconfigure_at(mut self, at: SimTime, target: &[u64]) -> Self {
        self.script.push((at, target.to_vec()));
        self
    }

    /// Replaces the fault schedule, builder-style.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Schedules a permanent crash of whoever leads at `at` (the old
    /// `crash_leader_at` knob, now one [`simnet::FaultPlan`] event).
    pub fn crash_leader_at(mut self, at: SimTime) -> Self {
        self.faults = self.faults.crash_at(at, FaultTarget::CurrentLeader, None);
        self
    }

    /// Enables invariant checking, builder-style.
    pub fn checked(mut self) -> Self {
        self.check_invariants = true;
        self
    }

    /// Sets the run horizon.
    pub fn until(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Pre-fills the application state.
    pub fn filler(mut self, keys: usize, bytes: usize) -> Self {
        self.filler = Some((keys, bytes));
        self
    }

    /// Overrides the link bandwidth (bytes/second).
    pub fn bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.bandwidth = Some(bytes_per_sec);
        self
    }

    /// Serializes each sender's egress port, builder-style — with a
    /// finite [`Scenario::bandwidth`], concurrent sends queue behind one
    /// another and the cap becomes a throughput ceiling.
    pub fn egress_queueing(mut self) -> Self {
        self.egress_queueing = true;
        self
    }

    /// Caps the server↔server fabric at `bytes_per_sec` with serialized
    /// egress ports, builder-style. Client links keep the scenario
    /// default, so replies stay off the capped resource.
    pub fn fabric_cap(mut self, bytes_per_sec: u64) -> Self {
        self.fabric_cap = Some(bytes_per_sec);
        self
    }

    /// Switches to the WAN profile, builder-style.
    pub fn over_wan(mut self) -> Self {
        self.wan = true;
        self
    }

    /// Restricts the workload to hash shard `shard` of `groups`,
    /// builder-style.
    pub fn sharded_workload(mut self, shard: u32, groups: u32) -> Self {
        self.shard = Some((shard, groups));
        self
    }

    fn net(&self) -> NetConfig {
        let base = if self.wan {
            NetConfig::wan()
        } else {
            NetConfig::lan()
        };
        let base = match self.bandwidth {
            Some(bw) => base.with_bandwidth(Some(bw)),
            None => base,
        };
        base.with_egress_queueing(self.egress_queueing)
    }

    fn initial_state(&self) -> KvStore {
        match self.filler {
            Some((n, sz)) => KvStore::with_filler(n, sz),
            None => KvStore::new(),
        }
    }

    fn server_ids(&self) -> Vec<NodeId> {
        (0..self.n_servers).map(NodeId).collect()
    }

    fn client_ids(&self) -> Vec<NodeId> {
        (0..self.n_clients).map(|c| NodeId(100 + c)).collect()
    }

    fn gen_for(&self, client_idx: u64) -> WorkloadGen {
        let gen = WorkloadGen::new(
            self.seed ^ (0xC11E57 + client_idx),
            KeyDist::Uniform(self.keyspace),
            self.read_ratio,
            self.value_size,
        );
        match self.shard {
            Some((s, g)) => gen.for_shard(s, g),
            None => gen,
        }
    }

    fn admin_script(&self) -> Vec<(SimTime, Vec<NodeId>)> {
        self.script
            .iter()
            .map(|(at, ids)| (*at, ids.iter().map(|&i| NodeId(i)).collect()))
            .collect()
    }

    /// Server-side fault targets: genesis servers plus joiners, in id order.
    /// `FaultTarget::ServerIdx(k)` indexes into this pool.
    fn chaos_pool(&self) -> Vec<NodeId> {
        let mut pool = self.server_ids();
        pool.extend(self.joiners.iter().map(|&j| NodeId(j)));
        pool
    }

    /// Every node a partition or degradation window severs the target from.
    fn chaos_scope(&self) -> Vec<NodeId> {
        let mut scope = self.chaos_pool();
        scope.extend(self.client_ids());
        if !self.script.is_empty() {
            scope.push(ADMIN);
        }
        scope
    }
}

/// Resolves the system-independent fault targets (`Node`, `ServerIdx`,
/// `Joiner`); returns `None` for the role targets a runner must resolve
/// against its own actors.
pub(crate) fn resolve_common(
    pool: &[NodeId],
    joiners: &[NodeId],
    t: &FaultTarget,
) -> Option<Option<NodeId>> {
    match t {
        FaultTarget::Node(n) => Some(Some(*n)),
        FaultTarget::ServerIdx(k) => Some(pool.get((*k as usize) % pool.len().max(1)).copied()),
        FaultTarget::Joiner => Some(joiners.first().copied()),
        FaultTarget::CurrentLeader | FaultTarget::TransferDonor => None,
    }
}

pub(crate) const ADMIN: NodeId = NodeId(99);

/// The structured-event observers a runner installs when
/// `Scenario::record_events` is set: a stream digest plus the span
/// aggregator. `finish` hands their final state to [`RunOut`].
pub(crate) struct EventProbes {
    digest: Option<Rc<RefCell<EventDigest>>>,
    spans: Option<Rc<RefCell<Spans>>>,
    lifecycle: Option<Rc<RefCell<LifecycleCoverage>>>,
}

/// What the probes saw, for [`RunOut`].
pub(crate) struct ProbeOut {
    pub(crate) event_digest: u64,
    pub(crate) event_count: u64,
    pub(crate) digest_prefixes: Vec<(u64, u64)>,
    pub(crate) lifecycle_signature: u64,
    pub(crate) spans: Option<Spans>,
}

impl EventProbes {
    pub(crate) fn install<A: Actor>(sim: &mut Sim<A>, enabled: bool) -> Self {
        if !enabled {
            return EventProbes {
                digest: None,
                spans: None,
                lifecycle: None,
            };
        }
        let digest = shared(EventDigest::new());
        let spans = shared(Spans::new());
        let lifecycle = shared(LifecycleCoverage::new());
        sim.add_observer(digest.clone());
        sim.add_observer(spans.clone());
        sim.add_observer(lifecycle.clone());
        EventProbes {
            digest: Some(digest),
            spans: Some(spans),
            lifecycle: Some(lifecycle),
        }
    }

    pub(crate) fn finish(self) -> ProbeOut {
        match (self.digest, self.spans, self.lifecycle) {
            (Some(d), Some(s), Some(l)) => {
                let d = d.borrow();
                ProbeOut {
                    event_digest: d.value(),
                    event_count: d.count(),
                    digest_prefixes: d.prefix_digests().to_vec(),
                    lifecycle_signature: l.borrow().signature(),
                    spans: Some(s.borrow().clone()),
                }
            }
            _ => ProbeOut {
                event_digest: 0,
                event_count: 0,
                digest_prefixes: Vec::new(),
                lifecycle_signature: 0,
                spans: None,
            },
        }
    }
}

/// Installs a collecting [`InvariantObserver`] when the scenario asks for
/// one; the handle is drained into [`RunOut::invariant_violations`].
fn install_invariants<A: Actor>(
    sim: &mut Sim<A>,
    enabled: bool,
) -> Option<Rc<RefCell<InvariantObserver>>> {
    if !enabled {
        return None;
    }
    let inv = shared(InvariantObserver::new());
    sim.add_observer(inv.clone());
    Some(inv)
}

fn finish_invariants(inv: Option<Rc<RefCell<InvariantObserver>>>) -> Vec<String> {
    inv.map(|o| o.borrow().violations().to_vec())
        .unwrap_or_default()
}

/// Drains one finished simulation into a [`RunOut`]. The metrics sink is
/// moved out of the simulator rather than cloned — at the end of a long
/// run it holds every counter, timeline and histogram map, and the sim
/// is about to be dropped anyway.
#[allow(clippy::too_many_arguments)]
fn finish_run<A: Actor>(
    sim: &mut Sim<A>,
    sc: &Scenario,
    probes: EventProbes,
    inv: Option<Rc<RefCell<InvariantObserver>>>,
    chaos_log: Vec<(SimTime, String)>,
    completed: u64,
    admin: Vec<(SimTime, SimTime)>,
    histories: Vec<HistoryOp<KvOp, KvOutput>>,
) -> RunOut {
    let probe_out = probes.finish();
    RunOut {
        completed,
        metrics: sim.take_metrics(),
        admin,
        horizon: sc.horizon,
        histories,
        trace_digest: sim.trace().digest(),
        event_digest: probe_out.event_digest,
        event_count: probe_out.event_count,
        digest_prefixes: probe_out.digest_prefixes,
        lifecycle_signature: probe_out.lifecycle_signature,
        spans: probe_out.spans,
        invariant_violations: finish_invariants(inv),
        chaos_log,
    }
}

/// Everything extracted from one run.
pub struct RunOut {
    /// Total client completions.
    pub completed: u64,
    /// The full metrics sink of the run.
    pub metrics: Metrics,
    /// Admin reconfiguration results as `(started, finished)`.
    pub admin: Vec<(SimTime, SimTime)>,
    /// The run's horizon.
    pub horizon: SimTime,
    /// Client histories (empty unless `record_history`).
    pub histories: Vec<HistoryOp<KvOp, KvOutput>>,
    /// FNV-1a digest of the event trace (0 unless `record_trace`).
    pub trace_digest: u64,
    /// FNV-1a digest of the structured event stream (0 unless
    /// `record_events`).
    pub event_digest: u64,
    /// Number of structured events folded into `event_digest`.
    pub event_count: u64,
    /// `(event_count, digest)` checkpoints captured at power-of-two event
    /// counts — the coverage-guided sweep's prefix-coverage signal (empty
    /// unless `record_events`).
    pub digest_prefixes: Vec<(u64, u64)>,
    /// Lifecycle-interleaving signature bitmask (see
    /// [`simnet::LifecycleCoverage`]; 0 unless `record_events`).
    pub lifecycle_signature: u64,
    /// Span aggregation over the event stream (`None` unless
    /// `record_events`).
    pub spans: Option<Spans>,
    /// Safety violations collected by the [`InvariantObserver`] (empty
    /// unless `check_invariants`).
    pub invariant_violations: Vec<String>,
    /// The chaos driver's applied/skipped fault log (empty without faults).
    pub chaos_log: Vec<(SimTime, String)>,
}

impl RunOut {
    /// Client-observed latency quantile, microseconds.
    pub fn latency_us(&mut self, q: f64) -> f64 {
        self.metrics
            .histogram_mut("client.latency_us")
            .map(|h| h.quantile(q))
            .unwrap_or(0.0)
    }

    /// Mean client latency, microseconds.
    pub fn latency_mean_us(&self) -> f64 {
        self.metrics
            .histogram("client.latency_us")
            .map(|h| h.mean())
            .unwrap_or(0.0)
    }

    /// Completions per second of virtual time over `[from, to)`.
    pub fn throughput(&self, from: SimTime, to: SimTime) -> f64 {
        let Some(t) = self.metrics.timeline("client.completes") else {
            return 0.0;
        };
        let n: f64 = t
            .points()
            .iter()
            .filter(|(at, _)| *at >= from && *at < to)
            .map(|(_, v)| v)
            .sum();
        let span = to.since(from).as_secs_f64();
        if span > 0.0 {
            n / span
        } else {
            0.0
        }
    }

    /// Completes summed into `bin`-wide buckets over the whole run.
    pub fn completes_bins(&self, bin: SimDuration) -> Vec<f64> {
        self.metrics
            .timeline("client.completes")
            .map(|t| {
                t.binned(SimTime::ZERO, self.horizon, bin)
                    .into_iter()
                    .map(|(_, v)| v)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The longest run of empty `bin`-wide buckets within `[from, to)` —
    /// the service-interruption window, in milliseconds.
    pub fn longest_gap_ms(&self, from: SimTime, to: SimTime, bin: SimDuration) -> u64 {
        self.metrics
            .timeline("client.completes")
            .map(|t| t.longest_gap_bins(from, to, bin) as u64 * bin.as_millis())
            .unwrap_or(u64::MAX)
    }

    /// Time from `at` until the first client completion after `at`, in
    /// milliseconds — the service-recovery measure that stays meaningful
    /// even when the workload ends before the horizon.
    pub fn recovery_after_ms(&self, at: SimTime) -> Option<u64> {
        let t = self.metrics.timeline("client.completes")?;
        t.points()
            .iter()
            .find(|(when, _)| *when > at)
            .map(|(when, _)| when.since(at).as_millis())
    }

    /// Total protocol messages sent whose label starts with `prefix`.
    pub fn msgs_with_prefix(&self, prefix: &str) -> u64 {
        self.metrics
            .labels_with_prefix(prefix)
            .iter()
            .map(|(_, v)| v)
            .sum()
    }

    /// The first admin reconfiguration's latency, microseconds.
    pub fn reconfig_latency_us(&self) -> Option<u64> {
        self.admin.first().map(|(s, f)| f.since(*s).as_micros())
    }

    /// FNV-1a fingerprint of the run's entire metrics state. Two runs of
    /// the same scenario must produce equal fingerprints.
    pub fn metrics_fingerprint(&self) -> u64 {
        self.metrics.fingerprint()
    }
}

/// Runs `scenario` on `kind` and extracts the results.
pub fn run(kind: SystemKind, sc: &Scenario) -> RunOut {
    match kind {
        SystemKind::Static => run_static(sc),
        SystemKind::Rsmr => run_rsmr(sc, true, 0),
        SystemKind::RsmrNoSpec => run_rsmr(sc, false, 0),
        SystemKind::RsmrBatched => {
            // The batched composition defaults to in-core batching (64
            // commands/slot, 1ms flush deadline, 8-slot window) unless the
            // scenario pins its own points.
            let mut sc = sc.clone();
            if sc.batching.is_none() {
                sc.batching = Some((64, 1, 8));
            }
            run_rsmr(&sc, true, 0)
        }
        SystemKind::Stw => run_stw(sc),
        SystemKind::Raft => run_raft(sc),
    }
}

// ---------------------------------------------------------------------------
// Composed machine (speculation on/off)
// ---------------------------------------------------------------------------

/// Installs the scenario's fabric cap (if any): every pair of server and
/// joiner ids gets a link override with the capped bandwidth and a
/// serialized egress port. Client links are untouched.
fn apply_fabric_cap<A: simnet::Actor>(sim: &mut Sim<A>, sc: &Scenario) {
    let Some(bw) = sc.fabric_cap else { return };
    let cfg = sc.net().with_bandwidth(Some(bw)).with_egress_queueing(true);
    let mut ids = sc.server_ids();
    ids.extend(sc.joiners.iter().map(|&j| NodeId(j)));
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            sim.set_link(a, b, cfg.clone());
        }
    }
}

/// Pins the three links among the first three servers to the fixed delays
/// of the scenario's `delay_perm` (DPOR-flavoured delivery-order
/// exploration). A chaos window that later degrades one of these links
/// resets it to the default on heal — acceptable, since the permutation's
/// job is to diversify the pre-fault prefix.
fn apply_delay_perm<A: simnet::Actor>(sim: &mut Sim<A>, sc: &Scenario) {
    let Some(perm) = sc.delay_perm else { return };
    let ids = sc.server_ids();
    if ids.len() < 3 {
        return;
    }
    let delays = simnet::link_delay_permutation(perm);
    let pairs = [(ids[0], ids[1]), (ids[0], ids[2]), (ids[1], ids[2])];
    for (&(a, b), &d) in pairs.iter().zip(delays.iter()) {
        sim.set_link(a, b, sc.net().with_latency(LatencyModel::Fixed(d)));
    }
}

fn run_rsmr(sc: &Scenario, fast_handoff: bool, batch_size: usize) -> RunOut {
    let mut tun = RsmrTunables {
        fast_handoff,
        batch_size,
        local_reads: sc.local_reads,
        ..RsmrTunables::default()
    };
    if sc.local_reads {
        tun.paxos.lease_duration = Some(SimDuration::from_millis(100));
    }
    if let Some((max_batch, max_delay_ms, window)) = sc.batching {
        tun.paxos.max_batch = max_batch;
        tun.paxos.max_delay = SimDuration::from_millis(max_delay_ms);
        tun.paxos.window = window;
    }
    let mut sim: Sim<World<KvStore>> = Sim::new(sc.seed, sc.net());
    apply_fabric_cap(&mut sim, sc);
    apply_delay_perm(&mut sim, sc);
    if sc.record_trace {
        sim.enable_trace();
    }
    let probes = EventProbes::install(&mut sim, sc.record_events);
    let inv = install_invariants(&mut sim, sc.check_invariants);
    let servers = sc.server_ids();
    let genesis = StaticConfig::new(servers.clone());
    for &s in &servers {
        sim.add_node_with_id(
            s,
            World::server(RsmrNode::genesis_with(
                s,
                genesis.clone(),
                tun.clone(),
                sc.initial_state(),
            )),
        );
    }
    for &j in &sc.joiners {
        sim.add_node_with_id(
            NodeId(j),
            World::server(RsmrNode::joining(NodeId(j), tun.clone())),
        );
    }
    if !sc.script.is_empty() {
        sim.add_node_with_id(
            ADMIN,
            World::admin(AdminActor::new(servers.clone(), sc.admin_script())),
        );
    }
    let pool = sc.chaos_pool();
    let joiner_ids: Vec<NodeId> = sc.joiners.iter().map(|&j| NodeId(j)).collect();
    let rebuild_tun = tun.clone();
    let mut driver = ChaosDriver::new(
        &sc.faults,
        sc.chaos_scope(),
        sc.net(),
        |sim: &Sim<World<KvStore>>, t| {
            if let Some(r) = resolve_common(&pool, &joiner_ids, t) {
                return r;
            }
            let server = |s: NodeId| sim.actor(s).and_then(World::as_server);
            match t {
                FaultTarget::CurrentLeader => pool
                    .iter()
                    .copied()
                    .find(|&s| server(s).map(|n| n.is_active_leader()).unwrap_or(false)),
                FaultTarget::TransferDonor => pool
                    .iter()
                    .filter_map(|&s| server(s).and_then(|n| n.transfer_provider()))
                    .next(),
                _ => None,
            }
        },
        move |sim: &Sim<World<KvStore>>, n| {
            // A restart rebuilds the replica from its surviving stable
            // store; a node that never anchored re-enters as a joiner.
            World::server(
                RsmrNode::recover(n, rebuild_tun.clone(), sim.storage(n))
                    .unwrap_or_else(|| RsmrNode::joining(n, rebuild_tun.clone())),
            )
        },
    );
    driver.run_until(&mut sim, sc.client_start);
    for (i, &c) in sc.client_ids().iter().enumerate() {
        let mut client = RsmrClient::new(
            servers.clone(),
            sc.gen_for(i as u64).into_fn(),
            sc.ops_per_client,
        );
        if sc.record_history {
            client = client.with_history();
        }
        sim.add_node_with_id(c, World::client(client));
    }
    driver.run_until(&mut sim, sc.horizon);
    let chaos_log = driver.applied().to_vec();
    drop(driver);

    let mut histories = Vec::new();
    let mut completed = 0;
    for &c in &sc.client_ids() {
        if let Some(w) = sim.actor(c) {
            completed += w.completed();
            if let Some(cl) = w.as_client() {
                for (_s, op, out, invoke, response) in cl.history() {
                    histories.push(HistoryOp {
                        process: c.0,
                        invoke: *invoke,
                        response: *response,
                        input: op.clone(),
                        output: out.clone(),
                    });
                }
            }
        }
    }
    let admin = sim
        .actor(ADMIN)
        .and_then(World::as_admin)
        .map(|a| a.results().iter().map(|&(s, f, _)| (s, f)).collect())
        .unwrap_or_default();
    finish_run(
        &mut sim, sc, probes, inv, chaos_log, completed, admin, histories,
    )
}

// ---------------------------------------------------------------------------
// Stop-the-world baseline
// ---------------------------------------------------------------------------

fn run_stw(sc: &Scenario) -> RunOut {
    let mut tun = StwTunables::default();
    if let Some((max_batch, max_delay_ms, window)) = sc.batching {
        tun.paxos.max_batch = max_batch;
        tun.paxos.max_delay = SimDuration::from_millis(max_delay_ms);
        tun.paxos.window = window;
    }
    let mut sim: Sim<StwWorld<KvStore>> = Sim::new(sc.seed, sc.net());
    apply_fabric_cap(&mut sim, sc);
    apply_delay_perm(&mut sim, sc);
    if sc.record_trace {
        sim.enable_trace();
    }
    let probes = EventProbes::install(&mut sim, sc.record_events);
    let inv = install_invariants(&mut sim, sc.check_invariants);
    let servers = sc.server_ids();
    let genesis = StaticConfig::new(servers.clone());
    for &s in &servers {
        sim.add_node_with_id(
            s,
            StwWorld::Server(StwNode::genesis_with(
                s,
                genesis.clone(),
                tun.clone(),
                sc.initial_state(),
            )),
        );
    }
    for &j in &sc.joiners {
        sim.add_node_with_id(
            NodeId(j),
            StwWorld::Server(StwNode::joining(NodeId(j), tun.clone())),
        );
    }
    if !sc.script.is_empty() {
        sim.add_node_with_id(
            ADMIN,
            StwWorld::Admin(AdminActor::new(servers.clone(), sc.admin_script())),
        );
    }
    let pool = sc.chaos_pool();
    let joiner_ids: Vec<NodeId> = sc.joiners.iter().map(|&j| NodeId(j)).collect();
    let rebuild_tun = tun.clone();
    let mut driver = ChaosDriver::new(
        &sc.faults,
        sc.chaos_scope(),
        sc.net(),
        |sim: &Sim<StwWorld<KvStore>>, t| {
            if let Some(r) = resolve_common(&pool, &joiner_ids, t) {
                return r;
            }
            // Stop-the-world has no separate donor role: the sealing
            // leader ships the snapshot, so both roles resolve to it.
            pool.iter().copied().find(|&s| {
                sim.actor(s)
                    .and_then(StwWorld::as_server)
                    .map(|n| n.is_current_leader())
                    .unwrap_or(false)
            })
        },
        // `StwNode` keeps nothing in stable storage; a restarted replica
        // re-enters as a joiner and is re-seeded by the next epoch's
        // snapshot broadcast.
        move |_sim: &Sim<StwWorld<KvStore>>, n| {
            StwWorld::Server(StwNode::joining(n, rebuild_tun.clone()))
        },
    );
    driver.run_until(&mut sim, sc.client_start);
    for (i, &c) in sc.client_ids().iter().enumerate() {
        sim.add_node_with_id(
            c,
            StwWorld::Client(RsmrClient::new(
                servers.clone(),
                sc.gen_for(i as u64).into_fn(),
                sc.ops_per_client,
            )),
        );
    }
    driver.run_until(&mut sim, sc.horizon);
    let chaos_log = driver.applied().to_vec();
    drop(driver);

    let completed = sc
        .client_ids()
        .iter()
        .filter_map(|&c| sim.actor(c).map(StwWorld::completed))
        .sum();
    let admin = sim
        .actor(ADMIN)
        .and_then(StwWorld::as_admin)
        .map(|a| a.results().iter().map(|&(s, f, _)| (s, f)).collect())
        .unwrap_or_default();
    finish_run(
        &mut sim,
        sc,
        probes,
        inv,
        chaos_log,
        completed,
        admin,
        Vec::new(),
    )
}

// ---------------------------------------------------------------------------
// Raft baseline
// ---------------------------------------------------------------------------

fn run_raft(sc: &Scenario) -> RunOut {
    let mut tun = RaftTunables::default();
    if let Some((max_batch, _, _)) = sc.batching {
        tun.cmd_batch = max_batch;
    }
    let mut sim: Sim<RaftWorld<KvStore>> = Sim::new(sc.seed, sc.net());
    apply_fabric_cap(&mut sim, sc);
    apply_delay_perm(&mut sim, sc);
    if sc.record_trace {
        sim.enable_trace();
    }
    let probes = EventProbes::install(&mut sim, sc.record_events);
    let inv = install_invariants(&mut sim, sc.check_invariants);
    let servers = sc.server_ids();
    let genesis = StaticConfig::new(servers.clone());
    for &s in &servers {
        sim.add_node_with_id(
            s,
            RaftWorld::Server(RaftNode::with_state(
                s,
                genesis.clone(),
                tun.clone(),
                sc.initial_state(),
            )),
        );
    }
    for &j in &sc.joiners {
        sim.add_node_with_id(
            NodeId(j),
            RaftWorld::Server(RaftNode::joining(NodeId(j), tun.clone())),
        );
    }
    if !sc.script.is_empty() {
        sim.add_node_with_id(
            ADMIN,
            RaftWorld::Admin(RaftAdmin::new(servers.clone(), sc.admin_script())),
        );
    }
    let pool = sc.chaos_pool();
    let joiner_ids: Vec<NodeId> = sc.joiners.iter().map(|&j| NodeId(j)).collect();
    let rebuild_tun = tun.clone();
    let mut driver = ChaosDriver::new(
        &sc.faults,
        sc.chaos_scope(),
        sc.net(),
        |sim: &Sim<RaftWorld<KvStore>>, t| {
            if let Some(r) = resolve_common(&pool, &joiner_ids, t) {
                return r;
            }
            // Raft's snapshot donor *is* the leader, so both role targets
            // resolve to it.
            pool.iter().copied().find(|&s| {
                sim.actor(s)
                    .and_then(RaftWorld::as_server)
                    .map(|n| n.core().is_leader())
                    .unwrap_or(false)
            })
        },
        // A restarted replica recovers term, vote, snapshot and log from
        // its stable store, exactly as a real raft process restarts.
        move |sim: &Sim<RaftWorld<KvStore>>, n| {
            RaftWorld::Server(RaftNode::recover(n, rebuild_tun.clone(), sim.storage(n)))
        },
    );
    driver.run_until(&mut sim, sc.client_start);
    for (i, &c) in sc.client_ids().iter().enumerate() {
        let mut client = RaftClient::new(
            servers.clone(),
            sc.gen_for(i as u64).into_fn(),
            sc.ops_per_client,
        );
        if sc.record_history {
            client = client.with_history();
        }
        sim.add_node_with_id(c, RaftWorld::Client(client));
    }
    driver.run_until(&mut sim, sc.horizon);
    let chaos_log = driver.applied().to_vec();
    drop(driver);

    let mut histories = Vec::new();
    let mut completed = 0;
    for &c in &sc.client_ids() {
        if let Some(w) = sim.actor(c) {
            completed += w.completed();
            if let Some(cl) = w.as_client() {
                for (_s, op, out, invoke, response) in cl.history() {
                    histories.push(HistoryOp {
                        process: c.0,
                        invoke: *invoke,
                        response: *response,
                        input: op.clone(),
                        output: out.clone(),
                    });
                }
            }
        }
    }
    let admin = sim
        .actor(ADMIN)
        .and_then(RaftWorld::as_admin)
        .map(|a| a.results().to_vec())
        .unwrap_or_default();
    finish_run(
        &mut sim, sc, probes, inv, chaos_log, completed, admin, histories,
    )
}

// ---------------------------------------------------------------------------
// Static building block (non-reconfigurable, E1/E7/E8 reference)
// ---------------------------------------------------------------------------

/// World actor for the static system. Unboxed like the other worlds:
/// one value per node, stored once in the sim's slot table.
#[allow(clippy::large_enum_variant)]
pub enum StaticWorld {
    /// A replica of the static block.
    Server(ReplicaActor<u64>),
    /// A closed-loop client.
    Client(SmrClient<u64>),
}

impl Actor for StaticWorld {
    type Msg = SmrMsg<u64>;
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        match self {
            StaticWorld::Server(a) => a.on_start(ctx),
            StaticWorld::Client(a) => a.on_start(ctx),
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg) {
        match self {
            StaticWorld::Server(a) => a.on_message(ctx, from, msg),
            StaticWorld::Client(a) => a.on_message(ctx, from, msg),
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, timer: Timer) {
        match self {
            StaticWorld::Server(a) => a.on_timer(ctx, timer),
            StaticWorld::Client(a) => a.on_timer(ctx, timer),
        }
    }
}

fn run_static(sc: &Scenario) -> RunOut {
    let mut sim: Sim<StaticWorld> = Sim::new(sc.seed, sc.net());
    apply_fabric_cap(&mut sim, sc);
    apply_delay_perm(&mut sim, sc);
    if sc.record_trace {
        sim.enable_trace();
    }
    let probes = EventProbes::install(&mut sim, sc.record_events);
    let inv = install_invariants(&mut sim, sc.check_invariants);
    let servers = sc.server_ids();
    let cfg = StaticConfig::new(servers.clone());
    for &s in &servers {
        sim.add_node_with_id(
            s,
            StaticWorld::Server(ReplicaActor::new(s, cfg.clone(), PaxosTunables::default())),
        );
    }
    let pool = servers.clone();
    let rebuild_cfg = cfg.clone();
    let mut driver = ChaosDriver::new(
        &sc.faults,
        sc.chaos_scope(),
        sc.net(),
        |sim: &Sim<StaticWorld>, t| {
            if let Some(r) = resolve_common(&pool, &[], t) {
                return r;
            }
            // The static block has no reconfiguration, so there is no
            // donor; both role targets resolve to the paxos leader.
            pool.iter().copied().find(|&s| match sim.actor(s) {
                Some(StaticWorld::Server(a)) => a.core().is_leader(),
                _ => false,
            })
        },
        move |sim: &Sim<StaticWorld>, n| {
            StaticWorld::Server(ReplicaActor::recover(
                n,
                rebuild_cfg.clone(),
                PaxosTunables::default(),
                sim.storage(n),
            ))
        },
    );
    driver.run_until(&mut sim, sc.client_start);
    for &c in &sc.client_ids() {
        sim.add_node_with_id(
            c,
            StaticWorld::Client(SmrClient::new(
                servers.clone(),
                |i| i + 1,
                sc.ops_per_client,
            )),
        );
    }
    driver.run_until(&mut sim, sc.horizon);
    let chaos_log = driver.applied().to_vec();
    drop(driver);
    let completed = sc
        .client_ids()
        .iter()
        .filter_map(|&c| match sim.actor(c) {
            Some(StaticWorld::Client(cl)) => Some(cl.completed()),
            _ => None,
        })
        .sum();
    finish_run(
        &mut sim,
        sc,
        probes,
        inv,
        chaos_log,
        completed,
        Vec::new(),
        Vec::new(),
    )
}

/// Runs every `(kind, scenario)` job, fanning out across cores, and returns
/// the outputs **in input order**.
///
/// Each simulation is single-threaded and deterministic in its scenario, so
/// running jobs concurrently cannot change any individual result — the
/// parallelism is purely wall-clock. Worker threads claim jobs through an
/// atomic cursor (no per-thread job partitioning, so one slow scenario
/// doesn't strand the rest behind it).
pub fn run_many(jobs: Vec<(SystemKind, Scenario)>) -> Vec<RunOut> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = jobs.len();
    if n <= 1 {
        return jobs.into_iter().map(|(k, sc)| run(k, &sc)).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunOut>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some((kind, sc)) = jobs.get(i) else { break };
                let out = run(*kind, sc);
                *slots[i].lock().expect("result slot") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("unpoisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_system_completes_a_small_scenario() {
        let sc = Scenario::new(1).clients(2).until(SimTime::from_secs(8));
        let sc = Scenario {
            ops_per_client: Some(50),
            ..sc
        };
        for kind in [
            SystemKind::Static,
            SystemKind::Rsmr,
            SystemKind::RsmrNoSpec,
            SystemKind::Stw,
            SystemKind::Raft,
        ] {
            let out = run(kind, &sc);
            assert_eq!(out.completed, 100, "{} failed to finish", kind.name());
        }
    }

    #[test]
    fn reconfiguration_scenarios_complete_on_all_reconfigurable_systems() {
        let sc = Scenario::new(2)
            .clients(2)
            .joiners(&[3])
            .reconfigure_at(SimTime::from_millis(400), &[0, 1, 2, 3])
            .until(SimTime::from_secs(20));
        let sc = Scenario {
            ops_per_client: Some(100),
            ..sc
        };
        for kind in SystemKind::reconfigurable() {
            let out = run(kind, &sc);
            assert_eq!(out.completed, 200, "{}", kind.name());
            assert_eq!(out.admin.len(), 1, "{}", kind.name());
            assert!(out.reconfig_latency_us().unwrap() > 0);
        }
    }

    #[test]
    fn run_out_helpers_produce_sane_numbers() {
        let sc = Scenario::new(3).clients(2).until(SimTime::from_secs(5));
        let mut out = run(SystemKind::Rsmr, &sc);
        assert!(out.completed > 100);
        assert!(out.throughput(SimTime::from_secs(1), SimTime::from_secs(5)) > 10.0);
        assert!(out.latency_us(0.5) > 0.0);
        assert!(out.latency_us(0.99) >= out.latency_us(0.5));
        assert!(out.msgs_with_prefix("paxos.") > 0);
        assert_eq!(
            out.longest_gap_ms(
                SimTime::from_secs(1),
                SimTime::from_secs(5),
                SimDuration::from_millis(100)
            ),
            0
        );
    }
}
