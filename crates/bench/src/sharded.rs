//! Sharded multi-group composition runners.
//!
//! The keyspace is hash-partitioned over `G` independent composition
//! groups (see [`kvstore::shard_of`]); each group runs its own epoch chain
//! `S_0, S_1, …` exactly as the single-group system does. Two execution
//! modes are provided:
//!
//! * **Coupled** ([`run_sharded`]): every group lives in *one*
//!   deterministic [`Sim`] on a shared pool of server nodes, multiplexed
//!   by [`MultiGroup`]. Messages carry their [`GroupId`] in the wire
//!   envelope, timers and stable storage are namespaced per group, and
//!   egress bandwidth is shared per node — this is the mode that shows
//!   real throughput scaling (E11) and per-shard reconfiguration while
//!   the other shards keep committing.
//! * **Split** ([`run_split`]): each group runs as its own single-group
//!   scenario, fanned across the existing bounded thread pool, and the
//!   per-group results are merged deterministically in group order. The
//!   merged digest is byte-identical between serial and parallel
//!   execution — the wall-clock accelerator for fault-free sweeps.
//!
//! Client-side routing ("ShardRouter" in the issue): each client node
//! hosts one sub-client bound to the group its key range hashes to; the
//! per-group [`RsmrClient`] already tracks that group's leader and member
//! set across reconfigurations, so routing hints come for free.

use baselines::{StwNode, StwTunables, StwWorld};
use consensus::StaticConfig;
use kvstore::{KeyDist, KvStore, WorkloadGen};
use rsmr_core::harness::World;
use rsmr_core::{AdminActor, RsmrClient, RsmrNode, RsmrTunables, GROUP_COMPLETES_KEYS};
use simnet::{
    ChaosDriver, FaultPlan, FaultTarget, GroupId, MultiGroup, NetConfig, NodeId, Sim, SimDuration,
    SimTime,
};

use crate::runner::{
    resolve_common, run, run_many, EventProbes, RunOut, Scenario, SystemKind, ADMIN,
};

/// Which sharded system a scenario runs on.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ShardSystem {
    /// Per-shard reconfiguration: each group is the composed machine, so a
    /// shard reconfigures while the others keep committing.
    Rsmr,
    /// Stop-the-world baseline per shard: the reconfiguring shard freezes.
    Stw,
}

impl ShardSystem {
    /// Short display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            ShardSystem::Rsmr => "rsmr-sharded",
            ShardSystem::Stw => "stw-sharded",
        }
    }
}

/// A sharded experiment run: `groups` epoch chains over a `pool`-node
/// server pool inside one simulation.
///
/// Group `g`'s members are pool nodes `{3g, 3g+1, 3g+2} mod pool` — with
/// the default 8-node pool every group of `G ≤ 8` gets a distinct leader,
/// which is what makes aggregate throughput scale once per-node egress
/// bandwidth is capped. The designated joiner for per-shard churn is pool
/// node `(3g+3) mod pool`.
#[derive(Clone, Debug)]
pub struct ShardScenario {
    /// RNG seed (a run is a pure function of the scenario).
    pub seed: u64,
    /// Number of composition groups (1..=8; bounded by the per-group
    /// completion-metric key table).
    pub groups: u32,
    /// Physical server pool size (node ids `0..pool`).
    pub pool: u64,
    /// Number of client nodes (ids `100..`); client `i` drives group
    /// `i % groups`, so the total offered load is constant across `G`.
    pub n_clients: u64,
    /// Per-client operation limit (`None` = run until the horizon).
    pub ops_per_client: Option<u64>,
    /// Fraction of reads in the workload.
    pub read_ratio: f64,
    /// Value size for writes, bytes.
    pub value_size: usize,
    /// Keyspace size (hash-partitioned over the groups).
    pub keyspace: usize,
    /// End of the run.
    pub horizon: SimTime,
    /// Per-node egress bandwidth in bytes/second; enables sender-side
    /// queueing so a saturated leader is an actual bottleneck.
    pub bandwidth: Option<u64>,
    /// Per-group reconfiguration steps: `(group, at, target member ids)`.
    pub scripts: Vec<(u32, SimTime, Vec<u64>)>,
    /// Declarative fault schedule; role targets (leader, donor, joiner)
    /// resolve against `fault_group`.
    pub faults: FaultPlan,
    /// The group the fault plan's role targets refer to.
    pub fault_group: u32,
    /// Record the event trace (for determinism digests).
    pub record_trace: bool,
    /// Install structured-event observers.
    pub record_events: bool,
}

impl ShardScenario {
    /// An 8-node pool, 16-client scenario over `groups` groups with a 10s
    /// horizon.
    pub fn new(seed: u64, groups: u32) -> Self {
        assert!(
            groups >= 1 && (groups as usize) <= GROUP_COMPLETES_KEYS.len(),
            "1..=8 groups supported"
        );
        ShardScenario {
            seed,
            groups,
            pool: 8,
            n_clients: 16,
            ops_per_client: None,
            read_ratio: 0.5,
            value_size: 64,
            keyspace: 4096,
            horizon: SimTime::from_secs(10),
            bandwidth: None,
            scripts: Vec::new(),
            faults: FaultPlan::new(),
            fault_group: 0,
            record_trace: false,
            record_events: false,
        }
    }

    /// Sets the client-node count, builder-style.
    pub fn clients(mut self, n: u64) -> Self {
        self.n_clients = n;
        self
    }

    /// Sets the run horizon, builder-style.
    pub fn until(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Caps per-node egress bandwidth (bytes/second) with sender-side
    /// queueing, builder-style. This is the "same per-node load limits"
    /// of E11: one saturated leader caps `G=1`, while `G` distinct
    /// leaders lift the aggregate.
    pub fn bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.bandwidth = Some(bytes_per_sec);
        self
    }

    /// Appends a reconfiguration step for one group, builder-style.
    pub fn reconfigure_group_at(mut self, group: u32, at: SimTime, target: &[u64]) -> Self {
        assert!(group < self.groups);
        self.scripts.push((group, at, target.to_vec()));
        self
    }

    /// Schedules rolling churn: starting at `start`, every group replaces
    /// its first member with its designated joiner, one group every
    /// `stagger`. With the composed machine the aggregate client timeline
    /// should show no gap at all.
    pub fn rolling(mut self, start: SimTime, stagger: SimDuration) -> Self {
        for g in 0..self.groups {
            let at = start + SimDuration::from_micros(stagger.as_micros() * g as u64);
            let target: Vec<u64> = (1..=3).map(|k| (3 * g as u64 + k) % self.pool).collect();
            self.scripts.push((g, at, target));
        }
        self
    }

    /// Replaces the fault schedule; role targets resolve against `group`.
    pub fn with_faults(mut self, plan: FaultPlan, group: u32) -> Self {
        assert!(group < self.groups);
        self.faults = plan;
        self.fault_group = group;
        self
    }

    /// Enables the structured-event observers, builder-style.
    pub fn with_events(mut self) -> Self {
        self.record_events = true;
        self
    }

    /// Enables event tracing, builder-style.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Group `g`'s genesis members.
    pub fn members(&self, g: u32) -> Vec<NodeId> {
        (0..3)
            .map(|k| NodeId((3 * g as u64 + k) % self.pool))
            .collect()
    }

    /// Group `g`'s designated joiner for churn scripts.
    pub fn joiner(&self, g: u32) -> NodeId {
        NodeId((3 * g as u64 + 3) % self.pool)
    }

    /// The groups pool node `node` hosts from genesis.
    fn hosted_groups(&self, node: NodeId) -> Vec<u32> {
        (0..self.groups)
            .filter(|&g| self.members(g).contains(&node))
            .collect()
    }

    fn net(&self) -> NetConfig {
        match self.bandwidth {
            Some(bw) => NetConfig::lan()
                .with_bandwidth(Some(bw))
                .with_egress_queueing(true),
            None => NetConfig::lan(),
        }
    }

    fn client_ids(&self) -> Vec<NodeId> {
        (0..self.n_clients).map(|c| NodeId(100 + c)).collect()
    }

    fn group_of_client(&self, i: u64) -> u32 {
        (i % self.groups as u64) as u32
    }

    fn gen_for(&self, client_idx: u64) -> WorkloadGen {
        WorkloadGen::new(
            self.seed ^ (0x5AADE0 + client_idx),
            KeyDist::Uniform(self.keyspace),
            self.read_ratio,
            self.value_size,
        )
        .for_shard(self.group_of_client(client_idx), self.groups)
    }

    fn chaos_scope(&self) -> Vec<NodeId> {
        let mut scope: Vec<NodeId> = (0..self.pool).map(NodeId).collect();
        scope.extend(self.client_ids());
        if !self.scripts.is_empty() {
            scope.push(ADMIN);
        }
        scope
    }

    /// The single-group scenario split mode runs for group `g`.
    fn split_scenario(&self, g: u32) -> Scenario {
        let clients = (0..self.n_clients)
            .filter(|&i| self.group_of_client(i) == g)
            .count() as u64;
        let mut sc = Scenario::new(self.seed ^ (0x51717D + g as u64))
            .servers(3)
            .clients(clients.max(1))
            .until(self.horizon)
            .sharded_workload(g, self.groups);
        sc.ops_per_client = self.ops_per_client;
        sc.read_ratio = self.read_ratio;
        sc.value_size = self.value_size;
        sc.keyspace = self.keyspace;
        sc.record_trace = self.record_trace;
        sc.record_events = self.record_events;
        sc
    }
}

/// Everything extracted from one coupled sharded run.
pub struct ShardRunOut {
    /// The aggregate view (metrics, digests, flattened admin steps).
    pub run: RunOut,
    /// Group count of the scenario.
    pub groups: u32,
    /// Completions per group, indexed by group id.
    pub per_group_completed: Vec<u64>,
    /// Reconfiguration steps per group as `(started, finished)`.
    pub per_group_admin: Vec<Vec<(SimTime, SimTime)>>,
}

impl ShardRunOut {
    /// The longest run of empty `bin`-wide buckets in group `g`'s own
    /// completion timeline within `[from, to)`, in milliseconds.
    pub fn group_gap_ms(&self, g: u32, from: SimTime, to: SimTime, bin: SimDuration) -> u64 {
        self.run
            .metrics
            .timeline(GROUP_COMPLETES_KEYS[g as usize])
            .map(|t| t.longest_gap_bins(from, to, bin) as u64 * bin.as_millis())
            .unwrap_or(u64::MAX)
    }

    /// The worst per-shard gap over all groups (the reconfiguring shard's
    /// stall under a stop-the-world baseline shows up here).
    pub fn max_group_gap_ms(&self, from: SimTime, to: SimTime, bin: SimDuration) -> u64 {
        (0..self.groups)
            .map(|g| self.group_gap_ms(g, from, to, bin))
            .max()
            .unwrap_or(u64::MAX)
    }

    /// The aggregate client gap — what a shard-unaware caller of the whole
    /// keyspace observes. "≈ 0" here while shards reconfigure back-to-back
    /// is the payoff of per-shard reconfiguration.
    pub fn aggregate_gap_ms(&self, from: SimTime, to: SimTime, bin: SimDuration) -> u64 {
        self.run.longest_gap_ms(from, to, bin)
    }
}

/// Runs `scenario` on the sharded `kind` (coupled mode: one `Sim`).
pub fn run_sharded(kind: ShardSystem, sc: &ShardScenario) -> ShardRunOut {
    match kind {
        ShardSystem::Rsmr => run_sharded_rsmr(sc),
        ShardSystem::Stw => run_sharded_stw(sc),
    }
}

/// One group's reconfiguration script: `(fire at, target members)` steps.
type AdminScript = Vec<(SimTime, Vec<NodeId>)>;

/// The per-group admin scripts of a scenario, as `(group, script)`.
fn admin_groups(sc: &ShardScenario) -> Vec<(GroupId, AdminScript)> {
    (0..sc.groups)
        .filter_map(|g| {
            let script: Vec<(SimTime, Vec<NodeId>)> = sc
                .scripts
                .iter()
                .filter(|(sg, _, _)| *sg == g)
                .map(|(_, at, ids)| (*at, ids.iter().map(|&i| NodeId(i)).collect()))
                .collect();
            (!script.is_empty()).then_some((GroupId(g), script))
        })
        .collect()
}

fn run_sharded_rsmr(sc: &ShardScenario) -> ShardRunOut {
    let tun = RsmrTunables::default();
    let mut sim: Sim<MultiGroup<World<KvStore>>> = Sim::new(sc.seed, sc.net());
    if sc.record_trace {
        sim.enable_trace();
    }
    let probes = EventProbes::install(&mut sim, sc.record_events);

    // Server pool: every node hosts the groups whose genesis membership
    // includes it; a group first contacting the node later (an Activate
    // naming it a member, speculative successor traffic) spawns a joining
    // replica through the factory.
    let server_factory = |node: NodeId, tun: RsmrTunables| {
        move |_g: GroupId, _m: &_| {
            Some(World::server(RsmrNode::joining_with(
                node,
                tun.clone(),
                KvStore::new(),
            )))
        }
    };
    for p in 0..sc.pool {
        let node = NodeId(p);
        let mut mg = MultiGroup::new(server_factory(node, tun.clone()));
        for g in sc.hosted_groups(node) {
            let genesis = StaticConfig::new(sc.members(g));
            mg.insert(
                GroupId(g),
                World::server(RsmrNode::genesis_with(
                    node,
                    genesis,
                    tun.clone(),
                    KvStore::new(),
                )),
            );
        }
        sim.add_node_with_id(node, mg);
    }
    // One admin node multiplexing a per-group admin for every scripted
    // group — per-shard reconfigurations run concurrently.
    let scripted = admin_groups(sc);
    if !scripted.is_empty() {
        let mut mg = MultiGroup::sealed();
        for (g, script) in scripted {
            mg.insert(g, World::admin(AdminActor::new(sc.members(g.0), script)));
        }
        sim.add_node_with_id(ADMIN, mg);
    }

    let pool: Vec<NodeId> = (0..sc.pool).map(NodeId).collect();
    let fg = GroupId(sc.fault_group);
    let joiners = vec![sc.joiner(sc.fault_group)];
    let resolve_pool = pool.clone();
    let rebuild_tun = tun.clone();
    let mut driver = ChaosDriver::new(
        &sc.faults,
        sc.chaos_scope(),
        sc.net(),
        move |sim: &Sim<MultiGroup<World<KvStore>>>, t| {
            if let Some(r) = resolve_common(&resolve_pool, &joiners, t) {
                return r;
            }
            // Role targets are group-scoped: the leader/donor of the fault
            // group, wherever in the pool it currently lives.
            let server = |s: NodeId| {
                sim.actor(s)
                    .and_then(|mg| mg.get(fg))
                    .and_then(World::as_server)
            };
            match t {
                FaultTarget::CurrentLeader => resolve_pool
                    .iter()
                    .copied()
                    .find(|&s| server(s).map(|n| n.is_active_leader()).unwrap_or(false)),
                FaultTarget::TransferDonor => resolve_pool
                    .iter()
                    .filter_map(|&s| server(s).and_then(|n| n.transfer_provider()))
                    .next(),
                _ => None,
            }
        },
        move |sim: &Sim<MultiGroup<World<KvStore>>>, n| {
            // A restarted pool node recovers every group with persisted
            // state under its scope; anything else re-enters as a joiner
            // through the factory on first contact.
            let store = sim.storage(n);
            let mut mg = MultiGroup::new(server_factory(n, rebuild_tun.clone()));
            for g in MultiGroup::<World<KvStore>>::persisted_groups(store) {
                let sub = store.subtree(&g.scope());
                if let Some(rec) = RsmrNode::recover(n, rebuild_tun.clone(), &sub) {
                    mg.insert(g, World::server(rec));
                }
            }
            mg
        },
    );

    for (i, &c) in sc.client_ids().iter().enumerate() {
        let g = sc.group_of_client(i as u64);
        let client = RsmrClient::new(
            sc.members(g),
            sc.gen_for(i as u64).into_fn(),
            sc.ops_per_client,
        )
        .with_completes_key(GROUP_COMPLETES_KEYS[g as usize]);
        sim.add_node_with_id(
            c,
            MultiGroup::sealed().with_group(GroupId(g), World::client(client)),
        );
    }
    driver.run_until(&mut sim, sc.horizon);
    let chaos_log = driver.applied().to_vec();
    drop(driver);

    let mut per_group_completed = vec![0u64; sc.groups as usize];
    let mut completed = 0;
    for (i, &c) in sc.client_ids().iter().enumerate() {
        if let Some(mg) = sim.actor(c) {
            let n: u64 = mg.entries().map(|(_, w)| w.completed()).sum();
            completed += n;
            per_group_completed[sc.group_of_client(i as u64) as usize] += n;
        }
    }
    let mut per_group_admin: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); sc.groups as usize];
    if let Some(mg) = sim.actor(ADMIN) {
        for (g, w) in mg.entries() {
            if let Some(a) = w.as_admin() {
                per_group_admin[g.0 as usize] =
                    a.results().iter().map(|&(s, f, _)| (s, f)).collect();
            }
        }
    }
    let mut admin: Vec<(SimTime, SimTime)> = per_group_admin.iter().flatten().copied().collect();
    admin.sort();
    let probe = probes.finish();
    ShardRunOut {
        run: RunOut {
            completed,
            metrics: sim.metrics().clone(),
            admin,
            horizon: sc.horizon,
            histories: Vec::new(),
            trace_digest: sim.trace().digest(),
            event_digest: probe.event_digest,
            event_count: probe.event_count,
            digest_prefixes: probe.digest_prefixes,
            lifecycle_signature: probe.lifecycle_signature,
            spans: probe.spans,
            invariant_violations: Vec::new(),
            chaos_log,
        },
        groups: sc.groups,
        per_group_completed,
        per_group_admin,
    }
}

fn run_sharded_stw(sc: &ShardScenario) -> ShardRunOut {
    let tun = StwTunables::default();
    let mut sim: Sim<MultiGroup<StwWorld<KvStore>>> = Sim::new(sc.seed, sc.net());
    if sc.record_trace {
        sim.enable_trace();
    }
    let probes = EventProbes::install(&mut sim, sc.record_events);

    let server_factory = |node: NodeId, tun: StwTunables| {
        move |_g: GroupId, _m: &_| Some(StwWorld::Server(StwNode::joining(node, tun.clone())))
    };
    for p in 0..sc.pool {
        let node = NodeId(p);
        let mut mg = MultiGroup::new(server_factory(node, tun.clone()));
        for g in sc.hosted_groups(node) {
            let genesis = StaticConfig::new(sc.members(g));
            mg.insert(
                GroupId(g),
                StwWorld::Server(StwNode::genesis_with(
                    node,
                    genesis,
                    tun.clone(),
                    KvStore::new(),
                )),
            );
        }
        sim.add_node_with_id(node, mg);
    }
    let scripted = admin_groups(sc);
    if !scripted.is_empty() {
        let mut mg = MultiGroup::sealed();
        for (g, script) in scripted {
            mg.insert(g, StwWorld::Admin(AdminActor::new(sc.members(g.0), script)));
        }
        sim.add_node_with_id(ADMIN, mg);
    }

    let pool: Vec<NodeId> = (0..sc.pool).map(NodeId).collect();
    let fg = GroupId(sc.fault_group);
    let joiners = vec![sc.joiner(sc.fault_group)];
    let resolve_pool = pool.clone();
    let rebuild_tun = tun.clone();
    let mut driver = ChaosDriver::new(
        &sc.faults,
        sc.chaos_scope(),
        sc.net(),
        move |sim: &Sim<MultiGroup<StwWorld<KvStore>>>, t| {
            if let Some(r) = resolve_common(&resolve_pool, &joiners, t) {
                return r;
            }
            // Stop-the-world's sealing leader ships the snapshot, so both
            // role targets resolve to the fault group's leader.
            resolve_pool.iter().copied().find(|&s| {
                sim.actor(s)
                    .and_then(|mg| mg.get(fg))
                    .and_then(StwWorld::as_server)
                    .map(|n| n.is_current_leader())
                    .unwrap_or(false)
            })
        },
        // `StwNode` keeps nothing in stable storage: a restarted node
        // re-enters every group as a joiner through the factory.
        move |_sim: &Sim<MultiGroup<StwWorld<KvStore>>>, n| {
            MultiGroup::new(server_factory(n, rebuild_tun.clone()))
        },
    );

    for (i, &c) in sc.client_ids().iter().enumerate() {
        let g = sc.group_of_client(i as u64);
        let client = RsmrClient::new(
            sc.members(g),
            sc.gen_for(i as u64).into_fn(),
            sc.ops_per_client,
        )
        .with_completes_key(GROUP_COMPLETES_KEYS[g as usize]);
        sim.add_node_with_id(
            c,
            MultiGroup::sealed().with_group(GroupId(g), StwWorld::Client(client)),
        );
    }
    driver.run_until(&mut sim, sc.horizon);
    let chaos_log = driver.applied().to_vec();
    drop(driver);

    let mut per_group_completed = vec![0u64; sc.groups as usize];
    let mut completed = 0;
    for (i, &c) in sc.client_ids().iter().enumerate() {
        if let Some(mg) = sim.actor(c) {
            let n: u64 = mg.entries().map(|(_, w)| w.completed()).sum();
            completed += n;
            per_group_completed[sc.group_of_client(i as u64) as usize] += n;
        }
    }
    let mut per_group_admin: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); sc.groups as usize];
    if let Some(mg) = sim.actor(ADMIN) {
        for (g, w) in mg.entries() {
            if let Some(a) = w.as_admin() {
                per_group_admin[g.0 as usize] =
                    a.results().iter().map(|&(s, f, _)| (s, f)).collect();
            }
        }
    }
    let mut admin: Vec<(SimTime, SimTime)> = per_group_admin.iter().flatten().copied().collect();
    admin.sort();
    let probe = probes.finish();
    ShardRunOut {
        run: RunOut {
            completed,
            metrics: sim.metrics().clone(),
            admin,
            horizon: sc.horizon,
            histories: Vec::new(),
            trace_digest: sim.trace().digest(),
            event_digest: probe.event_digest,
            event_count: probe.event_count,
            digest_prefixes: probe.digest_prefixes,
            lifecycle_signature: probe.lifecycle_signature,
            spans: probe.spans,
            invariant_violations: Vec::new(),
            chaos_log,
        },
        groups: sc.groups,
        per_group_completed,
        per_group_admin,
    }
}

/// The deterministic merge of split-mode per-group runs.
pub struct MergedOut {
    /// Total completions over every group.
    pub completed: u64,
    /// Completions per group, indexed by group id.
    pub per_group_completed: Vec<u64>,
    /// FNV-1a fold of every group's `(completed, metrics fingerprint,
    /// trace digest, event digest, event count)` in group order — the
    /// byte-identity witness between serial and parallel execution.
    pub digest: u64,
}

/// Runs every group of `sc` as its own single-group scenario — serially
/// or on the bounded worker pool — and merges the results
/// deterministically in group order.
///
/// Fault-free only: the merge is exact because nothing couples the
/// groups. Scenarios with faults or cross-group admin scripts must run
/// coupled ([`run_sharded`]).
pub fn run_split(sc: &ShardScenario, parallel: bool) -> MergedOut {
    assert!(
        sc.faults.is_empty() && sc.scripts.is_empty(),
        "split mode only runs fault-free, script-free scenarios"
    );
    let jobs: Vec<(SystemKind, Scenario)> = (0..sc.groups)
        .map(|g| (SystemKind::Rsmr, sc.split_scenario(g)))
        .collect();
    let outs: Vec<RunOut> = if parallel {
        run_many(jobs)
    } else {
        jobs.iter().map(|(k, s)| run(*k, s)).collect()
    };
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let fold = |d: &mut u64, v: u64| {
        for b in v.to_le_bytes() {
            *d ^= b as u64;
            *d = d.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let mut completed = 0;
    let mut per_group_completed = Vec::with_capacity(outs.len());
    for out in &outs {
        completed += out.completed;
        per_group_completed.push(out.completed);
        fold(&mut digest, out.completed);
        fold(&mut digest, out.metrics_fingerprint());
        fold(&mut digest, out.trace_digest);
        fold(&mut digest, out.event_digest);
        fold(&mut digest, out.event_count);
    }
    MergedOut {
        completed,
        per_group_completed,
        digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(groups: u32) -> ShardScenario {
        let sc = ShardScenario::new(0x511A6D, groups)
            .clients(groups as u64 * 2)
            .until(SimTime::from_secs(3));
        ShardScenario {
            ops_per_client: Some(40),
            ..sc
        }
    }

    #[test]
    fn membership_gives_distinct_leaders_up_to_eight_groups() {
        let sc = ShardScenario::new(1, 8);
        let leaders: std::collections::BTreeSet<NodeId> =
            (0..8).map(|g| sc.members(g)[0]).collect();
        assert_eq!(leaders.len(), 8);
        for g in 0..8 {
            assert!(!sc.members(g).contains(&sc.joiner(g)));
        }
    }

    #[test]
    fn coupled_sharded_runs_complete_on_both_systems() {
        for kind in [ShardSystem::Rsmr, ShardSystem::Stw] {
            let sc = small(2);
            let out = run_sharded(kind, &sc);
            assert_eq!(out.run.completed, 160, "{}", kind.name());
            assert_eq!(out.per_group_completed, vec![80, 80], "{}", kind.name());
        }
    }

    #[test]
    fn per_shard_reconfiguration_completes_while_other_shards_commit() {
        let mut sc = small(2).reconfigure_group_at(1, SimTime::from_millis(500), &[4, 5, 6]);
        sc.ops_per_client = None; // keep committing across the whole horizon
        let out = run_sharded(ShardSystem::Rsmr, &sc);
        assert!(out.run.completed > 0);
        assert_eq!(out.per_group_admin[0].len(), 0);
        assert_eq!(out.per_group_admin[1].len(), 1);
        let (started, finished) = out.per_group_admin[1][0];
        assert!(finished > started);
        // The non-reconfiguring shard never pauses.
        assert_eq!(
            out.group_gap_ms(
                0,
                SimTime::from_millis(200),
                SimTime::from_millis(1500),
                SimDuration::from_millis(100),
            ),
            0
        );
    }

    #[test]
    fn split_merge_is_identical_serial_and_parallel() {
        let sc = small(4);
        let serial = run_split(&sc, false);
        let parallel = run_split(&sc, true);
        assert_eq!(serial.digest, parallel.digest);
        assert_eq!(serial.completed, parallel.completed);
        assert_eq!(serial.per_group_completed, parallel.per_group_completed);
        assert_eq!(serial.completed, 320);
    }
}
