//! Gate for the large-state transfer work (E14): runs the state-size
//! sweep (chunked vs monolithic handoff) and the rejoin-delta scenario,
//! writes `BENCH_PR10.json`, and exits non-zero if a gate fails:
//!
//! - chunked handoff-gap growth across the axis must stay ≤
//!   [`GATE_MAX_RSMR_GAP_GROWTH`]×,
//! - the monolithic control must grow ≥ `gate_min_stw_gap_growth(quick)`×
//!   (10× on the full axis, 4× on the trimmed quick axis — otherwise the
//!   comparison is vacuous),
//! - the rejoin delta must move < [`GATE_MAX_DELTA_PCT`]% of the fresh
//!   joiner's full-snapshot bytes.
//!
//! ```sh
//! cargo run --release -p bench --bin bench_pr10 -- [--quick] [--out PATH]
//! ```
//!
//! Full mode sweeps 10³ → 10⁶ keys and matches the committed repo-root
//! `BENCH_PR10.json`; `--quick` trims the axis to 10³ → 10⁵ for CI smoke.

use std::fmt::Write as _;

use bench::experiments::e14_large_state::{
    gap_growth, gate_min_stw_gap_growth, rejoin_row, size_rows, GATE_MAX_DELTA_PCT,
    GATE_MAX_RSMR_GAP_GROWTH,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_PR10.json");

    let rows = size_rows(quick);
    let rejoin = rejoin_row(quick);
    let (rsmr_growth, stw_growth) = gap_growth(&rows);
    let stw_gate = gate_min_stw_gap_growth(quick);

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"experiment\": \"e14_large_state\",\n  \"mode\": \"{}\",\n  \
         \"gate_max_rsmr_gap_growth\": {GATE_MAX_RSMR_GAP_GROWTH},\n  \
         \"gate_min_stw_gap_growth\": {stw_gate},\n  \
         \"gate_max_delta_pct\": {GATE_MAX_DELTA_PCT},\n  \
         \"rsmr_gap_growth\": {rsmr_growth:.3},\n  \
         \"stw_gap_growth\": {stw_growth:.3},",
        if quick { "quick" } else { "full" },
    );
    json.push_str("  \"sizes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"keys\": {}, \"system\": \"{}\", \"handoff_gap_ms\": {:.3}, \
             \"client_gap_ms\": {}, \"p99_ms\": {:.3}, \"chunk_kib\": {:.1}, \
             \"seal_pages_reused\": {}, \"completed\": {}}}{}",
            r.keys,
            r.kind.name(),
            r.handoff_gap_ms,
            r.client_gap_ms,
            r.p99_ms,
            r.chunk_kib,
            r.seal_pages_reused,
            r.completed,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"rejoin\": {{\"keys\": {}, \"full_kib\": {:.1}, \"delta_kib\": {:.1}, \
         \"delta_pct\": {:.2}, \"delta_fallbacks\": {}, \"completed\": {}}}\n}}",
        rejoin.keys,
        rejoin.full_kib,
        rejoin.delta_kib,
        rejoin.delta_pct,
        rejoin.delta_fallbacks,
        rejoin.completed,
    );
    std::fs::write(out_path, &json).expect("write artifact");
    print!("{json}");

    let mut failed = false;
    if !(rsmr_growth <= GATE_MAX_RSMR_GAP_GROWTH) {
        eprintln!(
            "FAIL: chunked handoff gap grew {rsmr_growth:.2}x across the state \
             axis (gate: <= {GATE_MAX_RSMR_GAP_GROWTH}x)"
        );
        failed = true;
    }
    if !(stw_growth >= stw_gate) {
        eprintln!(
            "FAIL: monolithic control gap grew only {stw_growth:.2}x (expected \
             >= {stw_gate}x) — the comparison lost its contrast"
        );
        failed = true;
    }
    if !(rejoin.delta_pct < GATE_MAX_DELTA_PCT) {
        eprintln!(
            "FAIL: rejoin delta moved {:.1}% of the full snapshot (gate: < \
             {GATE_MAX_DELTA_PCT}%)",
            rejoin.delta_pct
        );
        failed = true;
    }
    if rejoin.delta_kib <= 0.0 {
        eprintln!("FAIL: the rejoiner never took the delta path");
        failed = true;
    }
    if rows.iter().any(|r| r.completed == 0) {
        eprintln!("FAIL: a sweep row completed no client work");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "gate ok: rsmr gap growth {rsmr_growth:.2}x <= {GATE_MAX_RSMR_GAP_GROWTH}x, \
         stw control {stw_growth:.1}x >= {stw_gate}x, rejoin delta \
         {:.1}% < {GATE_MAX_DELTA_PCT}%",
        rejoin.delta_pct
    );
}
