//! Regenerates every experiment table and figure (see `EXPERIMENTS.md`).
//!
//! ```sh
//! cargo run --release -p bench --bin exp_all            # all experiments
//! cargo run --release -p bench --bin exp_all -- e2 e5   # a subset
//! cargo run --release -p bench --bin exp_all -- --quick # trimmed sweeps
//! ```

use std::time::Instant;

use bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    let ids: Vec<&str> = if selected.is_empty() {
        experiments::ALL.to_vec()
    } else {
        selected.iter().map(String::as_str).collect()
    };

    println!("# Reconfigurable SMR — experiment suite");
    println!(
        "# mode: {}; all measurements are in deterministic virtual time\n",
        if quick { "quick" } else { "full" }
    );
    let total = Instant::now();
    for id in ids {
        let start = Instant::now();
        match experiments::run_one(id, quick) {
            Some(output) => {
                print!("{output}");
                eprintln!("[{id} done in {:.1}s wall]", start.elapsed().as_secs_f64());
            }
            None => eprintln!("unknown experiment id: {id} (valid: {:?})", experiments::ALL),
        }
    }
    eprintln!("[suite done in {:.1}s wall]", total.elapsed().as_secs_f64());
}
