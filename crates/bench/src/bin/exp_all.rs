//! Regenerates every experiment table and figure (see `EXPERIMENTS.md`).
//!
//! ```sh
//! cargo run --release -p bench --bin exp_all            # all experiments
//! cargo run --release -p bench --bin exp_all -- --list  # ids + one-liners
//! cargo run --release -p bench --bin exp_all -- e2 e5   # a subset
//! cargo run --release -p bench --bin exp_all -- --quick # trimmed sweeps
//! cargo run --release -p bench --bin exp_all -- --json artifacts/
//! cargo run --release -p bench --bin exp_all -- chaos --seeds 64      # nightly sweep
//! cargo run --release -p bench --bin exp_all -- chaos --seeds 1@7     # replay seed 7
//! cargo run --release -p bench --bin exp_all -- chaos --coverage 24   # coverage comparison
//! cargo run --release -p bench --bin exp_all -- chaos --replay 0x1:4#13  # replay a lineage
//! ```
//!
//! `--json <dir>` additionally writes one machine-readable artifact per
//! experiment (`<dir>/<id>.jsonl`, schema in `EXPERIMENTS.md`). Artifacts
//! contain no timestamps or host data: two runs of the same build are
//! byte-identical.
//!
//! `--seeds N[@BASE]` overrides the chaos sweep's seed set with
//! `BASE..BASE+N` (default base 1). When any seed fails, the process exits
//! non-zero after printing a one-command replay line per failing seed.
//!
//! `--coverage N` runs only the coverage-guided-vs-uniform comparison at a
//! budget of N runs per arm, exiting non-zero if any run fails safety or
//! the guided arm misses the recorded coverage-gain gate. `--replay
//! <lineage>` replays one coverage candidate (`base[:m1,m2,..][#perm]`,
//! as printed in failure reports) across every swept system.

use std::time::Instant;

use bench::experiments::{self, chaos_sweep, ExpOutput};

/// One experiment's output (if the id was known) and wall seconds.
type Slot = std::sync::Mutex<Option<(Option<ExpOutput>, f64)>>;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in experiments::ALL {
            println!("{id:<6} {}", experiments::describe(id));
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let json_dir: Option<String> = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if args.iter().any(|a| a == "--json") && json_dir.is_none() {
        eprintln!("--json requires a directory argument");
        std::process::exit(2);
    }
    // Create the artifact directory up front: an unwritable path should
    // fail before hours of experiments, not after.
    if let Some(dir) = &json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create artifact directory {dir}: {e}");
            std::process::exit(2);
        }
        let probe = format!("{dir}/.writable-probe");
        if let Err(e) = std::fs::write(&probe, b"") {
            eprintln!("artifact directory {dir} is not writable: {e}");
            std::process::exit(2);
        }
        let _ = std::fs::remove_file(&probe);
    }
    // `--seeds N[@BASE]` — chaos sweep seed-set override (nightly / replay).
    let seeds_arg: Option<String> = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let chaos_seeds: Option<Vec<u64>> = match (args.iter().any(|a| a == "--seeds"), &seeds_arg) {
        (false, _) => None,
        (true, None) => {
            eprintln!("--seeds requires N or N@BASE");
            std::process::exit(2);
        }
        (true, Some(spec)) => {
            let (n, base) = match spec.split_once('@') {
                Some((n, b)) => (n.parse::<u64>(), b.parse::<u64>()),
                None => (spec.parse::<u64>(), Ok(1)),
            };
            match (n, base) {
                (Ok(n), Ok(b)) => Some(chaos_sweep::seed_range(n, b)),
                _ => {
                    eprintln!("--seeds requires N or N@BASE (got {spec})");
                    std::process::exit(2);
                }
            }
        }
    };
    // `--coverage N` — run only the coverage comparison at budget N/arm.
    let coverage_arg: Option<usize> = match args.iter().position(|a| a == "--coverage") {
        None => None,
        Some(i) => match args.get(i + 1).and_then(|n| n.parse::<usize>().ok()) {
            Some(n) if n > 0 => Some(n),
            _ => {
                eprintln!("--coverage requires a positive run budget");
                std::process::exit(2);
            }
        },
    };
    // `--replay LINEAGE` — replay one coverage candidate on every system.
    let replay_arg: Option<simnet::PlanLineage> = match args.iter().position(|a| a == "--replay") {
        None => None,
        Some(i) => match args.get(i + 1).and_then(|s| simnet::PlanLineage::parse(s)) {
            Some(l) => Some(l),
            None => {
                eprintln!("--replay requires a lineage (base[:m1,m2,..][#perm])");
                std::process::exit(2);
            }
        },
    };
    if let Some(lineage) = replay_arg {
        std::process::exit(replay_lineage(&lineage));
    }
    if let Some(budget) = coverage_arg {
        std::process::exit(run_coverage_only(budget, &json_dir, quick));
    }
    let mut skip_next = false;
    let selected: Vec<String> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--json" || *a == "--seeds" || *a == "--coverage" || *a == "--replay" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .cloned()
        .collect();
    let ids: Vec<&str> = if selected.is_empty() {
        experiments::ALL.to_vec()
    } else {
        selected.iter().map(String::as_str).collect()
    };
    // The chaos sweep runs outside the experiment pool: it fans its own
    // `(seed, system)` jobs across cores and needs its failing-seed list
    // for the exit code.
    let chaos_selected = ids.contains(&"chaos");
    let ids: Vec<&str> = ids.into_iter().filter(|&id| id != "chaos").collect();

    println!("# Reconfigurable SMR — experiment suite");
    println!(
        "# mode: {}; all measurements are in deterministic virtual time\n",
        if quick { "quick" } else { "full" }
    );
    let total = Instant::now();
    // Experiments are independent of one another (each builds its own
    // simulations from fixed seeds), so fan them across the available cores
    // — bounded by `available_parallelism` so a small box is not thrashed —
    // and print the finished outputs in presentation order.
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(ids.len().max(1));
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<Slot> = ids.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&id) = ids.get(i) else { break };
                let start = Instant::now();
                let out = experiments::run_structured(id, quick);
                *slots[i].lock().expect("result slot") = Some((out, start.elapsed().as_secs_f64()));
            });
        }
    });
    let results: Vec<(&str, Option<ExpOutput>, f64)> = ids
        .iter()
        .zip(slots)
        .map(|(&id, slot)| {
            let (out, secs) = slot
                .into_inner()
                .expect("unpoisoned")
                .expect("worker filled every slot");
            (id, out, secs)
        })
        .collect();
    for (id, output, secs) in results {
        match output {
            Some(output) => {
                print!("{}", output.rendered);
                if let Some(dir) = &json_dir {
                    let path = format!("{dir}/{id}.jsonl");
                    match std::fs::write(&path, output.to_jsonl(id, quick)) {
                        Ok(()) => eprintln!("[{id} artifact: {path}]"),
                        Err(e) => {
                            eprintln!("cannot write {path}: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                eprintln!("[{id} done in {secs:.1}s wall]");
            }
            None => eprintln!(
                "unknown experiment id: {id} (valid: {:?})",
                experiments::ALL
            ),
        }
    }
    let mut failed = false;
    if chaos_selected {
        // A `--seeds` override is a replay / custom sweep: uniform arm
        // only. The default run adds the coverage comparison.
        let coverage_budget = match &chaos_seeds {
            Some(_) => None,
            None => Some(if quick { 8 } else { 24 }),
        };
        let seeds =
            chaos_seeds.unwrap_or_else(|| chaos_sweep::seed_range(if quick { 8 } else { 24 }, 1));
        let start = Instant::now();
        let outcome = chaos_sweep::run_sweep(&seeds, coverage_budget);
        print!("{}", outcome.output.rendered);
        if let Some(dir) = &json_dir {
            let path = format!("{dir}/chaos.jsonl");
            match std::fs::write(&path, outcome.output.to_jsonl("chaos", quick)) {
                Ok(()) => eprintln!("[chaos artifact: {path}]"),
                Err(e) => {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        eprintln!(
            "[chaos done in {:.1}s wall, {} seeds]",
            start.elapsed().as_secs_f64(),
            seeds.len()
        );
        if !outcome.failing_seeds.is_empty() {
            eprintln!("chaos sweep FAILED on seeds {:?}", outcome.failing_seeds);
            failed = true;
        }
        if !outcome.failing_lineages.is_empty() {
            let lineages: Vec<String> = outcome
                .failing_lineages
                .iter()
                .map(|l| l.to_string())
                .collect();
            eprintln!("chaos coverage runs FAILED on lineages {lineages:?}");
            failed = true;
        }
        if !outcome.coverage_gate_ok {
            eprintln!(
                "chaos coverage gate FAILED: guided coverage gain below {}%",
                chaos_sweep::GATE_MIN_COVERAGE_GAIN_PCT
            );
            failed = true;
        }
    }
    eprintln!("[suite done in {:.1}s wall]", total.elapsed().as_secs_f64());
    if failed {
        std::process::exit(1);
    }
}

/// Replays one coverage lineage on every swept system; returns the exit
/// code (0 iff safety and liveness held everywhere).
fn replay_lineage(lineage: &simnet::PlanLineage) -> i32 {
    use bench::runner::run;
    use kvstore::{linearizable, KvStore};

    let sc = chaos_sweep::lineage_scenario(lineage);
    println!("# replay lineage {lineage}");
    println!("# plan: {}", sc.faults.describe());
    let mut ok = true;
    for kind in chaos_sweep::SWEPT {
        let out = run(kind, &sc);
        let linear = linearizable(KvStore::new(), &out.histories);
        let expected = sc.n_clients * sc.ops_per_client.unwrap_or(0);
        let passed = out.invariant_violations.is_empty() && linear && out.completed == expected;
        println!(
            "{:<14} completed {}/{} invariants {} linearizable {} signature {:#04x} -> {}",
            kind.name(),
            out.completed,
            expected,
            if out.invariant_violations.is_empty() {
                "clean".to_string()
            } else {
                format!("{} VIOLATIONS", out.invariant_violations.len())
            },
            if linear { "PASS" } else { "FAIL" },
            out.lifecycle_signature,
            if passed { "ok" } else { "FAILED" },
        );
        for v in &out.invariant_violations {
            println!("  violation: {v}");
        }
        if !passed {
            for (at, line) in &out.chaos_log {
                println!("  chaos @{at:?}: {line}");
            }
            ok = false;
        }
    }
    if ok {
        0
    } else {
        1
    }
}

/// Runs only the coverage comparison; returns the exit code (0 iff every
/// run was safe + live and the guided arm held the coverage-gain gate).
fn run_coverage_only(budget: usize, json_dir: &Option<String>, quick: bool) -> i32 {
    let start = Instant::now();
    let report = chaos_sweep::run_coverage(budget, 1);
    let (runs, summary) = chaos_sweep::coverage_tables(&report);
    print!("{}", runs.render());
    print!("{}", summary.render());
    println!(
        "corpus ({} lineages with novel coverage):",
        report.corpus.len()
    );
    for l in &report.corpus {
        println!("  {l}");
    }
    if let Some(dir) = json_dir {
        let output = ExpOutput {
            histograms: Vec::new(),
            rendered: String::new(),
            tables: vec![runs, summary],
        };
        let path = format!("{dir}/chaos_coverage.jsonl");
        match std::fs::write(&path, output.to_jsonl("chaos_coverage", quick)) {
            Ok(()) => eprintln!("[chaos_coverage artifact: {path}]"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
        }
    }
    eprintln!(
        "[coverage comparison done in {:.1}s wall, {} runs/arm]",
        start.elapsed().as_secs_f64(),
        budget
    );
    let mut code = 0;
    let failing = report.failing_lineages();
    if !failing.is_empty() {
        eprintln!("coverage runs FAILED — replay with --replay <lineage>:");
        for l in &failing {
            eprintln!("  cargo run --release -p bench --bin exp_all -- chaos --replay {l}");
        }
        code = 1;
    }
    if !report.gate_ok() {
        eprintln!(
            "coverage gate FAILED: {:+.1}% gain is below the recorded {}% gate",
            report.gain_pct(),
            chaos_sweep::GATE_MIN_COVERAGE_GAIN_PCT
        );
        code = 1;
    } else {
        eprintln!(
            "coverage gate ok: {:+.1}% gain >= {}%",
            report.gain_pct(),
            chaos_sweep::GATE_MIN_COVERAGE_GAIN_PCT
        );
    }
    code
}
