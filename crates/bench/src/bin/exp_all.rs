//! Regenerates every experiment table and figure (see `EXPERIMENTS.md`).
//!
//! ```sh
//! cargo run --release -p bench --bin exp_all            # all experiments
//! cargo run --release -p bench --bin exp_all -- --list  # ids + one-liners
//! cargo run --release -p bench --bin exp_all -- e2 e5   # a subset
//! cargo run --release -p bench --bin exp_all -- --quick # trimmed sweeps
//! cargo run --release -p bench --bin exp_all -- --json artifacts/
//! cargo run --release -p bench --bin exp_all -- chaos --seeds 64      # nightly sweep
//! cargo run --release -p bench --bin exp_all -- chaos --seeds 1@7     # replay seed 7
//! ```
//!
//! `--json <dir>` additionally writes one machine-readable artifact per
//! experiment (`<dir>/<id>.jsonl`, schema in `EXPERIMENTS.md`). Artifacts
//! contain no timestamps or host data: two runs of the same build are
//! byte-identical.
//!
//! `--seeds N[@BASE]` overrides the chaos sweep's seed set with
//! `BASE..BASE+N` (default base 1). When any seed fails, the process exits
//! non-zero after printing a one-command replay line per failing seed.

use std::time::Instant;

use bench::experiments::{self, chaos_sweep, ExpOutput};

/// One experiment's output (if the id was known) and wall seconds.
type Slot = std::sync::Mutex<Option<(Option<ExpOutput>, f64)>>;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in experiments::ALL {
            println!("{id:<6} {}", experiments::describe(id));
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let json_dir: Option<String> = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if args.iter().any(|a| a == "--json") && json_dir.is_none() {
        eprintln!("--json requires a directory argument");
        std::process::exit(2);
    }
    // Create the artifact directory up front: an unwritable path should
    // fail before hours of experiments, not after.
    if let Some(dir) = &json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create artifact directory {dir}: {e}");
            std::process::exit(2);
        }
        let probe = format!("{dir}/.writable-probe");
        if let Err(e) = std::fs::write(&probe, b"") {
            eprintln!("artifact directory {dir} is not writable: {e}");
            std::process::exit(2);
        }
        let _ = std::fs::remove_file(&probe);
    }
    // `--seeds N[@BASE]` — chaos sweep seed-set override (nightly / replay).
    let seeds_arg: Option<String> = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let chaos_seeds: Option<Vec<u64>> = match (args.iter().any(|a| a == "--seeds"), &seeds_arg) {
        (false, _) => None,
        (true, None) => {
            eprintln!("--seeds requires N or N@BASE");
            std::process::exit(2);
        }
        (true, Some(spec)) => {
            let (n, base) = match spec.split_once('@') {
                Some((n, b)) => (n.parse::<u64>(), b.parse::<u64>()),
                None => (spec.parse::<u64>(), Ok(1)),
            };
            match (n, base) {
                (Ok(n), Ok(b)) => Some(chaos_sweep::seed_range(n, b)),
                _ => {
                    eprintln!("--seeds requires N or N@BASE (got {spec})");
                    std::process::exit(2);
                }
            }
        }
    };
    let mut skip_next = false;
    let selected: Vec<String> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--json" || *a == "--seeds" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .cloned()
        .collect();
    let ids: Vec<&str> = if selected.is_empty() {
        experiments::ALL.to_vec()
    } else {
        selected.iter().map(String::as_str).collect()
    };
    // The chaos sweep runs outside the experiment pool: it fans its own
    // `(seed, system)` jobs across cores and needs its failing-seed list
    // for the exit code.
    let chaos_selected = ids.contains(&"chaos");
    let ids: Vec<&str> = ids.into_iter().filter(|&id| id != "chaos").collect();

    println!("# Reconfigurable SMR — experiment suite");
    println!(
        "# mode: {}; all measurements are in deterministic virtual time\n",
        if quick { "quick" } else { "full" }
    );
    let total = Instant::now();
    // Experiments are independent of one another (each builds its own
    // simulations from fixed seeds), so fan them across the available cores
    // — bounded by `available_parallelism` so a small box is not thrashed —
    // and print the finished outputs in presentation order.
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(ids.len().max(1));
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<Slot> = ids.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&id) = ids.get(i) else { break };
                let start = Instant::now();
                let out = experiments::run_structured(id, quick);
                *slots[i].lock().expect("result slot") = Some((out, start.elapsed().as_secs_f64()));
            });
        }
    });
    let results: Vec<(&str, Option<ExpOutput>, f64)> = ids
        .iter()
        .zip(slots)
        .map(|(&id, slot)| {
            let (out, secs) = slot
                .into_inner()
                .expect("unpoisoned")
                .expect("worker filled every slot");
            (id, out, secs)
        })
        .collect();
    for (id, output, secs) in results {
        match output {
            Some(output) => {
                print!("{}", output.rendered);
                if let Some(dir) = &json_dir {
                    let path = format!("{dir}/{id}.jsonl");
                    match std::fs::write(&path, output.to_jsonl(id, quick)) {
                        Ok(()) => eprintln!("[{id} artifact: {path}]"),
                        Err(e) => {
                            eprintln!("cannot write {path}: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                eprintln!("[{id} done in {secs:.1}s wall]");
            }
            None => eprintln!(
                "unknown experiment id: {id} (valid: {:?})",
                experiments::ALL
            ),
        }
    }
    let mut failed = false;
    if chaos_selected {
        let seeds =
            chaos_seeds.unwrap_or_else(|| chaos_sweep::seed_range(if quick { 8 } else { 24 }, 1));
        let start = Instant::now();
        let (output, failing) = chaos_sweep::run_structured_seeds(&seeds);
        print!("{}", output.rendered);
        if let Some(dir) = &json_dir {
            let path = format!("{dir}/chaos.jsonl");
            match std::fs::write(&path, output.to_jsonl("chaos", quick)) {
                Ok(()) => eprintln!("[chaos artifact: {path}]"),
                Err(e) => {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        eprintln!(
            "[chaos done in {:.1}s wall, {} seeds]",
            start.elapsed().as_secs_f64(),
            seeds.len()
        );
        if !failing.is_empty() {
            eprintln!("chaos sweep FAILED on seeds {failing:?}");
            failed = true;
        }
    }
    eprintln!("[suite done in {:.1}s wall]", total.elapsed().as_secs_f64());
    if failed {
        std::process::exit(1);
    }
}
