//! Wall-clock measurement for the sharded group drivers (feeds
//! `BENCH_PR5.json`; kept out of `exp_all` so the JSONL artifacts stay
//! free of host-dependent data).
//!
//! ```sh
//! cargo run --release -p bench --bin shard_walltime
//! ```
//!
//! Reports, as one JSON object on stdout:
//! * the E11 scaling sweep's per-G coupled-run wall seconds;
//! * the split driver's serial vs parallel wall seconds at G=4 (the
//!   parallel win scales with core count — a 1-core box shows ~1x);
//! * the digests, so the run double-checks serial == parallel.

use std::time::Instant;

use bench::sharded::{run_sharded, run_split, ShardScenario, ShardSystem};
use simnet::SimTime;

fn main() {
    let mut coupled = String::new();
    for g in [1u32, 2, 4, 8] {
        let sc = ShardScenario::new(0xE11 + g as u64, g)
            .until(SimTime::from_secs(10))
            .bandwidth(150_000);
        let start = Instant::now();
        let out = run_sharded(ShardSystem::Rsmr, &sc);
        let secs = start.elapsed().as_secs_f64();
        if !coupled.is_empty() {
            coupled.push(',');
        }
        coupled.push_str(&format!(
            "\n    {{\"groups\":{g},\"completed\":{},\"wall_seconds\":{secs:.2}}}",
            out.run.completed
        ));
    }

    let sc = ShardScenario::new(0xE11C, 4).until(SimTime::from_secs(5));
    let start = Instant::now();
    let serial = run_split(&sc, false);
    let serial_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let parallel = run_split(&sc, true);
    let parallel_secs = start.elapsed().as_secs_f64();
    assert_eq!(serial.digest, parallel.digest, "split drivers diverged");

    println!(
        "{{\n  \"cpus\": {},\n  \"coupled_scaling\": [{coupled}\n  ],\n  \
         \"split_driver_g4\": {{\n    \"completed\": {},\n    \
         \"digest\": \"{:016x}\",\n    \"serial_wall_seconds\": {serial_secs:.2},\n    \
         \"parallel_wall_seconds\": {parallel_secs:.2},\n    \
         \"speedup\": {:.2}\n  }}\n}}",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        serial.completed,
        serial.digest,
        serial_secs / parallel_secs
    );
}
