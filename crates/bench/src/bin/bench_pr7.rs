//! CI smoke gate for the leader-side batching work: runs the E13 sweep,
//! writes the rows as `BENCH_PR7.json`, and exits non-zero if the best
//! batched point fails the recorded speedup gate
//! ([`GATE_MIN_SPEEDUP`] over the unbatched baseline at the same fabric
//! cap).
//!
//! ```sh
//! cargo run --release -p bench --bin bench_pr7 -- [--full] [--out PATH]
//! ```
//!
//! Quick mode (the default, used by CI) runs two points on a shorter
//! horizon; `--full` runs the whole sweep that produced the committed
//! repo-root `BENCH_PR7.json`.

use std::fmt::Write as _;

use bench::experiments::e13_batching::{run_rows, GATE_MIN_SPEEDUP};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_PR7.json");

    let rows = run_rows(!full);
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"experiment\": \"e13_batching\",\n  \"mode\": \"{}\",\n  \
         \"gate_min_speedup\": {GATE_MIN_SPEEDUP},\n  \"rows\": [",
        if full { "full" } else { "quick" }
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"config\": \"{}\", \"throughput_ops\": {:.0}, \
             \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"speedup\": {:.2}}}{}",
            r.label,
            r.throughput,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).expect("write artifact");
    print!("{json}");

    let best = rows.iter().map(|r| r.speedup).fold(0.0_f64, f64::max);
    if best < GATE_MIN_SPEEDUP {
        eprintln!(
            "FAIL: best batched speedup {best:.2}x is below the recorded \
             gate {GATE_MIN_SPEEDUP}x"
        );
        std::process::exit(1);
    }
    println!("gate ok: best batched speedup {best:.2}x >= {GATE_MIN_SPEEDUP}x");
}
