//! Nightly gate for the coverage-guided chaos sweep: runs the
//! uniform-vs-guided comparison, writes the result (summary, per-run
//! novelty rows, and the novelty corpus) as `BENCH_PR9.json`, and exits
//! non-zero if any run fails safety/liveness or the guided arm finds
//! fewer than [`GATE_MIN_COVERAGE_GAIN_PCT`]% more unique event-digest
//! prefixes than uniform sampling at equal run budget.
//!
//! ```sh
//! cargo run --release -p bench --bin bench_pr9 -- [--quick] [--out PATH]
//! ```
//!
//! The default budget (24 runs per arm) matches the committed repo-root
//! `BENCH_PR9.json`; `--quick` drops to 8 per arm for smoke runs.

use std::fmt::Write as _;

use bench::experiments::chaos_sweep::{run_coverage, GATE_MIN_COVERAGE_GAIN_PCT};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_PR9.json");

    let budget = if quick { 8 } else { 24 };
    let report = run_coverage(budget, 1);

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"experiment\": \"chaos_coverage\",\n  \"mode\": \"{}\",\n  \
         \"budget_per_arm\": {budget},\n  \
         \"gate_min_gain_pct\": {GATE_MIN_COVERAGE_GAIN_PCT},\n  \
         \"uniform_unique_prefixes\": {},\n  \
         \"uniform_unique_signatures\": {},\n  \
         \"coverage_unique_prefixes\": {},\n  \
         \"coverage_unique_signatures\": {},\n  \
         \"gain_pct\": {:.1},",
        if quick { "quick" } else { "full" },
        report.uniform_prefixes,
        report.uniform_signatures,
        report.guided_prefixes,
        report.guided_signatures,
        report.gain_pct(),
    );
    json.push_str("  \"corpus\": [");
    for (i, l) in report.corpus.iter().enumerate() {
        let _ = write!(
            json,
            "\"{l}\"{}",
            if i + 1 < report.corpus.len() {
                ", "
            } else {
                ""
            }
        );
    }
    json.push_str("],\n  \"runs\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"lineage\": \"{}\", \"perm\": {}, \
             \"checkpoints\": {}, \"novel\": {}, \"signature\": {}, \
             \"completed\": {}, \"expected\": {}, \"violations\": {}, \
             \"linearizable\": {}}}{}",
            r.mode,
            r.lineage,
            r.lineage.perm,
            r.checkpoints,
            r.novel,
            r.signature,
            r.completed,
            r.expected,
            r.invariant_violations.len(),
            r.linearizable,
            if i + 1 < report.rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).expect("write artifact");
    print!("{json}");

    let mut failed = false;
    let failing = report.failing_lineages();
    if !failing.is_empty() {
        eprintln!("FAIL: coverage runs failed safety/liveness — replay with:");
        for l in &failing {
            eprintln!("  cargo run --release -p bench --bin exp_all -- chaos --replay {l}");
        }
        failed = true;
    }
    if !report.gate_ok() {
        eprintln!(
            "FAIL: guided coverage gain {:+.1}% is below the recorded \
             {GATE_MIN_COVERAGE_GAIN_PCT}% gate",
            report.gain_pct()
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "gate ok: guided coverage gain {:+.1}% >= {GATE_MIN_COVERAGE_GAIN_PCT}%",
        report.gain_pct()
    );
}
