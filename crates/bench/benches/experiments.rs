//! Wall-time benchmarks of representative end-to-end runs: how expensive
//! regenerating the experiment suite is, plus the cost of the
//! linearizability checker on realistic histories.

use bench::microbench::bench;
use bench::runner::{run, Scenario, SystemKind};
use kvstore::{linearizable, KvStore};
use simnet::SimTime;

fn main() {
    for kind in [SystemKind::Static, SystemKind::Rsmr, SystemKind::Raft] {
        bench(
            &format!("3s_run_{}", kind.name().replace(' ', "_")),
            1,
            || (),
            |_| {
                let sc = Scenario::new(1).clients(4).until(SimTime::from_secs(3));
                let out = run(kind, &sc);
                assert!(out.completed > 0);
            },
        );
    }

    bench(
        "3s_run_with_reconfig_rsmr",
        1,
        || (),
        |_| {
            let sc = Scenario::new(1)
                .clients(4)
                .joiners(&[3])
                .reconfigure_at(SimTime::from_secs(1), &[0, 1, 2, 3])
                .until(SimTime::from_secs(3));
            let out = run(SystemKind::Rsmr, &sc);
            assert_eq!(out.admin.len(), 1);
        },
    );

    // A realistic history: contended clients across a reconfiguration.
    let mut sc = Scenario::new(5)
        .clients(3)
        .joiners(&[3])
        .reconfigure_at(SimTime::from_secs(1), &[0, 1, 2, 3])
        .until(SimTime::from_secs(20));
    sc.ops_per_client = Some(60);
    sc.record_history = true;
    let out = run(SystemKind::Rsmr, &sc);
    assert!(!out.histories.is_empty());
    bench(
        &format!("lincheck_{}_ops", out.histories.len()),
        out.histories.len() as u64,
        || (),
        |_| assert!(linearizable(KvStore::new(), &out.histories)),
    );
}
