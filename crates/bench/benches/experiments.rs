//! Criterion wall-time benchmarks of representative end-to-end runs: how
//! expensive regenerating the experiment suite is, plus the cost of the
//! linearizability checker on realistic histories.

use std::time::Duration;

use bench::runner::{run, Scenario, SystemKind};
use criterion::{criterion_group, criterion_main, Criterion};
use kvstore::{linearizable, KvStore};
use simnet::SimTime;

fn bench_end_to_end_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(8));
    for kind in [SystemKind::Static, SystemKind::Rsmr, SystemKind::Raft] {
        group.bench_function(format!("3s_run_{}", kind.name().replace(' ', "_")), |b| {
            b.iter(|| {
                let sc = Scenario::new(1).clients(4).until(SimTime::from_secs(3));
                let out = run(kind, &sc);
                assert!(out.completed > 0);
            });
        });
    }
    group.bench_function("3s_run_with_reconfig_rsmr", |b| {
        b.iter(|| {
            let sc = Scenario::new(1)
                .clients(4)
                .joiners(&[3])
                .reconfigure_at(SimTime::from_secs(1), &[0, 1, 2, 3])
                .until(SimTime::from_secs(3));
            let out = run(SystemKind::Rsmr, &sc);
            assert_eq!(out.admin.len(), 1);
        });
    });
    group.finish();
}

fn bench_lincheck(c: &mut Criterion) {
    let mut group = c.benchmark_group("lincheck");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    // A realistic history: contended clients across a reconfiguration.
    let mut sc = Scenario::new(5)
        .clients(3)
        .joiners(&[3])
        .reconfigure_at(SimTime::from_secs(1), &[0, 1, 2, 3])
        .until(SimTime::from_secs(20));
    sc.ops_per_client = Some(60);
    sc.record_history = true;
    let out = run(SystemKind::Rsmr, &sc);
    assert!(!out.histories.is_empty());
    group.bench_function(format!("check_{}_ops", out.histories.len()), |b| {
        b.iter(|| assert!(linearizable(KvStore::new(), &out.histories)));
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end_runs, bench_lincheck);
criterion_main!(benches);
