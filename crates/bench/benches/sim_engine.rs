//! Micro-benchmarks of the simulation substrate itself: event throughput,
//! timer churn, broadcast fan-out and duplicate delivery. These bound how
//! large the experiments can be in wall time.
//!
//! The fan-out and duplicate-delivery benches carry a 1 KiB payload through
//! the same clone-per-peer / clone-per-delivery paths the protocol messages
//! take, so the cost of payload copying is measurable in-repo.

use bench::microbench::bench;
use simnet::{Actor, Context, Message, NetConfig, NodeId, Sim, SimDuration, Timer};

#[derive(Clone, Debug)]
struct Ping(u64);
impl Message for Ping {
    fn label(&self) -> &'static str {
        "ping"
    }
}

struct Bouncer {
    remaining: u64,
}
impl Actor for Bouncer {
    type Msg = Ping;
    fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, msg: Ping) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(from, Ping(msg.0 + 1));
        }
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_, Ping>, _t: Timer) {}
}

struct TimerChurn;
impl Actor for TimerChurn {
    type Msg = Ping;
    fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
        ctx.set_timer(SimDuration::from_micros(10), 0);
    }
    fn on_message(&mut self, _ctx: &mut Context<'_, Ping>, _f: NodeId, _m: Ping) {}
    fn on_timer(&mut self, ctx: &mut Context<'_, Ping>, _t: Timer) {
        ctx.set_timer(SimDuration::from_micros(10), 0);
    }
}

/// A message with a protocol-sized payload. Like the consensus messages
/// (`PaxosMsg`, Raft `AppendEntries`), the payload rides in an `Arc`, so the
/// per-peer broadcast clone and the per-delivery duplication clone are
/// refcount bumps instead of buffer copies.
#[derive(Clone, Debug)]
struct Blob {
    data: std::sync::Arc<Vec<u8>>,
}
impl Message for Blob {
    fn label(&self) -> &'static str {
        "blob"
    }
    fn size_hint(&self) -> usize {
        self.data.len()
    }
}

/// The root broadcasts a payload to every peer on each timer tick; peers
/// discard it.
struct Broadcaster {
    peers: Vec<NodeId>,
    payload: std::sync::Arc<Vec<u8>>,
    rounds: u64,
}
impl Actor for Broadcaster {
    type Msg = Blob;
    fn on_start(&mut self, ctx: &mut Context<'_, Blob>) {
        if !self.peers.is_empty() {
            ctx.set_timer(SimDuration::from_micros(10), 0);
        }
    }
    fn on_message(&mut self, _ctx: &mut Context<'_, Blob>, _f: NodeId, _m: Blob) {}
    fn on_timer(&mut self, ctx: &mut Context<'_, Blob>, _t: Timer) {
        if self.rounds == 0 {
            return;
        }
        self.rounds -= 1;
        ctx.broadcast(
            &self.peers,
            Blob {
                data: std::sync::Arc::clone(&self.payload),
            },
        );
        ctx.set_timer(SimDuration::from_micros(10), 0);
    }
}

/// Fires all payload sends at a sink up front over a duplicating link, so
/// the measured cost is pure routing + (duplicate) delivery with no timer
/// pacing in the way.
struct Duplicator {
    sink: NodeId,
    payload: std::sync::Arc<Vec<u8>>,
    rounds: u64,
}
impl Actor for Duplicator {
    type Msg = Blob;
    fn on_start(&mut self, ctx: &mut Context<'_, Blob>) {
        for _ in 0..self.rounds {
            ctx.send(
                self.sink,
                Blob {
                    data: std::sync::Arc::clone(&self.payload),
                },
            );
        }
    }
    fn on_message(&mut self, _ctx: &mut Context<'_, Blob>, _f: NodeId, _m: Blob) {}
    fn on_timer(&mut self, _ctx: &mut Context<'_, Blob>, _t: Timer) {}
}

fn main() {
    const MSGS: u64 = 10_000;
    bench(
        "deliver_10k_messages",
        MSGS,
        || (),
        |_| {
            let mut sim: Sim<Bouncer> = Sim::new(1, NetConfig::lan());
            let a = sim.add_node(Bouncer {
                remaining: MSGS / 2,
            });
            let bn = sim.add_node(Bouncer {
                remaining: MSGS / 2,
            });
            sim.inject(a, bn, Ping(0));
            sim.run_until_quiet(SimDuration::from_secs(3600));
            assert!(sim.metrics().counter("net.delivered") >= MSGS);
        },
    );

    // The same workload with a structured-event subscriber installed: the
    // delta against `deliver_10k_messages` is the cost of the observer
    // pipeline when someone is listening (with no subscriber the emit path
    // is one branch and the plain bench above must stay unchanged).
    bench(
        "deliver_10k_messages_with_observer",
        MSGS,
        || (),
        |_| {
            let mut sim: Sim<Bouncer> = Sim::new(1, NetConfig::lan());
            sim.add_observer(simnet::EventDigest::new());
            let a = sim.add_node(Bouncer {
                remaining: MSGS / 2,
            });
            let bn = sim.add_node(Bouncer {
                remaining: MSGS / 2,
            });
            sim.inject(a, bn, Ping(0));
            sim.run_until_quiet(SimDuration::from_secs(3600));
            assert!(sim.metrics().counter("net.delivered") >= MSGS);
        },
    );

    bench(
        "fire_100k_timers",
        100_000,
        || (),
        |_| {
            let mut sim: Sim<TimerChurn> = Sim::new(1, NetConfig::lan());
            sim.add_node(TimerChurn);
            sim.run_for(SimDuration::from_secs(1)); // 100k timer fires
        },
    );

    // 1000 rounds × 9 peers of a 1 KiB payload: the per-peer broadcast clone
    // plus the per-delivery enqueue clone.
    const ROUNDS: u64 = 1_000;
    const PEERS: u64 = 9;
    bench(
        "broadcast_1k_payload_9_peers",
        ROUNDS * PEERS,
        || (),
        |_| {
            let mut sim: Sim<Broadcaster> = Sim::new(1, NetConfig::lan());
            let peers: Vec<NodeId> = (1..=PEERS).map(NodeId).collect();
            sim.add_node_with_id(
                NodeId(0),
                Broadcaster {
                    peers: peers.clone(),
                    payload: std::sync::Arc::new(vec![0xAB; 1024]),
                    rounds: ROUNDS,
                },
            );
            for &p in &peers {
                sim.add_node_with_id(
                    p,
                    Broadcaster {
                        peers: vec![],
                        payload: std::sync::Arc::new(vec![]),
                        rounds: 0,
                    },
                );
            }
            sim.run_until_quiet(SimDuration::from_secs(3600));
            assert!(sim.metrics().counter("net.delivered") >= ROUNDS * PEERS);
        },
    );

    // 5000 sends of a 1 KiB payload over a link that duplicates ~90% of
    // them: the duplicate-delivery clone in the event queue.
    const DUP_SENDS: u64 = 5_000;
    bench(
        "duplicate_delivery_1k_payload",
        DUP_SENDS,
        || (),
        |_| {
            let mut net = NetConfig::lan();
            net.duplicate_rate = 0.9;
            let mut sim: Sim<Duplicator> = Sim::new(1, net);
            let sink = NodeId(1);
            sim.add_node_with_id(
                NodeId(0),
                Duplicator {
                    sink,
                    payload: std::sync::Arc::new(vec![0xCD; 1024]),
                    rounds: DUP_SENDS,
                },
            );
            sim.add_node_with_id(
                sink,
                Duplicator {
                    sink: NodeId(0),
                    payload: std::sync::Arc::new(vec![]),
                    rounds: 0,
                },
            );
            sim.run_until_quiet(SimDuration::from_secs(3600));
            assert!(sim.metrics().counter("net.delivered") > DUP_SENDS);
        },
    );
}
