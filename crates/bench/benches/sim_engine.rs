//! Criterion micro-benchmarks of the simulation substrate itself: event
//! throughput and timer churn. These bound how large the experiments can
//! be in wall time.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use simnet::{Actor, Context, Message, NetConfig, NodeId, Sim, SimDuration, Timer};

#[derive(Clone, Debug)]
struct Ping(u64);
impl Message for Ping {
    fn label(&self) -> &'static str {
        "ping"
    }
}

struct Bouncer {
    remaining: u64,
}
impl Actor for Bouncer {
    type Msg = Ping;
    fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, msg: Ping) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(from, Ping(msg.0 + 1));
        }
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_, Ping>, _t: Timer) {}
}

fn bench_message_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine");
    group.sample_size(20);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    const MSGS: u64 = 10_000;
    group.throughput(Throughput::Elements(MSGS));
    group.bench_function("deliver_10k_messages", |b| {
        b.iter(|| {
            let mut sim: Sim<Bouncer> = Sim::new(1, NetConfig::lan());
            let a = sim.add_node(Bouncer { remaining: MSGS / 2 });
            let bn = sim.add_node(Bouncer { remaining: MSGS / 2 });
            sim.inject(a, bn, Ping(0));
            sim.run_until_quiet(SimDuration::from_secs(3600));
            assert!(sim.metrics().counter("net.delivered") >= MSGS);
        });
    });
    group.finish();
}

struct TimerChurn;
impl Actor for TimerChurn {
    type Msg = Ping;
    fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
        ctx.set_timer(SimDuration::from_micros(10), 0);
    }
    fn on_message(&mut self, _ctx: &mut Context<'_, Ping>, _f: NodeId, _m: Ping) {}
    fn on_timer(&mut self, ctx: &mut Context<'_, Ping>, _t: Timer) {
        ctx.set_timer(SimDuration::from_micros(10), 0);
    }
}

fn bench_timer_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine");
    group.sample_size(20);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("fire_100k_timers", |b| {
        b.iter(|| {
            let mut sim: Sim<TimerChurn> = Sim::new(1, NetConfig::lan());
            sim.add_node(TimerChurn);
            sim.run_for(SimDuration::from_secs(1)); // 100k timer fires
        });
    });
    group.finish();
}

criterion_group!(benches, bench_message_throughput, bench_timer_churn);
criterion_main!(benches);
