//! Micro-benchmarks of the sans-I/O Multi-Paxos core: raw
//! propose→accept→commit cycles through an in-memory loopback (no
//! simulator, no clock overhead).

use std::collections::{BTreeMap, VecDeque};

use bench::microbench::bench;
use consensus::{
    Command, Effects, MultiPaxos, PaxosMsg, PaxosTunables, ProposeOutcome, StaticConfig,
};
use rsmr_core::Cmd;
use simnet::wire::Wire;
use simnet::{LogHistogram, Metrics, NodeId, Registry, SimDuration, SimTime};

struct Loop<C: Command> {
    cores: BTreeMap<NodeId, MultiPaxos<C>>,
    inbox: VecDeque<(NodeId, NodeId, PaxosMsg<C>)>,
    now: SimTime,
    /// When set, every step's `Effects::record_stats` lands here — the
    /// telemetry-on configuration; `None` is the zero-subscriber baseline.
    metrics: Option<Metrics>,
}

impl<C: Command> Loop<C> {
    fn new(n: u64) -> Self {
        Self::new_tuned(n, PaxosTunables::default())
    }

    fn recorded(mut self) -> Self {
        self.metrics = Some(Metrics::new());
        self
    }

    fn new_tuned(n: u64, tun: PaxosTunables) -> Self {
        let members: Vec<NodeId> = (0..n).map(NodeId).collect();
        let cfg = StaticConfig::new(members.clone());
        let mut l = Loop {
            cores: members
                .iter()
                .map(|&m| {
                    (
                        m,
                        MultiPaxos::new(m, cfg.clone(), SimTime::ZERO, tun.clone()),
                    )
                })
                .collect(),
            inbox: VecDeque::new(),
            now: SimTime::ZERO,
            metrics: None,
        };
        // Elect a leader.
        while l.leader().is_none() {
            l.now += SimDuration::from_millis(10);
            let ids: Vec<NodeId> = l.cores.keys().copied().collect();
            for id in ids {
                let fx = l.cores.get_mut(&id).unwrap().tick(l.now);
                l.absorb(id, fx);
            }
            l.drain();
        }
        l
    }

    fn absorb(&mut self, from: NodeId, fx: Effects<C>) {
        if let Some(sink) = &mut self.metrics {
            fx.record_stats(sink);
        }
        for (to, m) in fx.outbound {
            self.inbox.push_back((from, to, m));
        }
    }

    fn drain(&mut self) {
        while let Some((from, to, m)) = self.inbox.pop_front() {
            let fx = self
                .cores
                .get_mut(&to)
                .unwrap()
                .on_message(from, m, self.now);
            self.absorb(to, fx);
        }
    }

    fn leader(&self) -> Option<NodeId> {
        self.cores.values().find(|c| c.is_leader()).map(|c| c.me())
    }

    fn commit_one(&mut self, v: C) {
        let l = self.leader().expect("leader");
        let (fx, out) = self.cores.get_mut(&l).unwrap().propose(v, self.now);
        assert_eq!(out, ProposeOutcome::Accepted);
        self.absorb(l, fx);
        self.drain();
    }

    /// Submits a whole burst before draining, the shape batching is built
    /// for: the accumulator fills while earlier slots are in flight, so
    /// consensus rounds are amortized across `max_batch` commands. Ticks
    /// the leader (advancing virtual time past any flush deadline) until
    /// both the accumulator and the in-flight window are empty.
    fn commit_burst(&mut self, vs: Vec<C>) {
        let l = self.leader().expect("leader");
        for v in vs {
            let (fx, out) = self.cores.get_mut(&l).unwrap().propose(v, self.now);
            assert_eq!(out, ProposeOutcome::Accepted);
            self.absorb(l, fx);
        }
        self.drain();
        loop {
            let core = self.cores.get_mut(&l).unwrap();
            if core.accum_len() == 0 && core.inflight_len() == 0 {
                break;
            }
            self.now += SimDuration::from_millis(10);
            let fx = self.cores.get_mut(&l).unwrap().tick(self.now);
            self.absorb(l, fx);
            self.drain();
        }
    }
}

/// A command with a protocol-sized payload, so commit benches exercise the
/// payload-copy path (Accept/Chosen fan-out, log storage, catch-up).
#[derive(Clone, Debug, PartialEq)]
struct Blob(Vec<u8>);

impl Wire for Blob {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Vec::<u8>::decode(buf).map(Blob)
    }
}

impl Command for Blob {
    fn noop() -> Self {
        Blob(Vec::new())
    }
    fn is_noop(&self) -> bool {
        self.0.is_empty()
    }
}

fn main() {
    const BATCH: u64 = 100;
    for n in [3u64, 5, 7] {
        bench(
            &format!("commit_{BATCH}_n{n}"),
            BATCH,
            || Loop::<u64>::new(n),
            |l| {
                for i in 1..=BATCH {
                    l.commit_one(i);
                }
            },
        );
    }

    bench(
        "commit_1000_n3",
        1000,
        || Loop::<u64>::new(3),
        |l| {
            for i in 1..=1000 {
                l.commit_one(i);
            }
        },
    );

    // Same sustained-commit loop, but every command carries a 1 KiB payload:
    // the cost the Arc'd message payloads are meant to collapse.
    bench(
        "commit_100_n5_1k_payload",
        100,
        || Loop::<Blob>::new(5),
        |l| {
            for i in 1..=100u8 {
                l.commit_one(Blob(vec![i; 1024]));
            }
        },
    );

    // Leader-side batching: the same sustained burst through the batch
    // accumulator and pipelined window. These rows use the composed
    // machine's command wrapper (the workspace's only batchable command),
    // so the unbatched row is an apples-to-apples baseline.
    fn app(i: u64) -> Cmd<u64> {
        Cmd::App {
            client: NodeId(100),
            seq: i,
            op: i,
        }
    }
    bench(
        "burst_commit_1000_n3_unbatched",
        1000,
        || Loop::<Cmd<u64>>::new(3),
        |l| l.commit_burst((1..=1000).map(app).collect()),
    );
    for (name, max_batch, window) in [
        ("burst_commit_1000_n3_b64_w8", 64usize, 8usize),
        ("burst_commit_1000_n3_b256_w16", 256, 16),
    ] {
        let tun = PaxosTunables {
            max_batch,
            window,
            max_delay: SimDuration::from_millis(1),
            ..PaxosTunables::default()
        };
        bench(
            name,
            1000,
            move || Loop::<Cmd<u64>>::new_tuned(3, tun.clone()),
            |l| l.commit_burst((1..=1000).map(app).collect()),
        );
    }

    // The telemetry record path on the same burst: every step's
    // `Effects::record_stats` folds batch-size / flush-wait / slot-latency
    // samples into a `Metrics` sink, the way the sim actors and the real
    // runtime do. The acceptance gate is the delta against the unrecorded
    // `burst_commit_1000_n3_b64_w8` row above: < 2% (BENCH_PR7.json keeps
    // the reference numbers). The un-recorded rows double as the
    // no-subscriber baseline — stats land in `Effects` either way, so the
    // only toggleable cost is the sink fold measured here.
    {
        let tun = PaxosTunables {
            max_batch: 64,
            window: 8,
            max_delay: SimDuration::from_millis(1),
            ..PaxosTunables::default()
        };
        bench(
            "burst_commit_1000_n3_b64_w8_recorded",
            1000,
            move || Loop::<Cmd<u64>>::new_tuned(3, tun.clone()).recorded(),
            |l| l.commit_burst((1..=1000).map(app).collect()),
        );
    }

    // The record primitives in isolation, ns/sample: the single-threaded
    // log-scale histogram (sim + loadgen path) and the atomic registry
    // handle (storage/transport threads on the real backend).
    const SAMPLES: u64 = 1_000_000;
    bench(
        "telemetry_log_histogram_record_1m",
        SAMPLES,
        LogHistogram::new,
        |h| {
            for i in 0..SAMPLES {
                h.record(i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 20);
            }
        },
    );
    bench(
        "telemetry_atomic_histogram_record_1m",
        SAMPLES,
        || {
            let reg = Registry::new();
            (reg.histogram("bench.h"), reg)
        },
        |(h, _reg)| {
            for i in 0..SAMPLES {
                h.record(i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 20);
            }
        },
    );
}
