//! Criterion micro-benchmarks of the sans-I/O Multi-Paxos core: raw
//! propose→accept→commit cycles through an in-memory loopback (no
//! simulator, no clock overhead).

use std::collections::{BTreeMap, VecDeque};

use std::time::Duration;

use consensus::{Effects, MultiPaxos, PaxosMsg, PaxosTunables, ProposeOutcome, StaticConfig};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use simnet::{NodeId, SimDuration, SimTime};

struct Loop {
    cores: BTreeMap<NodeId, MultiPaxos<u64>>,
    inbox: VecDeque<(NodeId, NodeId, PaxosMsg<u64>)>,
    now: SimTime,
}

impl Loop {
    fn new(n: u64) -> Self {
        let members: Vec<NodeId> = (0..n).map(NodeId).collect();
        let cfg = StaticConfig::new(members.clone());
        let mut l = Loop {
            cores: members
                .iter()
                .map(|&m| (m, MultiPaxos::new(m, cfg.clone(), SimTime::ZERO, PaxosTunables::default())))
                .collect(),
            inbox: VecDeque::new(),
            now: SimTime::ZERO,
        };
        // Elect a leader.
        while l.leader().is_none() {
            l.now = l.now + SimDuration::from_millis(10);
            let ids: Vec<NodeId> = l.cores.keys().copied().collect();
            for id in ids {
                let fx = l.cores.get_mut(&id).unwrap().tick(l.now);
                l.absorb(id, fx);
            }
            l.drain();
        }
        l
    }

    fn absorb(&mut self, from: NodeId, fx: Effects<u64>) {
        for (to, m) in fx.outbound {
            self.inbox.push_back((from, to, m));
        }
    }

    fn drain(&mut self) {
        while let Some((from, to, m)) = self.inbox.pop_front() {
            let fx = self.cores.get_mut(&to).unwrap().on_message(from, m, self.now);
            self.absorb(to, fx);
        }
    }

    fn leader(&self) -> Option<NodeId> {
        self.cores.values().find(|c| c.is_leader()).map(|c| c.me())
    }

    fn commit_one(&mut self, v: u64) {
        let l = self.leader().expect("leader");
        let (fx, out) = self.cores.get_mut(&l).unwrap().propose(v, self.now);
        assert_eq!(out, ProposeOutcome::Accepted);
        self.absorb(l, fx);
        self.drain();
    }
}

fn bench_commit_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("paxos_core");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    for n in [3u64, 5, 7] {
        group.throughput(Throughput::Elements(1));
        group.bench_function(format!("commit_cycle_n{n}"), |b| {
            b.iter_batched_ref(
                || Loop::new(n),
                |l| l.commit_one(42),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_sustained_commits(c: &mut Criterion) {
    let mut group = c.benchmark_group("paxos_core");
    group.sample_size(20);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    group.throughput(Throughput::Elements(1000));
    group.bench_function("commit_1000_n3", |b| {
        b.iter_batched_ref(
            || Loop::new(3),
            |l| {
                for i in 1..=1000 {
                    l.commit_one(i);
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_commit_cycle, bench_sustained_commits);
criterion_main!(benches);
