//! Tier-1 chaos sweep: every seed in a fixed set expands into a fault
//! schedule (crashes with restart, partitions, degraded links against the
//! leader / transfer donor / joiner) fired across a reconfiguration, and
//! both the composed machine and the raft baseline must stay safe and
//! live. A failing seed prints its one-command replay line.

use bench::experiments::chaos_sweep::{failing_seeds, run_rows, seed_range};
use bench::runner::run;
use bench::sharded::{run_sharded, ShardScenario, ShardSystem};
use bench::{Scenario, SystemKind};
use kvstore::{linearizable, KvStore};
use simnet::{FaultPlan, FaultTarget, SimDuration, SimTime};

#[test]
fn multi_seed_chaos_sweep_holds_safety_and_liveness() {
    let seeds = seed_range(24, 1);
    let rows = run_rows(&seeds);
    let failing = failing_seeds(&rows);
    if !failing.is_empty() {
        for r in rows.iter().filter(|r| !r.passed()) {
            eprintln!(
                "seed {} on {}: completed {}/{}, {} violations, linearizable={}",
                r.seed,
                r.kind.name(),
                r.completed,
                r.expected,
                r.invariant_violations.len(),
                r.linearizable
            );
            for v in &r.invariant_violations {
                eprintln!("  violation: {v}");
            }
            eprintln!("  plan: {}", r.plan);
        }
        for s in &failing {
            eprintln!("replay: cargo run --release -p bench --bin exp_all -- chaos --seeds 1@{s}");
        }
    }
    assert!(
        failing.is_empty(),
        "chaos sweep failed on seeds {failing:?}"
    );
}

/// Batched-leader chaos: the leader crashes while its accumulator and
/// pipelined window are live (clients have been hammering it since t=0
/// with `max_batch=64`, so a flush is always in flight), and the transfer
/// donor is partitioned mid-handoff while the successor's window is open.
/// Safety must hold exactly as in the unbatched runs: a clean invariant
/// observer, a linearizable client history, and every client op completed
/// once the faults heal — batched slots are either chosen (and re-applied
/// from the log on restart) or lost with their clients retrying.
#[test]
fn leader_crash_mid_batch_flush_and_donor_partition_stay_safe() {
    let plan = FaultPlan::new()
        .crash_at(
            SimTime::from_millis(600),
            FaultTarget::CurrentLeader,
            Some(SimDuration::from_millis(400)),
        )
        .partition_at(
            SimTime::from_millis(1_100),
            FaultTarget::TransferDonor,
            SimDuration::from_millis(500),
        );
    let mut sc = Scenario::new(0xBA7C)
        .clients(4)
        .joiners(&[3])
        .batching(64, 1, 8)
        .reconfigure_at(SimTime::from_secs(1), &[0, 1, 2, 3])
        .with_faults(plan)
        .checked()
        .until(SimTime::from_secs(30));
    sc.ops_per_client = Some(400);
    sc.record_history = true;
    let out = run(SystemKind::RsmrBatched, &sc);
    assert_eq!(
        out.invariant_violations,
        Vec::<String>::new(),
        "invariant violations under batched chaos (log: {:?})",
        out.chaos_log
    );
    assert!(
        linearizable(KvStore::new(), &out.histories),
        "batched chaos history not linearizable"
    );
    assert_eq!(
        out.completed,
        4 * 400,
        "client work lost under batched chaos (log: {:?})",
        out.chaos_log
    );
}

/// Sharded fault isolation: crashing the shard-1 transfer donor in the
/// middle of shard 1's reconfiguration must not stall shard 0. The egress
/// cap stretches the state transfer so the crash lands while the donor is
/// actually serving, and the joiner's donor rotation must still finish the
/// step after the restart.
#[test]
fn donor_crash_in_one_shard_does_not_stall_the_others() {
    let plan = FaultPlan::new().crash_at(
        SimTime::from_millis(1_100),
        FaultTarget::TransferDonor,
        Some(SimDuration::from_millis(500)),
    );
    let sc = ShardScenario::new(0xC4A05, 2)
        .until(SimTime::from_secs(5))
        .bandwidth(150_000)
        .reconfigure_group_at(1, SimTime::from_secs(1), &[4, 5, 6])
        .with_faults(plan, 1);
    let out = run_sharded(ShardSystem::Rsmr, &sc);
    assert!(out.run.completed > 0);
    assert_eq!(
        out.per_group_admin[1].len(),
        1,
        "shard 1's reconfiguration must complete despite the donor crash \
         (chaos log: {:?})",
        out.run.chaos_log
    );
    // The untouched shard keeps committing through the whole episode.
    assert_eq!(
        out.group_gap_ms(
            0,
            SimTime::from_millis(500),
            SimTime::from_millis(4_500),
            SimDuration::from_millis(100),
        ),
        0,
        "shard 0 stalled while shard 1 handled a donor crash"
    );
}
