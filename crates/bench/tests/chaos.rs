//! Tier-1 chaos sweep: every seed in a fixed set expands into a fault
//! schedule (crashes with restart, partitions, degraded links against the
//! leader / transfer donor / joiner) fired across a reconfiguration, and
//! both the composed machine and the raft baseline must stay safe and
//! live. A failing seed prints its one-command replay line.

use bench::experiments::chaos_sweep::{failing_seeds, run_rows, seed_range};
use bench::runner::run;
use bench::sharded::{run_sharded, ShardScenario, ShardSystem};
use bench::{Scenario, SystemKind};
use kvstore::{linearizable, KvStore};
use simnet::{FaultPlan, FaultTarget, SimDuration, SimTime};

#[test]
fn multi_seed_chaos_sweep_holds_safety_and_liveness() {
    let seeds = seed_range(24, 1);
    let rows = run_rows(&seeds);
    let failing = failing_seeds(&rows);
    if !failing.is_empty() {
        for r in rows.iter().filter(|r| !r.passed()) {
            eprintln!(
                "seed {} on {}: completed {}/{}, {} violations, linearizable={}",
                r.seed,
                r.kind.name(),
                r.completed,
                r.expected,
                r.invariant_violations.len(),
                r.linearizable
            );
            for v in &r.invariant_violations {
                eprintln!("  violation: {v}");
            }
            eprintln!("  plan: {}", r.plan);
        }
        for s in &failing {
            eprintln!("replay: cargo run --release -p bench --bin exp_all -- chaos --seeds 1@{s}");
        }
    }
    assert!(
        failing.is_empty(),
        "chaos sweep failed on seeds {failing:?}"
    );
}

/// Batched-leader chaos: the leader crashes while its accumulator and
/// pipelined window are live (clients have been hammering it since t=0
/// with `max_batch=64`, so a flush is always in flight), and the transfer
/// donor is partitioned mid-handoff while the successor's window is open.
/// Safety must hold exactly as in the unbatched runs: a clean invariant
/// observer, a linearizable client history, and every client op completed
/// once the faults heal — batched slots are either chosen (and re-applied
/// from the log on restart) or lost with their clients retrying.
#[test]
fn leader_crash_mid_batch_flush_and_donor_partition_stay_safe() {
    let plan = FaultPlan::new()
        .crash_at(
            SimTime::from_millis(600),
            FaultTarget::CurrentLeader,
            Some(SimDuration::from_millis(400)),
        )
        .partition_at(
            SimTime::from_millis(1_100),
            FaultTarget::TransferDonor,
            SimDuration::from_millis(500),
        );
    let mut sc = Scenario::new(0xBA7C)
        .clients(4)
        .joiners(&[3])
        .batching(64, 1, 8)
        .reconfigure_at(SimTime::from_secs(1), &[0, 1, 2, 3])
        .with_faults(plan)
        .checked()
        .until(SimTime::from_secs(30));
    sc.ops_per_client = Some(400);
    sc.record_history = true;
    let out = run(SystemKind::RsmrBatched, &sc);
    assert_eq!(
        out.invariant_violations,
        Vec::<String>::new(),
        "invariant violations under batched chaos (log: {:?})",
        out.chaos_log
    );
    assert!(
        linearizable(KvStore::new(), &out.histories),
        "batched chaos history not linearizable"
    );
    assert_eq!(
        out.completed,
        4 * 400,
        "client work lost under batched chaos (log: {:?})",
        out.chaos_log
    );
}

/// Donor crash in the middle of a chunked stream: the pre-filled state is
/// large enough (and the links slow enough) that the handoff streams tens
/// of 64 KiB chunks, and the donor dies while the joiner's window is in
/// flight. The joiner must rotate to a surviving donor, re-fetch the
/// manifest, and resume from the chunks it already holds — re-requesting
/// only what is missing — and the run must stay safe and live.
#[test]
fn donor_crash_mid_chunk_stream_resumes_missing_chunks() {
    let plan = FaultPlan::new().crash_at(
        SimTime::from_millis(1_400),
        FaultTarget::TransferDonor,
        Some(SimDuration::from_millis(500)),
    );
    let mut sc = Scenario::new(0xC40C)
        .clients(2)
        .joiners(&[3])
        .filler(1_200, 512)
        .bandwidth(400_000)
        .reconfigure_at(SimTime::from_secs(1), &[0, 1, 2, 3])
        .with_faults(plan)
        .checked()
        .until(SimTime::from_secs(30));
    sc.ops_per_client = Some(200);
    sc.record_history = true;
    let out = run(SystemKind::Rsmr, &sc);
    assert_eq!(
        out.invariant_violations,
        Vec::<String>::new(),
        "invariant violations after donor crash mid-chunk (log: {:?})",
        out.chaos_log
    );
    assert!(
        linearizable(KvStore::new(), &out.histories),
        "history not linearizable after donor crash mid-chunk"
    );
    assert_eq!(
        out.completed,
        2 * 200,
        "client work lost (log: {:?})",
        out.chaos_log
    );
    // The crash must actually have landed on a serving donor...
    assert!(
        out.chaos_log.iter().any(|(_, l)| l.contains("crash")),
        "the donor crash never fired: {:?}",
        out.chaos_log
    );
    // ...the transfer streamed in chunks, stalled, rotated, and resumed:
    // at least one chunk was re-requested rather than the whole snapshot.
    assert!(out.metrics.counter("transfer.chunk_bytes") > 0);
    assert!(
        out.metrics.counter("rsmr.transfer_retries") >= 1,
        "joiner never rotated donors"
    );
    assert!(
        out.metrics.counter("transfer.chunks_resent") >= 1,
        "resume re-requested nothing — the stream restarted from scratch?"
    );
    assert!(out.metrics.counter("rsmr.transfers_installed") >= 1);
}

/// A corruption window over the joiner's links while chunks stream: frame
/// corruption is *detected* (CRC) and surfaces as drops and stalls, never
/// as silently applied bytes; duplicated frames exercise the assembly's
/// duplicate handling. Safety and liveness must hold, and the installed
/// state must still produce a linearizable history.
#[test]
fn corrupted_chunk_stream_is_refetched_never_silently_applied() {
    let plan = FaultPlan::new().corrupt_at(
        SimTime::from_millis(1_050),
        FaultTarget::Joiner,
        0.3,
        0.1,
        0.15,
        SimDuration::from_millis(700),
    );
    let mut sc = Scenario::new(0xC0DE)
        .clients(2)
        .joiners(&[3])
        .filler(1_200, 512)
        .bandwidth(400_000)
        .reconfigure_at(SimTime::from_secs(1), &[0, 1, 2, 3])
        .with_faults(plan)
        .checked()
        .until(SimTime::from_secs(30));
    sc.ops_per_client = Some(200);
    sc.record_history = true;
    let out = run(SystemKind::Rsmr, &sc);
    assert_eq!(
        out.invariant_violations,
        Vec::<String>::new(),
        "invariant violations under chunk corruption (log: {:?})",
        out.chaos_log
    );
    assert!(
        linearizable(KvStore::new(), &out.histories),
        "history not linearizable under chunk corruption"
    );
    assert_eq!(out.completed, 2 * 200);
    // The window actually mangled traffic, every mangled frame was caught
    // (nothing corrupt can reach the assembly), and the transfer still
    // completed by re-fetching what was lost.
    assert!(
        out.metrics.counter("net.corrupted") > 0,
        "the corruption window hit no traffic"
    );
    assert_eq!(
        out.metrics.counter("transfer.chunks_corrupt"),
        0,
        "a corrupt chunk passed the frame CRC"
    );
    assert!(out.metrics.counter("rsmr.transfers_installed") >= 1);
}

/// A restarted member rejoins via delta transfer — and then restarts
/// *again* while the rejoin is in progress. The member crashes before the
/// reconfiguration and stays down past `retire_grace`, so the survivors
/// have retired the old epoch by the time it returns: local log replay is
/// impossible and the only way back is a transfer. Having recovered an
/// anchored base, it advertises its watermark and receives a *delta*; the
/// second crash (timed into the stash-aging + delta window) must not
/// corrupt the resume state. The run must end with every member anchored,
/// history linearizable, and the delta path actually exercised (delta
/// bytes moved, strictly fewer than the full snapshot).
#[test]
fn member_restart_mid_delta_transfer_stays_safe() {
    let plan = FaultPlan::new()
        .crash_at(
            SimTime::from_millis(600),
            FaultTarget::ServerIdx(2),
            Some(SimDuration::from_millis(2_600)),
        )
        .crash_at(
            SimTime::from_millis(3_450),
            FaultTarget::ServerIdx(2),
            Some(SimDuration::from_millis(400)),
        );
    let mut sc = Scenario::new(0xDE17A)
        .clients(2)
        .joiners(&[3])
        .filler(1_200, 512)
        .bandwidth(400_000)
        .reconfigure_at(SimTime::from_secs(1), &[0, 1, 2, 3])
        .with_faults(plan)
        .checked()
        .until(SimTime::from_secs(30));
    sc.ops_per_client = Some(200);
    sc.record_history = true;
    let out = run(SystemKind::Rsmr, &sc);
    assert_eq!(
        out.invariant_violations,
        Vec::<String>::new(),
        "invariant violations across restart-mid-delta (log: {:?})",
        out.chaos_log
    );
    assert!(
        linearizable(KvStore::new(), &out.histories),
        "history not linearizable across restart-mid-delta"
    );
    assert_eq!(
        out.completed,
        2 * 200,
        "client work lost (log: {:?})",
        out.chaos_log
    );
    let delta = out.metrics.counter("transfer.delta_chunk_bytes");
    let all_chunks = out.metrics.counter("transfer.chunk_bytes");
    assert!(
        delta > 0,
        "the rejoiner never took the delta path (chunks: {all_chunks}, log: {:?})",
        out.chaos_log
    );
    assert!(
        delta < all_chunks,
        "delta bytes ({delta}) should be a strict subset of all chunk bytes ({all_chunks})"
    );
    // Both the fresh joiner (full) and the rejoiner (delta) installed.
    assert!(out.metrics.counter("rsmr.transfers_installed") >= 2);
}

/// Sharded fault isolation: crashing the shard-1 transfer donor in the
/// middle of shard 1's reconfiguration must not stall shard 0. The egress
/// cap stretches the state transfer so the crash lands while the donor is
/// actually serving, and the joiner's donor rotation must still finish the
/// step after the restart.
#[test]
fn donor_crash_in_one_shard_does_not_stall_the_others() {
    let plan = FaultPlan::new().crash_at(
        SimTime::from_millis(1_100),
        FaultTarget::TransferDonor,
        Some(SimDuration::from_millis(500)),
    );
    let sc = ShardScenario::new(0xC4A05, 2)
        .until(SimTime::from_secs(5))
        .bandwidth(150_000)
        .reconfigure_group_at(1, SimTime::from_secs(1), &[4, 5, 6])
        .with_faults(plan, 1);
    let out = run_sharded(ShardSystem::Rsmr, &sc);
    assert!(out.run.completed > 0);
    assert_eq!(
        out.per_group_admin[1].len(),
        1,
        "shard 1's reconfiguration must complete despite the donor crash \
         (chaos log: {:?})",
        out.run.chaos_log
    );
    // The untouched shard keeps committing through the whole episode.
    assert_eq!(
        out.group_gap_ms(
            0,
            SimTime::from_millis(500),
            SimTime::from_millis(4_500),
            SimDuration::from_millis(100),
        ),
        0,
        "shard 0 stalled while shard 1 handled a donor crash"
    );
}
