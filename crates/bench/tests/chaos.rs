//! Tier-1 chaos sweep: every seed in a fixed set expands into a fault
//! schedule (crashes with restart, partitions, degraded links against the
//! leader / transfer donor / joiner) fired across a reconfiguration, and
//! both the composed machine and the raft baseline must stay safe and
//! live. A failing seed prints its one-command replay line.

use bench::experiments::chaos_sweep::{failing_seeds, run_rows, seed_range};

#[test]
fn multi_seed_chaos_sweep_holds_safety_and_liveness() {
    let seeds = seed_range(24, 1);
    let rows = run_rows(&seeds);
    let failing = failing_seeds(&rows);
    if !failing.is_empty() {
        for r in rows.iter().filter(|r| !r.passed()) {
            eprintln!(
                "seed {} on {}: completed {}/{}, {} violations, linearizable={}",
                r.seed,
                r.kind.name(),
                r.completed,
                r.expected,
                r.invariant_violations.len(),
                r.linearizable
            );
            for v in &r.invariant_violations {
                eprintln!("  violation: {v}");
            }
            eprintln!("  plan: {}", r.plan);
        }
        for s in &failing {
            eprintln!("replay: cargo run --release -p bench --bin exp_all -- chaos --seeds 1@{s}");
        }
    }
    assert!(
        failing.is_empty(),
        "chaos sweep failed on seeds {failing:?}"
    );
}
