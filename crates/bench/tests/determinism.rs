//! Same-seed determinism regression tests.
//!
//! The perf work on the hot path (shared `Arc` payloads, the dense slot
//! table, `'static` metric keys, the parallel experiment driver) is only
//! admissible because it provably does not change simulation outcomes. These
//! tests pin that down: a scenario is a pure function of its seed, so two
//! runs must agree *bit for bit* — same metrics fingerprint, same event
//! trace digest — whether they execute serially or on worker threads.

use bench::runner::{run, run_many, Scenario, SystemKind};
use bench::sharded::{run_sharded, run_split, ShardScenario, ShardSystem};
use simnet::{ChaosGen, FaultPlan, FaultTarget, SimDuration, SimTime};

/// A mid-size scenario exercising every hot path at once: elections,
/// steady-state commits, a reconfiguration with a joiner, and client
/// histories.
fn scenario() -> Scenario {
    let mut sc = Scenario::new(0xD37E_2817)
        .servers(5)
        .clients(4)
        .joiners(&[5])
        .reconfigure_at(SimTime::from_secs(1), &[0, 1, 2, 3, 5])
        .until(SimTime::from_secs(2))
        .with_events();
    sc.record_trace = true;
    sc
}

/// Systems covered by the determinism check (all of them).
const SYSTEMS: [SystemKind; 6] = [
    SystemKind::Static,
    SystemKind::Rsmr,
    SystemKind::RsmrNoSpec,
    SystemKind::RsmrBatched,
    SystemKind::Stw,
    SystemKind::Raft,
];

#[test]
fn same_seed_same_fingerprint_and_trace() {
    for kind in SYSTEMS {
        let sc = scenario();
        let a = run(kind, &sc);
        let b = run(kind, &sc);
        assert!(a.completed > 0, "{}: no completed ops", kind.name());
        assert_ne!(a.trace_digest, 0, "{}: trace not recorded", kind.name());
        assert_eq!(
            a.metrics_fingerprint(),
            b.metrics_fingerprint(),
            "{}: metrics diverge across same-seed runs",
            kind.name()
        );
        assert_eq!(
            a.trace_digest,
            b.trace_digest,
            "{}: event traces diverge across same-seed runs",
            kind.name()
        );
        assert!(
            a.event_count > 0,
            "{}: no structured events recorded",
            kind.name()
        );
        assert_eq!(
            (a.event_digest, a.event_count),
            (b.event_digest, b.event_count),
            "{}: structured event streams diverge across same-seed runs",
            kind.name()
        );
    }
}

#[test]
fn parallel_driver_matches_serial_runs() {
    let serial: Vec<_> = SYSTEMS.iter().map(|&k| run(k, &scenario())).collect();
    let jobs: Vec<(SystemKind, Scenario)> = SYSTEMS.iter().map(|&k| (k, scenario())).collect();
    let parallel = run_many(jobs);
    assert_eq!(serial.len(), parallel.len());
    for ((kind, s), p) in SYSTEMS.iter().zip(&serial).zip(&parallel) {
        assert_eq!(
            s.metrics_fingerprint(),
            p.metrics_fingerprint(),
            "{}: parallel driver changed the metrics",
            kind.name()
        );
        assert_eq!(
            s.trace_digest,
            p.trace_digest,
            "{}: parallel driver changed the event order",
            kind.name()
        );
        assert_eq!(
            s.event_digest,
            p.event_digest,
            "{}: parallel driver changed the structured event stream",
            kind.name()
        );
        // The rendered telemetry snapshot (counters, labels, histogram
        // summaries incl. the log-scale record histograms, timelines) must
        // be byte-identical, not merely fingerprint-equal: this is the
        // JSON that flows into artifacts and the live `/metrics` path.
        assert_eq!(
            s.metrics.snapshot().to_json(),
            p.metrics.snapshot().to_json(),
            "{}: telemetry snapshots diverge between serial and parallel runs",
            kind.name()
        );
        assert_eq!(s.completed, p.completed);
    }
}

/// The scenario above, plus a seeded fault schedule (crashes with restart,
/// partitions, degraded links against role targets). Chaos must not cost
/// determinism: the driver resolves roles and rebuilds actors at fixed
/// points in virtual time, so it is as replayable as the fault-free path.
fn chaos_scenario() -> Scenario {
    let plan =
        ChaosGen::new(0xFA17).sample(SimTime::from_millis(300), SimTime::from_millis(1_500), 3);
    let mut sc = scenario().with_faults(plan).checked();
    sc.record_trace = true;
    sc
}

#[test]
fn chaos_runs_are_deterministic_serial_and_parallel() {
    let serial: Vec<_> = SYSTEMS.iter().map(|&k| run(k, &chaos_scenario())).collect();
    let jobs: Vec<(SystemKind, Scenario)> =
        SYSTEMS.iter().map(|&k| (k, chaos_scenario())).collect();
    let parallel = run_many(jobs);
    for ((kind, s), p) in SYSTEMS.iter().zip(&serial).zip(&parallel) {
        assert!(
            !s.chaos_log.is_empty(),
            "{}: the fault plan never fired",
            kind.name()
        );
        assert_eq!(
            s.chaos_log,
            p.chaos_log,
            "{}: applied faults diverge between serial and parallel runs",
            kind.name()
        );
        assert_eq!(
            (s.event_digest, s.event_count),
            (p.event_digest, p.event_count),
            "{}: chaos event streams diverge between serial and parallel runs",
            kind.name()
        );
        assert_eq!(
            s.metrics_fingerprint(),
            p.metrics_fingerprint(),
            "{}: chaos metrics diverge between serial and parallel runs",
            kind.name()
        );
        assert_eq!(s.completed, p.completed, "{}", kind.name());
    }
}

/// Pre-filled state, a fresh joiner *and* a member restart: one run that
/// exercises the full chunked-stream path (manifest, windowed chunk
/// fetch) and the rejoin delta path (watermark advertise, delta chunks)
/// under a fault plan. The new transfer layer must be as deterministic
/// as everything else — byte-identical metrics, events and applied-fault
/// log whether the run executes serially or on the worker pool.
fn transfer_scenario() -> Scenario {
    // The member stays down past `retire_grace`, so when it returns the
    // survivors have retired its epoch and the only way back is a
    // transfer — a *delta* one, since it recovers an anchored base.
    let plan = FaultPlan::new().crash_at(
        SimTime::from_millis(600),
        FaultTarget::ServerIdx(2),
        Some(SimDuration::from_millis(2_600)),
    );
    let mut sc = Scenario::new(0xC0A57)
        .clients(2)
        .joiners(&[3])
        .filler(1_200, 512)
        .bandwidth(400_000)
        .reconfigure_at(SimTime::from_secs(1), &[0, 1, 2, 3])
        .with_faults(plan)
        .checked()
        .until(SimTime::from_secs(10))
        .with_events();
    sc.ops_per_client = Some(100);
    sc.record_trace = true;
    sc
}

#[test]
fn chunked_and_delta_transfers_are_deterministic_serial_and_parallel() {
    let kinds = [SystemKind::Rsmr, SystemKind::RsmrBatched];
    let serial: Vec<_> = kinds
        .iter()
        .map(|&k| run(k, &transfer_scenario()))
        .collect();
    let jobs: Vec<(SystemKind, Scenario)> =
        kinds.iter().map(|&k| (k, transfer_scenario())).collect();
    let parallel = run_many(jobs);
    for ((kind, s), p) in kinds.iter().zip(&serial).zip(&parallel) {
        // The paths under test actually ran: chunks streamed to the fresh
        // joiner, and the restarted member came back over the delta path.
        assert!(
            s.metrics.counter("transfer.chunk_bytes") > 0,
            "{}: no chunked transfer happened",
            kind.name()
        );
        assert!(
            s.metrics.counter("transfer.delta_chunk_bytes") > 0,
            "{}: the rejoiner never took the delta path (log: {:?})",
            kind.name(),
            s.chaos_log
        );
        assert!(
            !s.chaos_log.is_empty(),
            "{}: the restart plan never fired",
            kind.name()
        );
        assert_eq!(
            s.chaos_log,
            p.chaos_log,
            "{}: applied faults diverge between serial and parallel runs",
            kind.name()
        );
        assert_eq!(
            s.metrics_fingerprint(),
            p.metrics_fingerprint(),
            "{}: transfer metrics diverge between serial and parallel runs",
            kind.name()
        );
        assert_eq!(
            (s.trace_digest, s.event_digest, s.event_count),
            (p.trace_digest, p.event_digest, p.event_count),
            "{}: transfer event streams diverge between serial and parallel runs",
            kind.name()
        );
        assert_eq!(
            s.metrics.snapshot().to_json(),
            p.metrics.snapshot().to_json(),
            "{}: telemetry snapshots diverge between serial and parallel runs",
            kind.name()
        );
        assert_eq!(s.completed, p.completed, "{}", kind.name());
    }
}

#[test]
fn jsonl_artifacts_are_byte_identical_across_runs() {
    // The artifact path must be as deterministic as the simulations
    // beneath it: same experiment, same mode ⇒ the same bytes. E3 is the
    // interesting one — its table includes spans-derived columns, so this
    // also pins the observer pipeline end to end.
    let a = bench::experiments::run_structured("e3", true).expect("e3 exists");
    let b = bench::experiments::run_structured("e3", true).expect("e3 exists");
    assert_eq!(a.rendered, b.rendered, "rendered output diverges");
    assert_eq!(
        a.to_jsonl("e3", true),
        b.to_jsonl("e3", true),
        "JSONL artifacts diverge across same-seed runs"
    );
    assert!(!a.tables.is_empty());
    assert!(a.to_jsonl("e3", true).lines().count() > a.tables.len());
}

/// A coupled sharded scenario exercising the multi-group hot paths:
/// two epoch chains on the shared pool, capped egress, a rolling
/// reconfiguration of every shard, traces and structured events on.
fn sharded_scenario() -> ShardScenario {
    ShardScenario::new(0x5AADD37, 2)
        .until(SimTime::from_secs(3))
        .bandwidth(150_000)
        .rolling(SimTime::from_secs(1), SimDuration::from_millis(400))
        .with_events()
        .with_trace()
}

#[test]
fn sharded_coupled_runs_are_deterministic() {
    for kind in [ShardSystem::Rsmr, ShardSystem::Stw] {
        let sc = sharded_scenario();
        let a = run_sharded(kind, &sc);
        let b = run_sharded(kind, &sc);
        assert!(a.run.completed > 0, "{}: no completed ops", kind.name());
        assert_ne!(a.run.trace_digest, 0, "{}: trace not recorded", kind.name());
        assert_eq!(
            a.run.metrics_fingerprint(),
            b.run.metrics_fingerprint(),
            "{}: sharded metrics diverge across same-seed runs",
            kind.name()
        );
        assert_eq!(
            (a.run.trace_digest, a.run.event_digest, a.run.event_count),
            (b.run.trace_digest, b.run.event_digest, b.run.event_count),
            "{}: sharded event streams diverge across same-seed runs",
            kind.name()
        );
        assert_eq!(
            a.per_group_completed,
            b.per_group_completed,
            "{}",
            kind.name()
        );
        assert_eq!(a.per_group_admin, b.per_group_admin, "{}", kind.name());
    }
}

#[test]
fn sharded_split_driver_matches_serial_execution() {
    // Group independence is what licenses the parallel split driver; the
    // merged digest folds per-group metrics fingerprints, trace digests
    // and structured-event digests, so any cross-thread nondeterminism
    // would surface here.
    let sc = ShardScenario::new(0x5AAD5911, 4).until(SimTime::from_secs(2));
    let serial = run_split(&sc, false);
    let parallel = run_split(&sc, true);
    assert!(serial.completed > 0);
    assert_eq!(
        serial.digest, parallel.digest,
        "split-driver digest diverges between serial and parallel group execution"
    );
    assert_eq!(serial.per_group_completed, parallel.per_group_completed);
}

#[test]
fn e11_jsonl_artifact_is_byte_identical_across_runs() {
    // E11 runs coupled simulations on scoped threads *and* the split
    // driver on the worker pool — the artifact must still be a pure
    // function of the build.
    let a = bench::experiments::run_structured("e11", true).expect("e11 exists");
    let b = bench::experiments::run_structured("e11", true).expect("e11 exists");
    assert_eq!(a.rendered, b.rendered, "rendered output diverges");
    assert_eq!(
        a.to_jsonl("e11", true),
        b.to_jsonl("e11", true),
        "E11 JSONL artifacts diverge across same-seed runs"
    );
    assert_eq!(a.tables.len(), 3);
}

#[test]
fn different_seeds_actually_differ() {
    // Guard against a degenerate fingerprint (e.g. hashing nothing): two
    // different seeds must not collide on both digests.
    let a = run(SystemKind::Rsmr, &scenario());
    let mut sc = scenario();
    sc.seed ^= 0x5EED;
    let b = run(SystemKind::Rsmr, &sc);
    assert!(
        a.metrics_fingerprint() != b.metrics_fingerprint() || a.trace_digest != b.trace_digest,
        "different seeds produced identical fingerprints and traces"
    );
}

/// Coverage-guided chaos candidates must be as replayable as plain seeds:
/// the same parent seed and mutation index always derive the *identical*
/// child fault plan, a printed lineage parses back to the same plan, and
/// permutations never leak into the plan itself (they only pin delivery
/// orders).
#[test]
fn mutated_chaos_plans_are_deterministic_and_replayable() {
    use simnet::PlanLineage;
    let from = SimTime::from_millis(200);
    let until = SimTime::from_millis(1_500);
    for base in [1u64, 0xFA17, 0xDEAD_BEEF] {
        for m in 0u32..6 {
            let a = PlanLineage::seed(base).child(m).materialize(from, until, 3);
            let b = PlanLineage::seed(base).child(m).materialize(from, until, 3);
            assert_eq!(
                a, b,
                "base {base:#x} mutation {m}: child plans diverge across \
                 materializations"
            );
        }
        // Distinct mutation indices must actually explore: at least one
        // neighbouring pair differs (mutations include no-op-prone jitter,
        // so only a fully-constant chain would be a bug).
        let plans: Vec<_> = (0u32..6)
            .map(|m| {
                PlanLineage::seed(base)
                    .child(m)
                    .materialize(from, until, 3)
                    .describe()
            })
            .collect();
        assert!(
            plans.windows(2).any(|w| w[0] != w[1]),
            "base {base:#x}: six different mutations produced identical plans"
        );
    }
    // The printed replay key is the whole identity: parse(to_string)
    // rebuilds the same lineage and the same plan, perm included.
    let lineage = PlanLineage::seed(0xFA17).child(3).child(12).with_perm(5);
    let parsed = PlanLineage::parse(&lineage.to_string()).expect("lineage parses");
    assert_eq!(parsed, lineage);
    assert_eq!(
        parsed.materialize(from, until, 3),
        lineage.materialize(from, until, 3),
        "replayed lineage materializes a different plan"
    );
    assert_eq!(
        lineage.materialize(from, until, 3),
        lineage.with_perm(19).materialize(from, until, 3),
        "the delivery-order permutation must not change the fault plan"
    );
}

/// The whole coverage comparison — candidate schedule, runs fanned across
/// the worker pool, novelty accounting — is a pure function of
/// `(budget, base)`: two invocations agree on every per-run novelty count,
/// the corpus, and both arms' unique-coverage totals.
#[test]
fn coverage_comparison_is_deterministic_run_to_run() {
    use bench::experiments::chaos_sweep::run_coverage;
    let a = run_coverage(3, 1);
    let b = run_coverage(3, 1);
    let key = |r: &bench::experiments::chaos_sweep::CoverageReport| {
        (
            r.uniform_prefixes,
            r.uniform_signatures,
            r.guided_prefixes,
            r.guided_signatures,
            r.corpus.iter().map(|l| l.to_string()).collect::<Vec<_>>(),
            r.rows
                .iter()
                .map(|row| (row.lineage.to_string(), row.novel, row.signature))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(key(&a), key(&b), "coverage comparison diverges across runs");
    assert!(
        a.rows.iter().all(|r| r.checkpoints > 0),
        "a coverage run recorded no digest-prefix checkpoints"
    );
}
