//! Same-seed determinism regression tests.
//!
//! The perf work on the hot path (shared `Arc` payloads, the dense slot
//! table, `'static` metric keys, the parallel experiment driver) is only
//! admissible because it provably does not change simulation outcomes. These
//! tests pin that down: a scenario is a pure function of its seed, so two
//! runs must agree *bit for bit* — same metrics fingerprint, same event
//! trace digest — whether they execute serially or on worker threads.

use bench::runner::{run, run_many, Scenario, SystemKind};
use simnet::SimTime;

/// A mid-size scenario exercising every hot path at once: elections,
/// steady-state commits, a reconfiguration with a joiner, and client
/// histories.
fn scenario() -> Scenario {
    let mut sc = Scenario::new(0xD37E_2817)
        .servers(5)
        .clients(4)
        .joiners(&[5])
        .reconfigure_at(SimTime::from_secs(1), &[0, 1, 2, 3, 5])
        .until(SimTime::from_secs(2));
    sc.record_trace = true;
    sc
}

/// Systems covered by the determinism check (all of them).
const SYSTEMS: [SystemKind; 6] = [
    SystemKind::Static,
    SystemKind::Rsmr,
    SystemKind::RsmrNoSpec,
    SystemKind::RsmrBatched,
    SystemKind::Stw,
    SystemKind::Raft,
];

#[test]
fn same_seed_same_fingerprint_and_trace() {
    for kind in SYSTEMS {
        let sc = scenario();
        let a = run(kind, &sc);
        let b = run(kind, &sc);
        assert!(a.completed > 0, "{}: no completed ops", kind.name());
        assert_ne!(a.trace_digest, 0, "{}: trace not recorded", kind.name());
        assert_eq!(
            a.metrics_fingerprint(),
            b.metrics_fingerprint(),
            "{}: metrics diverge across same-seed runs",
            kind.name()
        );
        assert_eq!(
            a.trace_digest,
            b.trace_digest,
            "{}: event traces diverge across same-seed runs",
            kind.name()
        );
    }
}

#[test]
fn parallel_driver_matches_serial_runs() {
    let serial: Vec<_> = SYSTEMS.iter().map(|&k| run(k, &scenario())).collect();
    let jobs: Vec<(SystemKind, Scenario)> = SYSTEMS.iter().map(|&k| (k, scenario())).collect();
    let parallel = run_many(jobs);
    assert_eq!(serial.len(), parallel.len());
    for ((kind, s), p) in SYSTEMS.iter().zip(&serial).zip(&parallel) {
        assert_eq!(
            s.metrics_fingerprint(),
            p.metrics_fingerprint(),
            "{}: parallel driver changed the metrics",
            kind.name()
        );
        assert_eq!(
            s.trace_digest,
            p.trace_digest,
            "{}: parallel driver changed the event order",
            kind.name()
        );
        assert_eq!(s.completed, p.completed);
    }
}

#[test]
fn different_seeds_actually_differ() {
    // Guard against a degenerate fingerprint (e.g. hashing nothing): two
    // different seeds must not collide on both digests.
    let a = run(SystemKind::Rsmr, &scenario());
    let mut sc = scenario();
    sc.seed ^= 0x5EED;
    let b = run(SystemKind::Rsmr, &sc);
    assert!(
        a.metrics_fingerprint() != b.metrics_fingerprint() || a.trace_digest != b.trace_digest,
        "different seeds produced identical fingerprints and traces"
    );
}
