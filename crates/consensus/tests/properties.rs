//! Property-style tests for the consensus building block.
//!
//! * Single-decree synod: agreement and validity hold under arbitrary
//!   message schedules, drops and duplications.
//! * Multi-Paxos: replicas never disagree on a chosen slot, across random
//!   fault schedules (crashes with recovery, lossy links).
//!
//! Schedules are generated from a seeded [`SimRng`]; every failure is
//! reproducible from the fixed seed.

use std::collections::BTreeMap;

use consensus::actor::{ReplicaActor, SmrClient, SmrMsg, TaggedCmd};
use consensus::single_decree::{Acceptor, Proposer, SynodMsg};
use consensus::{Ballot, MultiPaxos, PaxosTunables, StaticConfig};
use simnet::{Actor, Context, NetConfig, NodeId, Sim, SimDuration, SimRng, Timer};

// ---------------------------------------------------------------------------
// Single-decree synod under adversarial schedules
// ---------------------------------------------------------------------------

/// A randomly chosen network step.
#[derive(Clone, Debug)]
enum Step {
    /// Deliver the i-th queued message (modulo queue length).
    Deliver(usize),
    /// Drop the i-th queued message.
    Drop(usize),
    /// Duplicate the i-th queued message.
    Duplicate(usize),
    /// Proposer `p` (mod #proposers) starts a new round.
    Restart(usize),
}

fn random_step(gen: &mut SimRng) -> Step {
    // Deliveries weighted 4:1 against each fault kind, as in the original
    // proptest strategy.
    match gen.gen_range(0u32..7) {
        0..=3 => Step::Deliver(gen.gen_range(0usize..64)),
        4 => Step::Drop(gen.gen_range(0usize..64)),
        5 => Step::Duplicate(gen.gen_range(0usize..64)),
        _ => Step::Restart(gen.gen_range(0usize..8)),
    }
}

/// One in-flight synod message: (to_acceptor?, proposer, acceptor, msg).
#[derive(Clone, Debug)]
struct InFlight {
    proposer: usize,
    acceptor: usize,
    to_acceptor: bool,
    msg: SynodMsg<u32>,
}

/// Agreement & validity: no matter the schedule, all decided values are
/// equal, and are one of the initially proposed values.
#[test]
fn synod_agreement_under_arbitrary_schedules() {
    let mut gen = SimRng::seed_from_u64(0x5151);
    for case in 0..256 {
        let steps: Vec<Step> = {
            let n = gen.gen_range(1usize..200);
            (0..n).map(|_| random_step(&mut gen)).collect()
        };
        let n_acceptors = gen.gen_range(1usize..=5);
        let n_proposers = gen.gen_range(1usize..=3);

        let mut acceptors: Vec<Acceptor<u32>> = (0..n_acceptors).map(|_| Acceptor::new()).collect();
        let proposed: Vec<u32> = (0..n_proposers as u32).map(|i| 100 + i).collect();
        let mut proposers: Vec<Proposer<u32>> = proposed
            .iter()
            .enumerate()
            .map(|(i, &v)| Proposer::new(NodeId(i as u64), n_acceptors, v))
            .collect();
        let mut queue: Vec<InFlight> = Vec::new();
        let mut decided: Vec<u32> = Vec::new();

        // Everyone starts a first round.
        for (p, prop) in proposers.iter_mut().enumerate() {
            let msg = prop.start_round(Ballot::ZERO);
            for a in 0..n_acceptors {
                queue.push(InFlight {
                    proposer: p,
                    acceptor: a,
                    to_acceptor: true,
                    msg: msg.clone(),
                });
            }
        }

        for step in steps {
            match step {
                Step::Drop(i) => {
                    if !queue.is_empty() {
                        queue.remove(i % queue.len());
                    }
                }
                Step::Duplicate(i) => {
                    if !queue.is_empty() {
                        let m = queue[i % queue.len()].clone();
                        queue.push(m);
                    }
                }
                Step::Restart(p) => {
                    let p = p % n_proposers;
                    let above = proposers[p].ballot();
                    let msg = proposers[p].start_round(above);
                    for a in 0..n_acceptors {
                        queue.push(InFlight {
                            proposer: p,
                            acceptor: a,
                            to_acceptor: true,
                            msg: msg.clone(),
                        });
                    }
                }
                Step::Deliver(i) => {
                    if queue.is_empty() {
                        continue;
                    }
                    let m = queue.remove(i % queue.len());
                    if m.to_acceptor {
                        let reply = match m.msg {
                            SynodMsg::Prepare(b) => Some(acceptors[m.acceptor].on_prepare(b)),
                            SynodMsg::Accept(b, v) => Some(acceptors[m.acceptor].on_accept(b, v)),
                            _ => None,
                        };
                        if let Some(reply) = reply {
                            queue.push(InFlight {
                                proposer: m.proposer,
                                acceptor: m.acceptor,
                                to_acceptor: false,
                                msg: reply,
                            });
                        }
                    } else {
                        let p = &mut proposers[m.proposer];
                        let from = NodeId(m.acceptor as u64);
                        match m.msg {
                            SynodMsg::Promise(b, prev) => {
                                if let Some(accept) = p.on_promise(from, b, prev) {
                                    for a in 0..n_acceptors {
                                        queue.push(InFlight {
                                            proposer: m.proposer,
                                            acceptor: a,
                                            to_acceptor: true,
                                            msg: accept.clone(),
                                        });
                                    }
                                }
                            }
                            SynodMsg::Accepted(b) => {
                                if let Some(v) = p.on_accepted(from, b) {
                                    decided.push(v);
                                }
                            }
                            SynodMsg::Nack(promised) => {
                                let _ = p.on_nack(promised);
                            }
                            _ => {}
                        }
                    }
                }
            }
        }

        // Validity: every decision is a proposed value.
        for d in &decided {
            assert!(
                proposed.contains(d),
                "case {case}: decided {d} was never proposed"
            );
        }
        // Agreement: all decisions are equal.
        if let Some(first) = decided.first() {
            for d in &decided {
                assert_eq!(d, first, "case {case}: two different values decided");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Multi-Paxos log safety under faults, via simnet
// ---------------------------------------------------------------------------

#[allow(clippy::large_enum_variant)] // one value per node, stored once
enum Node {
    Replica(ReplicaActor<u64>),
    Client(SmrClient<u64>),
}

impl Actor for Node {
    type Msg = SmrMsg<u64>;
    fn on_start(&mut self, ctx: &mut Context<'_, SmrMsg<u64>>) {
        match self {
            Node::Replica(r) => r.on_start(ctx),
            Node::Client(c) => c.on_start(ctx),
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_, SmrMsg<u64>>, from: NodeId, msg: SmrMsg<u64>) {
        match self {
            Node::Replica(r) => r.on_message(ctx, from, msg),
            Node::Client(c) => c.on_message(ctx, from, msg),
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, SmrMsg<u64>>, timer: Timer) {
        match self {
            Node::Replica(r) => r.on_timer(ctx, timer),
            Node::Client(c) => c.on_timer(ctx, timer),
        }
    }
}

fn chosen_logs(
    sim: &Sim<Node>,
    servers: &[NodeId],
) -> BTreeMap<NodeId, Vec<(u64, TaggedCmd<u64>)>> {
    let mut out = BTreeMap::new();
    for &s in servers {
        if let Some(Node::Replica(r)) = sim.actor(s) {
            let core: &MultiPaxos<TaggedCmd<u64>> = r.core();
            let mut log = Vec::new();
            for i in 0..core.chosen_upto().0 {
                log.push((
                    i,
                    core.chosen_entry(consensus::Slot(i))
                        .expect("contiguous")
                        .clone(),
                ));
            }
            out.insert(s, log);
        }
    }
    out
}

/// Under random loss and a random mid-run crash+recovery, no two replicas
/// ever disagree on a chosen slot, and the surviving majority still serves
/// clients.
#[test]
fn multipaxos_logs_never_diverge_under_faults() {
    let mut gen = SimRng::seed_from_u64(0xFA175);
    for case in 0..24 {
        let seed = gen.gen_range(0u64..10_000);
        let drop_permille = gen.gen_range(0u64..150);
        let crash_victim = gen.gen_range(0u64..3);
        let crash_at_ms = gen.gen_range(100u64..1_500);

        let drop_rate = drop_permille as f64 / 1000.0;
        let mut sim: Sim<Node> = Sim::new(seed, NetConfig::lossy(drop_rate));
        let servers: Vec<NodeId> = (0..3).map(NodeId).collect();
        let cfg = StaticConfig::new(servers.clone());
        for &s in &servers {
            sim.add_node_with_id(
                s,
                Node::Replica(ReplicaActor::new(s, cfg.clone(), PaxosTunables::default())),
            );
        }
        let client = NodeId(100);
        sim.add_node_with_id(
            client,
            Node::Client(SmrClient::new(servers.clone(), |i| i + 1, Some(150))),
        );

        let victim = NodeId(crash_victim);
        sim.run_for(SimDuration::from_millis(crash_at_ms));
        sim.crash(victim);
        sim.run_for(SimDuration::from_secs(3));
        let recovered = ReplicaActor::recover(
            victim,
            cfg.clone(),
            PaxosTunables::default(),
            sim.storage(victim),
        );
        sim.restart(victim, Node::Replica(recovered));
        sim.run_for(SimDuration::from_secs(45));

        // Safety: pairwise log agreement on the common prefix.
        let logs = chosen_logs(&sim, &servers);
        let vals: Vec<&Vec<(u64, TaggedCmd<u64>)>> = logs.values().collect();
        for i in 0..vals.len() {
            for j in (i + 1)..vals.len() {
                let n = vals[i].len().min(vals[j].len());
                assert_eq!(
                    &vals[i][..n],
                    &vals[j][..n],
                    "case {case}: chosen logs diverge"
                );
            }
        }

        // Liveness (moderate loss only): the client finishes its workload.
        if drop_rate < 0.05 {
            let done = match sim.actor(client) {
                Some(Node::Client(c)) => c.completed(),
                _ => 0,
            };
            assert_eq!(
                done, 150,
                "case {case}: client starved under benign conditions"
            );
        }
    }
}
