//! The fixed membership of one static SMR instance.

use std::fmt;

use simnet::wire::Wire;
use simnet::NodeId;

/// The (immutable) configuration of a static SMR instance: a set of members
/// with majority quorums.
///
/// This type is deliberately frozen — the building block has no way to
/// change it. Reconfiguration lives entirely in the composition layer, which
/// replaces whole instances.
///
/// ```
/// use consensus::StaticConfig;
/// use simnet::NodeId;
/// let cfg = StaticConfig::new(vec![NodeId(3), NodeId(1), NodeId(2), NodeId(1)]);
/// assert_eq!(cfg.len(), 3);         // deduplicated
/// assert_eq!(cfg.quorum(), 2);      // majority of 3
/// assert!(cfg.contains(NodeId(2)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct StaticConfig {
    members: Vec<NodeId>,
}

impl StaticConfig {
    /// Builds a configuration from a member list (sorted and deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if the member list is empty.
    pub fn new(mut members: Vec<NodeId>) -> Self {
        members.sort_unstable();
        members.dedup();
        assert!(
            !members.is_empty(),
            "a configuration needs at least one member"
        );
        StaticConfig { members }
    }

    /// The members, sorted.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True only for the (disallowed) empty configuration; kept for API
    /// completeness.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The majority quorum size: `⌊n/2⌋ + 1`.
    pub fn quorum(&self) -> usize {
        self.members.len() / 2 + 1
    }

    /// True if `node` belongs to this configuration.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.binary_search(&node).is_ok()
    }

    /// The members other than `me`.
    pub fn peers(&self, me: NodeId) -> Vec<NodeId> {
        self.members.iter().copied().filter(|&n| n != me).collect()
    }
}

impl fmt::Debug for StaticConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for StaticConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}}")
    }
}

impl Wire for StaticConfig {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.members.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let members = Vec::<NodeId>::decode(buf)?;
        if members.is_empty() {
            return None;
        }
        Some(StaticConfig::new(members))
    }
    fn encoded_size(&self) -> usize {
        8 + 8 * self.members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::wire;

    fn cfg(ids: &[u64]) -> StaticConfig {
        StaticConfig::new(ids.iter().map(|&i| NodeId(i)).collect())
    }

    #[test]
    fn quorum_sizes_are_majorities() {
        assert_eq!(cfg(&[1]).quorum(), 1);
        assert_eq!(cfg(&[1, 2]).quorum(), 2);
        assert_eq!(cfg(&[1, 2, 3]).quorum(), 2);
        assert_eq!(cfg(&[1, 2, 3, 4]).quorum(), 3);
        assert_eq!(cfg(&[1, 2, 3, 4, 5]).quorum(), 3);
        assert_eq!(cfg(&[1, 2, 3, 4, 5, 6, 7]).quorum(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_configuration_is_rejected() {
        let _ = StaticConfig::new(vec![]);
    }

    #[test]
    fn members_are_sorted_and_deduped() {
        let c = cfg(&[5, 1, 3, 1, 5]);
        assert_eq!(c.members(), &[NodeId(1), NodeId(3), NodeId(5)]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn peers_excludes_self() {
        let c = cfg(&[1, 2, 3]);
        assert_eq!(c.peers(NodeId(2)), vec![NodeId(1), NodeId(3)]);
        assert_eq!(c.peers(NodeId(9)).len(), 3);
    }

    #[test]
    fn wire_round_trip_and_reject_empty() {
        let c = cfg(&[4, 2]);
        let bytes = wire::to_bytes(&c);
        assert_eq!(wire::from_bytes::<StaticConfig>(&bytes), Some(c));
        let empty = wire::to_bytes(&Vec::<NodeId>::new());
        assert_eq!(wire::from_bytes::<StaticConfig>(&empty), None);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(cfg(&[1, 2]).to_string(), "{n1,n2}");
    }
}
