//! The wire protocol of the static Multi-Paxos block.
//!
//! Command payloads are carried behind [`Arc`], so fanning one proposal out
//! to every peer (and re-delivering duplicates) bumps a refcount instead of
//! deep-copying the command.

use std::sync::Arc;

use simnet::wire::Wire;
use simnet::Message;

use crate::types::{Ballot, Slot};

/// Messages exchanged between replicas of one static SMR instance.
///
/// The generic parameter is the replicated command type. Labels (for the
/// message-cost experiments) are `paxos.<kind>`.
#[derive(Clone, Debug, PartialEq)]
pub enum PaxosMsg<C> {
    /// Phase 1a: a candidate asks acceptors to promise ballot `ballot` for
    /// every slot at or above `from_slot`.
    Prepare {
        /// The candidate's ballot.
        ballot: Ballot,
        /// The first slot covered by the promise request.
        from_slot: Slot,
    },
    /// Phase 1b: an acceptor promises `ballot` and reports everything it has
    /// accepted at or above `from_slot`.
    Promise {
        /// The promised ballot (echoed from the `Prepare`).
        ballot: Ballot,
        /// Echo of the request's first slot.
        from_slot: Slot,
        /// Previously accepted `(slot, ballot, command)` triples.
        accepted: Vec<(Slot, Ballot, Arc<C>)>,
        /// The sender's contiguous-chosen watermark, a catch-up hint.
        chosen_upto: Slot,
    },
    /// Phase 2a: the leader asks acceptors to accept `cmd` at `slot`.
    Accept {
        /// The leader's ballot.
        ballot: Ballot,
        /// The log position being filled.
        slot: Slot,
        /// The proposed command.
        cmd: Arc<C>,
    },
    /// Phase 2b: an acceptor accepted the proposal.
    Accepted {
        /// Echo of the accepted ballot.
        ballot: Ballot,
        /// Echo of the slot.
        slot: Slot,
    },
    /// An acceptor refuses a `Prepare`/`Accept` because it promised a higher
    /// ballot.
    Reject {
        /// The ballot being refused.
        ballot: Ballot,
        /// The higher ballot the acceptor has promised.
        promised: Ballot,
    },
    /// The leader announces that `slot` is chosen with `cmd`.
    Chosen {
        /// The decided slot.
        slot: Slot,
        /// The decided command.
        cmd: Arc<C>,
    },
    /// Leader liveness + commit watermark, sent periodically.
    Heartbeat {
        /// The leader's ballot.
        ballot: Ballot,
        /// The leader's contiguous-chosen watermark.
        chosen_upto: Slot,
        /// When the leader sent this heartbeat (echoed by the ack; the
        /// basis of read leases).
        sent_at: simnet::SimTime,
    },
    /// Acknowledges a heartbeat, granting the leader a read lease anchored
    /// at the heartbeat's send time.
    HeartbeatAck {
        /// Echo of the leader's ballot.
        ballot: Ballot,
        /// Echo of the heartbeat's send time.
        sent_at: simnet::SimTime,
    },
    /// A lagging replica asks for chosen entries starting at `from_slot`.
    CatchupRequest {
        /// First missing slot.
        from_slot: Slot,
    },
    /// Response to [`PaxosMsg::CatchupRequest`]: a batch of chosen entries.
    CatchupReply {
        /// Chosen `(slot, command)` pairs, in slot order.
        entries: Vec<(Slot, Arc<C>)>,
        /// The responder's contiguous-chosen watermark.
        chosen_upto: Slot,
    },
}

impl<C: Wire + Clone + std::fmt::Debug + 'static> Message for PaxosMsg<C> {
    fn label(&self) -> &'static str {
        match self {
            PaxosMsg::Prepare { .. } => "paxos.prepare",
            PaxosMsg::Promise { .. } => "paxos.promise",
            PaxosMsg::Accept { .. } => "paxos.accept",
            PaxosMsg::Accepted { .. } => "paxos.accepted",
            PaxosMsg::Reject { .. } => "paxos.reject",
            PaxosMsg::Chosen { .. } => "paxos.chosen",
            PaxosMsg::Heartbeat { .. } => "paxos.heartbeat",
            PaxosMsg::HeartbeatAck { .. } => "paxos.heartbeat_ack",
            PaxosMsg::CatchupRequest { .. } => "paxos.catchup_req",
            PaxosMsg::CatchupReply { .. } => "paxos.catchup_reply",
        }
    }

    fn size_hint(&self) -> usize {
        // Fixed header plus the command's *serialized* size, so a batch
        // carrying a hundred entries is charged like a hundred entries —
        // the fabric-cap experiments depend on this being honest.
        match self {
            PaxosMsg::Prepare { .. } => 24,
            PaxosMsg::Promise { accepted, .. } => {
                32 + accepted
                    .iter()
                    .map(|(_, _, cmd)| 24 + cmd.encoded_size())
                    .sum::<usize>()
            }
            PaxosMsg::Accept { cmd, .. } => 32 + cmd.encoded_size(),
            PaxosMsg::Accepted { .. } => 24,
            PaxosMsg::Reject { .. } => 32,
            PaxosMsg::Chosen { cmd, .. } => 24 + cmd.encoded_size(),
            PaxosMsg::Heartbeat { .. } => 32,
            PaxosMsg::HeartbeatAck { .. } => 24,
            PaxosMsg::CatchupRequest { .. } => 16,
            PaxosMsg::CatchupReply { entries, .. } => {
                24 + entries
                    .iter()
                    .map(|(_, cmd)| 16 + cmd.encoded_size())
                    .sum::<usize>()
            }
        }
    }
}

/// Binary codec for shipping Paxos messages over a real transport. The
/// encoding is a one-byte variant tag followed by the fields in declaration
/// order (all already [`Wire`]); it round-trips exactly and is stable
/// across runs.
impl<C: Wire> Wire for PaxosMsg<C> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            PaxosMsg::Prepare { ballot, from_slot } => {
                buf.push(0);
                ballot.encode(buf);
                from_slot.encode(buf);
            }
            PaxosMsg::Promise {
                ballot,
                from_slot,
                accepted,
                chosen_upto,
            } => {
                buf.push(1);
                ballot.encode(buf);
                from_slot.encode(buf);
                accepted.encode(buf);
                chosen_upto.encode(buf);
            }
            PaxosMsg::Accept { ballot, slot, cmd } => {
                buf.push(2);
                ballot.encode(buf);
                slot.encode(buf);
                cmd.encode(buf);
            }
            PaxosMsg::Accepted { ballot, slot } => {
                buf.push(3);
                ballot.encode(buf);
                slot.encode(buf);
            }
            PaxosMsg::Reject { ballot, promised } => {
                buf.push(4);
                ballot.encode(buf);
                promised.encode(buf);
            }
            PaxosMsg::Chosen { slot, cmd } => {
                buf.push(5);
                slot.encode(buf);
                cmd.encode(buf);
            }
            PaxosMsg::Heartbeat {
                ballot,
                chosen_upto,
                sent_at,
            } => {
                buf.push(6);
                ballot.encode(buf);
                chosen_upto.encode(buf);
                sent_at.encode(buf);
            }
            PaxosMsg::HeartbeatAck { ballot, sent_at } => {
                buf.push(7);
                ballot.encode(buf);
                sent_at.encode(buf);
            }
            PaxosMsg::CatchupRequest { from_slot } => {
                buf.push(8);
                from_slot.encode(buf);
            }
            PaxosMsg::CatchupReply {
                entries,
                chosen_upto,
            } => {
                buf.push(9);
                entries.encode(buf);
                chosen_upto.encode(buf);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(match u8::decode(buf)? {
            0 => PaxosMsg::Prepare {
                ballot: Ballot::decode(buf)?,
                from_slot: Slot::decode(buf)?,
            },
            1 => PaxosMsg::Promise {
                ballot: Ballot::decode(buf)?,
                from_slot: Slot::decode(buf)?,
                accepted: Vec::decode(buf)?,
                chosen_upto: Slot::decode(buf)?,
            },
            2 => PaxosMsg::Accept {
                ballot: Ballot::decode(buf)?,
                slot: Slot::decode(buf)?,
                cmd: Arc::decode(buf)?,
            },
            3 => PaxosMsg::Accepted {
                ballot: Ballot::decode(buf)?,
                slot: Slot::decode(buf)?,
            },
            4 => PaxosMsg::Reject {
                ballot: Ballot::decode(buf)?,
                promised: Ballot::decode(buf)?,
            },
            5 => PaxosMsg::Chosen {
                slot: Slot::decode(buf)?,
                cmd: Arc::decode(buf)?,
            },
            6 => PaxosMsg::Heartbeat {
                ballot: Ballot::decode(buf)?,
                chosen_upto: Slot::decode(buf)?,
                sent_at: simnet::SimTime::decode(buf)?,
            },
            7 => PaxosMsg::HeartbeatAck {
                ballot: Ballot::decode(buf)?,
                sent_at: simnet::SimTime::decode(buf)?,
            },
            8 => PaxosMsg::CatchupRequest {
                from_slot: Slot::decode(buf)?,
            },
            9 => PaxosMsg::CatchupReply {
                entries: Vec::decode(buf)?,
                chosen_upto: Slot::decode(buf)?,
            },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::NodeId;

    #[test]
    fn labels_are_distinct_per_variant() {
        let b = Ballot::new(1, NodeId(1));
        let msgs: Vec<PaxosMsg<u64>> = vec![
            PaxosMsg::Prepare {
                ballot: b,
                from_slot: Slot(0),
            },
            PaxosMsg::Promise {
                ballot: b,
                from_slot: Slot(0),
                accepted: vec![],
                chosen_upto: Slot(0),
            },
            PaxosMsg::Accept {
                ballot: b,
                slot: Slot(0),
                cmd: Arc::new(1),
            },
            PaxosMsg::Accepted {
                ballot: b,
                slot: Slot(0),
            },
            PaxosMsg::Reject {
                ballot: b,
                promised: b,
            },
            PaxosMsg::Chosen {
                slot: Slot(0),
                cmd: Arc::new(1),
            },
            PaxosMsg::Heartbeat {
                ballot: b,
                chosen_upto: Slot(0),
                sent_at: simnet::SimTime::ZERO,
            },
            PaxosMsg::HeartbeatAck {
                ballot: b,
                sent_at: simnet::SimTime::ZERO,
            },
            PaxosMsg::CatchupRequest { from_slot: Slot(0) },
            PaxosMsg::CatchupReply {
                entries: vec![],
                chosen_upto: Slot(0),
            },
        ];
        let mut labels: Vec<_> = msgs.iter().map(|m| m.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 10);
    }

    #[test]
    fn wire_codec_round_trips_every_variant() {
        use simnet::wire::{from_bytes, to_bytes};
        let b = Ballot::new(3, NodeId(2));
        let msgs: Vec<PaxosMsg<u64>> = vec![
            PaxosMsg::Prepare {
                ballot: b,
                from_slot: Slot(9),
            },
            PaxosMsg::Promise {
                ballot: b,
                from_slot: Slot(1),
                accepted: vec![(Slot(1), b, Arc::new(7)), (Slot(2), b, Arc::new(8))],
                chosen_upto: Slot(5),
            },
            PaxosMsg::Accept {
                ballot: b,
                slot: Slot(4),
                cmd: Arc::new(11),
            },
            PaxosMsg::Accepted {
                ballot: b,
                slot: Slot(4),
            },
            PaxosMsg::Reject {
                ballot: b,
                promised: Ballot::new(9, NodeId(0)),
            },
            PaxosMsg::Chosen {
                slot: Slot(6),
                cmd: Arc::new(12),
            },
            PaxosMsg::Heartbeat {
                ballot: b,
                chosen_upto: Slot(8),
                sent_at: simnet::SimTime::from_millis(125),
            },
            PaxosMsg::HeartbeatAck {
                ballot: b,
                sent_at: simnet::SimTime::from_millis(125),
            },
            PaxosMsg::CatchupRequest { from_slot: Slot(2) },
            PaxosMsg::CatchupReply {
                entries: vec![(Slot(2), Arc::new(5))],
                chosen_upto: Slot(3),
            },
        ];
        for msg in msgs {
            let bytes = to_bytes(&msg);
            let back: PaxosMsg<u64> = from_bytes(&bytes).expect("decodes");
            assert_eq!(back, msg);
        }
        // Unknown tags and truncation are rejected, not panics.
        assert_eq!(from_bytes::<PaxosMsg<u64>>(&[99]), None);
        let bytes = to_bytes(&PaxosMsg::<u64>::CatchupRequest { from_slot: Slot(2) });
        assert_eq!(from_bytes::<PaxosMsg<u64>>(&bytes[..bytes.len() - 1]), None);
    }

    #[test]
    fn size_hints_grow_with_payload() {
        let small: PaxosMsg<u64> = PaxosMsg::CatchupReply {
            entries: vec![],
            chosen_upto: Slot(0),
        };
        let big: PaxosMsg<u64> = PaxosMsg::CatchupReply {
            entries: (0..10).map(|i| (Slot(i), Arc::new(i))).collect(),
            chosen_upto: Slot(10),
        };
        assert!(big.size_hint() > small.size_hint());
    }
}
