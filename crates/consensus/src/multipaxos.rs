//! A sans-I/O static Multi-Paxos replicated-log core.
//!
//! One [`MultiPaxos`] value is one replica of one *static* SMR instance: the
//! member set is fixed for the life of the value. Each replica plays all
//! three Paxos roles (proposer, acceptor, learner). The core is driven by
//! its host: deliver messages with [`MultiPaxos::on_message`], advance the
//! clock with [`MultiPaxos::tick`], submit commands with
//! [`MultiPaxos::propose`] — every call returns the [`Effects`] the host
//! must apply.
//!
//! ## Protocol notes
//!
//! * **Leadership**: a follower whose election deadline passes becomes a
//!   candidate with a fresh ballot and runs a single *bulk* phase 1 covering
//!   every slot at or above its contiguous-chosen watermark. A quorum of
//!   promises makes it leader; it completes any in-doubt slots with the
//!   highest-ballot accepted value (no-op for true holes) and then streams
//!   client commands through phase 2 with pipelining.
//! * **Commit**: the leader declares a slot chosen on a quorum of phase-2b
//!   acks and broadcasts `Chosen`. Heartbeats carry the commit watermark;
//!   lagging replicas pull missing entries with `CatchupRequest`.
//! * **Safety**: accepted entries are **never trimmed**. A quorum of
//!   promises therefore always intersects the accept-quorum of every chosen
//!   slot, so the max-ballot rule in [`MultiPaxos::become_leader`] can never
//!   invent a value for a decided slot.
//! * **Persistence**: `promised` and each accepted entry are emitted through
//!   [`Effects::persist`] (write-ahead: the host must persist before
//!   sending). [`MultiPaxos::recover`] rebuilds acceptor state after a
//!   crash; the chosen log is *not* persisted — it is recovered via
//!   catch-up, or re-decided from accepted state after a full-cluster
//!   restart (hosts must therefore tolerate replay of committed entries,
//!   which the composition layer does via its applied-index watermark).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use simnet::wire;
use simnet::{NodeId, SimDuration, SimTime};

use crate::config::StaticConfig;
use crate::effects::Effects;
use crate::msg::PaxosMsg;
use crate::types::{Ballot, Command, Slot};

/// Timing and batching knobs for the Multi-Paxos core.
#[derive(Clone, Debug)]
pub struct PaxosTunables {
    /// How often a leader sends heartbeats.
    pub heartbeat_interval: SimDuration,
    /// Base follower election timeout (no leader contact for this long
    /// starts a campaign).
    pub election_timeout: SimDuration,
    /// Maximum deterministic per-node jitter added to the election timeout.
    pub election_jitter: SimDuration,
    /// How long a leader waits before re-sending un-acked `Accept`s.
    pub accept_retry: SimDuration,
    /// Maximum chosen entries per `CatchupReply`.
    pub catchup_batch: usize,
    /// Read-lease duration, enabling leader-local linearizable reads. The
    /// lease is anchored at heartbeat send times acknowledged by a quorum.
    /// **Safety requires** `lease_duration < election_timeout` (followers
    /// reset their election deadline on every heartbeat, so a new leader
    /// cannot emerge while any quorum-acked lease is live; the simulator's
    /// virtual clock has zero skew). `None` disables leases.
    pub lease_duration: Option<SimDuration>,
    /// Leader-side batch accumulator: combine up to this many commands
    /// into one [`Command::batch`] proposal. `<= 1` disables accumulation
    /// (every command gets its own slot). Only effective for command
    /// types with [`Command::supports_batching`].
    pub max_batch: usize,
    /// Longest a buffered command may wait in the accumulator before a
    /// flush is forced (checked on every message and tick, so the
    /// effective granularity is the host's tick interval). Zero flushes
    /// at the first opportunity.
    pub max_delay: SimDuration,
    /// Pipelined in-flight window: the maximum number of outstanding
    /// phase-2 proposals before further commands accumulate. `0` means
    /// unbounded (propose immediately, the pre-batching behavior).
    pub window: usize,
}

impl Default for PaxosTunables {
    fn default() -> Self {
        PaxosTunables {
            heartbeat_interval: SimDuration::from_millis(20),
            election_timeout: SimDuration::from_millis(150),
            election_jitter: SimDuration::from_millis(150),
            accept_retry: SimDuration::from_millis(60),
            catchup_batch: 512,
            lease_duration: None,
            max_batch: 1,
            max_delay: SimDuration::ZERO,
            window: 0,
        }
    }
}

/// The proposer role a replica currently plays.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Role {
    /// Passive: accepting and learning only.
    Follower,
    /// Running phase 1 of an election.
    Candidate,
    /// Owner of the highest ballot this replica knows; orders commands.
    Leader,
}

/// What happened to a [`MultiPaxos::propose`] call.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProposeOutcome {
    /// The command was proposed (leader) or queued until the election
    /// resolves (candidate).
    Accepted,
    /// This replica is a follower; retry at the hinted leader if any.
    NotLeader(Option<NodeId>),
}

struct Proposal<C> {
    cmd: Arc<C>,
    acks: BTreeSet<NodeId>,
    last_sent: SimTime,
    /// When phase 2 started for this slot; reported as the
    /// proposal→commit latency when the quorum completes.
    proposed_at: SimTime,
}

/// One replica of a static Multi-Paxos SMR instance. See the module docs.
pub struct MultiPaxos<C: Command> {
    me: NodeId,
    cfg: StaticConfig,
    tun: PaxosTunables,

    // --- Acceptor state (persisted) ---
    promised: Ballot,
    accepted: BTreeMap<Slot, (Ballot, Arc<C>)>,

    // --- Learner state ---
    chosen: BTreeMap<Slot, Arc<C>>,
    /// First slot *not* in the contiguous chosen prefix.
    contig: Slot,
    /// First slot not yet reported through [`Effects::committed`].
    delivered: Slot,

    // --- Proposer state ---
    role: Role,
    ballot: Ballot,
    leader_hint: Option<NodeId>,
    promises: BTreeMap<NodeId, Vec<(Slot, Ballot, Arc<C>)>>,
    phase1_from: Slot,
    next_slot: Slot,
    proposals: BTreeMap<Slot, Proposal<C>>,
    pending: VecDeque<Arc<C>>,
    /// Leader-side batch accumulator (see [`PaxosTunables::max_batch`]):
    /// commands buffered while the pipeline is loaded, flushed as one
    /// batch proposal. Like `pending`, its contents are volatile — a
    /// crash or demotion drops them and clients retransmit.
    accum: Vec<C>,
    /// When the oldest command in `accum` was buffered (valid only while
    /// `accum` is non-empty); drives the `max_delay` forced flush.
    accum_since: SimTime,
    election_attempt: u64,

    // --- Timing ---
    last_heartbeat_sent: SimTime,
    election_deadline: SimTime,
    /// When this replica last saw direct evidence of an *active* leader
    /// (a heartbeat, accept or chosen from another node) — as opposed to
    /// `election_deadline`, which is also pushed out by candidate contact
    /// and step-downs. Drives the disruptive-election guard in
    /// [`MultiPaxos::handle_prepare`].
    last_leader_heard: SimTime,
    /// Per-peer: the send time of the newest heartbeat the peer has acked
    /// (leases). Cleared on leadership changes.
    hb_acked: BTreeMap<NodeId, SimTime>,

    halted: bool,
}

const KEY_PROMISED: &str = "promised";

fn accepted_key(slot: Slot) -> String {
    format!("acc/{:016x}", slot.0)
}

fn mix64(mut x: u64) -> u64 {
    // splitmix64 finalizer: cheap deterministic hash for election jitter.
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl<C: Command> MultiPaxos<C> {
    /// Creates a fresh replica for `me` in configuration `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is not a member of `cfg`.
    pub fn new(me: NodeId, cfg: StaticConfig, now: SimTime, tun: PaxosTunables) -> Self {
        assert!(cfg.contains(me), "{me} is not a member of {cfg}");
        let mut mp = MultiPaxos {
            me,
            cfg,
            tun,
            promised: Ballot::ZERO,
            accepted: BTreeMap::new(),
            chosen: BTreeMap::new(),
            contig: Slot::ZERO,
            delivered: Slot::ZERO,
            role: Role::Follower,
            ballot: Ballot::ZERO,
            leader_hint: None,
            promises: BTreeMap::new(),
            phase1_from: Slot::ZERO,
            next_slot: Slot::ZERO,
            proposals: BTreeMap::new(),
            pending: VecDeque::new(),
            accum: Vec::new(),
            accum_since: SimTime::ZERO,
            election_attempt: 0,
            last_heartbeat_sent: SimTime::ZERO,
            election_deadline: SimTime::ZERO,
            last_leader_heard: SimTime::ZERO,
            hb_acked: BTreeMap::new(),
            halted: false,
        };
        mp.reset_election_deadline(now);
        mp
    }

    /// Rebuilds a replica from persisted acceptor state after a crash.
    ///
    /// `items` are the `(key, value)` pairs previously written through
    /// [`Effects::persist`] (under whatever namespace the host chose, with
    /// the namespace already stripped).
    pub fn recover(
        me: NodeId,
        cfg: StaticConfig,
        now: SimTime,
        tun: PaxosTunables,
        items: impl IntoIterator<Item = (String, Vec<u8>)>,
    ) -> Self {
        let mut mp = Self::new(me, cfg, now, tun);
        for (key, value) in items {
            if key == KEY_PROMISED {
                if let Some(b) = wire::from_bytes::<Ballot>(&value) {
                    mp.promised = b;
                }
            } else if let Some(hex) = key.strip_prefix("acc/") {
                if let (Ok(slot), Some(entry)) = (
                    u64::from_str_radix(hex, 16),
                    wire::from_bytes::<(Ballot, Arc<C>)>(&value),
                ) {
                    mp.accepted.insert(Slot(slot), entry);
                }
            }
        }
        mp
    }

    // --- Accessors -------------------------------------------------------

    /// This replica's node id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The instance's fixed configuration.
    pub fn config(&self) -> &StaticConfig {
        &self.cfg
    }

    /// The replica's current proposer role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// True when this replica is the leader.
    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    /// The node this replica believes is the leader, if any.
    pub fn leader_hint(&self) -> Option<NodeId> {
        if self.is_leader() {
            Some(self.me)
        } else {
            self.leader_hint
        }
    }

    /// The current ballot this replica campaigns/leads with.
    pub fn ballot(&self) -> Ballot {
        self.ballot
    }

    /// The first slot not yet known chosen contiguously.
    pub fn chosen_upto(&self) -> Slot {
        self.contig
    }

    /// The chosen command at `slot`, if known.
    pub fn chosen_entry(&self, slot: Slot) -> Option<&C> {
        self.chosen.get(&slot).map(|c| &**c)
    }

    /// Number of commands queued while an election is pending.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Number of phase-2 proposals awaiting a quorum.
    pub fn inflight_len(&self) -> usize {
        self.proposals.len()
    }

    /// Number of commands buffered in the leader-side batch accumulator.
    pub fn accum_len(&self) -> usize {
        self.accum.len()
    }

    /// True when this leader holds a live read lease: a quorum of members
    /// (counting itself as of `now`) has acknowledged a heartbeat sent
    /// within the configured lease duration. Always false when leases are
    /// disabled or this replica is not the leader.
    pub fn lease_valid(&self, now: SimTime) -> bool {
        let Some(lease) = self.tun.lease_duration else {
            return false;
        };
        if self.role != Role::Leader {
            return false;
        }
        // Gather acked heartbeat send times; self counts as `now`.
        let mut times: Vec<SimTime> = self
            .cfg
            .members()
            .iter()
            .filter_map(|&m| {
                if m == self.me {
                    Some(now)
                } else {
                    self.hb_acked.get(&m).copied()
                }
            })
            .collect();
        if times.len() < self.cfg.quorum() {
            return false;
        }
        // The lease is anchored at the quorum-th newest acked send time.
        times.sort_unstable_by(|a, b| b.cmp(a));
        let anchor = times[self.cfg.quorum() - 1];
        now < anchor + lease
    }

    /// Permanently freezes this instance: it emits nothing and ignores all
    /// input. Used by the composition layer when an epoch is retired.
    pub fn halt(&mut self) {
        self.halted = true;
        self.role = Role::Follower;
        self.proposals.clear();
        self.pending.clear();
        self.accum.clear();
        self.promises.clear();
    }

    /// True once [`MultiPaxos::halt`] has been called.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    // --- Inputs ----------------------------------------------------------

    /// Submits a command for replication.
    ///
    /// With batching enabled ([`PaxosTunables::max_batch`] > 1 or a
    /// bounded [`PaxosTunables::window`]) a leader may buffer the command
    /// in its accumulator instead of proposing immediately; `Accepted`
    /// then means "owned by this leader", not "assigned a slot". Buffered
    /// commands are volatile, exactly like commands queued during an
    /// election: a crash or demotion drops them and clients retransmit.
    pub fn propose(&mut self, cmd: C, now: SimTime) -> (Effects<C>, ProposeOutcome) {
        let mut fx = Effects::new();
        if self.halted {
            return (fx, ProposeOutcome::NotLeader(None));
        }
        match self.role {
            Role::Leader => {
                if self.batching_enabled() {
                    if self.accum.is_empty() {
                        self.accum_since = now;
                    }
                    self.accum.push(cmd);
                    self.flush_accum(now, &mut fx);
                } else {
                    // One allocation per command; every subsequent
                    // fan-out, retry and commit shares it by refcount.
                    let slot = self.next_slot;
                    self.next_slot = self.next_slot.next();
                    self.propose_at(slot, Arc::new(cmd), now, &mut fx);
                }
                (fx, ProposeOutcome::Accepted)
            }
            Role::Candidate => {
                self.pending.push_back(Arc::new(cmd));
                (fx, ProposeOutcome::Accepted)
            }
            Role::Follower => (fx, ProposeOutcome::NotLeader(self.leader_hint)),
        }
    }

    fn batching_enabled(&self) -> bool {
        self.tun.max_batch > 1 || self.tun.window > 0
    }

    /// True while another phase-2 proposal may start.
    fn window_open(&self) -> bool {
        self.tun.window == 0 || self.proposals.len() < self.tun.window
    }

    /// Drains the batch accumulator into phase-2 proposals, as far as the
    /// flush policy and the in-flight window allow. The policy is
    /// adaptive: flush immediately while the pipeline is idle (unloaded
    /// latency is unchanged), accumulate while proposals are in flight,
    /// and force a flush when the batch fills or the oldest buffered
    /// command has waited [`PaxosTunables::max_delay`].
    fn flush_accum(&mut self, now: SimTime, fx: &mut Effects<C>) {
        if self.role != Role::Leader {
            return;
        }
        let chunk = if C::supports_batching() {
            self.tun.max_batch.max(1)
        } else {
            1
        };
        while !self.accum.is_empty() && self.window_open() {
            let idle = self.proposals.is_empty();
            let full = self.accum.len() >= chunk;
            let overdue = now.since(self.accum_since) >= self.tun.max_delay;
            if !(idle || full || overdue) {
                return;
            }
            // Attribute the flush to the strongest trigger: a full batch
            // beats the delay deadline beats the idle fast path.
            let cause = if full {
                crate::effects::FlushCause::Full
            } else if overdue {
                crate::effects::FlushCause::Overdue
            } else {
                crate::effects::FlushCause::Idle
            };
            let waited_us = now.since(self.accum_since).as_micros();
            let take = self.accum.len().min(chunk);
            let mut cmds: Vec<C> = self.accum.drain(..take).collect();
            let cmd = if cmds.len() == 1 {
                Arc::new(cmds.pop().expect("checked"))
            } else {
                match C::batch(cmds) {
                    Some(b) => Arc::new(b),
                    None => unreachable!("chunk > 1 implies supports_batching"),
                }
            };
            let slot = self.next_slot;
            self.next_slot = self.next_slot.next();
            self.propose_at(slot, cmd, now, fx);
            fx.flushed.push(crate::effects::FlushStat {
                batch: take as u32,
                cause,
                waited_us,
                inflight: self.proposals.len() as u32,
            });
        }
    }

    /// Handles a protocol message from `from`.
    pub fn on_message(&mut self, from: NodeId, msg: PaxosMsg<C>, now: SimTime) -> Effects<C> {
        let mut fx = Effects::new();
        if self.halted {
            return fx;
        }
        match msg {
            PaxosMsg::Prepare { ballot, from_slot } => {
                self.handle_prepare(from, ballot, from_slot, now, &mut fx)
            }
            PaxosMsg::Promise {
                ballot,
                from_slot: _,
                accepted,
                chosen_upto,
            } => self.handle_promise(from, ballot, accepted, chosen_upto, now, &mut fx),
            PaxosMsg::Accept { ballot, slot, cmd } => {
                self.handle_accept(from, ballot, slot, cmd, now, &mut fx)
            }
            PaxosMsg::Accepted { ballot, slot } => {
                self.handle_accepted(from, ballot, slot, now, &mut fx)
            }
            PaxosMsg::Reject { ballot, promised } => {
                self.handle_reject(ballot, promised, now, &mut fx)
            }
            PaxosMsg::Chosen { slot, cmd } => {
                self.learn(slot, cmd, &mut fx);
                self.last_leader_heard = now;
                self.note_leader_contact(from, now);
            }
            PaxosMsg::Heartbeat {
                ballot,
                chosen_upto,
                sent_at,
            } => self.handle_heartbeat(from, ballot, chosen_upto, sent_at, now, &mut fx),
            PaxosMsg::HeartbeatAck { ballot, sent_at } => {
                if self.role == Role::Leader && ballot == self.ballot {
                    let e = self.hb_acked.entry(from).or_insert(SimTime::ZERO);
                    *e = (*e).max(sent_at);
                }
            }
            PaxosMsg::CatchupRequest { from_slot } => {
                self.handle_catchup_request(from, from_slot, &mut fx)
            }
            PaxosMsg::CatchupReply {
                entries,
                chosen_upto: _,
            } => {
                for (slot, cmd) in entries {
                    self.learn(slot, cmd, &mut fx);
                }
            }
        }
        // Completed rounds free window slots: drain the accumulator as far
        // as the flush policy now allows.
        if !self.accum.is_empty() {
            self.flush_accum(now, &mut fx);
        }
        fx
    }

    /// Advances protocol timers: leader heartbeats and accept retries,
    /// follower/candidate election deadlines.
    pub fn tick(&mut self, now: SimTime) -> Effects<C> {
        let mut fx = Effects::new();
        if self.halted {
            return fx;
        }
        match self.role {
            Role::Leader => {
                if now.since(self.last_heartbeat_sent) >= self.tun.heartbeat_interval {
                    self.last_heartbeat_sent = now;
                    for peer in self.cfg.peers(self.me) {
                        fx.outbound.push((
                            peer,
                            PaxosMsg::Heartbeat {
                                ballot: self.ballot,
                                chosen_upto: self.contig,
                                sent_at: now,
                            },
                        ));
                    }
                }
                self.retry_stale_proposals(now, &mut fx);
                // Time-triggered flush: `max_delay` is enforced here, so
                // its effective resolution is the host's tick interval.
                if !self.accum.is_empty() {
                    self.flush_accum(now, &mut fx);
                }
            }
            Role::Follower | Role::Candidate => {
                if now >= self.election_deadline {
                    self.start_election(now, &mut fx);
                }
            }
        }
        fx
    }

    /// Immediately starts an election, without waiting for the election
    /// timeout. The composition layer uses this for zero-timeout leadership
    /// handoff into a successor epoch's instance. No-op when already leader
    /// or halted.
    pub fn campaign(&mut self, now: SimTime) -> Effects<C> {
        let mut fx = Effects::new();
        if !self.halted && self.role != Role::Leader {
            self.start_election(now, &mut fx);
        }
        fx
    }

    // --- Elections -------------------------------------------------------

    fn election_timeout(&self) -> SimDuration {
        // Deterministic per-(node, attempt) jitter plus a member-index bias
        // so concurrent first elections rarely collide.
        let idx = self
            .cfg
            .members()
            .iter()
            .position(|&n| n == self.me)
            .unwrap_or(0) as u64;
        let jitter_us = if self.tun.election_jitter.is_zero() {
            0
        } else {
            mix64(
                self.me
                    .0
                    .wrapping_mul(31)
                    .wrapping_add(self.election_attempt),
            ) % self.tun.election_jitter.as_micros()
        };
        self.tun.election_timeout
            + SimDuration::from_micros(jitter_us)
            + SimDuration::from_millis(5) * idx
    }

    fn reset_election_deadline(&mut self, now: SimTime) {
        self.election_deadline = now + self.election_timeout();
    }

    fn start_election(&mut self, now: SimTime, fx: &mut Effects<C>) {
        self.election_attempt += 1;
        self.role = Role::Candidate;
        let base_round = self.promised.round.max(self.ballot.round);
        self.ballot = Ballot::new(base_round + 1, self.me);
        self.set_promised(self.ballot, fx);
        self.phase1_from = self.contig;
        self.promises.clear();
        let my_accepted = self.accepted_at_or_after(self.phase1_from);
        self.promises.insert(self.me, my_accepted);
        self.reset_election_deadline(now);
        for peer in self.cfg.peers(self.me) {
            fx.outbound.push((
                peer,
                PaxosMsg::Prepare {
                    ballot: self.ballot,
                    from_slot: self.phase1_from,
                },
            ));
        }
        self.check_quorum_of_promises(now, fx);
    }

    fn accepted_at_or_after(&self, from: Slot) -> Vec<(Slot, Ballot, Arc<C>)> {
        self.accepted
            .range(from..)
            .map(|(&s, (b, c))| (s, *b, c.clone()))
            .collect()
    }

    /// Whether this replica has evidence of an active leader recent
    /// enough that a competing election would be disruptive rather than
    /// necessary. Followers trust `last_leader_heard`; a leader trusts
    /// its own reign while any heartbeat ack is fresh; candidates have
    /// already judged the leader dead (and must keep granting, or two
    /// candidates surviving a real leader crash would reject each other
    /// forever).
    fn leader_is_live(&self, now: SimTime) -> bool {
        let window = self.tun.election_timeout;
        match self.role {
            Role::Leader => self.hb_acked.values().any(|&t| now < t + window),
            Role::Candidate => false,
            Role::Follower => {
                self.last_leader_heard > SimTime::ZERO && now < self.last_leader_heard + window
            }
        }
    }

    fn handle_prepare(
        &mut self,
        from: NodeId,
        ballot: Ballot,
        from_slot: Slot,
        now: SimTime,
        fx: &mut Effects<C>,
    ) {
        // Disruptive-election guard (leader stickiness): while an active
        // leader is live, refuse to promise a higher ballot to anyone
        // else. A replica rejoining after a crash-restart elects itself
        // before the survivors' reconnect backoff delivers it a
        // heartbeat; without this guard it deposes a healthy leader —
        // and, being slots behind, stalls its own catch-up (which is
        // driven by *receiving* heartbeats) while it grinds through
        // re-proposals. The current leader re-preparing at a higher
        // ballot is exempt.
        if ballot > self.promised && Some(from) != self.leader_hint && self.leader_is_live(now) {
            fx.outbound.push((
                from,
                PaxosMsg::Reject {
                    ballot,
                    promised: self.promised,
                },
            ));
            return;
        }
        if ballot >= self.promised {
            self.set_promised(ballot, fx);
            if ballot > self.ballot {
                self.step_down(Some(from), fx);
            }
            self.note_leader_contact(from, now);
            fx.outbound.push((
                from,
                PaxosMsg::Promise {
                    ballot,
                    from_slot,
                    accepted: self.accepted_at_or_after(from_slot),
                    chosen_upto: self.contig,
                },
            ));
        } else {
            fx.outbound.push((
                from,
                PaxosMsg::Reject {
                    ballot,
                    promised: self.promised,
                },
            ));
        }
    }

    fn handle_promise(
        &mut self,
        from: NodeId,
        ballot: Ballot,
        accepted: Vec<(Slot, Ballot, Arc<C>)>,
        chosen_upto: Slot,
        now: SimTime,
        fx: &mut Effects<C>,
    ) {
        if self.role != Role::Candidate || ballot != self.ballot {
            return;
        }
        if chosen_upto > self.contig {
            fx.outbound.push((
                from,
                PaxosMsg::CatchupRequest {
                    from_slot: self.contig,
                },
            ));
        }
        self.promises.insert(from, accepted);
        self.check_quorum_of_promises(now, fx);
    }

    fn check_quorum_of_promises(&mut self, now: SimTime, fx: &mut Effects<C>) {
        if self.role == Role::Candidate && self.promises.len() >= self.cfg.quorum() {
            self.become_leader(now, fx);
        }
    }

    fn become_leader(&mut self, now: SimTime, fx: &mut Effects<C>) {
        self.role = Role::Leader;
        self.leader_hint = Some(self.me);
        fx.became_leader = true;

        // Merge the highest-ballot accepted value per slot across promises.
        let mut merged: BTreeMap<Slot, (Ballot, Arc<C>)> = BTreeMap::new();
        for entries in self.promises.values() {
            for (slot, b, cmd) in entries {
                if *slot < self.phase1_from {
                    continue;
                }
                match merged.get(slot) {
                    Some((existing, _)) if *existing >= *b => {}
                    _ => {
                        merged.insert(*slot, (*b, cmd.clone()));
                    }
                }
            }
        }
        self.promises.clear();

        // Complete every in-doubt slot; fill holes with no-ops.
        let max_slot = merged.keys().next_back().copied();
        let mut slot = self.phase1_from;
        if let Some(max) = max_slot {
            while slot <= max {
                if self.chosen.contains_key(&slot) {
                    slot = slot.next();
                    continue;
                }
                let cmd = merged
                    .get(&slot)
                    .map(|(_, c)| c.clone())
                    .unwrap_or_else(|| Arc::new(C::noop()));
                self.propose_at(slot, cmd, now, fx);
                slot = slot.next();
            }
        }
        self.next_slot = slot;

        // Queued client commands go straight into the pipeline.
        let queued: Vec<Arc<C>> = self.pending.drain(..).collect();
        for cmd in queued {
            let s = self.next_slot;
            self.next_slot = self.next_slot.next();
            self.propose_at(s, cmd, now, fx);
        }

        // Announce leadership immediately.
        self.last_heartbeat_sent = now;
        self.hb_acked.clear();
        for peer in self.cfg.peers(self.me) {
            fx.outbound.push((
                peer,
                PaxosMsg::Heartbeat {
                    ballot: self.ballot,
                    chosen_upto: self.contig,
                    sent_at: now,
                },
            ));
        }
    }

    fn step_down(&mut self, hint: Option<NodeId>, fx: &mut Effects<C>) {
        if self.role == Role::Leader {
            fx.lost_leadership = true;
        }
        self.role = Role::Follower;
        self.leader_hint = hint;
        self.proposals.clear();
        self.promises.clear();
        self.pending.clear();
        self.accum.clear();
        self.hb_acked.clear();
    }

    // --- Phase 2 ---------------------------------------------------------

    fn propose_at(&mut self, slot: Slot, cmd: Arc<C>, now: SimTime, fx: &mut Effects<C>) {
        debug_assert_eq!(self.role, Role::Leader);
        fx.proposed.push(slot);
        let mut acks = BTreeSet::new();
        acks.insert(self.me);
        self.proposals.insert(
            slot,
            Proposal {
                cmd: cmd.clone(),
                acks,
                last_sent: now,
                proposed_at: now,
            },
        );
        // Self-accept (write-ahead persisted).
        self.accepted.insert(slot, (self.ballot, cmd.clone()));
        fx.persist.push((
            accepted_key(slot),
            wire::to_bytes(&(self.ballot, cmd.clone())),
        ));
        for peer in self.cfg.peers(self.me) {
            fx.outbound.push((
                peer,
                PaxosMsg::Accept {
                    ballot: self.ballot,
                    slot,
                    cmd: cmd.clone(),
                },
            ));
        }
        self.maybe_choose(slot, now, fx);
    }

    fn handle_accept(
        &mut self,
        from: NodeId,
        ballot: Ballot,
        slot: Slot,
        cmd: Arc<C>,
        now: SimTime,
        fx: &mut Effects<C>,
    ) {
        if ballot >= self.promised {
            self.set_promised(ballot, fx);
            if ballot > self.ballot {
                self.step_down(Some(from), fx);
            }
            self.last_leader_heard = now;
            self.note_leader_contact(from, now);
            self.accepted.insert(slot, (ballot, cmd.clone()));
            fx.persist
                .push((accepted_key(slot), wire::to_bytes(&(ballot, cmd))));
            fx.outbound
                .push((from, PaxosMsg::Accepted { ballot, slot }));
        } else {
            fx.outbound.push((
                from,
                PaxosMsg::Reject {
                    ballot,
                    promised: self.promised,
                },
            ));
        }
    }

    fn handle_accepted(
        &mut self,
        from: NodeId,
        ballot: Ballot,
        slot: Slot,
        now: SimTime,
        fx: &mut Effects<C>,
    ) {
        if self.role != Role::Leader || ballot != self.ballot {
            return;
        }
        let quorum = self.cfg.quorum();
        if let Some(p) = self.proposals.get_mut(&slot) {
            p.acks.insert(from);
            if p.acks.len() >= quorum {
                self.maybe_choose(slot, now, fx);
            }
        }
    }

    fn maybe_choose(&mut self, slot: Slot, now: SimTime, fx: &mut Effects<C>) {
        let quorum = self.cfg.quorum();
        let ready = self
            .proposals
            .get(&slot)
            .map(|p| p.acks.len() >= quorum)
            .unwrap_or(false);
        if !ready {
            return;
        }
        let p = self.proposals.remove(&slot).expect("checked above");
        fx.commit_slot_us.push(now.since(p.proposed_at).as_micros());
        for peer in self.cfg.peers(self.me) {
            fx.outbound.push((
                peer,
                PaxosMsg::Chosen {
                    slot,
                    cmd: p.cmd.clone(),
                },
            ));
        }
        self.learn(slot, p.cmd, fx);
    }

    fn handle_reject(
        &mut self,
        ballot: Ballot,
        promised: Ballot,
        now: SimTime,
        fx: &mut Effects<C>,
    ) {
        if promised > self.promised {
            self.set_promised(promised, fx);
        }
        if ballot == self.ballot && promised > self.ballot {
            match self.role {
                // A leader outbid by a rejoining replica's ballot must not
                // abdicate into a passive election-timeout wait — heartbeats
                // would stop for hundreds of milliseconds while the laggard
                // (slots behind, under the disruptive-election guard) cannot
                // win either. Re-prepare immediately at a round above the
                // rejector's; the quorum that was following this leader
                // grants at once.
                Role::Leader => self.start_election(now, fx),
                Role::Candidate => {
                    self.step_down(Some(promised.node), fx);
                    self.reset_election_deadline(now);
                }
                Role::Follower => {}
            }
        }
    }

    fn handle_heartbeat(
        &mut self,
        from: NodeId,
        ballot: Ballot,
        chosen_upto: Slot,
        sent_at: SimTime,
        now: SimTime,
        fx: &mut Effects<C>,
    ) {
        if ballot >= self.promised {
            self.set_promised(ballot, fx);
            if ballot > self.ballot {
                self.step_down(Some(from), fx);
            }
            self.last_leader_heard = now;
            self.note_leader_contact(from, now);
            fx.outbound
                .push((from, PaxosMsg::HeartbeatAck { ballot, sent_at }));
            if chosen_upto > self.contig {
                fx.outbound.push((
                    from,
                    PaxosMsg::CatchupRequest {
                        from_slot: self.contig,
                    },
                ));
            }
        } else {
            fx.outbound.push((
                from,
                PaxosMsg::Reject {
                    ballot,
                    promised: self.promised,
                },
            ));
        }
    }

    fn handle_catchup_request(&mut self, from: NodeId, from_slot: Slot, fx: &mut Effects<C>) {
        let entries: Vec<(Slot, Arc<C>)> = self
            .chosen
            .range(from_slot..)
            .take(self.tun.catchup_batch)
            .map(|(&s, c)| (s, c.clone()))
            .collect();
        fx.outbound.push((
            from,
            PaxosMsg::CatchupReply {
                entries,
                chosen_upto: self.contig,
            },
        ));
    }

    // --- Learning --------------------------------------------------------

    fn learn(&mut self, slot: Slot, cmd: Arc<C>, fx: &mut Effects<C>) {
        if let Some(existing) = self.chosen.get(&slot) {
            debug_assert_eq!(
                *existing, cmd,
                "safety violation: slot {slot} decided twice with different values"
            );
            return;
        }
        self.chosen.insert(slot, cmd);
        self.proposals.remove(&slot);
        while self.chosen.contains_key(&self.contig) {
            self.contig = self.contig.next();
        }
        while self.delivered < self.contig {
            let s = self.delivered;
            let cmd = self.chosen.get(&s).expect("contiguous prefix").clone();
            fx.committed.push((s, cmd));
            self.delivered = self.delivered.next();
        }
    }

    fn retry_stale_proposals(&mut self, now: SimTime, fx: &mut Effects<C>) {
        let retry = self.tun.accept_retry;
        let ballot = self.ballot;
        let peers = self.cfg.peers(self.me);
        for (&slot, p) in self.proposals.iter_mut() {
            if now.since(p.last_sent) < retry {
                continue;
            }
            p.last_sent = now;
            for &peer in &peers {
                if !p.acks.contains(&peer) {
                    fx.outbound.push((
                        peer,
                        PaxosMsg::Accept {
                            ballot,
                            slot,
                            cmd: p.cmd.clone(),
                        },
                    ));
                }
            }
        }
    }

    fn set_promised(&mut self, ballot: Ballot, fx: &mut Effects<C>) {
        if ballot > self.promised {
            self.promised = ballot;
            fx.persist
                .push((KEY_PROMISED.to_owned(), wire::to_bytes(&ballot)));
        } else if ballot == self.promised {
            // Idempotent re-promise; nothing to persist.
        }
    }

    fn note_leader_contact(&mut self, from: NodeId, now: SimTime) {
        if from != self.me {
            self.leader_hint = Some(from);
            self.reset_election_deadline(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A zero-latency, lossless in-memory harness that shuttles messages
    /// between cores — pure protocol-logic testing without the simulator.
    struct Cluster {
        cores: BTreeMap<NodeId, MultiPaxos<u64>>,
        inbox: VecDeque<(NodeId, NodeId, PaxosMsg<u64>)>,
        committed: BTreeMap<NodeId, Vec<(Slot, u64)>>,
        /// Links (from, to) currently discarded.
        cut: BTreeSet<(NodeId, NodeId)>,
        now: SimTime,
    }

    impl Cluster {
        fn new(n: u64) -> Self {
            let members: Vec<NodeId> = (0..n).map(NodeId).collect();
            let cfg = StaticConfig::new(members.clone());
            let now = SimTime::ZERO;
            let cores = members
                .iter()
                .map(|&m| {
                    (
                        m,
                        MultiPaxos::new(m, cfg.clone(), now, PaxosTunables::default()),
                    )
                })
                .collect();
            Cluster {
                cores,
                inbox: VecDeque::new(),
                committed: BTreeMap::new(),
                cut: BTreeSet::new(),
                now,
            }
        }

        fn absorb(&mut self, from: NodeId, fx: Effects<u64>) {
            for (to, msg) in fx.outbound {
                self.inbox.push_back((from, to, msg));
            }
            self.committed
                .entry(from)
                .or_default()
                .extend(fx.committed.into_iter().map(|(s, c)| (s, *c)));
        }

        fn tick_all(&mut self) {
            let ids: Vec<NodeId> = self.cores.keys().copied().collect();
            for id in ids {
                let fx = self.cores.get_mut(&id).unwrap().tick(self.now);
                self.absorb(id, fx);
            }
        }

        fn drain(&mut self) {
            while let Some((from, to, msg)) = self.inbox.pop_front() {
                if self.cut.contains(&(from, to)) {
                    continue;
                }
                if let Some(core) = self.cores.get_mut(&to) {
                    let fx = core.on_message(from, msg, self.now);
                    self.absorb(to, fx);
                }
            }
        }

        fn advance(&mut self, d: SimDuration) {
            self.now += d;
            self.tick_all();
            self.drain();
        }

        /// Runs until some node is leader; returns its id.
        fn elect(&mut self) -> NodeId {
            for _ in 0..1000 {
                self.advance(SimDuration::from_millis(10));
                if let Some(l) = self.leader() {
                    return l;
                }
            }
            panic!("no leader elected");
        }

        fn leader(&self) -> Option<NodeId> {
            self.cores.values().find(|c| c.is_leader()).map(|c| c.me())
        }

        fn propose_at_leader(&mut self, cmd: u64) {
            let l = self.leader().expect("need a leader");
            let (fx, out) = self.cores.get_mut(&l).unwrap().propose(cmd, self.now);
            assert_eq!(out, ProposeOutcome::Accepted);
            self.absorb(l, fx);
            self.drain();
        }

        fn isolate(&mut self, node: NodeId) {
            let ids: Vec<NodeId> = self.cores.keys().copied().collect();
            for id in ids {
                if id != node {
                    self.cut.insert((node, id));
                    self.cut.insert((id, node));
                }
            }
        }

        fn heal(&mut self) {
            self.cut.clear();
        }

        fn assert_logs_agree(&self) {
            // No two replicas may disagree on any chosen slot.
            let ids: Vec<NodeId> = self.cores.keys().copied().collect();
            for i in 0..ids.len() {
                for j in (i + 1)..ids.len() {
                    let (a, b) = (&self.cores[&ids[i]], &self.cores[&ids[j]]);
                    let upto = a.chosen_upto().min(b.chosen_upto());
                    for s in 0..upto.0 {
                        assert_eq!(
                            a.chosen_entry(Slot(s)),
                            b.chosen_entry(Slot(s)),
                            "logs diverge at slot {s}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn single_node_elects_itself_and_commits_immediately() {
        let mut c = Cluster::new(1);
        let l = c.elect();
        assert_eq!(l, NodeId(0));
        c.propose_at_leader(7);
        assert_eq!(c.committed[&l], vec![(Slot(0), 7)]);
    }

    #[test]
    fn three_nodes_elect_exactly_one_leader() {
        let mut c = Cluster::new(3);
        c.elect();
        let leaders = c.cores.values().filter(|x| x.is_leader()).count();
        assert_eq!(leaders, 1);
        // Everyone agrees on the hint after a heartbeat round.
        c.advance(SimDuration::from_millis(30));
        let l = c.leader().unwrap();
        for core in c.cores.values() {
            assert_eq!(core.leader_hint(), Some(l));
        }
    }

    #[test]
    fn commands_commit_on_every_replica_in_order() {
        let mut c = Cluster::new(3);
        c.elect();
        for i in 1..=10 {
            c.propose_at_leader(i);
        }
        c.advance(SimDuration::from_millis(50));
        for (_, log) in c.committed.iter() {
            let vals: Vec<u64> = log.iter().map(|&(_, v)| v).collect();
            assert_eq!(vals, (1..=10).collect::<Vec<u64>>());
        }
        c.assert_logs_agree();
    }

    #[test]
    fn follower_propose_is_redirected() {
        let mut c = Cluster::new(3);
        let l = c.elect();
        c.advance(SimDuration::from_millis(30));
        let follower = c.cores.keys().copied().find(|&n| n != l).unwrap();
        let (_, out) = c
            .cores
            .get_mut(&follower)
            .unwrap()
            .propose(9, SimTime::ZERO);
        assert_eq!(out, ProposeOutcome::NotLeader(Some(l)));
    }

    #[test]
    fn leader_failover_preserves_committed_entries() {
        let mut c = Cluster::new(3);
        let l1 = c.elect();
        for i in 1..=5 {
            c.propose_at_leader(i);
        }
        c.advance(SimDuration::from_millis(50));
        c.isolate(l1);
        // Followers time out and elect a new leader.
        let mut l2 = l1;
        for _ in 0..500 {
            c.advance(SimDuration::from_millis(10));
            if let Some(l) = c
                .cores
                .values()
                .filter(|x| x.me() != l1 && x.is_leader())
                .map(|x| x.me())
                .next()
            {
                l2 = l;
                break;
            }
        }
        assert_ne!(l2, l1, "a new leader must emerge");
        // New leader still has the old entries and can extend the log.
        let (fx, out) = c.cores.get_mut(&l2).unwrap().propose(99, c.now);
        assert_eq!(out, ProposeOutcome::Accepted);
        c.absorb(l2, fx);
        c.drain();
        c.advance(SimDuration::from_millis(100));
        let log = &c.committed[&l2];
        let vals: Vec<u64> = log.iter().map(|&(_, v)| v).collect();
        assert!(vals.starts_with(&[1, 2, 3, 4, 5]), "prefix lost: {vals:?}");
        assert!(vals.contains(&99));
        c.assert_logs_agree();
    }

    #[test]
    fn old_leader_rejoining_steps_down_and_catches_up() {
        let mut c = Cluster::new(3);
        let l1 = c.elect();
        c.propose_at_leader(1);
        c.isolate(l1);
        for _ in 0..500 {
            c.advance(SimDuration::from_millis(10));
            if c.cores.values().any(|x| x.me() != l1 && x.is_leader()) {
                break;
            }
        }
        let l2 = c
            .cores
            .values()
            .find(|x| x.is_leader() && x.me() != l1)
            .map(|x| x.me())
            .expect("new leader");
        let (fx, _) = c.cores.get_mut(&l2).unwrap().propose(2, c.now);
        c.absorb(l2, fx);
        c.drain();
        c.heal();
        c.advance(SimDuration::from_millis(500));
        assert!(!c.cores[&l1].is_leader(), "old leader must step down");
        assert_eq!(c.cores[&l1].chosen_upto(), c.cores[&l2].chosen_upto());
        c.assert_logs_agree();
    }

    #[test]
    fn minority_partition_cannot_commit() {
        let mut c = Cluster::new(3);
        let l = c.elect();
        c.isolate(l);
        let (fx, out) = c.cores.get_mut(&l).unwrap().propose(42, c.now);
        assert_eq!(out, ProposeOutcome::Accepted);
        c.absorb(l, fx);
        c.advance(SimDuration::from_millis(40));
        // The isolated leader must not have committed 42.
        assert!(c
            .committed
            .get(&l)
            .map(|v| !v.iter().any(|&(_, x)| x == 42))
            .unwrap_or(true));
    }

    #[test]
    fn recovery_restores_acceptor_state() {
        let mut c = Cluster::new(3);
        c.elect();
        c.propose_at_leader(5);
        c.advance(SimDuration::from_millis(50));

        // Capture what node 1 would have persisted by re-deriving it: crash
        // node 1 and rebuild from a synthetic store fed with its state.
        let items: Vec<(String, Vec<u8>)> = {
            let core = &c.cores[&NodeId(1)];
            let mut v = vec![(KEY_PROMISED.to_owned(), wire::to_bytes(&core.promised))];
            for (&s, e) in &core.accepted {
                v.push((accepted_key(s), wire::to_bytes(e)));
            }
            v
        };
        let cfg = c.cores[&NodeId(1)].config().clone();
        let recovered = MultiPaxos::<u64>::recover(
            NodeId(1),
            cfg,
            SimTime::ZERO,
            PaxosTunables::default(),
            items,
        );
        assert_eq!(recovered.promised, c.cores[&NodeId(1)].promised);
        assert_eq!(recovered.accepted, c.cores[&NodeId(1)].accepted);
        assert_eq!(recovered.role(), Role::Follower);
    }

    #[test]
    fn halted_instance_is_inert() {
        let mut c = Cluster::new(3);
        let l = c.elect();
        c.cores.get_mut(&l).unwrap().halt();
        assert!(c.cores[&l].is_halted());
        let (fx, out) = c.cores.get_mut(&l).unwrap().propose(1, c.now);
        assert!(fx.is_empty());
        assert_eq!(out, ProposeOutcome::NotLeader(None));
        let fx = c
            .cores
            .get_mut(&l)
            .unwrap()
            .tick(c.now + SimDuration::from_secs(10));
        assert!(fx.is_empty());
    }

    #[test]
    fn candidate_queues_commands_and_proposes_them_on_winning() {
        let mut c = Cluster::new(3);
        // Force node 0 into candidacy without letting messages flow.
        let mut fx0 = Effects::new();
        c.cores
            .get_mut(&NodeId(0))
            .unwrap()
            .start_election(c.now, &mut fx0);
        let (qfx, out) = c.cores.get_mut(&NodeId(0)).unwrap().propose(77, c.now);
        assert!(qfx.is_empty());
        assert_eq!(out, ProposeOutcome::Accepted);
        assert_eq!(c.cores[&NodeId(0)].pending_len(), 1);
        // Now deliver the election messages; 77 must eventually commit.
        c.absorb(NodeId(0), fx0);
        c.drain();
        c.advance(SimDuration::from_millis(100));
        let vals: Vec<u64> = c.committed[&NodeId(0)].iter().map(|&(_, v)| v).collect();
        assert!(vals.contains(&77), "{vals:?}");
    }

    #[test]
    fn noop_fills_holes_after_failover() {
        // Leader proposes to slot 0 and 1, but slot 0's accepts are lost to
        // all followers; a new leader must fill or complete both slots and
        // the logs must stay consistent.
        let mut c = Cluster::new(3);
        let l1 = c.elect();
        c.advance(SimDuration::from_millis(30));
        // Cut l1 off before proposing, so only l1 has the accepted entries.
        c.isolate(l1);
        let (fx, _) = c.cores.get_mut(&l1).unwrap().propose(11, c.now);
        c.absorb(l1, fx);
        let (fx, _) = c.cores.get_mut(&l1).unwrap().propose(12, c.now);
        c.absorb(l1, fx);
        c.drain(); // messages to others are cut
                   // New leader emerges among the rest and commits something.
        for _ in 0..500 {
            c.advance(SimDuration::from_millis(10));
            if c.cores.values().any(|x| x.me() != l1 && x.is_leader()) {
                break;
            }
        }
        let l2 = c
            .cores
            .values()
            .find(|x| x.is_leader() && x.me() != l1)
            .map(|x| x.me())
            .expect("new leader");
        let (fx, _) = c.cores.get_mut(&l2).unwrap().propose(99, c.now);
        c.absorb(l2, fx);
        c.drain();
        c.heal();
        for _ in 0..50 {
            c.advance(SimDuration::from_millis(10));
        }
        c.assert_logs_agree();
        // Slot 0 was decided as 99 by the new leader's quorum; the old
        // leader's competing 11 must never displace it. (Its *other*
        // proposal, 12, may legitimately be completed at a later slot by a
        // future leader — Paxos only forbids changing decided slots.)
        for core in c.cores.values() {
            assert!(core.chosen_upto() >= Slot(1));
            assert_eq!(core.chosen_entry(Slot(0)), Some(&99));
        }
    }

    #[test]
    fn leases_require_configuration_and_leadership() {
        let mut c = Cluster::new(3);
        let l = c.elect();
        // Leases disabled by default: never valid.
        assert!(!c.cores[&l].lease_valid(c.now));
    }

    #[test]
    fn lease_is_granted_by_quorum_acks_and_expires_when_isolated() {
        let members: Vec<NodeId> = (0..3).map(NodeId).collect();
        let cfg = StaticConfig::new(members.clone());
        let tun = PaxosTunables {
            lease_duration: Some(SimDuration::from_millis(100)),
            ..PaxosTunables::default()
        };
        let mut c = Cluster::new(3);
        for &m in &members {
            c.cores.insert(
                m,
                MultiPaxos::new(m, cfg.clone(), SimTime::ZERO, tun.clone()),
            );
        }
        let l = c.elect();
        // Heartbeats + acks flow during advance; the lease becomes valid.
        c.advance(SimDuration::from_millis(30));
        assert!(
            c.cores[&l].lease_valid(c.now),
            "quorum-acked heartbeats must grant the lease"
        );
        // Followers never hold leases.
        for (&id, core) in &c.cores {
            if id != l {
                assert!(!core.lease_valid(c.now));
            }
        }
        // Isolate the leader: no fresh acks, the lease dies within its
        // duration (well before any new leader could be elected).
        c.isolate(l);
        for _ in 0..12 {
            c.advance(SimDuration::from_millis(10));
        }
        assert!(
            !c.cores[&l].lease_valid(c.now),
            "an isolated leader's lease must expire"
        );
    }

    #[test]
    fn stepping_down_drops_the_lease_immediately() {
        let members: Vec<NodeId> = (0..3).map(NodeId).collect();
        let cfg = StaticConfig::new(members.clone());
        let tun = PaxosTunables {
            lease_duration: Some(SimDuration::from_millis(100)),
            ..PaxosTunables::default()
        };
        let mut c = Cluster::new(3);
        for &m in &members {
            c.cores.insert(
                m,
                MultiPaxos::new(m, cfg.clone(), SimTime::ZERO, tun.clone()),
            );
        }
        let l = c.elect();
        c.advance(SimDuration::from_millis(30));
        assert!(c.cores[&l].lease_valid(c.now));
        // A higher-ballot heartbeat (an established rival leader) forces a
        // step-down; the (time-wise still live) lease must be gone with
        // the role. (A bare higher *prepare* no longer deposes a leader
        // with fresh acks — that is the disruptive-election guard.)
        let higher = Ballot::new(c.cores[&l].ballot().round + 10, NodeId(1));
        let fx = c.cores.get_mut(&l).unwrap().on_message(
            NodeId(1),
            PaxosMsg::Heartbeat {
                ballot: higher,
                chosen_upto: Slot(0),
                sent_at: c.now,
            },
            c.now,
        );
        drop(fx);
        assert!(!c.cores[&l].is_leader());
        assert!(!c.cores[&l].lease_valid(c.now));
    }

    /// The disruptive-election guard: a rejoining replica's higher-ballot
    /// prepare must not depose a live leader, and the leader, once its
    /// current ballot is rejected by the laggard, re-prepares immediately
    /// at a higher round instead of waiting out an election timeout.
    #[test]
    fn a_rejoining_replica_cannot_depose_a_live_leader() {
        let mut c = Cluster::new(3);
        let l = c.elect();
        for i in 1..=5 {
            c.propose_at_leader(i);
        }
        c.advance(SimDuration::from_millis(50));
        let laggard = c.cores.keys().copied().find(|&n| n != l).unwrap();

        // The laggard campaigns out of the blue (a restart looks exactly
        // like this: fresh timers, stale log, no heartbeat heard yet).
        let fx = c.cores.get_mut(&laggard).unwrap().campaign(c.now);
        c.absorb(laggard, fx);
        c.drain();
        c.advance(SimDuration::from_millis(100));

        // The cluster must re-converge on a leader that is NOT the
        // laggard, and quickly (no election-timeout dead air).
        let new_l = c.leader().expect("a leader survives the disruption");
        assert_ne!(new_l, laggard, "the laggard must not win");
        // Commits still flow afterwards.
        c.propose_at_leader(99);
        c.advance(SimDuration::from_millis(50));
        let vals: Vec<u64> = c.committed[&new_l].iter().map(|&(_, v)| v).collect();
        assert!(vals.contains(&99), "{vals:?}");
        c.assert_logs_agree();
    }

    /// A batchable test command: `Many` carries several `One`s.
    #[derive(Clone, Debug, PartialEq)]
    enum BCmd {
        Noop,
        One(u64),
        Many(Vec<u64>),
    }

    impl wire::Wire for BCmd {
        fn encode(&self, buf: &mut Vec<u8>) {
            match self {
                BCmd::Noop => buf.push(0),
                BCmd::One(v) => {
                    buf.push(1);
                    v.encode(buf);
                }
                BCmd::Many(vs) => {
                    buf.push(2);
                    vs.encode(buf);
                }
            }
        }
        fn decode(buf: &mut &[u8]) -> Option<Self> {
            match u8::decode(buf)? {
                0 => Some(BCmd::Noop),
                1 => Some(BCmd::One(u64::decode(buf)?)),
                2 => Some(BCmd::Many(Vec::<u64>::decode(buf)?)),
                _ => None,
            }
        }
    }

    impl Command for BCmd {
        fn noop() -> Self {
            BCmd::Noop
        }
        fn supports_batching() -> bool {
            true
        }
        fn batch(cmds: Vec<Self>) -> Option<Self> {
            let mut vs = Vec::with_capacity(cmds.len());
            for c in cmds {
                match c {
                    BCmd::Noop => {}
                    BCmd::One(v) => vs.push(v),
                    BCmd::Many(inner) => vs.extend(inner),
                }
            }
            Some(BCmd::Many(vs))
        }
    }

    /// A 3-member config with two live cores; the third member never
    /// answers, so a proposal stays in flight until the follower's ack is
    /// delivered by hand — exactly the load the accumulator reacts to.
    fn loaded_pair(tun: PaxosTunables) -> (MultiPaxos<BCmd>, MultiPaxos<BCmd>) {
        let members: Vec<NodeId> = (0..3).map(NodeId).collect();
        let cfg = StaticConfig::new(members);
        let mut leader =
            MultiPaxos::<BCmd>::new(NodeId(0), cfg.clone(), SimTime::ZERO, tun.clone());
        let mut follower = MultiPaxos::<BCmd>::new(NodeId(1), cfg, SimTime::ZERO, tun);
        // Hand-run the election: deliver only node 1's promise.
        let mut fx = Effects::new();
        leader.start_election(SimTime::ZERO, &mut fx);
        let prepare = fx
            .outbound
            .iter()
            .find(|(to, _)| *to == NodeId(1))
            .map(|(_, m)| m.clone())
            .expect("prepare to node 1");
        let pfx = follower.on_message(NodeId(0), prepare, SimTime::ZERO);
        for (to, msg) in pfx.outbound {
            if to == NodeId(0) {
                let _ = leader.on_message(NodeId(1), msg, SimTime::ZERO);
            }
        }
        assert!(leader.is_leader());
        (leader, follower)
    }

    /// Delivers every leader->follower message and every reply, returning
    /// the leader's committed entries from this exchange.
    fn pump_pair(
        leader: &mut MultiPaxos<BCmd>,
        follower: &mut MultiPaxos<BCmd>,
        fx: Effects<BCmd>,
        now: SimTime,
    ) -> Vec<(Slot, BCmd)> {
        let mut committed = Vec::new();
        let mut to_follower: VecDeque<PaxosMsg<BCmd>> = fx
            .outbound
            .into_iter()
            .filter(|(to, _)| *to == NodeId(1))
            .map(|(_, m)| m)
            .collect();
        committed.extend(fx.committed.into_iter().map(|(s, c)| (s, (*c).clone())));
        while let Some(msg) = to_follower.pop_front() {
            let ffx = follower.on_message(NodeId(0), msg, now);
            for (to, reply) in ffx.outbound {
                if to == NodeId(0) {
                    let lfx = leader.on_message(NodeId(1), reply, now);
                    committed.extend(lfx.committed.into_iter().map(|(s, c)| (s, (*c).clone())));
                    to_follower.extend(
                        lfx.outbound
                            .into_iter()
                            .filter(|(to, _)| *to == NodeId(1))
                            .map(|(_, m)| m),
                    );
                }
            }
        }
        committed
    }

    #[test]
    fn accumulator_batches_under_load_and_flushes_when_idle() {
        let tun = PaxosTunables {
            max_batch: 8,
            max_delay: SimDuration::from_secs(10),
            window: 0,
            ..PaxosTunables::default()
        };
        let (mut leader, mut follower) = loaded_pair(tun);
        let now = SimTime::ZERO;
        // Idle pipeline: the first command is proposed immediately.
        let (fx1, out) = leader.propose(BCmd::One(1), now);
        assert_eq!(out, ProposeOutcome::Accepted);
        assert_eq!(leader.inflight_len(), 1);
        assert_eq!(leader.accum_len(), 0);
        // Loaded pipeline: the next three accumulate instead of proposing.
        for v in 2..=4 {
            let (fx, out) = leader.propose(BCmd::One(v), now);
            assert_eq!(out, ProposeOutcome::Accepted);
            assert!(fx.outbound.is_empty(), "buffered, not proposed");
        }
        assert_eq!(leader.inflight_len(), 1);
        assert_eq!(leader.accum_len(), 3);
        // Deliver the first round: its completion drains the accumulator
        // as one batch.
        let committed = pump_pair(&mut leader, &mut follower, fx1, now);
        assert_eq!(leader.accum_len(), 0);
        assert_eq!(
            committed,
            vec![
                (Slot(0), BCmd::One(1)),
                (Slot(1), BCmd::Many(vec![2, 3, 4]))
            ]
        );
    }

    #[test]
    fn full_accumulator_flushes_even_under_load() {
        let tun = PaxosTunables {
            max_batch: 3,
            max_delay: SimDuration::from_secs(10),
            window: 0,
            ..PaxosTunables::default()
        };
        let (mut leader, _follower) = loaded_pair(tun);
        let now = SimTime::ZERO;
        let _ = leader.propose(BCmd::One(1), now); // occupies the pipeline
        for v in 2..=3 {
            let _ = leader.propose(BCmd::One(v), now);
        }
        assert_eq!(leader.accum_len(), 2);
        // The third buffered command fills the batch: forced flush.
        let (fx, _) = leader.propose(BCmd::One(4), now);
        assert_eq!(leader.accum_len(), 0);
        assert_eq!(leader.inflight_len(), 2);
        assert!(fx
            .outbound
            .iter()
            .any(|(_, m)| matches!(m, PaxosMsg::Accept { cmd, .. }
                if **cmd == BCmd::Many(vec![2, 3, 4]))));
    }

    #[test]
    fn max_delay_forces_a_flush_on_tick() {
        let tun = PaxosTunables {
            max_batch: 100,
            max_delay: SimDuration::from_millis(50),
            window: 0,
            ..PaxosTunables::default()
        };
        let (mut leader, _follower) = loaded_pair(tun);
        let now = SimTime::ZERO;
        let _ = leader.propose(BCmd::One(1), now);
        let _ = leader.propose(BCmd::One(2), now);
        let _ = leader.propose(BCmd::One(3), now);
        assert_eq!(leader.accum_len(), 2);
        // Under the delay: tick flushes nothing.
        let _ = leader.tick(now + SimDuration::from_millis(20));
        assert_eq!(leader.accum_len(), 2);
        // Past the delay: tick forces the flush.
        let fx = leader.tick(now + SimDuration::from_millis(60));
        assert_eq!(leader.accum_len(), 0);
        assert!(fx
            .outbound
            .iter()
            .any(|(_, m)| matches!(m, PaxosMsg::Accept { cmd, .. }
                if **cmd == BCmd::Many(vec![2, 3]))));
    }

    #[test]
    fn window_caps_outstanding_proposals_for_unbatchable_commands() {
        // u64 has no batch representation: the window alone applies, one
        // command per slot.
        let members: Vec<NodeId> = (0..3).map(NodeId).collect();
        let cfg = StaticConfig::new(members.clone());
        let tun = PaxosTunables {
            window: 2,
            ..PaxosTunables::default()
        };
        let mut c = Cluster::new(3);
        for &m in &members {
            c.cores.insert(
                m,
                MultiPaxos::new(m, cfg.clone(), SimTime::ZERO, tun.clone()),
            );
        }
        let l = c.elect();
        // Propose five commands without letting any acks flow.
        for v in 1..=5 {
            let (fx, out) = c.cores.get_mut(&l).unwrap().propose(v, c.now);
            assert_eq!(out, ProposeOutcome::Accepted);
            c.absorb(l, fx);
        }
        {
            let core = &c.cores[&l];
            assert_eq!(core.inflight_len(), 2, "window caps in-flight slots");
            assert_eq!(core.accum_len(), 3);
        }
        // Draining the network completes rounds, freeing window slots
        // until everything commits in order.
        c.drain();
        c.advance(SimDuration::from_millis(50));
        let vals: Vec<u64> = c.committed[&l].iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, vec![1, 2, 3, 4, 5]);
        c.assert_logs_agree();
    }

    #[test]
    fn stepping_down_drops_the_accumulator() {
        let tun = PaxosTunables {
            max_batch: 8,
            max_delay: SimDuration::from_secs(10),
            window: 0,
            ..PaxosTunables::default()
        };
        let (mut leader, _follower) = loaded_pair(tun);
        let _ = leader.propose(BCmd::One(1), SimTime::ZERO);
        let _ = leader.propose(BCmd::One(2), SimTime::ZERO);
        assert_eq!(leader.accum_len(), 1);
        let higher = Ballot::new(leader.ballot().round + 10, NodeId(2));
        let _ = leader.on_message(
            NodeId(2),
            PaxosMsg::Prepare {
                ballot: higher,
                from_slot: Slot(0),
            },
            SimTime::ZERO,
        );
        assert!(!leader.is_leader());
        assert_eq!(leader.accum_len(), 0);
    }

    #[test]
    fn chosen_watermark_and_entries_are_exposed() {
        let mut c = Cluster::new(3);
        c.elect();
        c.propose_at_leader(3);
        c.advance(SimDuration::from_millis(50));
        let core = c.cores.values().next().unwrap();
        assert_eq!(core.chosen_upto(), Slot(1));
        assert_eq!(core.chosen_entry(Slot(0)), Some(&3));
        assert_eq!(core.chosen_entry(Slot(5)), None);
    }
}
