//! `simnet` adapters for a *standalone* static SMR deployment: a replica
//! actor wrapping [`MultiPaxos`] and a closed-loop client.
//!
//! The composition layer (`rsmr-core`) embeds the same [`MultiPaxos`] core
//! directly; these actors exist so the building block can be deployed,
//! tested and benchmarked on its own (experiments E1/E7/E8 use them as the
//! static baseline).

use std::collections::BTreeMap;

use simnet::wire::{self, Wire};
use simnet::{
    Actor, Context, DomainEvent, Message, NodeId, RetryBackoff, SimDuration, SimTime, StableStore,
    Timer,
};

use crate::config::StaticConfig;
use crate::effects::Effects;
use crate::msg::PaxosMsg;
use crate::multipaxos::{MultiPaxos, PaxosTunables, ProposeOutcome};
use crate::types::{Command, Slot};

/// How often replica actors pump [`MultiPaxos::tick`].
pub const TICK_INTERVAL: SimDuration = SimDuration::from_millis(5);

/// Storage namespace for persisted Paxos state.
const PERSIST_PREFIX: &str = "px/";

/// A command wrapper that carries client correlation through the log.
#[derive(Clone, Debug, PartialEq)]
pub struct TaggedCmd<C> {
    /// The submitting client (or [`NodeId::EXTERNAL`] for no-ops).
    pub client: NodeId,
    /// The client's request number.
    pub req_id: u64,
    /// The application payload.
    pub payload: C,
}

impl<C: Wire> Wire for TaggedCmd<C> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.client.encode(buf);
        self.req_id.encode(buf);
        self.payload.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(TaggedCmd {
            client: NodeId::decode(buf)?,
            req_id: u64::decode(buf)?,
            payload: C::decode(buf)?,
        })
    }
}

impl<C: Command> Command for TaggedCmd<C> {
    fn noop() -> Self {
        TaggedCmd {
            client: NodeId::EXTERNAL,
            req_id: 0,
            payload: C::noop(),
        }
    }
}

/// Messages of a standalone static SMR world.
#[derive(Clone, Debug)]
pub enum SmrMsg<C: Command> {
    /// Replica ↔ replica protocol traffic.
    Paxos(PaxosMsg<TaggedCmd<C>>),
    /// Client → replica: order this command.
    Request {
        /// Client request number (for retransmission and reply matching).
        req_id: u64,
        /// The command to replicate.
        cmd: C,
    },
    /// Replica → client: your command committed at `slot`.
    Reply {
        /// Echo of the request number.
        req_id: u64,
        /// The log position the command occupies.
        slot: Slot,
    },
    /// Replica → client: not the leader, try `leader`.
    Redirect {
        /// Echo of the request number.
        req_id: u64,
        /// Best-known leader, if any.
        leader: Option<NodeId>,
    },
}

impl<C: Command> Message for SmrMsg<C> {
    fn label(&self) -> &'static str {
        match self {
            SmrMsg::Paxos(inner) => inner.label(),
            SmrMsg::Request { .. } => "smr.request",
            SmrMsg::Reply { .. } => "smr.reply",
            SmrMsg::Redirect { .. } => "smr.redirect",
        }
    }
    fn size_hint(&self) -> usize {
        match self {
            SmrMsg::Paxos(inner) => inner.size_hint(),
            SmrMsg::Request { .. } => 40,
            SmrMsg::Reply { .. } => 24,
            SmrMsg::Redirect { .. } => 24,
        }
    }
}

/// A replica of a standalone static SMR instance.
pub struct ReplicaActor<C: Command> {
    core: MultiPaxos<TaggedCmd<C>>,
    /// Commands this replica proposed, awaiting commit: `req → client`.
    waiting: BTreeMap<(NodeId, u64), ()>,
    /// Total commands this replica has observed committing.
    committed: u64,
}

impl<C: Command> ReplicaActor<C> {
    /// Creates a fresh replica.
    pub fn new(me: NodeId, cfg: StaticConfig, tun: PaxosTunables) -> Self {
        ReplicaActor {
            core: MultiPaxos::new(me, cfg, SimTime::ZERO, tun),
            waiting: BTreeMap::new(),
            committed: 0,
        }
    }

    /// Rebuilds a replica from stable storage after a crash.
    pub fn recover(me: NodeId, cfg: StaticConfig, tun: PaxosTunables, store: &StableStore) -> Self {
        let items: Vec<(String, Vec<u8>)> = store
            .keys_with_prefix(PERSIST_PREFIX)
            .map(|k| {
                (
                    k[PERSIST_PREFIX.len()..].to_owned(),
                    store.get(k).expect("key just listed").to_vec(),
                )
            })
            .collect();
        ReplicaActor {
            core: MultiPaxos::recover(me, cfg, SimTime::ZERO, tun, items),
            waiting: BTreeMap::new(),
            committed: 0,
        }
    }

    /// The embedded protocol core (read-only).
    pub fn core(&self) -> &MultiPaxos<TaggedCmd<C>> {
        &self.core
    }

    /// Commands observed committing at this replica.
    pub fn committed_count(&self) -> u64 {
        self.committed
    }

    fn apply_effects(&mut self, ctx: &mut Context<'_, SmrMsg<C>>, fx: Effects<TaggedCmd<C>>) {
        fx.record_stats(ctx.metrics());
        // Write-ahead: persist before anything leaves the node.
        for (key, value) in fx.persist {
            ctx.storage().put(&format!("{PERSIST_PREFIX}{key}"), value);
        }
        for (to, msg) in fx.outbound {
            ctx.send(to, SmrMsg::Paxos(msg));
        }
        // A static deployment never reconfigures: everything lives in epoch 0.
        for slot in fx.proposed {
            ctx.emit_event(DomainEvent::CmdProposed {
                epoch: 0,
                slot: slot.0,
            });
        }
        for (slot, cmd) in fx.committed {
            self.committed += 1;
            let now = ctx.now();
            ctx.metrics().incr("smr.committed", 1);
            ctx.metrics().timeline_push("smr.commits", now, 1.0);
            ctx.emit_event(DomainEvent::CmdCommitted {
                epoch: 0,
                slot: slot.0,
            });
            if !cmd.is_noop() {
                ctx.emit_event(DomainEvent::CmdApplied {
                    client: cmd.client,
                    seq: cmd.req_id,
                    epoch: 0,
                    slot: slot.0,
                });
            }
            if !cmd.is_noop() && self.waiting.remove(&(cmd.client, cmd.req_id)).is_some() {
                ctx.send(
                    cmd.client,
                    SmrMsg::Reply {
                        req_id: cmd.req_id,
                        slot,
                    },
                );
            }
        }
        if fx.became_leader {
            ctx.metrics().incr("smr.leader_elections", 1);
        }
    }
}

impl<C: Command> Actor for ReplicaActor<C> {
    type Msg = SmrMsg<C>;

    fn on_start(&mut self, ctx: &mut Context<'_, SmrMsg<C>>) {
        ctx.set_timer(TICK_INTERVAL, 0);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, SmrMsg<C>>, from: NodeId, msg: SmrMsg<C>) {
        match msg {
            SmrMsg::Paxos(inner) => {
                let fx = self.core.on_message(from, inner, ctx.now());
                self.apply_effects(ctx, fx);
            }
            SmrMsg::Request { req_id, cmd } => {
                let tagged = TaggedCmd {
                    client: from,
                    req_id,
                    payload: cmd,
                };
                let (fx, outcome) = self.core.propose(tagged, ctx.now());
                match outcome {
                    ProposeOutcome::Accepted => {
                        self.waiting.insert((from, req_id), ());
                    }
                    ProposeOutcome::NotLeader(leader) => {
                        ctx.send(from, SmrMsg::Redirect { req_id, leader });
                    }
                }
                self.apply_effects(ctx, fx);
            }
            SmrMsg::Reply { .. } | SmrMsg::Redirect { .. } => {
                // Client-bound messages mis-delivered to a replica: ignore.
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, SmrMsg<C>>, _timer: Timer) {
        let fx = self.core.tick(ctx.now());
        self.apply_effects(ctx, fx);
        ctx.set_timer(TICK_INTERVAL, 0);
    }
}

/// A closed-loop client for standalone deployments: keeps exactly one
/// request in flight, retransmitting on timeout and following redirects.
pub struct SmrClient<C: Command> {
    servers: Vec<NodeId>,
    target: NodeId,
    gen: Box<dyn FnMut(u64) -> C>,
    next_req: u64,
    /// `(req_id, command, sent_at, first_sent_at)` of the in-flight request.
    inflight: Option<(u64, C, SimTime, SimTime)>,
    /// Stop issuing after this many completions (`None` = run forever).
    limit: Option<u64>,
    completed: u64,
    retransmit_after: SimDuration,
    backoff: RetryBackoff,
}

impl<C: Command> SmrClient<C> {
    /// Creates a client that will issue commands produced by `gen` to the
    /// given servers, completing at most `limit` requests.
    pub fn new(
        servers: Vec<NodeId>,
        gen: impl FnMut(u64) -> C + 'static,
        limit: Option<u64>,
    ) -> Self {
        let target = servers[0];
        SmrClient {
            servers,
            target,
            gen: Box::new(gen),
            next_req: 0,
            inflight: None,
            limit,
            completed: 0,
            retransmit_after: SimDuration::from_millis(300),
            backoff: RetryBackoff::new(SimDuration::from_millis(300)),
        }
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    fn issue_next(&mut self, ctx: &mut Context<'_, SmrMsg<C>>) {
        if let Some(limit) = self.limit {
            if self.next_req >= limit {
                return;
            }
        }
        let req_id = self.next_req;
        self.next_req += 1;
        self.backoff.reset();
        let cmd = (self.gen)(req_id);
        self.inflight = Some((req_id, cmd.clone(), ctx.now(), ctx.now()));
        // Fresh submission only — retransmits and redirects re-send the
        // same request and do not reopen the command's latency span.
        ctx.emit_event(DomainEvent::CmdSubmitted {
            client: ctx.node_id(),
            seq: req_id,
        });
        ctx.send(self.target, SmrMsg::Request { req_id, cmd });
    }

    fn rotate_target(&mut self) {
        let idx = self
            .servers
            .iter()
            .position(|&s| s == self.target)
            .unwrap_or(0);
        self.target = self.servers[(idx + 1) % self.servers.len()];
    }
}

impl<C: Command> Actor for SmrClient<C> {
    type Msg = SmrMsg<C>;

    fn on_start(&mut self, ctx: &mut Context<'_, SmrMsg<C>>) {
        self.issue_next(ctx);
        ctx.set_timer(self.retransmit_after, 0);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, SmrMsg<C>>, from: NodeId, msg: SmrMsg<C>) {
        match msg {
            SmrMsg::Reply { req_id, .. } => {
                let Some((inflight_id, _, _, first_sent)) = self.inflight else {
                    return;
                };
                if req_id != inflight_id {
                    return; // stale duplicate
                }
                let latency = ctx.now().since(first_sent);
                ctx.metrics()
                    .observe("client.latency_us", latency.as_micros() as f64);
                let now = ctx.now();
                ctx.metrics().timeline_push("client.completes", now, 1.0);
                self.inflight = None;
                self.completed += 1;
                self.issue_next(ctx);
            }
            SmrMsg::Redirect { req_id, leader } => {
                let Some((inflight_id, cmd, _, first_sent)) = self.inflight.clone() else {
                    return;
                };
                if req_id != inflight_id {
                    return;
                }
                match leader {
                    Some(l) if self.servers.contains(&l) => self.target = l,
                    _ => self.rotate_target(),
                }
                // Fresh routing information: restart the backoff.
                self.backoff.reset();
                self.inflight = Some((req_id, cmd.clone(), ctx.now(), first_sent));
                ctx.send(self.target, SmrMsg::Request { req_id, cmd });
                let _ = from;
            }
            SmrMsg::Paxos(_) | SmrMsg::Request { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, SmrMsg<C>>, _timer: Timer) {
        if let Some((req_id, cmd, sent_at, first_sent)) = self.inflight.clone() {
            let salt = ctx.node_id().0 ^ req_id.rotate_left(20);
            if ctx.now().since(sent_at) >= self.backoff.current_delay(salt) {
                if self.backoff.record_attempt() {
                    ctx.metrics().incr("client.backoff_exhausted", 1);
                }
                self.rotate_target();
                ctx.metrics().incr("client.retransmits", 1);
                self.inflight = Some((req_id, cmd.clone(), ctx.now(), first_sent));
                ctx.send(self.target, SmrMsg::Request { req_id, cmd });
            }
        }
        ctx.set_timer(self.retransmit_after, 0);
    }
}

/// Convenience: encode/decode helpers used by tests.
pub fn persist_key(suffix: &str) -> String {
    format!("{PERSIST_PREFIX}{suffix}")
}

/// Re-export used by recovery tests.
pub use wire::to_bytes as encode_for_test;

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NetConfig, Sim};

    type World = Sim<Box<dyn SmrWorldActor>>;

    /// Object-safe erasure so replicas and clients share one `Sim` world.
    trait SmrWorldActor {
        fn start(&mut self, ctx: &mut Context<'_, SmrMsg<u64>>);
        fn message(&mut self, ctx: &mut Context<'_, SmrMsg<u64>>, from: NodeId, msg: SmrMsg<u64>);
        fn timer(&mut self, ctx: &mut Context<'_, SmrMsg<u64>>, timer: Timer);
        fn completed(&self) -> u64 {
            0
        }
        fn committed(&self) -> u64 {
            0
        }
        fn is_leader(&self) -> bool {
            false
        }
    }

    impl SmrWorldActor for ReplicaActor<u64> {
        fn start(&mut self, ctx: &mut Context<'_, SmrMsg<u64>>) {
            Actor::on_start(self, ctx)
        }
        fn message(&mut self, ctx: &mut Context<'_, SmrMsg<u64>>, from: NodeId, msg: SmrMsg<u64>) {
            Actor::on_message(self, ctx, from, msg)
        }
        fn timer(&mut self, ctx: &mut Context<'_, SmrMsg<u64>>, timer: Timer) {
            Actor::on_timer(self, ctx, timer)
        }
        fn committed(&self) -> u64 {
            self.committed_count()
        }
        fn is_leader(&self) -> bool {
            self.core().is_leader()
        }
    }

    impl SmrWorldActor for SmrClient<u64> {
        fn start(&mut self, ctx: &mut Context<'_, SmrMsg<u64>>) {
            Actor::on_start(self, ctx)
        }
        fn message(&mut self, ctx: &mut Context<'_, SmrMsg<u64>>, from: NodeId, msg: SmrMsg<u64>) {
            Actor::on_message(self, ctx, from, msg)
        }
        fn timer(&mut self, ctx: &mut Context<'_, SmrMsg<u64>>, timer: Timer) {
            Actor::on_timer(self, ctx, timer)
        }
        fn completed(&self) -> u64 {
            SmrClient::completed(self)
        }
    }

    impl Actor for Box<dyn SmrWorldActor> {
        type Msg = SmrMsg<u64>;
        fn on_start(&mut self, ctx: &mut Context<'_, SmrMsg<u64>>) {
            (**self).start(ctx)
        }
        fn on_message(
            &mut self,
            ctx: &mut Context<'_, SmrMsg<u64>>,
            from: NodeId,
            msg: SmrMsg<u64>,
        ) {
            (**self).message(ctx, from, msg)
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, SmrMsg<u64>>, timer: Timer) {
            (**self).timer(ctx, timer)
        }
    }

    fn build_world(
        n: u64,
        n_clients: u64,
        limit: u64,
        seed: u64,
    ) -> (World, Vec<NodeId>, Vec<NodeId>) {
        let mut sim: World = Sim::new(seed, NetConfig::lan());
        let servers: Vec<NodeId> = (0..n).map(NodeId).collect();
        let cfg = StaticConfig::new(servers.clone());
        for &s in &servers {
            sim.add_node_with_id(
                s,
                Box::new(ReplicaActor::<u64>::new(
                    s,
                    cfg.clone(),
                    PaxosTunables::default(),
                )),
            );
        }
        let mut clients = Vec::new();
        for c in 0..n_clients {
            let id = NodeId(100 + c);
            sim.add_node_with_id(
                id,
                Box::new(SmrClient::new(servers.clone(), |i| i + 1, Some(limit))),
            );
            clients.push(id);
        }
        (sim, servers, clients)
    }

    #[test]
    fn end_to_end_commands_complete_through_the_simulated_network() {
        let (mut sim, _servers, clients) = build_world(3, 2, 20, 11);
        sim.run_for(SimDuration::from_secs(10));
        for &c in &clients {
            assert_eq!(sim.actor(c).unwrap().completed(), 20);
        }
        assert!(sim.metrics().counter("smr.committed") >= 40);
        let lat = sim.metrics().histogram("client.latency_us").unwrap();
        assert!(lat.count() >= 40);
        assert!(lat.mean() > 0.0);
    }

    #[test]
    fn client_survives_leader_crash_via_retransmission() {
        let (mut sim, servers, clients) = build_world(3, 1, 2000, 13);
        // Crash the leader mid-workload, while requests are in flight.
        sim.run_for(SimDuration::from_millis(400));
        let leader = servers
            .iter()
            .copied()
            .find(|&s| sim.actor(s).map(|a| a.is_leader()).unwrap_or(false))
            .expect("a leader exists");
        let before = sim.actor(clients[0]).unwrap().completed();
        assert!(before < 2000, "crash must interrupt the workload");
        sim.crash(leader);
        sim.run_for(SimDuration::from_secs(30));
        let done = sim.actor(clients[0]).unwrap().completed();
        assert_eq!(done, 2000, "client must finish despite the crash");
        assert!(sim.metrics().counter("client.retransmits") > 0);
    }

    #[test]
    fn crashed_replica_recovers_from_stable_storage_and_rejoins() {
        let (mut sim, servers, clients) = build_world(3, 1, 300, 17);
        sim.run_for(SimDuration::from_secs(2));
        let victim = servers
            .iter()
            .copied()
            .find(|&s| sim.actor(s).map(|a| !a.is_leader()).unwrap_or(false))
            .unwrap();
        sim.crash(victim);
        sim.run_for(SimDuration::from_secs(2));
        let cfg = StaticConfig::new(servers.clone());
        let recovered = ReplicaActor::<u64>::recover(
            victim,
            cfg,
            PaxosTunables::default(),
            sim.storage(victim),
        );
        sim.restart(victim, Box::new(recovered));
        sim.run_for(SimDuration::from_secs(20));
        assert_eq!(sim.actor(clients[0]).unwrap().completed(), 300);
        // The recovered node caught up: it has observed commits.
        assert!(sim.actor(victim).unwrap().committed() > 0);
    }

    #[test]
    fn tagged_cmd_wire_round_trip_and_noop() {
        let c = TaggedCmd {
            client: NodeId(3),
            req_id: 9,
            payload: 77u64,
        };
        let bytes = wire::to_bytes(&c);
        assert_eq!(wire::from_bytes::<TaggedCmd<u64>>(&bytes), Some(c));
        assert!(TaggedCmd::<u64>::noop().is_noop());
    }
}
