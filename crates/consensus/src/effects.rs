//! The output of one protocol-core step.

use std::sync::Arc;

use simnet::NodeId;

use crate::msg::PaxosMsg;
use crate::types::Slot;

/// Everything a sans-I/O protocol step wants done by its host.
///
/// The host (a `simnet` actor, or the composition layer) applies the effects
/// in order: persist first (write-ahead), then send, then hand committed
/// entries to the application.
#[derive(Debug)]
pub struct Effects<C> {
    /// Messages to send, as `(destination, message)`.
    pub outbound: Vec<(NodeId, PaxosMsg<C>)>,
    /// Log entries that became contiguously chosen during this step, in
    /// slot order. Each entry is reported exactly once across the life of
    /// the core. Commands are shared with the core's log (`Arc`).
    pub committed: Vec<(Slot, Arc<C>)>,
    /// Key/value pairs to write to stable storage *before* sending.
    pub persist: Vec<(String, Vec<u8>)>,
    /// Slots this step assigned to newly proposed commands (leader only;
    /// includes queued commands drained when leadership is won). Feeds the
    /// per-command observability spans.
    pub proposed: Vec<Slot>,
    /// True if this step made the node the leader.
    pub became_leader: bool,
    /// True if this step demoted the node from leader.
    pub lost_leadership: bool,
}

impl<C> Default for Effects<C> {
    fn default() -> Self {
        Effects {
            outbound: Vec::new(),
            committed: Vec::new(),
            persist: Vec::new(),
            proposed: Vec::new(),
            became_leader: false,
            lost_leadership: false,
        }
    }
}

impl<C> Effects<C> {
    /// An empty effects value.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `other`'s effects after this one's.
    pub fn merge(&mut self, other: Effects<C>) {
        self.outbound.extend(other.outbound);
        self.committed.extend(other.committed);
        self.persist.extend(other.persist);
        self.proposed.extend(other.proposed);
        self.became_leader |= other.became_leader;
        self.lost_leadership |= other.lost_leadership;
    }

    /// True when the step produced nothing at all.
    pub fn is_empty(&self) -> bool {
        self.outbound.is_empty()
            && self.committed.is_empty()
            && self.persist.is_empty()
            && self.proposed.is_empty()
            && !self.became_leader
            && !self.lost_leadership
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_concatenates_and_ors() {
        let mut a: Effects<u64> = Effects::new();
        assert!(a.is_empty());
        a.committed.push((Slot(0), Arc::new(1)));
        let mut b: Effects<u64> = Effects::new();
        b.committed.push((Slot(1), Arc::new(2)));
        b.became_leader = true;
        a.merge(b);
        assert_eq!(
            a.committed,
            vec![(Slot(0), Arc::new(1)), (Slot(1), Arc::new(2))]
        );
        assert!(a.became_leader);
        assert!(!a.lost_leadership);
        assert!(!a.is_empty());
    }
}
