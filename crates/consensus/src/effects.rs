//! The output of one protocol-core step.

use std::sync::Arc;

use simnet::{Metrics, NodeId};

use crate::msg::PaxosMsg;
use crate::types::Slot;

/// Why the leader's batch accumulator flushed a proposal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlushCause {
    /// The pipeline was empty, so the command(s) went out immediately —
    /// the adaptive policy's unloaded-latency path.
    Idle,
    /// The accumulator reached `max_batch`.
    Full,
    /// The oldest buffered command waited `max_delay`.
    Overdue,
}

/// One batch proposal leaving the leader's accumulator. Hosts record
/// these into the `paxos.batch_size` / `paxos.flush_*` /
/// `paxos.pipeline_inflight` metrics; everything here is derived from
/// the protocol clock, so the stats are as deterministic as the run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FlushStat {
    /// Commands in the flushed proposal.
    pub batch: u32,
    /// What triggered the flush.
    pub cause: FlushCause,
    /// How long the oldest command waited in the accumulator, µs.
    pub waited_us: u64,
    /// Phase-2 proposals in flight *after* this one started — the
    /// pipeline window occupancy at flush time.
    pub inflight: u32,
}

/// Everything a sans-I/O protocol step wants done by its host.
///
/// The host (a `simnet` actor, or the composition layer) applies the effects
/// in order: persist first (write-ahead), then send, then hand committed
/// entries to the application.
#[derive(Debug)]
pub struct Effects<C> {
    /// Messages to send, as `(destination, message)`.
    pub outbound: Vec<(NodeId, PaxosMsg<C>)>,
    /// Log entries that became contiguously chosen during this step, in
    /// slot order. Each entry is reported exactly once across the life of
    /// the core. Commands are shared with the core's log (`Arc`).
    pub committed: Vec<(Slot, Arc<C>)>,
    /// Key/value pairs to write to stable storage *before* sending.
    pub persist: Vec<(String, Vec<u8>)>,
    /// Slots this step assigned to newly proposed commands (leader only;
    /// includes queued commands drained when leadership is won). Feeds the
    /// per-command observability spans.
    pub proposed: Vec<Slot>,
    /// True if this step made the node the leader.
    pub became_leader: bool,
    /// True if this step demoted the node from leader.
    pub lost_leadership: bool,
    /// Batch flushes this step performed (leader only; empty unless
    /// batching is enabled).
    pub flushed: Vec<FlushStat>,
    /// Proposal→commit latency, µs, of each slot whose quorum completed
    /// at this leader during this step (the `paxos.commit_slot_us`
    /// signal; followers learn via `Chosen` and report nothing here).
    pub commit_slot_us: Vec<u64>,
}

impl<C> Default for Effects<C> {
    fn default() -> Self {
        Effects {
            outbound: Vec::new(),
            committed: Vec::new(),
            persist: Vec::new(),
            proposed: Vec::new(),
            became_leader: false,
            lost_leadership: false,
            flushed: Vec::new(),
            commit_slot_us: Vec::new(),
        }
    }
}

impl<C> Effects<C> {
    /// An empty effects value.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `other`'s effects after this one's.
    pub fn merge(&mut self, other: Effects<C>) {
        self.outbound.extend(other.outbound);
        self.committed.extend(other.committed);
        self.persist.extend(other.persist);
        self.proposed.extend(other.proposed);
        self.became_leader |= other.became_leader;
        self.lost_leadership |= other.lost_leadership;
        self.flushed.extend(other.flushed);
        self.commit_slot_us.extend(other.commit_slot_us);
    }

    /// True when the step produced nothing at all.
    pub fn is_empty(&self) -> bool {
        self.outbound.is_empty()
            && self.committed.is_empty()
            && self.persist.is_empty()
            && self.proposed.is_empty()
            && !self.became_leader
            && !self.lost_leadership
            && self.flushed.is_empty()
            && self.commit_slot_us.is_empty()
    }

    /// Records this step's hot-path stats into a metrics sink under the
    /// shared `paxos.*` names (DESIGN §9): batch size, flush cause and
    /// wait, pipeline window occupancy, proposal→commit slot latency.
    /// Every host — sim actor, composition layer, real runtime — calls
    /// this so the same series flow from every backend. All values
    /// derive from the protocol clock, so sim-side recordings are
    /// deterministic.
    pub fn record_stats(&self, m: &mut Metrics) {
        for f in &self.flushed {
            m.record("paxos.batch_size", u64::from(f.batch));
            m.record("paxos.flush_wait_us", f.waited_us);
            m.record("paxos.pipeline_inflight", u64::from(f.inflight));
            let cause = match f.cause {
                FlushCause::Idle => "paxos.flush_idle",
                FlushCause::Full => "paxos.flush_full",
                FlushCause::Overdue => "paxos.flush_overdue",
            };
            m.incr(cause, 1);
        }
        for &us in &self.commit_slot_us {
            m.record("paxos.commit_slot_us", us);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_concatenates_and_ors() {
        let mut a: Effects<u64> = Effects::new();
        assert!(a.is_empty());
        a.committed.push((Slot(0), Arc::new(1)));
        let mut b: Effects<u64> = Effects::new();
        b.committed.push((Slot(1), Arc::new(2)));
        b.became_leader = true;
        b.flushed.push(FlushStat {
            batch: 2,
            cause: FlushCause::Full,
            waited_us: 5,
            inflight: 1,
        });
        b.commit_slot_us.push(100);
        a.merge(b);
        assert_eq!(
            a.committed,
            vec![(Slot(0), Arc::new(1)), (Slot(1), Arc::new(2))]
        );
        assert!(a.became_leader);
        assert!(!a.lost_leadership);
        assert_eq!(a.flushed.len(), 1);
        assert_eq!(a.flushed[0].cause, FlushCause::Full);
        assert_eq!(a.commit_slot_us, vec![100]);
        assert!(!a.is_empty());
    }

    #[test]
    fn stats_alone_make_effects_nonempty() {
        let mut a: Effects<u64> = Effects::new();
        a.commit_slot_us.push(1);
        assert!(!a.is_empty());
        let mut b: Effects<u64> = Effects::new();
        b.flushed.push(FlushStat {
            batch: 1,
            cause: FlushCause::Idle,
            waited_us: 0,
            inflight: 0,
        });
        assert!(!b.is_empty());
    }
}
