//! The single-decree synod protocol, self-contained.
//!
//! This module exists for two reasons: it is the didactic core the
//! multi-slot protocol generalizes, and it is small enough to property-test
//! exhaustively under adversarial schedules (see the crate's proptest
//! suite). It shares [`Ballot`] with the rest of the crate but is otherwise
//! independent.

use std::collections::BTreeSet;

use simnet::NodeId;

use crate::types::Ballot;

/// Messages of the synod protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum SynodMsg<V> {
    /// Phase 1a.
    Prepare(Ballot),
    /// Phase 1b: promise plus the highest accepted proposal, if any.
    Promise(Ballot, Option<(Ballot, V)>),
    /// Phase 2a.
    Accept(Ballot, V),
    /// Phase 2b.
    Accepted(Ballot),
    /// Refusal carrying the conflicting promise.
    Nack(Ballot),
}

/// A synod acceptor: promises ballots and accepts proposals.
#[derive(Clone, Debug)]
pub struct Acceptor<V> {
    promised: Ballot,
    accepted: Option<(Ballot, V)>,
}

impl<V: Clone> Default for Acceptor<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone> Acceptor<V> {
    /// Creates a fresh acceptor.
    pub fn new() -> Self {
        Acceptor {
            promised: Ballot::ZERO,
            accepted: None,
        }
    }

    /// Phase 1: handles `Prepare(b)`, returning `Promise` or `Nack`.
    pub fn on_prepare(&mut self, b: Ballot) -> SynodMsg<V> {
        if b >= self.promised {
            self.promised = b;
            SynodMsg::Promise(b, self.accepted.clone())
        } else {
            SynodMsg::Nack(self.promised)
        }
    }

    /// Phase 2: handles `Accept(b, v)`, returning `Accepted` or `Nack`.
    pub fn on_accept(&mut self, b: Ballot, v: V) -> SynodMsg<V> {
        if b >= self.promised {
            self.promised = b;
            self.accepted = Some((b, v));
            SynodMsg::Accepted(b)
        } else {
            SynodMsg::Nack(self.promised)
        }
    }

    /// The highest accepted proposal, if any.
    pub fn accepted(&self) -> Option<&(Ballot, V)> {
        self.accepted.as_ref()
    }

    /// The highest promised ballot.
    pub fn promised(&self) -> Ballot {
        self.promised
    }
}

/// Proposer phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Idle,
    Preparing,
    Accepting,
    Decided,
}

/// A synod proposer driving one value to decision.
#[derive(Clone, Debug)]
pub struct Proposer<V> {
    me: NodeId,
    n_acceptors: usize,
    ballot: Ballot,
    /// The value this proposer *wants*; may be superseded by an adopted one.
    initial: V,
    /// The value actually proposed in phase 2.
    proposing: Option<V>,
    phase: Phase,
    promises: BTreeSet<NodeId>,
    best_accepted: Option<(Ballot, V)>,
    accepts: BTreeSet<NodeId>,
    decided: Option<V>,
}

impl<V: Clone> Proposer<V> {
    /// Creates a proposer that wants to decide `value` among `n_acceptors`.
    pub fn new(me: NodeId, n_acceptors: usize, value: V) -> Self {
        Proposer {
            me,
            n_acceptors,
            ballot: Ballot::ZERO,
            initial: value,
            proposing: None,
            phase: Phase::Idle,
            promises: BTreeSet::new(),
            best_accepted: None,
            accepts: BTreeSet::new(),
            decided: None,
        }
    }

    fn quorum(&self) -> usize {
        self.n_acceptors / 2 + 1
    }

    /// Starts (or restarts) a round with a ballot strictly above `above`.
    /// Returns the `Prepare` to broadcast.
    pub fn start_round(&mut self, above: Ballot) -> SynodMsg<V> {
        self.ballot = Ballot::new(above.round.max(self.ballot.round) + 1, self.me);
        self.phase = Phase::Preparing;
        self.promises.clear();
        self.accepts.clear();
        self.best_accepted = None;
        self.proposing = None;
        SynodMsg::Prepare(self.ballot)
    }

    /// Handles a `Promise` from `from`. When a quorum forms, returns the
    /// `Accept` to broadcast.
    pub fn on_promise(
        &mut self,
        from: NodeId,
        b: Ballot,
        accepted: Option<(Ballot, V)>,
    ) -> Option<SynodMsg<V>> {
        if self.phase != Phase::Preparing || b != self.ballot {
            return None;
        }
        self.promises.insert(from);
        if let Some((ab, av)) = accepted {
            let better = match &self.best_accepted {
                Some((cur, _)) => ab > *cur,
                None => true,
            };
            if better {
                self.best_accepted = Some((ab, av));
            }
        }
        if self.promises.len() >= self.quorum() {
            self.phase = Phase::Accepting;
            let v = self
                .best_accepted
                .take()
                .map(|(_, v)| v)
                .unwrap_or_else(|| self.initial.clone());
            self.proposing = Some(v.clone());
            return Some(SynodMsg::Accept(self.ballot, v));
        }
        None
    }

    /// Handles an `Accepted` from `from`. Returns the decided value when a
    /// quorum forms.
    pub fn on_accepted(&mut self, from: NodeId, b: Ballot) -> Option<V> {
        if self.phase != Phase::Accepting || b != self.ballot {
            return None;
        }
        self.accepts.insert(from);
        if self.accepts.len() >= self.quorum() {
            self.phase = Phase::Decided;
            self.decided = self.proposing.clone();
            return self.decided.clone();
        }
        None
    }

    /// Handles a `Nack`; the caller should eventually call
    /// [`Proposer::start_round`] with the returned ballot.
    pub fn on_nack(&mut self, promised: Ballot) -> Ballot {
        if self.phase == Phase::Preparing || self.phase == Phase::Accepting {
            self.phase = Phase::Idle;
        }
        promised
    }

    /// The decided value, once known to this proposer.
    pub fn decided(&self) -> Option<&V> {
        self.decided.as_ref()
    }

    /// The current ballot.
    pub fn ballot(&self) -> Ballot {
        self.ballot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_decides_the_proposed_value() {
        let mut acceptors: Vec<Acceptor<u32>> = (0..3).map(|_| Acceptor::new()).collect();
        let mut p = Proposer::new(NodeId(0), 3, 42);
        let SynodMsg::Prepare(b) = p.start_round(Ballot::ZERO) else {
            panic!()
        };
        let mut accept = None;
        for (i, a) in acceptors.iter_mut().enumerate() {
            if let SynodMsg::Promise(pb, prev) = a.on_prepare(b) {
                if let Some(msg) = p.on_promise(NodeId(i as u64), pb, prev) {
                    accept = Some(msg);
                }
            }
        }
        let SynodMsg::Accept(b2, v) = accept.expect("quorum of promises") else {
            panic!()
        };
        assert_eq!(v, 42);
        let mut decided = None;
        for (i, a) in acceptors.iter_mut().enumerate() {
            if let SynodMsg::Accepted(ab) = a.on_accept(b2, v) {
                if let Some(d) = p.on_accepted(NodeId(i as u64), ab) {
                    decided = Some(d);
                }
            }
        }
        assert_eq!(decided, Some(42));
        assert_eq!(p.decided(), Some(&42));
    }

    #[test]
    fn later_proposer_adopts_possibly_chosen_value() {
        // Acceptors 0 and 1 accept (b1, 7) — a quorum of 3, so 7 is chosen.
        let mut acceptors: Vec<Acceptor<u32>> = (0..3).map(|_| Acceptor::new()).collect();
        let b1 = Ballot::new(1, NodeId(0));
        for a in acceptors.iter_mut().take(2) {
            a.on_prepare(b1);
            a.on_accept(b1, 7);
        }
        // A second proposer wanting 9 must still decide 7.
        let mut p2 = Proposer::new(NodeId(1), 3, 9);
        let SynodMsg::Prepare(b2) = p2.start_round(b1) else {
            panic!()
        };
        let mut accept = None;
        for (i, a) in acceptors.iter_mut().enumerate() {
            if let SynodMsg::Promise(pb, prev) = a.on_prepare(b2) {
                if let Some(m) = p2.on_promise(NodeId(i as u64), pb, prev) {
                    accept = Some(m);
                }
            }
        }
        match accept.expect("quorum") {
            SynodMsg::Accept(_, v) => assert_eq!(v, 7, "must adopt the chosen value"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stale_ballots_are_nacked() {
        let mut a: Acceptor<u32> = Acceptor::new();
        let high = Ballot::new(5, NodeId(2));
        a.on_prepare(high);
        match a.on_prepare(Ballot::new(1, NodeId(0))) {
            SynodMsg::Nack(p) => assert_eq!(p, high),
            other => panic!("unexpected {other:?}"),
        }
        match a.on_accept(Ballot::new(1, NodeId(0)), 3) {
            SynodMsg::Nack(p) => assert_eq!(p, high),
            other => panic!("unexpected {other:?}"),
        }
        assert!(a.accepted().is_none());
    }

    #[test]
    fn nack_resets_proposer_for_a_retry() {
        let mut p = Proposer::new(NodeId(0), 3, 1);
        p.start_round(Ballot::ZERO);
        let higher = Ballot::new(9, NodeId(1));
        let retry_above = p.on_nack(higher);
        assert_eq!(retry_above, higher);
        let SynodMsg::Prepare(b) = p.start_round(retry_above) else {
            panic!()
        };
        assert!(b > higher);
    }

    #[test]
    fn duplicate_promises_do_not_fake_a_quorum() {
        let mut p = Proposer::new(NodeId(0), 5, 1);
        let SynodMsg::Prepare(b) = p.start_round(Ballot::ZERO) else {
            panic!()
        };
        // The same acceptor promising three times is still one promise.
        assert!(p.on_promise(NodeId(1), b, None).is_none());
        assert!(p.on_promise(NodeId(1), b, None).is_none());
        assert!(p.on_promise(NodeId(1), b, None).is_none());
        assert!(p.on_promise(NodeId(2), b, None).is_none());
        assert!(p.on_promise(NodeId(3), b, None).is_some());
    }
}
