//! Fundamental consensus types: ballots, slots and the command contract.

use std::fmt;

use simnet::wire::Wire;
use simnet::NodeId;

/// A Paxos ballot number: a round counter tie-broken by proposer id, so no
/// two proposers ever share a ballot.
///
/// ```
/// use consensus::Ballot;
/// use simnet::NodeId;
/// let a = Ballot::new(3, NodeId(1));
/// let b = Ballot::new(3, NodeId(2));
/// assert!(a < b);
/// assert!(b < Ballot::new(4, NodeId(0)));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ballot {
    /// The round counter (major component).
    pub round: u64,
    /// The proposer owning the ballot (tie-breaker).
    pub node: NodeId,
}

impl Ballot {
    /// The null ballot, smaller than any real ballot.
    pub const ZERO: Ballot = Ballot {
        round: 0,
        node: NodeId(0),
    };

    /// Creates a ballot.
    pub fn new(round: u64, node: NodeId) -> Self {
        Ballot { round, node }
    }

    /// The smallest ballot owned by `node` that is larger than `self`.
    pub fn bump(self, node: NodeId) -> Ballot {
        Ballot {
            round: self.round + 1,
            node,
        }
    }

    /// True for any ballot other than [`Ballot::ZERO`].
    pub fn is_real(self) -> bool {
        self != Ballot::ZERO
    }
}

impl fmt::Debug for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.{}", self.round, self.node.0)
    }
}

impl Wire for Ballot {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.round.encode(buf);
        self.node.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(Ballot {
            round: u64::decode(buf)?,
            node: NodeId::decode(buf)?,
        })
    }
}

/// A position in the replicated log. The first slot is 0.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Slot(pub u64);

impl Slot {
    /// The first log position.
    pub const ZERO: Slot = Slot(0);

    /// The slot immediately after this one.
    pub fn next(self) -> Slot {
        Slot(self.0 + 1)
    }

    /// The slot immediately before this one, saturating at zero.
    pub fn prev(self) -> Slot {
        Slot(self.0.saturating_sub(1))
    }
}

impl fmt::Debug for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl Wire for Slot {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(Slot(u64::decode(buf)?))
    }
}

/// The contract a replicated command type must satisfy.
///
/// Commands are carried in messages (hence `Clone`), persisted to stable
/// storage (hence [`Wire`]), and the protocol must be able to fill log holes
/// with a no-op (hence [`Command::noop`]).
pub trait Command: Clone + fmt::Debug + PartialEq + Wire + 'static {
    /// A command with no effect, used by new leaders to fill log holes.
    fn noop() -> Self;

    /// True if this command is the [`Command::noop`] filler.
    fn is_noop(&self) -> bool {
        *self == Self::noop()
    }

    /// True if this command type can represent several commands as one
    /// batch value (see [`Command::batch`]). When false, the leader's
    /// batch accumulator degenerates to one command per slot — the
    /// pipelined proposal window still applies.
    fn supports_batching() -> bool {
        false
    }

    /// Combines `cmds` (in order) into a single batch command, or `None`
    /// if the type has no batch representation. Implementations must
    /// preserve command order; the composition layer relies on the
    /// intra-batch position of each command (the close-point rule).
    fn batch(cmds: Vec<Self>) -> Option<Self> {
        let _ = cmds;
        None
    }
}

/// `u64` commands for tests and micro-benchmarks; `0` is the no-op.
impl Command for u64 {
    fn noop() -> Self {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::wire;

    #[test]
    fn ballot_ordering_is_round_then_node() {
        let b = |r, n| Ballot::new(r, NodeId(n));
        assert!(b(1, 5) < b(2, 0));
        assert!(b(2, 1) < b(2, 2));
        assert_eq!(b(3, 3), b(3, 3));
        assert!(Ballot::ZERO < b(0, 1));
    }

    #[test]
    fn bump_produces_a_strictly_larger_ballot() {
        let b = Ballot::new(7, NodeId(9));
        let bumped = b.bump(NodeId(1));
        assert!(bumped > b);
        assert_eq!(bumped.round, 8);
        assert_eq!(bumped.node, NodeId(1));
    }

    #[test]
    fn zero_ballot_is_not_real() {
        assert!(!Ballot::ZERO.is_real());
        assert!(Ballot::new(0, NodeId(1)).is_real());
    }

    #[test]
    fn slot_navigation() {
        assert_eq!(Slot(3).next(), Slot(4));
        assert_eq!(Slot(3).prev(), Slot(2));
        assert_eq!(Slot::ZERO.prev(), Slot::ZERO);
    }

    #[test]
    fn ballot_and_slot_wire_round_trip() {
        let b = Ballot::new(42, NodeId(7));
        assert_eq!(wire::from_bytes::<Ballot>(&wire::to_bytes(&b)), Some(b));
        let s = Slot(99);
        assert_eq!(wire::from_bytes::<Slot>(&wire::to_bytes(&s)), Some(s));
    }

    #[test]
    fn u64_command_noop() {
        assert!(0u64.is_noop());
        assert!(!7u64.is_noop());
        assert_eq!(u64::noop(), 0);
    }
}
