//! # consensus — the static, non-reconfigurable SMR building block
//!
//! This crate implements the "building block" half of the PODC'12 brief
//! announcement: a classic **static Multi-Paxos replicated log** over a
//! fixed member set. The block knows nothing about reconfiguration — it has
//! one configuration for its whole life — which is precisely what makes it
//! simple and what the composition layer (`rsmr-core`) exploits.
//!
//! The protocol core ([`MultiPaxos`]) is *sans-I/O*: it is a pure state
//! machine whose inputs are messages and clock ticks and whose outputs are
//! an [`Effects`] value (messages to send, newly committed entries, state to
//! persist). The [`actor`] module adapts it to the `simnet` actor world and
//! adds a minimal client for standalone deployments; `rsmr-core` embeds the
//! same core, one instance per configuration epoch.
//!
//! A self-contained single-decree synod implementation
//! ([`single_decree`]) is included as the object of the crate's agreement
//! property tests.

pub mod actor;
mod config;
mod effects;
mod msg;
mod multipaxos;
pub mod single_decree;
mod types;

pub use config::StaticConfig;
pub use effects::{Effects, FlushCause, FlushStat};
pub use msg::PaxosMsg;
pub use multipaxos::{MultiPaxos, PaxosTunables, ProposeOutcome, Role};
pub use types::{Ballot, Command, Slot};
