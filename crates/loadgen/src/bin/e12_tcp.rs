//! E12 orchestrator: the epoch chain over real localhost TCP.
//!
//! Spawns a 5-member `rsmr-server` cluster plus one standby joiner as
//! separate OS processes, drives a closed-loop client fleet at it, and —
//! mid-load — reconfigures every group from `{0..4}` to `{1..5}` (node 0
//! retires, node 5 joins and receives the application state over the
//! wire). Emits the E12 JSONL artifact: fleet throughput/latency/handoff
//! gap plus every server's span and summary lines.
//!
//! ```text
//! e12_tcp --out BENCH_PR6_e12.jsonl --secs 12 --clients 16 --groups 4
//! ```
//!
//! The server binary is expected next to this one (both live in the same
//! cargo target directory). See `EXPERIMENTS.md` (E12) for what the
//! artifact means and `OPERATIONS.md` for the manual version of this
//! choreography.

use std::io::{self, Write as _};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::Duration;

use loadgen::{run_fleet, LoadgenConfig, ReconfigStep};

struct E12Args {
    out: PathBuf,
    secs: u64,
    clients: u64,
    groups: u32,
    fsync: bool,
    keep_storage: bool,
}

impl Default for E12Args {
    fn default() -> Self {
        E12Args {
            out: PathBuf::from("BENCH_PR6_e12.jsonl"),
            secs: 12,
            clients: 16,
            groups: 4,
            fsync: false,
            keep_storage: false,
        }
    }
}

fn parse_args() -> Result<E12Args, String> {
    let mut a = E12Args::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--out" => a.out = PathBuf::from(val("--out")?),
            "--secs" => {
                a.secs = val("--secs")?
                    .parse()
                    .map_err(|_| "--secs: bad value".to_string())?
            }
            "--clients" => {
                a.clients = val("--clients")?
                    .parse()
                    .map_err(|_| "--clients: bad value".to_string())?
            }
            "--groups" => {
                a.groups = val("--groups")?
                    .parse()
                    .map_err(|_| "--groups: bad value".to_string())?
            }
            "--fsync" => a.fsync = true,
            "--keep-storage" => a.keep_storage = true,
            "--help" | "-h" => {
                println!("e12_tcp [--out FILE] [--secs N] [--clients N] [--groups N] [--fsync] [--keep-storage]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(a)
}

/// Reserves `n` distinct localhost ports by binding to port 0 and
/// releasing the listeners. A tiny race window remains (something else
/// could grab a port before the servers bind), acceptable for a local
/// experiment harness.
fn free_ports(n: usize) -> io::Result<Vec<u16>> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<io::Result<_>>()?;
    listeners
        .iter()
        .map(|l| Ok(l.local_addr()?.port()))
        .collect()
}

struct Cluster {
    children: Vec<Child>,
    storage_root: PathBuf,
    events: Vec<PathBuf>,
}

impl Cluster {
    fn kill_all(&mut self) {
        for c in &mut self.children {
            let _ = c.kill();
            let _ = c.wait();
        }
        self.children.clear();
    }
}

fn spawn_cluster(a: &E12Args, ports: &[u16], run_for_secs: u64) -> io::Result<Cluster> {
    let exe_dir = std::env::current_exe()?
        .parent()
        .map(PathBuf::from)
        .ok_or_else(|| io::Error::other("no parent dir for current exe"))?;
    let server_bin = exe_dir.join("rsmr-server");
    if !server_bin.exists() {
        return Err(io::Error::other(format!(
            "{} not found — build it first (cargo build --release -p rsmr-server)",
            server_bin.display()
        )));
    }
    let storage_root = std::env::temp_dir().join(format!("rsmr-e12-{}", std::process::id()));
    std::fs::create_dir_all(&storage_root)?;

    let mut children = Vec::new();
    let mut events = Vec::new();
    for node in 0..ports.len() as u64 {
        let events_out = storage_root.join(format!("events-n{node}.jsonl"));
        let mut cmd = Command::new(&server_bin);
        cmd.arg("--node")
            .arg(node.to_string())
            .arg("--listen")
            .arg(format!("127.0.0.1:{}", ports[node as usize]))
            .arg("--initial-members")
            .arg("0,1,2,3,4")
            .arg("--groups")
            .arg(a.groups.to_string())
            .arg("--storage-dir")
            .arg(storage_root.join(format!("n{node}")))
            .arg(if a.fsync { "--fsync" } else { "--no-fsync" })
            .arg("--seed")
            .arg(node.to_string())
            .arg("--run-for-secs")
            .arg(run_for_secs.to_string())
            .arg("--events-out")
            .arg(&events_out)
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        for (peer, port) in ports.iter().enumerate() {
            cmd.arg("--peer").arg(format!("{peer}@127.0.0.1:{port}"));
        }
        children.push(cmd.spawn()?);
        events.push(events_out);
    }
    Ok(Cluster {
        children,
        storage_root,
        events,
    })
}

fn main() -> ExitCode {
    let a = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("e12_tcp: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&a) {
        Ok(ok) => {
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("e12_tcp: fatal: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(a: &E12Args) -> io::Result<bool> {
    const NODES: usize = 6; // members 0..=4 plus standby joiner 5
    let ports = free_ports(NODES)?;
    // Servers outlive the fleet so their shutdown (and events files) are
    // clean rather than killed mid-write.
    let server_secs = a.secs + 4;
    let mut cluster = spawn_cluster(a, &ports, server_secs)?;
    eprintln!(
        "e12_tcp: 5-member cluster + joiner up on ports {ports:?} ({} groups, fsync {})",
        a.groups, a.fsync
    );

    let reconfigure_at = a.secs / 2;
    let cfg = LoadgenConfig {
        servers: (0..NODES as u64)
            .map(|n| (n, format!("127.0.0.1:{}", ports[n as usize])))
            .collect(),
        initial_members: vec![0, 1, 2, 3, 4],
        groups: a.groups,
        clients: a.clients,
        run_for: Duration::from_secs(a.secs),
        warmup: Duration::from_secs(1),
        reconfigs: vec![ReconfigStep {
            after: Duration::from_secs(reconfigure_at),
            target: vec![1, 2, 3, 4, 5],
        }],
        ..LoadgenConfig::default()
    };
    let fleet = run_fleet(&cfg);
    let report = match fleet {
        Ok(r) => r,
        Err(e) => {
            cluster.kill_all();
            return Err(e);
        }
    };

    eprintln!("e12_tcp: fleet done, waiting for servers to retire…");
    for c in &mut cluster.children {
        let _ = c.wait();
    }
    cluster.children.clear();

    let mut artifact = String::new();
    artifact.push_str(&format!(
        "{{\"event\":\"e12_meta\",\"experiment\":\"E12\",\"transport\":\"tcp-localhost\",\"nodes\":{NODES},\"groups\":{},\"clients\":{},\"secs\":{},\"reconfigure_at_secs\":{reconfigure_at},\"reconfigure_target\":[1,2,3,4,5],\"fsync\":{}}}\n",
        a.groups, a.clients, a.secs, a.fsync
    ));
    artifact.push_str(&report.to_jsonl());
    for path in &cluster.events {
        match std::fs::read_to_string(path) {
            Ok(lines) => artifact.push_str(&lines),
            Err(e) => eprintln!("e12_tcp: missing server events {}: {e}", path.display()),
        }
    }
    std::fs::write(&a.out, &artifact)?;
    if !a.keep_storage {
        let _ = std::fs::remove_dir_all(&cluster.storage_root);
    }

    let reconfigured = !report.reconfigs.is_empty();
    let sustained = report.ops_per_sec >= 5_000.0;
    eprintln!(
        "e12_tcp: {:.0} ops/s sustained, p50 {}us p99 {}us, handoff gap {}ms, {} reconfiguration(s) -> {}",
        report.ops_per_sec,
        report.latency.p50,
        report.latency.p99,
        report.max_gap_us / 1000,
        report.reconfigs.len(),
        a.out.display()
    );
    let _ = io::stderr().flush();
    if !reconfigured {
        eprintln!("e12_tcp: FAIL: no reconfiguration was acknowledged");
    }
    if !sustained {
        eprintln!("e12_tcp: FAIL: below the 5k ops/s sustained-throughput bar");
    }
    Ok(reconfigured && sustained)
}
