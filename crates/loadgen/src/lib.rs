//! # loadgen — closed-loop kv clients for the real-transport backend
//!
//! Drives a fleet of the *same* [`rsmr_core::RsmrClient`] actors the
//! simulator uses — wrapped in [`simnet::NodeRuntime`] over TCP — against
//! a cluster of `rsmr-server` replicas, and reports wall-clock
//! throughput, a latency histogram, live-reconfiguration latency and the
//! client-observed handoff gap.
//!
//! Each client thread hosts one [`simnet::MultiGroup`] with a single
//! closed-loop client bound to the group its key range hashes to (the
//! same per-shard routing as the E11 simulation). All threads share one
//! [`simnet::WallClock`] origin, so invocation/response timestamps are
//! comparable across clients — which is what makes the merged completion
//! timeline (and the gap measurement) meaningful.
//!
//! The `loadgen` binary wraps [`run_fleet`]; the `e12_tcp` binary
//! orchestrates the full E12 experiment (spawn servers, drive load
//! through a reconfiguration, emit the JSONL artifact).

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use kvstore::{KeyDist, KvStore, WorkloadGen};
use rsmr_core::harness::World;
use rsmr_core::{AdminActor, OpenLoopClient, RsmrClient};
use simnet::{
    GroupId, LogHistogram, MemStorage, MultiGroup, NodeId, NodeRuntime, RuntimeConfig, SimTime,
    StableStore, TcpConfig, TcpTransport, WallClock,
};

/// Node id of the fleet's admin actor (mirrors the simulation harness).
pub const ADMIN: NodeId = NodeId(99);
/// First client node id; client `i` is `CLIENT_BASE + i`.
pub const CLIENT_BASE: u64 = 100;

/// One reconfiguration step the fleet drives while load is running.
#[derive(Clone, Debug)]
pub struct ReconfigStep {
    /// Issue the `Reconfigure` this long after the fleet starts.
    pub after: Duration,
    /// Target member ids of the successor configuration.
    pub target: Vec<u64>,
}

/// Everything a fleet run needs to know.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Every server as `(node id, "host:port")`.
    pub servers: Vec<(u64, String)>,
    /// Member ids of the configuration clients contact first.
    pub initial_members: Vec<u64>,
    /// Replication groups on the cluster; every client thread hosts one
    /// closed-loop session per group.
    pub groups: u32,
    /// Number of closed-loop client threads.
    pub clients: u64,
    /// First client node id; client `i` is `client_base + i`. Reruns
    /// against a live cluster must pick fresh ids — servers deduplicate
    /// per-client sequence numbers, so a reused id starting over at seq 0
    /// looks like stale retransmissions.
    pub client_base: u64,
    /// Per-client operation cap (`None` = run until the deadline).
    pub ops_per_client: Option<u64>,
    /// Fraction of reads in the workload.
    pub read_ratio: f64,
    /// Value size for writes, bytes.
    pub value_size: usize,
    /// Keyspace size (hash-partitioned over the groups).
    pub keyspace: usize,
    /// Workload seed.
    pub seed: u64,
    /// Open-loop mode: each session *intends* to issue this many
    /// operations per second, queueing overflow arrivals locally and
    /// measuring latency from the intended send time (coordinated-
    /// omission-safe — server stalls surface in the tail instead of
    /// silently thinning the arrival stream). `None` = closed loop.
    pub open_loop_rate: Option<f64>,
    /// Wall-clock run duration.
    pub run_for: Duration,
    /// Completions earlier than this offset are excluded from throughput
    /// and gap statistics (connection establishment, leader warm-up).
    pub warmup: Duration,
    /// Reconfigurations to drive (every group, same schedule).
    pub reconfigs: Vec<ReconfigStep>,
    /// Print a live progress line (completions, instantaneous rate) to
    /// stderr this often during the run; `None` = silent.
    pub stats_interval: Option<Duration>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            servers: Vec::new(),
            initial_members: Vec::new(),
            groups: 1,
            clients: 8,
            client_base: CLIENT_BASE,
            ops_per_client: None,
            read_ratio: 0.5,
            value_size: 64,
            keyspace: 4096,
            seed: 0,
            open_loop_rate: None,
            run_for: Duration::from_secs(10),
            warmup: Duration::from_secs(1),
            reconfigs: Vec::new(),
            stats_interval: None,
        }
    }
}

/// Latency percentiles over the measured window, microseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Arithmetic mean.
    pub mean: u64,
    /// Worst observed.
    pub max: u64,
}

/// One observed reconfiguration, client-side.
#[derive(Clone, Debug)]
pub struct ReconfigResult {
    /// The group that reconfigured.
    pub group: u32,
    /// `Reconfigure` sent, microseconds since fleet start.
    pub started_us: u64,
    /// Acknowledged by the new configuration's leader.
    pub finished_us: u64,
    /// The successor epoch that acknowledged.
    pub epoch: u64,
}

/// What a fleet run reports.
#[derive(Clone, Debug, Default)]
pub struct FleetReport {
    /// Operations completed inside the measured window.
    pub completed: u64,
    /// Operations completed over the whole run (including warmup).
    pub completed_total: u64,
    /// Measured window length, seconds.
    pub window_secs: f64,
    /// Sustained throughput over the measured window.
    pub ops_per_sec: f64,
    /// Latency summary over the measured window.
    pub latency: LatencySummary,
    /// Longest gap between consecutive completions (any client) inside
    /// the measured window — the client-observed handoff gap when a
    /// reconfiguration ran.
    pub max_gap_us: u64,
    /// Where that gap started, microseconds since fleet start.
    pub max_gap_at_us: u64,
    /// Admin-observed reconfigurations.
    pub reconfigs: Vec<ReconfigResult>,
    /// Completions per client thread.
    pub per_client_completed: Vec<u64>,
}

impl FleetReport {
    /// Renders the report as JSONL: one `loadgen_summary` line, one
    /// `reconfig` line per admin-observed step.
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"event\":\"loadgen_summary\",\"completed\":{},\"completed_total\":{},\"window_secs\":{:.3},\"ops_per_sec\":{:.1},\"latency_us\":{{\"p50\":{},\"p95\":{},\"p99\":{},\"mean\":{},\"max\":{}}},\"max_gap_us\":{},\"max_gap_at_us\":{}}}",
            self.completed,
            self.completed_total,
            self.window_secs,
            self.ops_per_sec,
            self.latency.p50,
            self.latency.p95,
            self.latency.p99,
            self.latency.mean,
            self.latency.max,
            self.max_gap_us,
            self.max_gap_at_us
        );
        for r in &self.reconfigs {
            let _ = writeln!(
                out,
                "{{\"event\":\"reconfig\",\"group\":{},\"started_us\":{},\"finished_us\":{},\"latency_us\":{},\"epoch\":{}}}",
                r.group,
                r.started_us,
                r.finished_us,
                r.finished_us.saturating_sub(r.started_us),
                r.epoch
            );
        }
        out
    }
}

fn resolve(addr: &str) -> io::Result<SocketAddr> {
    use std::net::ToSocketAddrs;
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{addr}: no usable address"),
        )
    })
}

fn tcp_config(me: NodeId, servers: &[(u64, String)]) -> io::Result<TcpConfig> {
    let mut cfg = TcpConfig::new(me);
    for (id, addr) in servers {
        cfg = cfg.peer(NodeId(*id), resolve(addr)?);
    }
    Ok(cfg)
}

/// The per-thread world: one closed-loop client *per group*, multiplexed
/// on one node id / one transport. Sessions are keyed by `(node, group)`
/// server-side, so each group's client is an independent session — a
/// thread carries `groups` concurrent operations, which is what makes a
/// small fleet saturate the cluster without a thread per session.
type ClientActor = MultiGroup<World<KvStore>>;

fn client_actor(cfg: &LoadgenConfig, i: u64) -> ClientActor {
    let members: Vec<NodeId> = cfg.initial_members.iter().map(|&n| NodeId(n)).collect();
    let mut mg = MultiGroup::sealed();
    for group in 0..cfg.groups {
        let gen = WorkloadGen::new(
            cfg.seed ^ (0x10AD_6E00 + i * 64 + group as u64),
            KeyDist::Uniform(cfg.keyspace),
            cfg.read_ratio,
            cfg.value_size,
        )
        .for_shard(group, cfg.groups)
        .into_fn();
        let world = match cfg.open_loop_rate {
            Some(rate) => {
                let interval = simnet::SimDuration::from_micros((1e6 / rate.max(1e-3)) as u64);
                World::paced(
                    OpenLoopClient::new(members.clone(), gen, interval, cfg.ops_per_client)
                        .with_history(),
                )
            }
            None => World::client(
                RsmrClient::new(members.clone(), gen, cfg.ops_per_client).with_history(),
            ),
        };
        mg.insert(GroupId(group), world);
    }
    mg
}

fn admin_actor(cfg: &LoadgenConfig) -> ClientActor {
    let members: Vec<NodeId> = cfg.initial_members.iter().map(|&n| NodeId(n)).collect();
    let mut mg = MultiGroup::sealed();
    for g in 0..cfg.groups {
        let script: Vec<(SimTime, Vec<NodeId>)> = cfg
            .reconfigs
            .iter()
            .map(|r| {
                let at = SimTime::from_micros(r.after.as_micros() as u64);
                (at, r.target.iter().map(|&n| NodeId(n)).collect())
            })
            .collect();
        mg.insert(
            GroupId(g),
            World::admin(AdminActor::new(members.clone(), script)),
        );
    }
    mg
}

fn runtime(
    node: NodeId,
    actor: ClientActor,
    clock: WallClock,
    servers: &[(u64, String)],
    seed: u64,
) -> io::Result<NodeRuntime<ClientActor>> {
    let transport = TcpTransport::bind(tcp_config(node, servers)?)?;
    Ok(NodeRuntime::new(
        node,
        actor,
        clock,
        transport,
        MemStorage,
        StableStore::new(),
        RuntimeConfig {
            seed: seed ^ node.0,
            ..RuntimeConfig::default()
        },
    ))
}

/// Runs the whole fleet to completion and aggregates the report.
///
/// Spawns one thread per client (node ids [`CLIENT_BASE`]`..`) plus an
/// admin thread ([`ADMIN`]) when reconfigurations are scheduled; all
/// share one wall-clock origin. Returns after every thread has shut
/// down cleanly.
pub fn run_fleet(cfg: &LoadgenConfig) -> io::Result<FleetReport> {
    if cfg.servers.is_empty() || cfg.initial_members.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "need at least one server and one initial member",
        ));
    }
    let clock = WallClock::new();
    let stop = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + cfg.run_for;
    // One progress cell per client thread; the reporter sums them. Each
    // thread owns its cell, so relaxed stores are race-free per cell.
    let progress: Arc<Vec<AtomicU64>> =
        Arc::new((0..cfg.clients).map(|_| AtomicU64::new(0)).collect());

    let mut handles = Vec::new();
    for i in 0..cfg.clients {
        let node = NodeId(cfg.client_base + i);
        let cfg = cfg.clone();
        let stop = stop.clone();
        let progress = Arc::clone(&progress);
        handles.push(thread::spawn(move || -> io::Result<Vec<(u64, u64)>> {
            // The actor holds non-Send closures, so it is built on this
            // thread rather than moved in.
            let actor = client_actor(&cfg, i);
            let limit = cfg.ops_per_client;
            let mut rt = runtime(node, actor, clock, &cfg.servers, cfg.seed)?;
            rt.start();
            while !stop.load(Ordering::SeqCst) && Instant::now() < deadline {
                let done = if let Some(limit) = limit {
                    rt.run_until(
                        |a| a.entries().all(|(_, w)| w.completed() >= limit),
                        Duration::from_millis(50),
                    )
                } else {
                    rt.run_for(Duration::from_millis(50));
                    false
                };
                progress[i as usize].store(
                    rt.actor().entries().map(|(_, w)| w.completed()).sum(),
                    Ordering::Relaxed,
                );
                if done {
                    break;
                }
            }
            let actor = rt.shutdown();
            let mut times = Vec::new();
            for (_, world) in actor.entries() {
                let history = world
                    .as_client()
                    .map(|c| c.history())
                    .or_else(|| world.as_paced().map(|c| c.history()));
                if let Some(history) = history {
                    times.extend(history.iter().map(|&(_, _, _, invoked, responded)| {
                        (invoked.as_micros(), responded.as_micros())
                    }));
                }
            }
            Ok(times)
        }));
    }

    let admin_handle = (!cfg.reconfigs.is_empty()).then(|| {
        let cfg = cfg.clone();
        let stop = stop.clone();
        thread::spawn(move || -> io::Result<Vec<ReconfigResult>> {
            let actor = admin_actor(&cfg);
            let mut rt = runtime(ADMIN, actor, clock, &cfg.servers, cfg.seed)?;
            rt.start();
            while !stop.load(Ordering::SeqCst) && Instant::now() < deadline {
                let done = rt.run_until(
                    |a| {
                        a.entries()
                            .all(|(_, w)| w.as_admin().map(|ad| ad.is_done()).unwrap_or(true))
                    },
                    Duration::from_millis(50),
                );
                if done {
                    break;
                }
            }
            let actor = rt.shutdown();
            let mut results = Vec::new();
            for (g, world) in actor.entries() {
                if let Some(admin) = world.as_admin() {
                    for &(started, finished, epoch) in admin.results() {
                        results.push(ReconfigResult {
                            group: g.0,
                            started_us: started.as_micros(),
                            finished_us: finished.as_micros(),
                            epoch: epoch.0,
                        });
                    }
                }
            }
            Ok(results)
        })
    });

    // Live progress readout: total completions and the instantaneous
    // rate since the previous line, printed to stderr so the JSONL
    // report stays clean.
    let reporter = cfg.stats_interval.map(|every| {
        let stop = stop.clone();
        let progress = Arc::clone(&progress);
        let started = Instant::now();
        thread::spawn(move || {
            let mut last = 0u64;
            let mut last_at = started;
            while !stop.load(Ordering::SeqCst) && Instant::now() < deadline {
                thread::sleep(every.min(Duration::from_millis(200)));
                if Instant::now() < last_at + every {
                    continue;
                }
                let total: u64 = progress.iter().map(|c| c.load(Ordering::Relaxed)).sum();
                let now = Instant::now();
                let rate = (total - last) as f64 / now.duration_since(last_at).as_secs_f64();
                eprintln!(
                    "loadgen: t={:.0}s completed={total} rate={rate:.0} ops/s",
                    now.duration_since(started).as_secs_f64()
                );
                (last, last_at) = (total, now);
            }
        })
    });

    let mut per_client = Vec::new();
    let mut all_times: Vec<(u64, u64)> = Vec::new();
    let mut first_err = None;
    for h in handles {
        match h.join().expect("client thread panicked") {
            Ok(times) => {
                per_client.push(times.len() as u64);
                all_times.extend(times);
            }
            Err(e) => {
                per_client.push(0);
                first_err.get_or_insert(e);
            }
        }
    }
    stop.store(true, Ordering::SeqCst);
    if let Some(h) = reporter {
        let _ = h.join();
    }
    let reconfigs = match admin_handle {
        Some(h) => h.join().expect("admin thread panicked")?,
        None => Vec::new(),
    };
    if let Some(e) = first_err {
        return Err(e);
    }

    Ok(aggregate(cfg, all_times, per_client, reconfigs))
}

fn aggregate(
    cfg: &LoadgenConfig,
    mut all_times: Vec<(u64, u64)>,
    per_client_completed: Vec<u64>,
    mut reconfigs: Vec<ReconfigResult>,
) -> FleetReport {
    reconfigs.sort_by_key(|r| (r.group, r.started_us));
    let completed_total = all_times.len() as u64;
    // Sort by response time: the merged completion timeline.
    all_times.sort_by_key(|&(_, responded)| responded);
    let warmup_us = cfg.warmup.as_micros() as u64;
    let window: Vec<(u64, u64)> = all_times
        .iter()
        .copied()
        .filter(|&(_, responded)| responded >= warmup_us)
        .collect();
    let window_end = window.last().map(|&(_, r)| r).unwrap_or(warmup_us);
    let window_secs = (window_end.saturating_sub(warmup_us)) as f64 / 1e6;

    // The same mergeable log-scale histogram the servers export
    // (`simnet::LogHistogram`), replacing the old sort-the-raw-Vec
    // percentile pass: constant memory however long the run, and its
    // quantile() uses the identical rank convention the sort used.
    let mut latencies = LogHistogram::new();
    for &(invoked, responded) in &window {
        latencies.record(responded.saturating_sub(invoked));
    }
    let latency = LatencySummary {
        p50: latencies.quantile(0.50),
        p95: latencies.quantile(0.95),
        p99: latencies.quantile(0.99),
        mean: if latencies.is_empty() {
            0
        } else {
            latencies.sum() / latencies.count()
        },
        max: latencies.max().unwrap_or(0),
    };

    let (mut max_gap_us, mut max_gap_at_us) = (0, 0);
    for pair in window.windows(2) {
        let gap = pair[1].1 - pair[0].1;
        if gap > max_gap_us {
            max_gap_us = gap;
            max_gap_at_us = pair[0].1;
        }
    }

    FleetReport {
        completed: window.len() as u64,
        completed_total,
        window_secs,
        ops_per_sec: if window_secs > 0.0 {
            window.len() as f64 / window_secs
        } else {
            0.0
        },
        latency,
        max_gap_us,
        max_gap_at_us,
        reconfigs,
        per_client_completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(pairs: &[(u64, u64)]) -> Vec<(u64, u64)> {
        pairs.to_vec()
    }

    #[test]
    fn aggregate_computes_throughput_latency_and_gap() {
        let cfg = LoadgenConfig {
            warmup: Duration::from_micros(100),
            ..LoadgenConfig::default()
        };
        // Four completions after warmup, 1s window, one 700ms gap.
        let report = aggregate(
            &cfg,
            times(&[
                (0, 50),          // warmup, excluded
                (100, 200),       // 100us latency
                (150, 300),       // 150us
                (200, 1_000_100), // the gap: 300 -> 1_000_100
                (999_000, 1_000_200),
            ]),
            vec![5],
            Vec::new(),
        );
        assert_eq!(report.completed, 4);
        assert_eq!(report.completed_total, 5);
        assert_eq!(report.max_gap_us, 1_000_100 - 300);
        assert_eq!(report.max_gap_at_us, 300);
        // Latencies sorted: [100, 150, 1200, 999900]; p50 rounds to idx 2.
        assert_eq!(report.latency.p50, 1_200);
        assert!(report.ops_per_sec > 3.9 && report.ops_per_sec < 4.1);
    }

    #[test]
    fn histogram_percentiles_match_an_exact_sort_at_small_n() {
        // The LogHistogram path must agree with the old sort-the-Vec
        // percentiles on a small sample whose ranks land on exact
        // values (min, max, width-1 buckets, bucket boundaries).
        let cfg = LoadgenConfig {
            warmup: Duration::ZERO,
            ..LoadgenConfig::default()
        };
        let samples: [u64; 5] = [40, 100, 128, 255, 1 << 20];
        let pairs: Vec<(u64, u64)> = samples.iter().map(|&l| (1, 1 + l)).collect();
        let mut sorted = samples;
        sorted.sort_unstable();
        let exact = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
        let report = aggregate(&cfg, pairs, vec![5], Vec::new());
        assert_eq!(report.latency.p50, exact(0.50));
        assert_eq!(report.latency.p95, exact(0.95));
        assert_eq!(report.latency.p99, exact(0.99));
        assert_eq!(report.latency.max, 1 << 20);
        assert_eq!(report.latency.mean, samples.iter().sum::<u64>() / 5);
    }

    #[test]
    fn report_jsonl_has_summary_and_reconfig_lines() {
        let report = FleetReport {
            completed: 10,
            reconfigs: vec![ReconfigResult {
                group: 0,
                started_us: 100,
                finished_us: 400,
                epoch: 1,
            }],
            ..FleetReport::default()
        };
        let text = report.to_jsonl();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"loadgen_summary\""));
        assert!(lines[1].contains("\"latency_us\":300"));
    }

    #[test]
    fn open_loop_rate_builds_paced_sessions() {
        let cfg = LoadgenConfig {
            servers: vec![(0, "127.0.0.1:1".into())],
            initial_members: vec![0, 1, 2],
            groups: 2,
            open_loop_rate: Some(500.0),
            ..LoadgenConfig::default()
        };
        let actor = client_actor(&cfg, 0);
        assert!(actor.entries().all(|(_, w)| w.as_paced().is_some()));
        assert!(actor.entries().all(|(_, w)| w.as_client().is_none()));
    }

    #[test]
    fn client_actors_host_one_session_per_group() {
        let cfg = LoadgenConfig {
            servers: vec![(0, "127.0.0.1:1".into())],
            initial_members: vec![0, 1, 2],
            groups: 4,
            ..LoadgenConfig::default()
        };
        for i in 0..3 {
            let actor = client_actor(&cfg, i);
            let groups: Vec<GroupId> = actor.entries().map(|(g, _)| g).collect();
            assert_eq!(groups, (0..4).map(GroupId).collect::<Vec<_>>());
            assert!(actor.entries().all(|(_, w)| w.as_client().is_some()));
        }
    }
}
