//! `loadgen` — drive a closed-loop kv fleet at a running cluster.
//!
//! ```text
//! loadgen --server 0@127.0.0.1:7400 --server 1@127.0.0.1:7401 \
//!     --server 2@127.0.0.1:7402 --initial-members 0,1,2 \
//!     --clients 16 --run-for-secs 10 \
//!     --reconfigure 5@1,2,3
//! ```
//!
//! Prints a human summary to stderr and the JSONL report to stdout (or
//! `--out FILE`). See `OPERATIONS.md` for the full walkthrough.

use std::process::ExitCode;
use std::time::Duration;

use loadgen::{run_fleet, LoadgenConfig, ReconfigStep};

const USAGE: &str = "\
loadgen: closed-loop kv load generator for rsmr-server clusters

USAGE:
    loadgen [FLAGS]

FLAGS:
    --server ID@HOST:PORT    a cluster server (repeat per server)
    --initial-members a,b,c  node ids clients contact first
    --groups N               replication groups on the cluster (default 1)
    --clients N              client threads (default 8)
    --ops-per-client N       stop each client after N ops (default: timed)
    --read-ratio F           fraction of reads, 0..=1 (default 0.5)
    --value-size N           write value bytes (default 64)
    --keyspace N             distinct keys (default 4096)
    --seed N                 workload seed (default 0)
    --open-loop-rate F       open loop: each session intends F ops/sec,
                             latency measured from intended send time
                             (default: closed loop)
    --run-for-secs N         wall-clock run length (default 10)
    --warmup-secs N          exclude the first N seconds from stats (default 1)
    --reconfigure S@a,b,c    at S seconds, reconfigure every group to
                             members a,b,c (repeatable)
    --stats-interval SECS    print a live progress line every SECS seconds
    --out FILE               write the JSONL report here (default stdout)
";

fn parse_ids(v: &str, flag: &str) -> Result<Vec<u64>, String> {
    v.split(',')
        .map(|p| {
            p.trim()
                .parse::<u64>()
                .map_err(|_| format!("{flag}: bad id {p:?}"))
        })
        .collect()
}

fn parse_args(args: &[String]) -> Result<(LoadgenConfig, Option<String>), String> {
    let mut cfg = LoadgenConfig::default();
    let mut out = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--server" => {
                let v = val("--server")?;
                let (id, addr) = v
                    .split_once('@')
                    .ok_or_else(|| format!("--server: expected ID@HOST:PORT, got {v:?}"))?;
                let id = id.parse().map_err(|_| format!("--server: bad id {id:?}"))?;
                cfg.servers.push((id, addr.to_string()));
            }
            "--initial-members" => {
                cfg.initial_members = parse_ids(val("--initial-members")?, flag)?
            }
            "--groups" => cfg.groups = parse_num(val("--groups")?, flag)?,
            "--clients" => cfg.clients = parse_num(val("--clients")?, flag)?,
            "--ops-per-client" => {
                cfg.ops_per_client = Some(parse_num(val("--ops-per-client")?, flag)?)
            }
            "--read-ratio" => cfg.read_ratio = parse_num(val("--read-ratio")?, flag)?,
            "--value-size" => cfg.value_size = parse_num(val("--value-size")?, flag)?,
            "--keyspace" => cfg.keyspace = parse_num(val("--keyspace")?, flag)?,
            "--seed" => cfg.seed = parse_num(val("--seed")?, flag)?,
            "--open-loop-rate" => {
                cfg.open_loop_rate = Some(parse_num(val("--open-loop-rate")?, flag)?)
            }
            "--run-for-secs" => {
                cfg.run_for = Duration::from_secs(parse_num(val("--run-for-secs")?, flag)?)
            }
            "--warmup-secs" => {
                cfg.warmup = Duration::from_secs(parse_num(val("--warmup-secs")?, flag)?)
            }
            "--reconfigure" => {
                let v = val("--reconfigure")?;
                let (secs, ids) = v
                    .split_once('@')
                    .ok_or_else(|| format!("--reconfigure: expected SECS@a,b,c, got {v:?}"))?;
                cfg.reconfigs.push(ReconfigStep {
                    after: Duration::from_secs(
                        secs.parse()
                            .map_err(|_| format!("--reconfigure: bad seconds {secs:?}"))?,
                    ),
                    target: parse_ids(ids, flag)?,
                });
            }
            "--stats-interval" => {
                cfg.stats_interval = Some(Duration::from_secs(parse_num(
                    val("--stats-interval")?,
                    flag,
                )?))
            }
            "--out" => out = Some(val("--out")?.clone()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok((cfg, out))
}

fn parse_num<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("{flag}: bad value {v:?}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let (cfg, out) = match parse_args(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "loadgen: {} client(s) x {} group(s) against {} server(s) for {:?}",
        cfg.clients,
        cfg.groups,
        cfg.servers.len(),
        cfg.run_for
    );
    let report = match run_fleet(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: fatal: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loadgen: {:.0} ops/s over {:.1}s ({} ops), p50 {}us p99 {}us, max gap {}us",
        report.ops_per_sec,
        report.window_secs,
        report.completed,
        report.latency.p50,
        report.latency.p99,
        report.max_gap_us
    );
    for r in &report.reconfigs {
        eprintln!(
            "loadgen: group {} reconfigured to epoch {} in {}us",
            r.group,
            r.epoch,
            r.finished_us.saturating_sub(r.started_us)
        );
    }
    let jsonl = report.to_jsonl();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, jsonl) {
                eprintln!("loadgen: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{jsonl}"),
    }
    ExitCode::SUCCESS
}
