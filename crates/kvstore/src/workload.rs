//! Workload generators: key distributions and operation mixes.

use simnet::SimRng;

use crate::kv::KvOp;

/// How keys are drawn from the keyspace.
#[derive(Clone, Debug)]
pub enum KeyDist {
    /// Uniform over `n` keys.
    Uniform(usize),
    /// Zipf over `n` keys with skew `theta` (larger = more skewed;
    /// `theta ≈ 0.99` is the YCSB default).
    Zipf {
        /// Keyspace size.
        n: usize,
        /// Skew exponent.
        theta: f64,
    },
}

/// A sampler for a [`KeyDist`].
pub struct KeySampler {
    dist: KeyDist,
    /// Cumulative probabilities for Zipf (empty for Uniform).
    cdf: Vec<f64>,
}

impl KeySampler {
    /// Builds a sampler (precomputing the Zipf CDF).
    pub fn new(dist: KeyDist) -> Self {
        let cdf = match &dist {
            KeyDist::Uniform(_) => Vec::new(),
            KeyDist::Zipf { n, theta } => {
                assert!(*n > 0, "keyspace must be non-empty");
                let mut weights: Vec<f64> =
                    (1..=*n).map(|k| 1.0 / (k as f64).powf(*theta)).collect();
                let total: f64 = weights.iter().sum();
                let mut acc = 0.0;
                for w in weights.iter_mut() {
                    acc += *w / total;
                    *w = acc;
                }
                weights
            }
        };
        KeySampler { dist, cdf }
    }

    /// Draws a key index.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        match &self.dist {
            KeyDist::Uniform(n) => rng.gen_range(0..*n),
            KeyDist::Zipf { .. } => {
                let r: f64 = rng.gen_range(0.0..1.0);
                match self
                    .cdf
                    .binary_search_by(|p| p.partial_cmp(&r).expect("no NaN"))
                {
                    Ok(i) => i,
                    Err(i) => i.min(self.cdf.len() - 1),
                }
            }
        }
    }

    /// The keyspace size.
    pub fn keyspace(&self) -> usize {
        match &self.dist {
            KeyDist::Uniform(n) => *n,
            KeyDist::Zipf { n, .. } => *n,
        }
    }
}

/// The canonical name of key index `idx` (shared by all workloads).
pub fn key_name(idx: usize) -> String {
    format!("key/{idx:08}")
}

/// Hash-partitions `key` over `groups` shards (FNV-1a over the key bytes).
///
/// This is the routing function of the sharded composition: the client-side
/// router sends an operation to the group `shard_of(key, G)` and each
/// group's replicas only ever see keys that hash to it. The hash is part of
/// the experiment fingerprint — changing it reshuffles every partitioned
/// workload.
pub fn shard_of(key: &str, groups: u32) -> u32 {
    assert!(groups > 0, "need at least one shard");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % groups as u64) as u32
}

/// A deterministic operation-mix generator, usable as the `gen` closure of
/// the clients: `read_ratio` of operations are `Get`s, the rest `Put`s of
/// `value_size` bytes.
///
/// ```
/// use kvstore::{KeyDist, WorkloadGen};
/// let mut gen = WorkloadGen::new(7, KeyDist::Uniform(100), 0.5, 16);
/// let _op = gen.next_op(0);
/// ```
pub struct WorkloadGen {
    rng: SimRng,
    sampler: KeySampler,
    read_ratio: f64,
    value_size: usize,
    /// `(shard, groups)`: restrict keys to one hash partition (see
    /// [`shard_of`]). `None` = the whole keyspace.
    shard: Option<(u32, u32)>,
}

impl WorkloadGen {
    /// Creates a generator with its own seeded RNG.
    pub fn new(seed: u64, dist: KeyDist, read_ratio: f64, value_size: usize) -> Self {
        assert!((0.0..=1.0).contains(&read_ratio));
        WorkloadGen {
            rng: SimRng::seed_from_u64(seed),
            sampler: KeySampler::new(dist),
            read_ratio,
            value_size,
            shard: None,
        }
    }

    /// Restricts this generator to keys of one hash partition,
    /// builder-style: every emitted key satisfies
    /// `shard_of(key, groups) == shard`. Sampling is deterministic
    /// rejection sampling over the base distribution, so the per-shard key
    /// popularity is the base distribution conditioned on the shard —
    /// shards see the same *shape* of workload, not disjoint slices of the
    /// Zipf head.
    ///
    /// Panics if no key of the keyspace hashes to `shard` (tiny keyspaces).
    pub fn for_shard(mut self, shard: u32, groups: u32) -> Self {
        assert!(shard < groups, "shard {shard} out of range for {groups}");
        let covered = (0..self.sampler.keyspace()).any(|i| shard_of(&key_name(i), groups) == shard);
        assert!(
            covered,
            "no key of the {}-key keyspace hashes to shard {shard}/{groups}",
            self.sampler.keyspace()
        );
        self.shard = Some((shard, groups));
        self
    }

    /// Produces the operation for sequence number `seq`.
    pub fn next_op(&mut self, seq: u64) -> KvOp {
        let key = loop {
            let key = key_name(self.sampler.sample(&mut self.rng));
            match self.shard {
                Some((shard, groups)) if shard_of(&key, groups) != shard => continue,
                _ => break key,
            }
        };
        if self.rng.gen_bool(self.read_ratio) {
            KvOp::Get(key)
        } else {
            let mut value = vec![0u8; self.value_size];
            // Stamp the sequence number so values are distinguishable.
            let stamp = seq.to_le_bytes();
            let n = stamp.len().min(value.len());
            value[..n].copy_from_slice(&stamp[..n]);
            KvOp::Put(key, value)
        }
    }

    /// Converts the generator into a boxed closure for the client actors.
    pub fn into_fn(mut self) -> impl FnMut(u64) -> KvOp {
        move |seq| self.next_op(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(1)
    }

    #[test]
    fn uniform_covers_the_keyspace() {
        let s = KeySampler::new(KeyDist::Uniform(10));
        let mut seen = [false; 10];
        let mut r = rng();
        for _ in 0..1000 {
            seen[s.sample(&mut r)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn zipf_is_skewed_toward_low_indices() {
        let s = KeySampler::new(KeyDist::Zipf {
            n: 1000,
            theta: 0.99,
        });
        let mut r = rng();
        let mut head = 0usize;
        const SAMPLES: usize = 10_000;
        for _ in 0..SAMPLES {
            if s.sample(&mut r) < 10 {
                head += 1;
            }
        }
        // With theta=0.99 the top-10 of 1000 keys carries ~30% of the mass;
        // uniform would give 1%.
        assert!(
            head > SAMPLES / 10,
            "zipf head mass too small: {head}/{SAMPLES}"
        );
    }

    #[test]
    fn zipf_samples_stay_in_range() {
        let s = KeySampler::new(KeyDist::Zipf { n: 7, theta: 1.2 });
        let mut r = rng();
        for _ in 0..1000 {
            assert!(s.sample(&mut r) < 7);
        }
    }

    #[test]
    fn read_ratio_is_respected() {
        let mut g = WorkloadGen::new(3, KeyDist::Uniform(100), 0.8, 8);
        let mut reads = 0;
        for seq in 0..1000 {
            if matches!(g.next_op(seq), KvOp::Get(_)) {
                reads += 1;
            }
        }
        assert!((700..900).contains(&reads), "reads={reads}");
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let collect = |seed| {
            let mut g = WorkloadGen::new(seed, KeyDist::Zipf { n: 50, theta: 1.0 }, 0.5, 8);
            (0..50).map(|s| g.next_op(s)).collect::<Vec<_>>()
        };
        assert_eq!(collect(9), collect(9));
        assert_ne!(collect(9), collect(10));
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for groups in [1, 2, 4, 8] {
            for i in 0..256 {
                let k = key_name(i);
                let s = shard_of(&k, groups);
                assert!(s < groups);
                assert_eq!(s, shard_of(&k, groups), "hash must be pure");
            }
        }
        // Every shard of a moderate keyspace is populated.
        for groups in [2, 4, 8] {
            let mut seen = vec![false; groups as usize];
            for i in 0..1000 {
                seen[shard_of(&key_name(i), groups) as usize] = true;
            }
            assert!(seen.iter().all(|&b| b), "empty shard under G={groups}");
        }
    }

    #[test]
    fn sharded_generator_stays_in_its_partition() {
        for shard in 0..4 {
            let mut g = WorkloadGen::new(11, KeyDist::Zipf { n: 500, theta: 0.9 }, 0.5, 8)
                .for_shard(shard, 4);
            for seq in 0..300 {
                let key = match g.next_op(seq) {
                    KvOp::Get(k) | KvOp::Put(k, _) => k,
                    other => panic!("workload gen only emits get/put, got {other:?}"),
                };
                assert_eq!(shard_of(&key, 4), shard, "leaked key {key}");
            }
        }
    }

    #[test]
    fn sharded_generators_are_deterministic() {
        let collect = || {
            let mut g = WorkloadGen::new(5, KeyDist::Uniform(200), 0.5, 8).for_shard(2, 4);
            (0..100).map(|s| g.next_op(s)).collect::<Vec<_>>()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_must_be_in_range() {
        let _ = WorkloadGen::new(5, KeyDist::Uniform(10), 0.5, 8).for_shard(4, 4);
    }

    #[test]
    fn put_values_have_the_requested_size() {
        let mut g = WorkloadGen::new(4, KeyDist::Uniform(10), 0.0, 64);
        match g.next_op(5) {
            KvOp::Put(_, v) => assert_eq!(v.len(), 64),
            other => panic!("expected a put, got {other:?}"),
        }
    }
}
