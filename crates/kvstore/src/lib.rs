//! # kvstore — the replicated application, workloads and correctness oracle
//!
//! Three pieces used throughout the examples and experiments:
//!
//! * [`KvStore`] — a deterministic key-value [`StateMachine`] (get / put /
//!   delete / compare-and-swap / append) with snapshot support, replicated
//!   by any of the workspace's SMR systems;
//! * [`WorkloadGen`] / [`KeyDist`] — deterministic operation-mix generators
//!   (uniform and Zipf key popularity, configurable read ratio and value
//!   size);
//! * [`lincheck`] — a Wing & Gong linearizability checker, turning "the
//!   composed machine is linearizable across reconfigurations" into a
//!   machine-checked property.
//!
//! [`StateMachine`]: rsmr_core::StateMachine

pub mod kv;
pub mod lincheck;
pub mod locksvc;
pub mod workload;

pub use kv::{KvOp, KvOutput, KvStore};
pub use lincheck::{linearizable, HistoryOp, Model};
pub use locksvc::{LockOp, LockOutput, LockService};
pub use workload::{key_name, shard_of, KeyDist, KeySampler, WorkloadGen};
