//! A replicated lock service: a second application state machine, showing
//! that the composition is generic over the [`StateMachine`] contract.
//!
//! Locks are owned by client-chosen owner ids and protected by **fencing
//! tokens**: every successful acquisition returns a token strictly larger
//! than any token previously issued for that lock, so downstream resources
//! can reject stale holders — the classic defence against a paused client
//! resuming after its lock moved on.

use std::collections::BTreeMap;

use rsmr_core::state_machine::StateMachine;
use simnet::wire::{self, Wire};

/// Lock-service operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockOp {
    /// Try to acquire `lock` for `owner`. Succeeds iff free or already
    /// held by the same owner (re-entrant, same token).
    Acquire {
        /// Lock name.
        lock: String,
        /// Owner identity (client-chosen).
        owner: u64,
    },
    /// Release `lock` if held by `owner`.
    Release {
        /// Lock name.
        lock: String,
        /// Owner identity.
        owner: u64,
    },
    /// Read a lock's holder.
    Query {
        /// Lock name.
        lock: String,
    },
}

/// Lock-service outputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockOutput {
    /// Acquired (or re-entered) with this fencing token.
    Acquired {
        /// The fencing token; strictly monotonic per lock.
        token: u64,
    },
    /// Held by someone else.
    Busy {
        /// The current owner.
        owner: u64,
    },
    /// Release outcome: `true` iff the caller held the lock.
    Released(bool),
    /// Query result: holder and token, if held.
    Holder(Option<(u64, u64)>),
}

impl Wire for LockOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            LockOp::Acquire { lock, owner } => {
                buf.push(0);
                lock.encode(buf);
                owner.encode(buf);
            }
            LockOp::Release { lock, owner } => {
                buf.push(1);
                lock.encode(buf);
                owner.encode(buf);
            }
            LockOp::Query { lock } => {
                buf.push(2);
                lock.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(LockOp::Acquire {
                lock: String::decode(buf)?,
                owner: u64::decode(buf)?,
            }),
            1 => Some(LockOp::Release {
                lock: String::decode(buf)?,
                owner: u64::decode(buf)?,
            }),
            2 => Some(LockOp::Query {
                lock: String::decode(buf)?,
            }),
            _ => None,
        }
    }
}

impl Wire for LockOutput {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            LockOutput::Acquired { token } => {
                buf.push(0);
                token.encode(buf);
            }
            LockOutput::Busy { owner } => {
                buf.push(1);
                owner.encode(buf);
            }
            LockOutput::Released(ok) => {
                buf.push(2);
                ok.encode(buf);
            }
            LockOutput::Holder(h) => {
                buf.push(3);
                h.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(LockOutput::Acquired {
                token: u64::decode(buf)?,
            }),
            1 => Some(LockOutput::Busy {
                owner: u64::decode(buf)?,
            }),
            2 => Some(LockOutput::Released(bool::decode(buf)?)),
            3 => Some(LockOutput::Holder(Option::decode(buf)?)),
            _ => None,
        }
    }
}

/// The lock-table state machine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LockService {
    /// lock → (owner, token).
    held: BTreeMap<String, (u64, u64)>,
    /// lock → next fencing token to issue.
    next_token: BTreeMap<String, u64>,
}

impl LockService {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks currently held.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// The holder of `lock`, if any.
    pub fn holder(&self, lock: &str) -> Option<(u64, u64)> {
        self.held.get(lock).copied()
    }
}

impl StateMachine for LockService {
    type Op = LockOp;
    type Output = LockOutput;

    fn apply(&mut self, op: &LockOp) -> LockOutput {
        match op {
            LockOp::Acquire { lock, owner } => match self.held.get(lock) {
                Some(&(holder, token)) if holder == *owner => LockOutput::Acquired { token },
                Some(&(holder, _)) => LockOutput::Busy { owner: holder },
                None => {
                    let token = self.next_token.entry(lock.clone()).or_insert(1);
                    let issued = *token;
                    *token += 1;
                    self.held.insert(lock.clone(), (*owner, issued));
                    LockOutput::Acquired { token: issued }
                }
            },
            LockOp::Release { lock, owner } => match self.held.get(lock) {
                Some(&(holder, _)) if holder == *owner => {
                    self.held.remove(lock);
                    LockOutput::Released(true)
                }
                _ => LockOutput::Released(false),
            },
            LockOp::Query { lock } => LockOutput::Holder(self.held.get(lock).copied()),
        }
    }

    fn query(&self, op: &LockOp) -> Option<LockOutput> {
        match op {
            LockOp::Query { lock } => Some(LockOutput::Holder(self.held.get(lock).copied())),
            _ => None,
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let held: Vec<(String, (u64, u64))> =
            self.held.iter().map(|(k, v)| (k.clone(), *v)).collect();
        let tokens: Vec<(String, u64)> = self
            .next_token
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        wire::to_bytes(&(held, tokens))
    }

    fn restore(bytes: &[u8]) -> Option<Self> {
        type Snap = (Vec<(String, (u64, u64))>, Vec<(String, u64)>);
        let (held, tokens) = wire::from_bytes::<Snap>(bytes)?;
        Some(LockService {
            held: held.into_iter().collect(),
            next_token: tokens.into_iter().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acq(lock: &str, owner: u64) -> LockOp {
        LockOp::Acquire {
            lock: lock.into(),
            owner,
        }
    }

    fn rel(lock: &str, owner: u64) -> LockOp {
        LockOp::Release {
            lock: lock.into(),
            owner,
        }
    }

    #[test]
    fn acquire_release_cycle() {
        let mut svc = LockService::new();
        assert_eq!(svc.apply(&acq("a", 1)), LockOutput::Acquired { token: 1 });
        assert_eq!(svc.apply(&acq("a", 2)), LockOutput::Busy { owner: 1 });
        assert_eq!(svc.apply(&rel("a", 2)), LockOutput::Released(false));
        assert_eq!(svc.apply(&rel("a", 1)), LockOutput::Released(true));
        assert_eq!(svc.apply(&acq("a", 2)), LockOutput::Acquired { token: 2 });
        assert_eq!(svc.held_count(), 1);
    }

    #[test]
    fn reacquire_is_reentrant_with_same_token() {
        let mut svc = LockService::new();
        assert_eq!(svc.apply(&acq("a", 7)), LockOutput::Acquired { token: 1 });
        assert_eq!(svc.apply(&acq("a", 7)), LockOutput::Acquired { token: 1 });
    }

    #[test]
    fn fencing_tokens_are_strictly_monotonic_per_lock() {
        let mut svc = LockService::new();
        let mut last = 0;
        for owner in 1..=5u64 {
            let out = svc.apply(&acq("hot", owner));
            let LockOutput::Acquired { token } = out else {
                panic!("should acquire: {out:?}");
            };
            assert!(token > last, "token regressed: {token} after {last}");
            last = token;
            svc.apply(&rel("hot", owner));
        }
        // Independent locks have independent counters.
        assert_eq!(
            svc.apply(&acq("cold", 9)),
            LockOutput::Acquired { token: 1 }
        );
    }

    #[test]
    fn query_reports_holder() {
        let mut svc = LockService::new();
        assert_eq!(
            svc.apply(&LockOp::Query { lock: "a".into() }),
            LockOutput::Holder(None)
        );
        svc.apply(&acq("a", 3));
        assert_eq!(
            svc.apply(&LockOp::Query { lock: "a".into() }),
            LockOutput::Holder(Some((3, 1)))
        );
    }

    #[test]
    fn snapshot_restore_preserves_tokens() {
        let mut svc = LockService::new();
        svc.apply(&acq("a", 1));
        svc.apply(&rel("a", 1));
        svc.apply(&acq("a", 2)); // token 2 issued
        let snap = svc.snapshot();
        let mut restored = LockService::restore(&snap).unwrap();
        assert_eq!(restored, svc);
        // Token counter survives: next acquisition continues the sequence.
        restored.apply(&rel("a", 2));
        assert_eq!(
            restored.apply(&acq("a", 9)),
            LockOutput::Acquired { token: 3 }
        );
        assert_eq!(LockService::restore(&[0xFF]), None);
    }

    #[test]
    fn ops_round_trip_the_wire() {
        for op in [acq("x", 1), rel("x", 2), LockOp::Query { lock: "x".into() }] {
            let bytes = wire::to_bytes(&op);
            assert_eq!(wire::from_bytes::<LockOp>(&bytes), Some(op));
        }
        for out in [
            LockOutput::Acquired { token: 9 },
            LockOutput::Busy { owner: 3 },
            LockOutput::Released(true),
            LockOutput::Holder(Some((1, 2))),
            LockOutput::Holder(None),
        ] {
            let bytes = wire::to_bytes(&out);
            assert_eq!(wire::from_bytes::<LockOutput>(&bytes), Some(out));
        }
    }
}
