//! A linearizability checker (Wing & Gong's algorithm with memoization).
//!
//! Given a *complete* concurrent history — every operation has both an
//! invocation and a response time — the checker searches for a legal
//! sequential witness that respects real-time order. States already proven
//! fruitless (same model fingerprint, same set of completed operations) are
//! memoized, which is what makes realistic histories tractable.
//!
//! The composed machine's headline safety claim — *the reconfigurable
//! machine is linearizable across epoch changes* — is tested by feeding
//! client-recorded histories from reconfiguration runs through this
//! checker (see the crate's integration tests and the E6 experiment).

use std::collections::HashSet;

use simnet::SimTime;

use crate::kv::{KvOp, KvOutput, KvStore};

/// A sequential specification against which histories are checked.
pub trait Model: Clone {
    /// Operation input.
    type In: Clone;
    /// Operation output.
    type Out: PartialEq;

    /// Applies one operation sequentially.
    fn step(&mut self, input: &Self::In) -> Self::Out;

    /// A collision-resistant-enough digest of the current state, used for
    /// memoization.
    fn fingerprint(&self) -> u64;
}

/// One completed operation of the concurrent history.
#[derive(Clone, Debug)]
pub struct HistoryOp<I, O> {
    /// The sequential process (client) that issued the operation.
    pub process: u64,
    /// Invocation time.
    pub invoke: SimTime,
    /// Response time.
    pub response: SimTime,
    /// Operation input.
    pub input: I,
    /// Observed output.
    pub output: O,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct DoneSet(Vec<u64>);

impl DoneSet {
    fn new(n: usize) -> Self {
        DoneSet(vec![0; n.div_ceil(64)])
    }
    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }
    fn clear(&mut self, i: usize) {
        self.0[i / 64] &= !(1 << (i % 64));
    }
    fn get(&self, i: usize) -> bool {
        self.0[i / 64] & (1 << (i % 64)) != 0
    }
}

/// Checks whether `history` is linearizable with respect to `initial`.
///
/// Operations of the same `process` must already be non-overlapping (the
/// session clients guarantee this). Returns `true` iff a linearization
/// exists.
///
/// The DFS recurses once per operation; long histories are checked on a
/// dedicated thread with a history-proportional stack.
pub fn linearizable<M>(initial: M, history: &[HistoryOp<M::In, M::Out>]) -> bool
where
    M: Model + Send,
    M::In: Sync,
    M::Out: Sync,
{
    if history.is_empty() {
        return true;
    }
    let run = |initial: M, history: &[HistoryOp<M::In, M::Out>]| {
        let n = history.len();
        let mut done = DoneSet::new(n);
        let mut memo: HashSet<(u64, DoneSet)> = HashSet::new();
        search(&initial, history, &mut done, 0, &mut memo)
    };
    // ~2KB of stack per recursion level, with a sane floor.
    let stack = (history.len() * 2048).max(8 << 20);
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .stack_size(stack)
            .spawn_scoped(scope, || run(initial, history))
            .expect("spawning the checker thread")
            .join()
            .expect("the checker does not panic")
    })
}

fn search<M: Model>(
    state: &M,
    history: &[HistoryOp<M::In, M::Out>],
    done: &mut DoneSet,
    n_done: usize,
    memo: &mut HashSet<(u64, DoneSet)>,
) -> bool {
    let n = history.len();
    if n_done == n {
        return true;
    }
    let key = (state.fingerprint(), done.clone());
    if !memo.insert(key) {
        return false; // already explored fruitlessly
    }
    // Minimal operations: pending ops whose invocation precedes every
    // pending response — only those may linearize next.
    let min_response = history
        .iter()
        .enumerate()
        .filter(|(i, _)| !done.get(*i))
        .map(|(_, op)| op.response)
        .min()
        .expect("there are pending ops");
    for i in 0..n {
        if done.get(i) {
            continue;
        }
        let op = &history[i];
        if op.invoke > min_response {
            continue;
        }
        let mut next = state.clone();
        let out = next.step(&op.input);
        if out != op.output {
            continue;
        }
        done.set(i);
        if search(&next, history, done, n_done + 1, memo) {
            return true;
        }
        done.clear(i);
    }
    false
}

impl Model for KvStore {
    type In = KvOp;
    type Out = KvOutput;

    fn step(&mut self, input: &KvOp) -> KvOutput {
        use rsmr_core::StateMachine;
        self.apply(input)
    }

    fn fingerprint(&self) -> u64 {
        // The key→value content only — NOT `snapshot()`, whose bytes carry
        // per-key version stamps: two apply orders reaching the same map
        // would then never collide in the memo table, and the search
        // degenerates to exponential on adversarial histories.
        self.content_hash()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(
        process: u64,
        invoke: u64,
        response: u64,
        input: KvOp,
        output: KvOutput,
    ) -> HistoryOp<KvOp, KvOutput> {
        HistoryOp {
            process,
            invoke: SimTime::from_micros(invoke),
            response: SimTime::from_micros(response),
            input,
            output,
        }
    }

    fn put(k: &str, v: u8) -> KvOp {
        KvOp::Put(k.into(), vec![v])
    }

    fn get(k: &str) -> KvOp {
        KvOp::Get(k.into())
    }

    fn val(v: u8) -> KvOutput {
        KvOutput::Value(Some(vec![v]))
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(linearizable(KvStore::new(), &[]));
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let h = vec![
            op(1, 0, 10, put("a", 1), KvOutput::Written),
            op(1, 20, 30, get("a"), val(1)),
        ];
        assert!(linearizable(KvStore::new(), &h));
    }

    #[test]
    fn stale_read_after_write_completes_is_not_linearizable() {
        // Write of 1 completes at t=10; a later read (t=20..30) returning
        // the initial absence is illegal.
        let h = vec![
            op(1, 0, 10, put("a", 1), KvOutput::Written),
            op(2, 20, 30, get("a"), KvOutput::Value(None)),
        ];
        assert!(!linearizable(KvStore::new(), &h));
    }

    #[test]
    fn concurrent_read_may_see_either_side_of_a_write() {
        // Read overlaps the write: both outcomes are legal.
        let h_old = vec![
            op(1, 0, 100, put("a", 1), KvOutput::Written),
            op(2, 10, 90, get("a"), KvOutput::Value(None)),
        ];
        let h_new = vec![
            op(1, 0, 100, put("a", 1), KvOutput::Written),
            op(2, 10, 90, get("a"), val(1)),
        ];
        assert!(linearizable(KvStore::new(), &h_old));
        assert!(linearizable(KvStore::new(), &h_new));
    }

    #[test]
    fn reads_cannot_go_backwards() {
        // A read of 2 completing before a read of 1 starts, with the write
        // of 2 after the write of 1, is a cycle: not linearizable.
        let h = vec![
            op(1, 0, 10, put("a", 1), KvOutput::Written),
            op(1, 20, 30, put("a", 2), KvOutput::Written),
            op(2, 40, 50, get("a"), val(2)),
            op(2, 60, 70, get("a"), val(1)),
        ];
        assert!(!linearizable(KvStore::new(), &h));
    }

    #[test]
    fn cas_outcomes_constrain_the_order() {
        // Two concurrent CAS from None: exactly one may succeed.
        let cas = |new: u8| KvOp::Cas {
            key: "k".into(),
            expect: None,
            new: vec![new],
        };
        let both_win = vec![
            op(1, 0, 100, cas(1), KvOutput::Swapped(true)),
            op(2, 0, 100, cas(2), KvOutput::Swapped(true)),
        ];
        assert!(!linearizable(KvStore::new(), &both_win));
        let one_wins = vec![
            op(1, 0, 100, cas(1), KvOutput::Swapped(true)),
            op(2, 0, 100, cas(2), KvOutput::Swapped(false)),
        ];
        assert!(linearizable(KvStore::new(), &one_wins));
    }

    #[test]
    fn interleaved_processes_with_a_witness() {
        // p1: put a=1 [0,10]; p2: put a=2 [5,15]; p1: get → 2 [20,30];
        // witness: put1 < put2 < get.
        let h = vec![
            op(1, 0, 10, put("a", 1), KvOutput::Written),
            op(2, 5, 15, put("a", 2), KvOutput::Written),
            op(1, 20, 30, get("a"), val(2)),
        ];
        assert!(linearizable(KvStore::new(), &h));
    }

    /// Brute-force reference: try every permutation consistent with
    /// real-time order.
    fn brute_force(initial: KvStore, h: &[HistoryOp<KvOp, KvOutput>]) -> bool {
        let n = h.len();
        let mut idx: Vec<usize> = (0..n).collect();
        permute(&mut idx, 0, &|order: &[usize]| {
            // Real-time order respected?
            for i in 0..n {
                for j in (i + 1)..n {
                    let (a, b) = (&h[order[i]], &h[order[j]]);
                    if b.response < a.invoke {
                        return false;
                    }
                }
            }
            let mut m = initial.clone();
            order.iter().all(|&k| m.step(&h[k].input) == h[k].output)
        })
    }

    fn permute(idx: &mut Vec<usize>, k: usize, check: &dyn Fn(&[usize]) -> bool) -> bool {
        if k == idx.len() {
            return check(idx);
        }
        for i in k..idx.len() {
            idx.swap(k, i);
            if permute(idx, k + 1, check) {
                idx.swap(k, i);
                return true;
            }
            idx.swap(k, i);
        }
        false
    }

    #[test]
    fn checker_agrees_with_brute_force_on_random_histories() {
        use simnet::SimRng;
        let mut rng = SimRng::seed_from_u64(99);
        for case in 0..200 {
            let n = rng.gen_range(1u32..=6);
            let mut h = Vec::new();
            for i in 0..n {
                let invoke = rng.gen_range(0u64..50);
                let response = invoke + rng.gen_range(1u64..30);
                let input = if rng.gen_bool(0.5) {
                    put("k", rng.gen_range(1u8..4))
                } else {
                    get("k")
                };
                let output = match &input {
                    KvOp::Put(..) => KvOutput::Written,
                    _ => {
                        if rng.gen_bool(0.3) {
                            KvOutput::Value(None)
                        } else {
                            val(rng.gen_range(1u8..4))
                        }
                    }
                };
                h.push(op(i as u64, invoke, response, input, output));
            }
            let fast = linearizable(KvStore::new(), &h);
            let slow = brute_force(KvStore::new(), &h);
            assert_eq!(fast, slow, "case {case} disagrees: {h:?}");
        }
    }
}
