//! A replicated key-value store: the application state machine used by the
//! examples, experiments and linearizability tests.

use std::collections::BTreeMap;
use std::sync::Arc;

use rsmr_core::state_machine::StateMachine;
use simnet::wire::{self, Wire};

/// Operations the store supports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvOp {
    /// Read a key.
    Get(String),
    /// Write a key.
    Put(String, Vec<u8>),
    /// Remove a key.
    Delete(String),
    /// Compare-and-swap: set `key` to `new` iff its current value equals
    /// `expect` (`None` = key absent).
    Cas {
        /// The key.
        key: String,
        /// Expected current value.
        expect: Option<Vec<u8>>,
        /// New value on match.
        new: Vec<u8>,
    },
    /// Append bytes to a key (creating it if absent).
    Append(String, Vec<u8>),
}

/// Operation results.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvOutput {
    /// `Get`: the value, if present.
    Value(Option<Vec<u8>>),
    /// `Put` / `Append`: acknowledged.
    Written,
    /// `Delete`: whether the key existed.
    Deleted(bool),
    /// `Cas`: whether the swap happened.
    Swapped(bool),
}

impl Wire for KvOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            KvOp::Get(k) => {
                buf.push(0);
                k.encode(buf);
            }
            KvOp::Put(k, v) => {
                buf.push(1);
                k.encode(buf);
                v.encode(buf);
            }
            KvOp::Delete(k) => {
                buf.push(2);
                k.encode(buf);
            }
            KvOp::Cas { key, expect, new } => {
                buf.push(3);
                key.encode(buf);
                expect.encode(buf);
                new.encode(buf);
            }
            KvOp::Append(k, v) => {
                buf.push(4);
                k.encode(buf);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(KvOp::Get(String::decode(buf)?)),
            1 => Some(KvOp::Put(String::decode(buf)?, Vec::decode(buf)?)),
            2 => Some(KvOp::Delete(String::decode(buf)?)),
            3 => Some(KvOp::Cas {
                key: String::decode(buf)?,
                expect: Option::decode(buf)?,
                new: Vec::decode(buf)?,
            }),
            4 => Some(KvOp::Append(String::decode(buf)?, Vec::decode(buf)?)),
            _ => None,
        }
    }
}

impl Wire for KvOutput {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            KvOutput::Value(v) => {
                buf.push(0);
                v.encode(buf);
            }
            KvOutput::Written => buf.push(1),
            KvOutput::Deleted(b) => {
                buf.push(2);
                b.encode(buf);
            }
            KvOutput::Swapped(b) => {
                buf.push(3);
                b.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(KvOutput::Value(Option::decode(buf)?)),
            1 => Some(KvOutput::Written),
            2 => Some(KvOutput::Deleted(bool::decode(buf)?)),
            3 => Some(KvOutput::Swapped(bool::decode(buf)?)),
            _ => None,
        }
    }
}

/// Number of hash-partitioned snapshot pages. Fixed so page assignment is
/// a pure function of the key: every replica (and every donor a joiner
/// rotates to) slices the identical state into identical pages.
pub const PAGES: usize = 256;

/// Bound on the tombstone log. When it overflows, the oldest entries are
/// dropped and [`KvStore::tombstone_floor`] rises: rejoiners whose
/// watermark predates the floor can no longer be served a delta and fall
/// back to a full transfer.
pub const TOMBSTONE_CAP: usize = 1024;

/// FNV-1a, 64-bit: the deterministic page hash. `std`'s hashers are not
/// guaranteed stable across releases, and page assignment is part of the
/// snapshot format.
fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn page_of(key: &str) -> usize {
    (fnv1a64(key) % PAGES as u64) as usize
}

/// One hash partition of the store. `version` is the `ops_applied` stamp
/// of the last mutation that touched this page, so a page's encoding is a
/// pure function of its version — the donor-side snapshot cursor reuses
/// cached encodings whenever the version still matches.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Page {
    map: BTreeMap<String, (u64, Vec<u8>)>,
    version: u64,
}

impl Page {
    fn encode(&self) -> Vec<u8> {
        let entries: Vec<(String, u64, Vec<u8>)> = self
            .map
            .iter()
            .map(|(k, (ver, v))| (k.clone(), *ver, v.clone()))
            .collect();
        wire::to_bytes(&(self.version, entries))
    }

    fn decode(index: usize, bytes: &[u8]) -> Option<Self> {
        let (version, entries) = wire::from_bytes::<(u64, Vec<(String, u64, Vec<u8>)>)>(bytes)?;
        let mut map = BTreeMap::new();
        for (k, ver, v) in entries {
            if page_of(&k) != index {
                return None; // entry on the wrong page: corrupt snapshot
            }
            map.insert(k, (ver, v));
        }
        Some(Page { map, version })
    }
}

/// The deterministic key-value state machine.
///
/// State is hash-partitioned into [`PAGES`] fixed pages, each entry
/// stamped with the `ops_applied` count of the write that produced it.
/// The partitioning drives three things in the composition: chunked
/// state transfer (pages stream independently), incremental seal-time
/// snapshots (only dirty pages re-encode), and delta sync for rejoiners
/// (entries newer than a watermark, plus a bounded tombstone log for
/// deletions).
///
/// ```
/// use kvstore::{KvOp, KvOutput, KvStore};
/// use rsmr_core::StateMachine;
/// let mut kv = KvStore::default();
/// kv.apply(&KvOp::Put("k".into(), b"v".to_vec()));
/// assert_eq!(kv.apply(&KvOp::Get("k".into())), KvOutput::Value(Some(b"v".to_vec())));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KvStore {
    pages: Vec<Page>,
    ops_applied: u64,
    /// Deleted keys with their deletion stamp, newest last. Pruned when a
    /// key is re-inserted; truncated at [`TOMBSTONE_CAP`].
    tombstones: Vec<(String, u64)>,
    /// Deltas from watermarks older than this are refused (tombstones
    /// below it have been dropped, so deletions could be missed).
    tombstone_floor: u64,
}

impl Default for KvStore {
    fn default() -> Self {
        KvStore {
            pages: vec![Page::default(); PAGES],
            ops_applied: 0,
            tombstones: Vec::new(),
            tombstone_floor: 0,
        }
    }
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a store pre-filled with `n` keys of `value_size` bytes each
    /// (`fill/000000`…), used by the state-transfer experiments to control
    /// snapshot size. Equivalent to applying `n` `Put`s to an empty store.
    pub fn with_filler(n: usize, value_size: usize) -> Self {
        let mut kv = Self::new();
        for i in 0..n {
            kv.ops_applied += 1;
            kv.write(format!("fill/{i:06}"), vec![0xAB; value_size]);
        }
        kv
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.pages.iter().map(|p| p.map.len()).sum()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.pages.iter().all(|p| p.map.is_empty())
    }

    /// Operations applied since genesis/restore.
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// Direct read access (for tests/examples).
    pub fn get(&self, key: &str) -> Option<&[u8]> {
        self.pages[page_of(key)]
            .map
            .get(key)
            .map(|(_, v)| v.as_slice())
    }

    /// Oldest watermark still serviceable by delta sync.
    pub fn tombstone_floor(&self) -> u64 {
        self.tombstone_floor
    }

    /// Hashes the *observable* state only — the key→value map, no version
    /// stamps, tombstone log or `ops_applied`. Every future output of the
    /// store is a function of exactly this content, which is what makes it
    /// the correct memoization key for the linearizability checker: two
    /// apply orders that converge on the same map must collide here, even
    /// though their per-key stamps (and thus [`StateMachine::snapshot`]
    /// bytes) differ.
    pub fn content_hash(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        for page in &self.pages {
            for (k, (_ver, v)) in &page.map {
                k.hash(&mut h);
                v.hash(&mut h);
            }
        }
        h.finish()
    }

    fn write(&mut self, key: String, value: Vec<u8>) {
        let ver = self.ops_applied;
        let page = &mut self.pages[page_of(&key)];
        page.map.insert(key.clone(), (ver, value));
        page.version = ver;
        // A live key needs no tombstone; pruning here keeps the log to
        // genuinely-deleted keys (and is deterministic, so every replica
        // holds the identical log).
        self.tombstones.retain(|(k, _)| *k != key);
    }

    fn remove(&mut self, key: &str) -> bool {
        let ver = self.ops_applied;
        let page = &mut self.pages[page_of(key)];
        if page.map.remove(key).is_none() {
            return false;
        }
        page.version = ver;
        self.tombstones.push((key.to_owned(), ver));
        if self.tombstones.len() > TOMBSTONE_CAP {
            let drop_n = self.tombstones.len() - TOMBSTONE_CAP;
            for (_, dropped) in self.tombstones.drain(..drop_n) {
                self.tombstone_floor = self.tombstone_floor.max(dropped);
            }
        }
        true
    }

    fn encode_meta(&self) -> Vec<u8> {
        wire::to_bytes(&(
            self.ops_applied,
            self.tombstone_floor,
            self.tombstones.clone(),
        ))
    }

    fn restore_from_blobs<B: AsRef<[u8]>>(blobs: &[B]) -> Option<Self> {
        if blobs.len() != PAGES + 1 {
            return None;
        }
        let (data, meta) = blobs.split_at(PAGES);
        let mut pages = Vec::with_capacity(PAGES);
        for (i, blob) in data.iter().enumerate() {
            pages.push(Page::decode(i, blob.as_ref())?);
        }
        let (ops_applied, tombstone_floor, tombstones) =
            wire::from_bytes::<(u64, u64, Vec<(String, u64)>)>(meta[0].as_ref())?;
        Some(KvStore {
            pages,
            ops_applied,
            tombstones,
            tombstone_floor,
        })
    }
}

impl StateMachine for KvStore {
    type Op = KvOp;
    type Output = KvOutput;

    fn apply(&mut self, op: &KvOp) -> KvOutput {
        self.ops_applied += 1;
        match op {
            KvOp::Get(k) => KvOutput::Value(self.get(k).map(<[u8]>::to_vec)),
            KvOp::Put(k, v) => {
                self.write(k.clone(), v.clone());
                KvOutput::Written
            }
            KvOp::Delete(k) => KvOutput::Deleted(self.remove(k)),
            KvOp::Cas { key, expect, new } => {
                let current = self.get(key);
                let matches = match (current, expect) {
                    (None, None) => true,
                    (Some(c), Some(e)) => c == e,
                    _ => false,
                };
                if matches {
                    self.write(key.clone(), new.clone());
                }
                KvOutput::Swapped(matches)
            }
            KvOp::Append(k, v) => {
                let mut value = self.get(k).map(<[u8]>::to_vec).unwrap_or_default();
                value.extend_from_slice(v);
                self.write(k.clone(), value);
                KvOutput::Written
            }
        }
    }

    fn query(&self, op: &KvOp) -> Option<KvOutput> {
        match op {
            KvOp::Get(k) => Some(KvOutput::Value(self.get(k).map(<[u8]>::to_vec))),
            _ => None,
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let blobs: Vec<Vec<u8>> = (0..self.snapshot_pages())
            .map(|i| self.snapshot_page(i))
            .collect();
        wire::to_bytes(&blobs)
    }

    fn restore(bytes: &[u8]) -> Option<Self> {
        let blobs = wire::from_bytes::<Vec<Vec<u8>>>(bytes)?;
        Self::restore_from_blobs(&blobs)
    }

    fn snapshot_pages(&self) -> usize {
        PAGES + 1 // data pages plus the meta page (stamps + tombstones)
    }

    fn snapshot_page(&self, page: usize) -> Vec<u8> {
        if page < PAGES {
            self.pages[page].encode()
        } else {
            self.encode_meta()
        }
    }

    fn page_version(&self, page: usize) -> Option<u64> {
        if page < PAGES {
            Some(self.pages[page].version)
        } else {
            // The meta page moves with every op (ops_applied is part of
            // it), so it is always dirty — and always tiny.
            Some(self.ops_applied)
        }
    }

    fn restore_pages(pages: &[Arc<Vec<u8>>]) -> Option<Self> {
        let blobs: Vec<&[u8]> = pages.iter().map(|p| p.as_slice()).collect();
        Self::restore_from_blobs(&blobs)
    }

    fn delta_watermark(&self) -> Option<u64> {
        Some(self.ops_applied)
    }

    fn delta_from_pages(
        pages: &[Arc<Vec<u8>>],
        since: u64,
        chunk_target: usize,
    ) -> Option<Vec<Vec<u8>>> {
        if pages.len() != PAGES + 1 {
            return None;
        }
        let (data, meta) = pages.split_at(PAGES);
        let (ops_applied, floor, tombstones) =
            wire::from_bytes::<(u64, u64, Vec<(String, u64)>)>(meta[0].as_ref())?;
        if since < floor || since > ops_applied {
            // Tombstones the rejoiner would need are gone (or its
            // watermark is from a different history): full transfer.
            return None;
        }
        let mut chunks = Vec::new();
        let mut cur: Vec<(String, u64, Vec<u8>)> = Vec::new();
        let mut cur_bytes = 0usize;
        for blob in data {
            let (page_version, entries) =
                wire::from_bytes::<(u64, Vec<(String, u64, Vec<u8>)>)>(blob.as_ref())?;
            if page_version <= since {
                continue; // page untouched since the watermark
            }
            for (k, ver, v) in entries {
                if ver <= since {
                    continue;
                }
                cur_bytes += k.len() + v.len() + 24;
                cur.push((k, ver, v));
                if cur_bytes >= chunk_target {
                    chunks.push(wire::to_bytes(&std::mem::take(&mut cur)));
                    cur_bytes = 0;
                }
            }
        }
        if !cur.is_empty() {
            chunks.push(wire::to_bytes(&cur));
        }
        // The final chunk replaces the rejoiner's meta wholesale: donor
        // stamp, floor and the full (bounded) tombstone log.
        chunks.push(wire::to_bytes(&(ops_applied, floor, tombstones)));
        Some(chunks)
    }

    fn apply_delta(&mut self, chunks: &[Vec<u8>]) -> bool {
        let Some((meta, data)) = chunks.split_last() else {
            return false;
        };
        let Some((ops_applied, floor, tombstones)) =
            wire::from_bytes::<(u64, u64, Vec<(String, u64)>)>(meta)
        else {
            return false;
        };
        let since = self.ops_applied;
        if ops_applied < since {
            return false;
        }
        // Validate every chunk before mutating anything: a malformed
        // delta must leave the state untouched so the caller can fall
        // back to a full transfer.
        let mut entries: Vec<(String, u64, Vec<u8>)> = Vec::new();
        for chunk in data {
            match wire::from_bytes::<Vec<(String, u64, Vec<u8>)>>(chunk) {
                Some(batch) => entries.extend(batch),
                None => return false,
            }
        }
        if entries.iter().any(|(_, ver, _)| *ver <= since) {
            return false;
        }
        // Deletions the rejoiner has not seen. A tombstone bumps the page
        // version even when the key is absent locally (the donor deleted
        // a key born after our watermark): the page version mirrors the
        // donor's last-mutation stamp exactly.
        for (k, del_ver) in &tombstones {
            if *del_ver > since {
                let page = &mut self.pages[page_of(k)];
                page.map.remove(k);
                page.version = page.version.max(*del_ver);
            }
        }
        for (k, ver, v) in entries {
            let page = &mut self.pages[page_of(&k)];
            page.version = page.version.max(ver);
            page.map.insert(k, (ver, v));
        }
        self.tombstones = tombstones;
        self.tombstone_floor = floor;
        self.ops_applied = ops_applied;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_cycle() {
        let mut kv = KvStore::new();
        assert_eq!(kv.apply(&KvOp::Get("a".into())), KvOutput::Value(None));
        assert_eq!(kv.apply(&KvOp::Put("a".into(), vec![1])), KvOutput::Written);
        assert_eq!(
            kv.apply(&KvOp::Get("a".into())),
            KvOutput::Value(Some(vec![1]))
        );
        assert_eq!(kv.apply(&KvOp::Delete("a".into())), KvOutput::Deleted(true));
        assert_eq!(
            kv.apply(&KvOp::Delete("a".into())),
            KvOutput::Deleted(false)
        );
        assert_eq!(kv.ops_applied(), 5);
    }

    #[test]
    fn cas_semantics() {
        let mut kv = KvStore::new();
        // CAS on an absent key with expect=None creates it.
        assert_eq!(
            kv.apply(&KvOp::Cas {
                key: "x".into(),
                expect: None,
                new: vec![1]
            }),
            KvOutput::Swapped(true)
        );
        // Wrong expectation fails and leaves the value alone.
        assert_eq!(
            kv.apply(&KvOp::Cas {
                key: "x".into(),
                expect: Some(vec![9]),
                new: vec![2]
            }),
            KvOutput::Swapped(false)
        );
        assert_eq!(kv.get("x"), Some(&[1u8][..]));
        // Correct expectation swaps.
        assert_eq!(
            kv.apply(&KvOp::Cas {
                key: "x".into(),
                expect: Some(vec![1]),
                new: vec![2]
            }),
            KvOutput::Swapped(true)
        );
        assert_eq!(kv.get("x"), Some(&[2u8][..]));
    }

    #[test]
    fn append_creates_and_extends() {
        let mut kv = KvStore::new();
        kv.apply(&KvOp::Append("log".into(), vec![1, 2]));
        kv.apply(&KvOp::Append("log".into(), vec![3]));
        assert_eq!(kv.get("log"), Some(&[1u8, 2, 3][..]));
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut kv = KvStore::with_filler(10, 32);
        kv.apply(&KvOp::Put("user/1".into(), b"alice".to_vec()));
        let snap = kv.snapshot();
        let restored = KvStore::restore(&snap).unwrap();
        assert_eq!(restored, kv);
        assert_eq!(KvStore::restore(&[1, 2, 3]), None);
    }

    #[test]
    fn filler_controls_snapshot_size() {
        let small = KvStore::with_filler(10, 16).snapshot().len();
        let big = KvStore::with_filler(100, 1024).snapshot().len();
        assert!(big > 100 * 1024);
        assert!(small < 10 * 1024);
    }

    #[test]
    fn ops_and_outputs_round_trip_the_wire() {
        let ops = vec![
            KvOp::Get("k".into()),
            KvOp::Put("k".into(), vec![1, 2]),
            KvOp::Delete("k".into()),
            KvOp::Cas {
                key: "k".into(),
                expect: Some(vec![1]),
                new: vec![2],
            },
            KvOp::Append("k".into(), vec![3]),
        ];
        for op in ops {
            let bytes = wire::to_bytes(&op);
            assert_eq!(wire::from_bytes::<KvOp>(&bytes), Some(op));
        }
        let outs = vec![
            KvOutput::Value(None),
            KvOutput::Value(Some(vec![1])),
            KvOutput::Written,
            KvOutput::Deleted(true),
            KvOutput::Swapped(false),
        ];
        for out in outs {
            let bytes = wire::to_bytes(&out);
            assert_eq!(wire::from_bytes::<KvOutput>(&bytes), Some(out));
        }
    }

    fn pages_of(kv: &KvStore) -> Vec<Arc<Vec<u8>>> {
        (0..kv.snapshot_pages())
            .map(|i| Arc::new(kv.snapshot_page(i)))
            .collect()
    }

    #[test]
    fn paged_snapshot_round_trips_and_matches_monolithic() {
        let mut kv = KvStore::with_filler(500, 32);
        kv.apply(&KvOp::Put("user/1".into(), b"alice".to_vec()));
        kv.apply(&KvOp::Delete("fill/000007".into()));
        let pages = pages_of(&kv);
        assert_eq!(pages.len(), PAGES + 1);
        let restored = KvStore::restore_pages(&pages).unwrap();
        assert_eq!(restored, kv);
        // The monolithic snapshot is the same pages in one blob.
        assert_eq!(KvStore::restore(&kv.snapshot()).unwrap(), kv);
    }

    #[test]
    fn page_version_tracks_only_touched_pages() {
        let mut kv = KvStore::with_filler(100, 8);
        let before: Vec<u64> = (0..PAGES).map(|i| kv.page_version(i).unwrap()).collect();
        kv.apply(&KvOp::Put("solo".into(), vec![1]));
        let after: Vec<u64> = (0..PAGES).map(|i| kv.page_version(i).unwrap()).collect();
        let dirty = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        assert_eq!(dirty, 1, "one Put must dirty exactly one page");
        // A Get mutates no page (but does move the meta page).
        let meta_before = kv.page_version(PAGES).unwrap();
        kv.apply(&KvOp::Get("solo".into()));
        let unchanged: Vec<u64> = (0..PAGES).map(|i| kv.page_version(i).unwrap()).collect();
        assert_eq!(after, unchanged);
        assert_ne!(kv.page_version(PAGES).unwrap(), meta_before);
    }

    /// The delta contract: restoring a stale replica and applying the
    /// delta built from newer pages yields *exactly* the newer state —
    /// same entries, same version stamps, same tombstone log.
    #[test]
    fn delta_apply_equals_full_restore() {
        let mut kv = KvStore::with_filler(400, 32);
        let stale_pages = pages_of(&kv);
        let watermark = kv.delta_watermark().unwrap();
        // Mutation window: overwrites, fresh inserts, deletes of old and
        // young keys, a delete-then-reinsert and an insert-then-delete.
        for i in 0..20 {
            kv.apply(&KvOp::Put(format!("fill/{i:06}"), vec![0xCD; 32]));
        }
        kv.apply(&KvOp::Put("young".into(), vec![1]));
        kv.apply(&KvOp::Delete("fill/000399".into()));
        kv.apply(&KvOp::Delete("fill/000100".into()));
        kv.apply(&KvOp::Put("fill/000100".into(), vec![9]));
        kv.apply(&KvOp::Put("ephemeral".into(), vec![2]));
        kv.apply(&KvOp::Delete("ephemeral".into()));
        let new_pages = pages_of(&kv);

        let delta = KvStore::delta_from_pages(&new_pages, watermark, 4096).unwrap();
        let mut rejoiner = KvStore::restore_pages(&stale_pages).unwrap();
        assert!(rejoiner.apply_delta(&delta));
        assert_eq!(rejoiner, kv);

        let full: usize = new_pages.iter().map(|p| p.len()).sum();
        let moved: usize = delta.iter().map(Vec::len).sum();
        assert!(
            moved * 5 < full,
            "5% mutation window moved {moved} of {full} bytes"
        );
    }

    #[test]
    fn delta_refused_below_tombstone_floor() {
        let mut kv = KvStore::with_filler(TOMBSTONE_CAP + 200, 8);
        // Deleting more keys than the cap pushes the floor up.
        for i in 0..TOMBSTONE_CAP + 100 {
            kv.apply(&KvOp::Delete(format!("fill/{i:06}")));
        }
        assert!(kv.tombstone_floor() > 0);
        let pages = pages_of(&kv);
        assert!(
            KvStore::delta_from_pages(&pages, kv.tombstone_floor() - 1, 4096).is_none(),
            "watermark below the floor must force a full transfer"
        );
        assert!(
            KvStore::delta_from_pages(&pages, kv.ops_applied() + 1, 4096).is_none(),
            "watermark from the future must force a full transfer"
        );
    }

    #[test]
    fn malformed_delta_leaves_state_untouched() {
        let mut kv = KvStore::with_filler(50, 8);
        let watermark = kv.delta_watermark().unwrap();
        kv.apply(&KvOp::Put("k".into(), vec![1]));
        let delta = KvStore::delta_from_pages(&pages_of(&kv), watermark, 4096).unwrap();
        let pristine = KvStore::with_filler(50, 8);
        let mut victim = pristine.clone();
        // Truncated meta chunk.
        let mut bad = delta.clone();
        let last = bad.last_mut().unwrap();
        last.truncate(last.len() / 2);
        assert!(!victim.apply_delta(&bad));
        assert_eq!(victim, pristine);
        // Garbage data chunk.
        let mut bad = delta.clone();
        bad[0] = vec![0xFF; 13];
        assert!(!victim.apply_delta(&bad));
        assert_eq!(victim, pristine);
        // Empty chunk list.
        assert!(!victim.apply_delta(&[]));
        assert_eq!(victim, pristine);
    }

    #[test]
    fn determinism_across_replicas() {
        let script = [
            KvOp::Put("a".into(), vec![1]),
            KvOp::Append("a".into(), vec![2]),
            KvOp::Cas {
                key: "a".into(),
                expect: Some(vec![1, 2]),
                new: vec![9],
            },
            KvOp::Get("a".into()),
        ];
        let run = || {
            let mut kv = KvStore::new();
            script.iter().map(|op| kv.apply(op)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
