//! A replicated key-value store: the application state machine used by the
//! examples, experiments and linearizability tests.

use std::collections::BTreeMap;

use rsmr_core::state_machine::StateMachine;
use simnet::wire::{self, Wire};

/// Operations the store supports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvOp {
    /// Read a key.
    Get(String),
    /// Write a key.
    Put(String, Vec<u8>),
    /// Remove a key.
    Delete(String),
    /// Compare-and-swap: set `key` to `new` iff its current value equals
    /// `expect` (`None` = key absent).
    Cas {
        /// The key.
        key: String,
        /// Expected current value.
        expect: Option<Vec<u8>>,
        /// New value on match.
        new: Vec<u8>,
    },
    /// Append bytes to a key (creating it if absent).
    Append(String, Vec<u8>),
}

/// Operation results.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvOutput {
    /// `Get`: the value, if present.
    Value(Option<Vec<u8>>),
    /// `Put` / `Append`: acknowledged.
    Written,
    /// `Delete`: whether the key existed.
    Deleted(bool),
    /// `Cas`: whether the swap happened.
    Swapped(bool),
}

impl Wire for KvOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            KvOp::Get(k) => {
                buf.push(0);
                k.encode(buf);
            }
            KvOp::Put(k, v) => {
                buf.push(1);
                k.encode(buf);
                v.encode(buf);
            }
            KvOp::Delete(k) => {
                buf.push(2);
                k.encode(buf);
            }
            KvOp::Cas { key, expect, new } => {
                buf.push(3);
                key.encode(buf);
                expect.encode(buf);
                new.encode(buf);
            }
            KvOp::Append(k, v) => {
                buf.push(4);
                k.encode(buf);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(KvOp::Get(String::decode(buf)?)),
            1 => Some(KvOp::Put(String::decode(buf)?, Vec::decode(buf)?)),
            2 => Some(KvOp::Delete(String::decode(buf)?)),
            3 => Some(KvOp::Cas {
                key: String::decode(buf)?,
                expect: Option::decode(buf)?,
                new: Vec::decode(buf)?,
            }),
            4 => Some(KvOp::Append(String::decode(buf)?, Vec::decode(buf)?)),
            _ => None,
        }
    }
}

impl Wire for KvOutput {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            KvOutput::Value(v) => {
                buf.push(0);
                v.encode(buf);
            }
            KvOutput::Written => buf.push(1),
            KvOutput::Deleted(b) => {
                buf.push(2);
                b.encode(buf);
            }
            KvOutput::Swapped(b) => {
                buf.push(3);
                b.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(KvOutput::Value(Option::decode(buf)?)),
            1 => Some(KvOutput::Written),
            2 => Some(KvOutput::Deleted(bool::decode(buf)?)),
            3 => Some(KvOutput::Swapped(bool::decode(buf)?)),
            _ => None,
        }
    }
}

/// The deterministic key-value state machine.
///
/// ```
/// use kvstore::{KvOp, KvOutput, KvStore};
/// use rsmr_core::StateMachine;
/// let mut kv = KvStore::default();
/// kv.apply(&KvOp::Put("k".into(), b"v".to_vec()));
/// assert_eq!(kv.apply(&KvOp::Get("k".into())), KvOutput::Value(Some(b"v".to_vec())));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KvStore {
    map: BTreeMap<String, Vec<u8>>,
    ops_applied: u64,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a store pre-filled with `n` keys of `value_size` bytes each
    /// (`fill/000000`…), used by the state-transfer experiments to control
    /// snapshot size.
    pub fn with_filler(n: usize, value_size: usize) -> Self {
        let mut kv = Self::new();
        for i in 0..n {
            kv.map
                .insert(format!("fill/{i:06}"), vec![0xAB; value_size]);
        }
        kv
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Operations applied since genesis/restore.
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// Direct read access (for tests/examples).
    pub fn get(&self, key: &str) -> Option<&[u8]> {
        self.map.get(key).map(Vec::as_slice)
    }
}

impl StateMachine for KvStore {
    type Op = KvOp;
    type Output = KvOutput;

    fn apply(&mut self, op: &KvOp) -> KvOutput {
        self.ops_applied += 1;
        match op {
            KvOp::Get(k) => KvOutput::Value(self.map.get(k).cloned()),
            KvOp::Put(k, v) => {
                self.map.insert(k.clone(), v.clone());
                KvOutput::Written
            }
            KvOp::Delete(k) => KvOutput::Deleted(self.map.remove(k).is_some()),
            KvOp::Cas { key, expect, new } => {
                let current = self.map.get(key);
                let matches = match (current, expect) {
                    (None, None) => true,
                    (Some(c), Some(e)) => c == e,
                    _ => false,
                };
                if matches {
                    self.map.insert(key.clone(), new.clone());
                }
                KvOutput::Swapped(matches)
            }
            KvOp::Append(k, v) => {
                self.map.entry(k.clone()).or_default().extend_from_slice(v);
                KvOutput::Written
            }
        }
    }

    fn query(&self, op: &KvOp) -> Option<KvOutput> {
        match op {
            KvOp::Get(k) => Some(KvOutput::Value(self.map.get(k).cloned())),
            _ => None,
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let entries: Vec<(String, Vec<u8>)> = self
            .map
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        wire::to_bytes(&(entries, self.ops_applied))
    }

    fn restore(bytes: &[u8]) -> Option<Self> {
        let (entries, ops_applied) = wire::from_bytes::<(Vec<(String, Vec<u8>)>, u64)>(bytes)?;
        Some(KvStore {
            map: entries.into_iter().collect(),
            ops_applied,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_cycle() {
        let mut kv = KvStore::new();
        assert_eq!(kv.apply(&KvOp::Get("a".into())), KvOutput::Value(None));
        assert_eq!(kv.apply(&KvOp::Put("a".into(), vec![1])), KvOutput::Written);
        assert_eq!(
            kv.apply(&KvOp::Get("a".into())),
            KvOutput::Value(Some(vec![1]))
        );
        assert_eq!(kv.apply(&KvOp::Delete("a".into())), KvOutput::Deleted(true));
        assert_eq!(
            kv.apply(&KvOp::Delete("a".into())),
            KvOutput::Deleted(false)
        );
        assert_eq!(kv.ops_applied(), 5);
    }

    #[test]
    fn cas_semantics() {
        let mut kv = KvStore::new();
        // CAS on an absent key with expect=None creates it.
        assert_eq!(
            kv.apply(&KvOp::Cas {
                key: "x".into(),
                expect: None,
                new: vec![1]
            }),
            KvOutput::Swapped(true)
        );
        // Wrong expectation fails and leaves the value alone.
        assert_eq!(
            kv.apply(&KvOp::Cas {
                key: "x".into(),
                expect: Some(vec![9]),
                new: vec![2]
            }),
            KvOutput::Swapped(false)
        );
        assert_eq!(kv.get("x"), Some(&[1u8][..]));
        // Correct expectation swaps.
        assert_eq!(
            kv.apply(&KvOp::Cas {
                key: "x".into(),
                expect: Some(vec![1]),
                new: vec![2]
            }),
            KvOutput::Swapped(true)
        );
        assert_eq!(kv.get("x"), Some(&[2u8][..]));
    }

    #[test]
    fn append_creates_and_extends() {
        let mut kv = KvStore::new();
        kv.apply(&KvOp::Append("log".into(), vec![1, 2]));
        kv.apply(&KvOp::Append("log".into(), vec![3]));
        assert_eq!(kv.get("log"), Some(&[1u8, 2, 3][..]));
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut kv = KvStore::with_filler(10, 32);
        kv.apply(&KvOp::Put("user/1".into(), b"alice".to_vec()));
        let snap = kv.snapshot();
        let restored = KvStore::restore(&snap).unwrap();
        assert_eq!(restored, kv);
        assert_eq!(KvStore::restore(&[1, 2, 3]), None);
    }

    #[test]
    fn filler_controls_snapshot_size() {
        let small = KvStore::with_filler(10, 16).snapshot().len();
        let big = KvStore::with_filler(100, 1024).snapshot().len();
        assert!(big > 100 * 1024);
        assert!(small < 10 * 1024);
    }

    #[test]
    fn ops_and_outputs_round_trip_the_wire() {
        let ops = vec![
            KvOp::Get("k".into()),
            KvOp::Put("k".into(), vec![1, 2]),
            KvOp::Delete("k".into()),
            KvOp::Cas {
                key: "k".into(),
                expect: Some(vec![1]),
                new: vec![2],
            },
            KvOp::Append("k".into(), vec![3]),
        ];
        for op in ops {
            let bytes = wire::to_bytes(&op);
            assert_eq!(wire::from_bytes::<KvOp>(&bytes), Some(op));
        }
        let outs = vec![
            KvOutput::Value(None),
            KvOutput::Value(Some(vec![1])),
            KvOutput::Written,
            KvOutput::Deleted(true),
            KvOutput::Swapped(false),
        ];
        for out in outs {
            let bytes = wire::to_bytes(&out);
            assert_eq!(wire::from_bytes::<KvOutput>(&bytes), Some(out));
        }
    }

    #[test]
    fn determinism_across_replicas() {
        let script = [
            KvOp::Put("a".into(), vec![1]),
            KvOp::Append("a".into(), vec![2]),
            KvOp::Cas {
                key: "a".into(),
                expect: Some(vec![1, 2]),
                new: vec![9],
            },
            KvOp::Get("a".into()),
        ];
        let run = || {
            let mut kv = KvStore::new();
            script.iter().map(|op| kv.apply(op)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
