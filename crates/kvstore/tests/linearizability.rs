//! The reproduction's headline safety property, machine-checked: histories
//! observed by concurrent clients of the composed reconfigurable machine
//! are **linearizable**, including across membership changes, leader
//! crashes and lossy networks.

use consensus::StaticConfig;
use kvstore::{linearizable, HistoryOp, KvOp, KvOutput, KvStore};
use rsmr_core::{AdminActor, RsmrClient, RsmrMsg, RsmrNode, RsmrTunables};
use simnet::{Actor, Context, NetConfig, NodeId, Sim, SimDuration, SimRng, SimTime, Timer};

type Msg = RsmrMsg<KvOp, KvOutput>;

#[allow(clippy::large_enum_variant)] // one value per node, stored once
enum Node {
    Server(RsmrNode<KvStore>),
    Client(RsmrClient<KvStore>),
    Admin(AdminActor<KvStore>),
}

impl Actor for Node {
    type Msg = Msg;
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        match self {
            Node::Server(a) => a.on_start(ctx),
            Node::Client(a) => a.on_start(ctx),
            Node::Admin(a) => a.on_start(ctx),
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        match self {
            Node::Server(a) => a.on_message(ctx, from, msg),
            Node::Client(a) => a.on_message(ctx, from, msg),
            Node::Admin(a) => a.on_message(ctx, from, msg),
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, timer: Timer) {
        match self {
            Node::Server(a) => a.on_timer(ctx, timer),
            Node::Client(a) => a.on_timer(ctx, timer),
            Node::Admin(a) => a.on_timer(ctx, timer),
        }
    }
}

/// A contended mixed workload over a tiny keyspace (maximal interleaving):
/// puts, gets and CAS on 3 keys.
fn contended_gen(client: u64) -> impl FnMut(u64) -> KvOp {
    move |seq| {
        let key = format!("k{}", (client + seq) % 3);
        match seq % 4 {
            0 => KvOp::Put(key, vec![client as u8, seq as u8]),
            1 | 2 => KvOp::Get(key),
            _ => KvOp::Append(key, vec![seq as u8]),
        }
    }
}

struct RunResult {
    histories: Vec<HistoryOp<KvOp, KvOutput>>,
    all_completed: bool,
}

#[derive(Clone, Copy, Default)]
struct Faults {
    /// Crash the active leader at this time (ms).
    crash_leader_at_ms: Option<u64>,
    /// Partition the active leader away at this time (ms), healing 500ms
    /// later — the stale-read-lease hazard.
    partition_leader_at_ms: Option<u64>,
    /// Enable lease-based local reads (100ms leases).
    local_reads: bool,
}

#[allow(clippy::too_many_arguments)]
fn run_world(
    seed: u64,
    n_servers: u64,
    n_clients: u64,
    ops_per_client: u64,
    drop_rate: f64,
    reconfig: Option<(u64, Vec<u64>)>, // (at_ms, member ids)
    faults: Faults,
    horizon_secs: u64,
) -> RunResult {
    let net = if drop_rate > 0.0 {
        NetConfig::lossy(drop_rate)
    } else {
        NetConfig::lan()
    };
    let mut tun = RsmrTunables {
        local_reads: faults.local_reads,
        ..RsmrTunables::default()
    };
    if faults.local_reads {
        tun.paxos.lease_duration = Some(simnet::SimDuration::from_millis(100));
    }
    let mut sim: Sim<Node> = Sim::new(seed, net);
    let servers: Vec<NodeId> = (0..n_servers).map(NodeId).collect();
    let genesis = StaticConfig::new(servers.clone());
    for &s in &servers {
        sim.add_node_with_id(
            s,
            Node::Server(RsmrNode::genesis(s, genesis.clone(), tun.clone())),
        );
    }
    // Joiners mentioned by the reconfig target but not in genesis.
    if let Some((_, target)) = &reconfig {
        for &m in target {
            if m >= n_servers {
                sim.add_node_with_id(
                    NodeId(m),
                    Node::Server(RsmrNode::joining(NodeId(m), tun.clone())),
                );
            }
        }
    }
    let clients: Vec<NodeId> = (0..n_clients).map(|c| NodeId(100 + c)).collect();
    for (i, &c) in clients.iter().enumerate() {
        sim.add_node_with_id(
            c,
            Node::Client(
                RsmrClient::new(
                    servers.clone(),
                    contended_gen(i as u64),
                    Some(ops_per_client),
                )
                .with_history(),
            ),
        );
    }
    if let Some((at_ms, target)) = &reconfig {
        sim.add_node_with_id(
            NodeId(99),
            Node::Admin(AdminActor::new(
                servers.clone(),
                vec![(
                    SimTime::from_millis(*at_ms),
                    target.iter().map(|&m| NodeId(m)).collect(),
                )],
            )),
        );
    }

    let find_leader = |sim: &Sim<Node>| {
        servers
            .iter()
            .copied()
            .find(|&s| matches!(sim.actor(s), Some(Node::Server(n)) if n.is_active_leader()))
    };
    if let Some(at) = faults.crash_leader_at_ms {
        sim.run_for(SimDuration::from_millis(at));
        if let Some(l) = find_leader(&sim) {
            sim.crash(l);
        }
    }
    if let Some(at) = faults.partition_leader_at_ms {
        sim.run_for(SimDuration::from_millis(at));
        if let Some(l) = find_leader(&sim) {
            let rest: Vec<NodeId> = sim.node_ids().into_iter().filter(|&n| n != l).collect();
            sim.partition(&[l], &rest);
            sim.run_for(SimDuration::from_millis(500));
            sim.heal_all();
        }
    }
    sim.run_for(SimDuration::from_secs(horizon_secs));

    let mut histories = Vec::new();
    let mut all_completed = true;
    for &c in &clients {
        match sim.actor(c) {
            Some(Node::Client(cl)) => {
                all_completed &= cl.completed() == ops_per_client;
                for (_seq, op, out, invoke, response) in cl.history() {
                    histories.push(HistoryOp {
                        process: c.0,
                        invoke: *invoke,
                        response: *response,
                        input: op.clone(),
                        output: out.clone(),
                    });
                }
            }
            _ => unreachable!(),
        }
    }
    RunResult {
        histories,
        all_completed,
    }
}

#[test]
fn linearizable_in_steady_state() {
    let r = run_world(1, 3, 4, 30, 0.0, None, Faults::default(), 30);
    assert!(r.all_completed);
    assert!(linearizable(KvStore::new(), &r.histories));
}

#[test]
fn linearizable_across_a_membership_change() {
    let r = run_world(
        2,
        3,
        4,
        40,
        0.0,
        Some((400, vec![0, 1, 2, 3])),
        Faults::default(),
        40,
    );
    assert!(r.all_completed, "clients must finish");
    assert!(
        linearizable(KvStore::new(), &r.histories),
        "history across the reconfiguration must be linearizable"
    );
}

#[test]
fn linearizable_across_full_replacement() {
    let r = run_world(
        3,
        3,
        3,
        40,
        0.0,
        Some((400, vec![3, 4, 5])),
        Faults::default(),
        40,
    );
    assert!(r.all_completed);
    assert!(linearizable(KvStore::new(), &r.histories));
}

#[test]
fn linearizable_with_leader_crash_during_reconfig() {
    let r = run_world(
        4,
        3,
        3,
        40,
        0.0,
        Some((400, vec![0, 1, 2, 3])),
        Faults {
            crash_leader_at_ms: Some(420),
            ..Faults::default()
        },
        60,
    );
    assert!(r.all_completed);
    assert!(linearizable(KvStore::new(), &r.histories));
}

#[test]
fn linearizable_on_a_lossy_network() {
    let r = run_world(
        5,
        3,
        3,
        25,
        0.02,
        Some((400, vec![0, 1, 2, 3])),
        Faults::default(),
        60,
    );
    // Completion is best-effort under loss; the *completed* prefix must
    // still be linearizable.
    assert!(!r.histories.is_empty());
    assert!(linearizable(KvStore::new(), &r.histories));
}

#[test]
fn linearizable_with_local_reads_in_steady_state() {
    let r = run_world(
        6,
        3,
        4,
        40,
        0.0,
        None,
        Faults {
            local_reads: true,
            ..Faults::default()
        },
        30,
    );
    assert!(r.all_completed);
    assert!(linearizable(KvStore::new(), &r.histories));
}

#[test]
fn linearizable_with_local_reads_across_a_reconfiguration() {
    let r = run_world(
        7,
        3,
        4,
        40,
        0.0,
        Some((400, vec![0, 1, 2, 3])),
        Faults {
            local_reads: true,
            ..Faults::default()
        },
        40,
    );
    assert!(r.all_completed);
    assert!(linearizable(KvStore::new(), &r.histories));
}

#[test]
fn linearizable_with_local_reads_despite_a_partitioned_leaseholder() {
    // The stale-read hazard: the lease-holding leader is partitioned away
    // while a new leader commits writes. The lease (100ms) expires before
    // any new leader can be elected (150ms+ timeout), so reads the old
    // leader served must still linearize.
    for seed in [8u64, 88, 888] {
        let r = run_world(
            seed,
            3,
            4,
            60,
            0.0,
            None,
            Faults {
                partition_leader_at_ms: Some(300),
                local_reads: true,
                ..Faults::default()
            },
            60,
        );
        assert!(r.all_completed, "seed {seed}");
        assert!(
            linearizable(KvStore::new(), &r.histories),
            "stale leased read detected with seed {seed}"
        );
    }
}

/// Randomized schedules: seeds, loss, reconfiguration timing and target,
/// optional leader crash — the history must always check out. Cases come
/// from a seeded generator so every failure is reproducible.
#[test]
fn linearizable_under_random_faults() {
    let mut gen = SimRng::seed_from_u64(0x11EA12);
    for _case in 0..12 {
        let seed = gen.gen_range(0u64..100_000);
        let drop_permille = gen.gen_range(0u64..30);
        let reconfig_at = gen.gen_range(200u64..1_000);
        let target_kind = gen.gen_range(0usize..3);
        let crash = gen.gen_bool(0.5);

        let target = match target_kind {
            0 => vec![0, 1, 2, 3], // add one
            1 => vec![0, 1],       // remove one
            _ => vec![1, 2, 3],    // rotate one
        };
        let r = run_world(
            seed,
            3,
            3,
            25,
            drop_permille as f64 / 1000.0,
            Some((reconfig_at, target)),
            Faults {
                crash_leader_at_ms: if crash { Some(reconfig_at + 30) } else { None },
                ..Faults::default()
            },
            90,
        );
        assert!(
            linearizable(KvStore::new(), &r.histories),
            "non-linearizable history with seed={seed}"
        );
        if drop_permille == 0 && !crash {
            assert!(r.all_completed, "benign run must complete, seed={seed}");
        }
    }
}
