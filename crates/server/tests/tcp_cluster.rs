//! End-to-end cluster tests over real localhost sockets.
//!
//! These boot in-process replicas with [`rsmr_server::serve`] — the same
//! code path as the `rsmr-server` binary — and drive them with the real
//! client fleet from the `loadgen` crate. They are the CI smoke for the
//! TCP backend: commands commit through a live reconfiguration, a killed
//! replica recovers its groups from the storage directory and the
//! survivors reconnect to it.

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use loadgen::{run_fleet, FleetReport, LoadgenConfig, ReconfigStep};
use rsmr_server::{serve, ServerConfig, ServerSummary};

/// Each test boots a whole cluster plus a client fleet (dozens of
/// threads); running them concurrently starves the closed-loop clients
/// on small CI machines. Serialize.
static SERIAL: Mutex<()> = Mutex::new(());

fn free_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rsmr-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Replica {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<std::io::Result<ServerSummary>>,
}

impl Replica {
    fn spawn(cfg: ServerConfig) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::spawn(move || serve(&cfg, &flag));
        Replica { stop, handle }
    }

    fn stop(self) -> ServerSummary {
        self.stop.store(true, Ordering::SeqCst);
        self.handle
            .join()
            .expect("replica thread panicked")
            .expect("replica failed")
    }
}

fn cluster_config(
    node: u64,
    ports: &[u16],
    initial: &[u64],
    storage: Option<PathBuf>,
) -> ServerConfig {
    ServerConfig {
        node_id: node,
        listen: Some(format!("127.0.0.1:{}", ports[node as usize])),
        peers: ports
            .iter()
            .enumerate()
            .map(|(id, port)| (id as u64, format!("127.0.0.1:{port}")))
            .collect(),
        initial_members: initial.to_vec(),
        groups: 1,
        storage_dir: storage,
        fsync: false,
        fsync_window_ms: 0,
        max_batch: 1,
        max_delay_ms: 0,
        window: 0,
        seed: node,
        run_for_secs: None,
        events_out: None,
        metrics_listen: None,
        stats_interval_secs: 0,
        corrupt_frames: Vec::new(),
    }
}

fn fleet(
    ports: &[u16],
    initial: &[u64],
    client_base: u64,
    secs: u64,
    reconfigs: Vec<ReconfigStep>,
) -> FleetReport {
    run_fleet(&LoadgenConfig {
        servers: ports
            .iter()
            .enumerate()
            .map(|(id, port)| (id as u64, format!("127.0.0.1:{port}")))
            .collect(),
        initial_members: initial.to_vec(),
        groups: 1,
        clients: 4,
        client_base,
        run_for: Duration::from_secs(secs),
        warmup: Duration::from_millis(500),
        reconfigs,
        ..LoadgenConfig::default()
    })
    .expect("fleet failed")
}

/// The CI smoke: a three-member cluster plus a standby joiner commits
/// at least a hundred commands through a live reconfiguration that
/// retires node 0 and admits node 3, then everyone shuts down cleanly.
#[test]
fn three_node_cluster_commits_through_a_reconfiguration() {
    let _serial = SERIAL.lock().unwrap();
    let ports = free_ports(4);
    let initial = [0, 1, 2];
    let replicas: Vec<Replica> = (0..4)
        .map(|n| Replica::spawn(cluster_config(n, &ports, &initial, None)))
        .collect();

    let report = fleet(
        &ports,
        &initial,
        100,
        6,
        vec![ReconfigStep {
            after: Duration::from_secs(2),
            target: vec![1, 2, 3],
        }],
    );

    assert!(
        report.completed_total >= 100,
        "want >= 100 commands, got {}",
        report.completed_total
    );
    assert_eq!(
        report.reconfigs.len(),
        1,
        "one reconfiguration acknowledged"
    );
    assert_eq!(report.reconfigs[0].epoch, 1, "successor epoch");

    let summaries: Vec<ServerSummary> = replicas.into_iter().map(Replica::stop).collect();
    // The joiner was admitted, anchored the successor epoch and applied
    // commands committed after the handoff.
    let joiner = &summaries[3];
    assert_eq!(joiner.anchored_epochs, vec![(0, Some(1))]);
    assert!(
        joiner.ops_applied > 0,
        "the admitted joiner applied commands"
    );
    // Everyone exchanged real frames.
    for s in &summaries {
        assert!(s.net_sent > 0 && s.net_delivered > 0, "node {}", s.node);
    }
}

/// Kill a replica mid-cluster, restart it on the same storage directory:
/// it recovers its group from disk and the surviving peers' connectors
/// reconnect to the fresh listener, after which it keeps applying.
#[test]
fn restarted_replica_recovers_from_disk_and_peers_reconnect() {
    let _serial = SERIAL.lock().unwrap();
    let ports = free_ports(3);
    let initial = [0, 1, 2];
    let root = scratch_dir("restart");
    let dir = |n: u64| Some(root.join(format!("n{n}")));

    let mut replicas: Vec<Option<Replica>> = (0..3)
        .map(|n| Some(Replica::spawn(cluster_config(n, &ports, &initial, dir(n)))))
        .collect();

    let phase1 = fleet(&ports, &initial, 100, 3, Vec::new());
    assert!(phase1.completed_total > 0, "phase 1 committed");

    // Crash-and-restart node 2 (stop() is the orderly flavor; the state
    // it recovers from was written through the journal write-ahead of
    // every emit, so an abrupt kill recovers the same way — see the
    // chaos suite for the simulated version).
    let down = replicas[2].take().unwrap().stop();
    assert!(down.ops_applied > 0, "node 2 applied before the restart");
    let restarted = Replica::spawn(cluster_config(2, &ports, &initial, dir(2)));

    // Fresh client ids: servers deduplicate per-client sequence numbers,
    // so phase 2 must not reuse phase 1's identities.
    let phase2 = fleet(&ports, &initial, 200, 3, Vec::new());
    assert!(
        phase2.completed_total > 0,
        "phase 2 committed after restart"
    );

    replicas[2] = Some(restarted);
    let summaries: Vec<ServerSummary> = replicas.into_iter().map(|r| r.unwrap().stop()).collect();
    let back = &summaries[2];
    assert_eq!(back.recovered_groups, 1, "group recovered from disk");
    assert_eq!(back.anchored_epochs, vec![(0, Some(0))]);
    assert!(
        back.ops_applied >= down.ops_applied,
        "recovered state machine did not regress: {} -> {}",
        down.ops_applied,
        back.ops_applied
    );
    assert!(
        back.net_delivered > 0,
        "survivors reconnected and delivered"
    );

    let _ = std::fs::remove_dir_all(&root);
}
