//! Live telemetry end-to-end: a real cluster over localhost sockets,
//! scraped over HTTP while it reconfigures.
//!
//! Boots the same in-process replicas as `tcp_cluster.rs`, each with a
//! `--metrics-listen` endpoint, drives a client fleet through a planned
//! reconfiguration, and asserts the *observable* story: `/healthz`
//! answers, the `rsmr_epoch` gauge advances past the genesis epoch, the
//! reconfiguration-span histogram gains a sample somewhere in the
//! cluster, and `/status` reports the post-change membership.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use loadgen::{run_fleet, LoadgenConfig, ReconfigStep};
use rsmr_server::{serve, ServerConfig, ServerSummary};

fn free_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rsmr-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Replica {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<std::io::Result<ServerSummary>>,
}

impl Replica {
    fn spawn(cfg: ServerConfig) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::spawn(move || serve(&cfg, &flag));
        Replica { stop, handle }
    }

    fn stop(self) -> ServerSummary {
        self.stop.store(true, Ordering::SeqCst);
        self.handle
            .join()
            .expect("replica thread panicked")
            .expect("replica failed")
    }
}

/// A one-shot `GET` against a replica's metrics endpoint; returns
/// `(status_line, body)`.
fn http_get(port: u16, path: &str) -> std::io::Result<(String, String)> {
    let mut s = TcpStream::connect(("127.0.0.1", port))?;
    s.set_read_timeout(Some(Duration::from_secs(5)))?;
    s.set_write_timeout(Some(Duration::from_secs(5)))?;
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = String::new();
    s.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header break"))?;
    let status = head.lines().next().unwrap_or_default().to_owned();
    Ok((status, body.to_owned()))
}

/// Polls `port` until `pred` holds for the `/metrics` body (panics on
/// deadline). Scrapes are cheap, the pump refreshes every 250ms.
fn await_metrics(port: u16, what: &str, deadline: Duration, pred: impl Fn(&str) -> bool) -> String {
    let until = Instant::now() + deadline;
    loop {
        if let Ok((status, body)) = http_get(port, "/metrics") {
            assert!(status.contains("200"), "scrape failed: {status}");
            if pred(&body) {
                return body;
            }
        }
        assert!(Instant::now() < until, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// The gauge line `rsmr_epoch{group="0"} E`, parsed.
fn epoch_of(body: &str) -> Option<u64> {
    body.lines()
        .find(|l| l.starts_with("rsmr_epoch{group=\"0\"}"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

/// The `_count` sample of a histogram series, parsed.
fn count_of(body: &str, series: &str) -> u64 {
    let prefix = format!("{series}_count ");
    body.lines()
        .find(|l| l.starts_with(&prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[test]
fn metrics_and_status_track_a_live_reconfiguration() {
    let ports = free_ports(4);
    let scrape = free_ports(4);
    let dir = scratch_dir("metrics");

    let config = |node: u64| ServerConfig {
        node_id: node,
        listen: Some(format!("127.0.0.1:{}", ports[node as usize])),
        peers: ports
            .iter()
            .enumerate()
            .map(|(id, port)| (id as u64, format!("127.0.0.1:{port}")))
            .collect(),
        initial_members: vec![0, 1, 2],
        groups: 1,
        storage_dir: Some(dir.join(format!("n{node}"))),
        fsync: false,
        fsync_window_ms: 0,
        max_batch: 8,
        max_delay_ms: 1,
        window: 4,
        seed: node,
        run_for_secs: None,
        events_out: None,
        metrics_listen: Some(format!("127.0.0.1:{}", scrape[node as usize])),
        stats_interval_secs: 0,
        corrupt_frames: Vec::new(),
    };
    let replicas: Vec<Replica> = (0..4).map(|n| Replica::spawn(config(n))).collect();

    // Genesis first: node 1 must anchor epoch 1 before the change so the
    // "gauge advances" assertion observes a real transition.
    let before = await_metrics(
        scrape[1],
        "genesis epoch gauge",
        Duration::from_secs(20),
        |b| epoch_of(b).is_some(),
    );
    let genesis = epoch_of(&before).unwrap();

    let (hstatus, hbody) = http_get(scrape[1], "/healthz").expect("healthz");
    assert!(hstatus.contains("200"), "{hstatus}");
    assert_eq!(hbody, "ok\n");

    // Drive load through a reconfiguration that retires node 0 and
    // admits node 3.
    let report = run_fleet(&LoadgenConfig {
        servers: ports
            .iter()
            .enumerate()
            .map(|(id, port)| (id as u64, format!("127.0.0.1:{port}")))
            .collect(),
        initial_members: vec![0, 1, 2],
        groups: 1,
        clients: 4,
        run_for: Duration::from_secs(4),
        warmup: Duration::from_millis(500),
        reconfigs: vec![ReconfigStep {
            after: Duration::from_secs(1),
            target: vec![1, 2, 3],
        }],
        ..LoadgenConfig::default()
    })
    .expect("fleet failed");
    assert!(
        !report.reconfigs.is_empty(),
        "reconfiguration never finished"
    );

    // The epoch gauge on a surviving member must move past genesis.
    let after = await_metrics(
        scrape[1],
        "advanced epoch gauge",
        Duration::from_secs(20),
        |b| epoch_of(b).is_some_and(|e| e > genesis),
    );
    assert!(epoch_of(&after).unwrap() > genesis);

    // Core series from every layer are present on the scrape.
    for series in [
        "rsmr_applied",
        "paxos_batch_size_count",
        "storage_wal_append_bytes_count",
    ] {
        assert!(after.contains(series), "missing series {series}:\n{after}");
    }
    assert!(!after.contains("NaN"), "NaN leaked into the exposition");

    // The reconfiguration span histogram gains a sample somewhere in the
    // cluster (phases are observed where the spans close, which depends
    // on leadership — poll every member).
    let until = Instant::now() + Duration::from_secs(20);
    'seal: loop {
        for &p in &scrape {
            if let Ok((_, body)) = http_get(p, "/metrics") {
                if count_of(&body, "reconfig_seal_latency_us") >= 1 {
                    break 'seal;
                }
            }
        }
        assert!(
            Instant::now() < until,
            "no reconfig.seal_latency_us sample on any member"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // `/status` reflects the new membership on a survivor.
    let (sstatus, sbody) = http_get(scrape[1], "/status").expect("status");
    assert!(sstatus.contains("200"), "{sstatus}");
    assert!(sbody.contains("\"node\":1"), "{sbody}");
    assert!(sbody.contains("\"members\":[1,2,3]"), "{sbody}");
    assert!(
        sbody.contains("\"role\":\"leader\"") || sbody.contains("\"role\":\"follower\""),
        "{sbody}"
    );

    let (nstatus, _) = http_get(scrape[1], "/nope").expect("404 route");
    assert!(nstatus.contains("404"), "{nstatus}");

    for r in replicas {
        r.stop();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
