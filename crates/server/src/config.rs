//! Replica configuration: a small TOML subset plus CLI overrides.
//!
//! The accepted file format is flat `key = value` TOML — strings,
//! integers, booleans, and arrays of integers or strings — which covers
//! everything a replica needs without pulling in a TOML crate:
//!
//! ```toml
//! # replica 0 of a three-node cluster
//! node_id = 0
//! listen = "127.0.0.1:7400"
//! peers = ["0@127.0.0.1:7400", "1@127.0.0.1:7401", "2@127.0.0.1:7402"]
//! initial_members = [0, 1, 2]
//! groups = 1
//! storage_dir = "data/n0"
//! fsync = true
//! run_for_secs = 60
//! events_out = "events-n0.jsonl"
//! metrics_listen = "127.0.0.1:9400"   # /metrics, /healthz, /status
//! ```
//!
//! Every key can also be set (or overridden) on the command line; see
//! [`ServerConfig::from_args`].

use std::net::{SocketAddr, ToSocketAddrs};
use std::path::PathBuf;

/// Everything one replica process needs to know.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// This replica's node id.
    pub node_id: u64,
    /// Address to listen on (e.g. `"127.0.0.1:7400"`).
    pub listen: Option<String>,
    /// Every cluster member as `(node id, "host:port")`, including this
    /// node (its own entry is ignored when connecting).
    pub peers: Vec<(u64, String)>,
    /// Member ids of the genesis configuration (epoch 0). A node not
    /// listed starts as a *joining* replica and waits to be added by a
    /// reconfiguration.
    pub initial_members: Vec<u64>,
    /// Number of independent replication groups multiplexed on this node.
    pub groups: u32,
    /// Directory for durable state; `None` runs storage-less (volatile).
    pub storage_dir: Option<PathBuf>,
    /// Fsync files and directory on every write batch.
    pub fsync: bool,
    /// WAL group commit: issue at most one fsync per this many
    /// milliseconds (`0` = fsync every batch). Widens the power-loss
    /// durability window to this long; see OPERATIONS.md.
    pub fsync_window_ms: u64,
    /// Leader-side batching: commands per consensus proposal (`1` = one
    /// command per slot, batching off).
    pub max_batch: u64,
    /// Leader-side batching: how long a non-full batch may wait for more
    /// commands before it is flushed anyway (`0` = flush on next tick).
    pub max_delay_ms: u64,
    /// Pipelined proposal window: outstanding slots the leader keeps in
    /// flight (`0` = unbounded, the pre-batching behavior).
    pub window: u64,
    /// Seed for protocol-level randomness (retry jitter).
    pub seed: u64,
    /// Exit cleanly after this many wall-clock seconds; `None` = serve
    /// until killed.
    pub run_for_secs: Option<u64>,
    /// Write observed reconfiguration spans and command-latency stats to
    /// this JSONL file on shutdown (plus periodic `server_stats` lines
    /// during the run; see `stats_interval_secs`).
    pub events_out: Option<PathBuf>,
    /// Serve live telemetry over HTTP on this address: Prometheus text
    /// at `/metrics`, liveness at `/healthz`, a JSON replica snapshot at
    /// `/status`. `None` disables the endpoint.
    pub metrics_listen: Option<String>,
    /// Seconds between periodic `server_stats` lines appended to
    /// `events_out` during the run (`0` = only the shutdown summary).
    pub stats_interval_secs: u64,
    /// Fault injection for integrity smoke tests: 0-based indices (in
    /// send order, across all peers) of outgoing frames to bit-flip
    /// *after* the CRC trailer is computed. The receiving replica must
    /// detect every one (`net.frame_errors`), kill the connection, and
    /// resume after the reconnect. Empty in normal operation.
    pub corrupt_frames: Vec<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            node_id: 0,
            listen: None,
            peers: Vec::new(),
            initial_members: Vec::new(),
            groups: 1,
            storage_dir: None,
            fsync: true,
            fsync_window_ms: 0,
            max_batch: 1,
            max_delay_ms: 0,
            window: 0,
            seed: 0,
            run_for_secs: None,
            events_out: None,
            metrics_listen: None,
            stats_interval_secs: 10,
            corrupt_frames: Vec::new(),
        }
    }
}

impl ServerConfig {
    /// Parses the TOML subset described in the module docs.
    pub fn parse_toml(text: &str) -> Result<Self, String> {
        let mut cfg = ServerConfig::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            cfg.set(key.trim(), value.trim())
                .map_err(|e| format!("line {}: {}", lineno + 1, e))?;
        }
        Ok(cfg)
    }

    /// Builds a config from CLI arguments. `--config FILE` loads the file
    /// first; later flags override it:
    ///
    /// `--node N`, `--listen ADDR`, `--peer ID@ADDR` (repeatable, resets
    /// the file's list on first use), `--initial-members 0,1,2`,
    /// `--groups N`, `--storage-dir DIR`, `--fsync`/`--no-fsync`,
    /// `--fsync-window-ms N`, `--max-batch N`, `--max-delay-ms N`,
    /// `--window N`, `--seed N`, `--run-for-secs N`, `--events-out FILE`,
    /// `--metrics-listen ADDR`, `--stats-interval-secs N`,
    /// `--corrupt-frame N` (repeatable; injects link corruption into the
    /// n-th outgoing frame, for integrity smoke tests).
    pub fn from_args(args: &[String]) -> Result<Self, String> {
        let mut cfg = ServerConfig::default();
        // Load the file (if any) before applying overrides, regardless of
        // flag order.
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a == "--config" {
                let path = it.next().ok_or("--config needs a file path")?;
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
                cfg = ServerConfig::parse_toml(&text)?;
            }
        }
        let mut peers_overridden = false;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut next = |flag: &str| -> Result<&String, String> {
                it.next().ok_or(format!("{flag} needs a value"))
            };
            match a.as_str() {
                "--config" => {
                    next("--config")?;
                }
                "--node" => cfg.node_id = parse_u64(next("--node")?)?,
                "--listen" => cfg.listen = Some(next("--listen")?.clone()),
                "--peer" => {
                    if !peers_overridden {
                        cfg.peers.clear();
                        peers_overridden = true;
                    }
                    cfg.peers.push(parse_peer(next("--peer")?)?);
                }
                "--initial-members" => {
                    cfg.initial_members = next("--initial-members")?
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(parse_u64)
                        .collect::<Result<_, _>>()?;
                }
                "--groups" => cfg.groups = parse_u64(next("--groups")?)? as u32,
                "--storage-dir" => cfg.storage_dir = Some(PathBuf::from(next("--storage-dir")?)),
                "--fsync" => cfg.fsync = true,
                "--no-fsync" => cfg.fsync = false,
                "--fsync-window-ms" => cfg.fsync_window_ms = parse_u64(next("--fsync-window-ms")?)?,
                "--max-batch" => cfg.max_batch = parse_u64(next("--max-batch")?)?,
                "--max-delay-ms" => cfg.max_delay_ms = parse_u64(next("--max-delay-ms")?)?,
                "--window" => cfg.window = parse_u64(next("--window")?)?,
                "--seed" => cfg.seed = parse_u64(next("--seed")?)?,
                "--run-for-secs" => cfg.run_for_secs = Some(parse_u64(next("--run-for-secs")?)?),
                "--events-out" => cfg.events_out = Some(PathBuf::from(next("--events-out")?)),
                "--metrics-listen" => {
                    cfg.metrics_listen = Some(next("--metrics-listen")?.clone());
                }
                "--stats-interval-secs" => {
                    cfg.stats_interval_secs = parse_u64(next("--stats-interval-secs")?)?;
                }
                "--corrupt-frame" => {
                    cfg.corrupt_frames
                        .push(parse_u64(next("--corrupt-frame")?)?);
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(cfg)
    }

    fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        match key {
            "node_id" => self.node_id = parse_u64(value)?,
            "listen" => self.listen = Some(parse_string(value)?),
            "peers" => {
                self.peers = parse_string_array(value)?
                    .iter()
                    .map(|s| parse_peer(s))
                    .collect::<Result<_, _>>()?;
            }
            "initial_members" => self.initial_members = parse_u64_array(value)?,
            "groups" => self.groups = parse_u64(value)? as u32,
            "storage_dir" => self.storage_dir = Some(PathBuf::from(parse_string(value)?)),
            "fsync" => self.fsync = parse_bool(value)?,
            "fsync_window_ms" => self.fsync_window_ms = parse_u64(value)?,
            "max_batch" => self.max_batch = parse_u64(value)?,
            "max_delay_ms" => self.max_delay_ms = parse_u64(value)?,
            "window" => self.window = parse_u64(value)?,
            "seed" => self.seed = parse_u64(value)?,
            "run_for_secs" => self.run_for_secs = Some(parse_u64(value)?),
            "events_out" => self.events_out = Some(PathBuf::from(parse_string(value)?)),
            "metrics_listen" => self.metrics_listen = Some(parse_string(value)?),
            "stats_interval_secs" => self.stats_interval_secs = parse_u64(value)?,
            "corrupt_frames" => self.corrupt_frames = parse_u64_array(value)?,
            other => return Err(format!("unknown key {other:?}")),
        }
        Ok(())
    }

    /// Resolves the configured listen address.
    pub fn listen_addr(&self) -> Result<Option<SocketAddr>, String> {
        self.listen.as_deref().map(resolve).transpose()
    }

    /// Resolves the configured telemetry endpoint address.
    pub fn metrics_listen_addr(&self) -> Result<Option<SocketAddr>, String> {
        self.metrics_listen.as_deref().map(resolve).transpose()
    }

    /// Resolves every peer (other than this node) to `(id, addr)`.
    pub fn peer_addrs(&self) -> Result<Vec<(u64, SocketAddr)>, String> {
        self.peers
            .iter()
            .filter(|(id, _)| *id != self.node_id)
            .map(|(id, host)| Ok((*id, resolve(host)?)))
            .collect()
    }

    /// Basic sanity checks, run before any socket is opened.
    pub fn validate(&self) -> Result<(), String> {
        if self.groups == 0 {
            return Err("groups must be at least 1".into());
        }
        if self.initial_members.is_empty() {
            return Err("initial_members must not be empty".into());
        }
        if self.max_batch == 0 {
            return Err("max_batch must be at least 1".into());
        }
        Ok(())
    }
}

/// Resolves `"host:port"` to the first socket address.
fn resolve(host: &str) -> Result<SocketAddr, String> {
    host.to_socket_addrs()
        .map_err(|e| format!("resolving {host:?}: {e}"))?
        .next()
        .ok_or_else(|| format!("{host:?} resolved to no addresses"))
}

fn parse_peer(s: &str) -> Result<(u64, String), String> {
    let (id, addr) = s
        .split_once('@')
        .ok_or_else(|| format!("peer {s:?} is not ID@HOST:PORT"))?;
    Ok((parse_u64(id)?, addr.to_owned()))
}

fn parse_u64(s: impl AsRef<str>) -> Result<u64, String> {
    let s = s.as_ref().trim();
    s.parse().map_err(|_| format!("{s:?} is not an integer"))
}

fn parse_bool(s: &str) -> Result<bool, String> {
    match s {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("{other:?} is not true/false")),
    }
}

fn parse_string(s: &str) -> Result<String, String> {
    let s = s.trim();
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        Ok(s[1..s.len() - 1].to_owned())
    } else {
        Err(format!("{s:?} is not a quoted string"))
    }
}

fn array_items(s: &str) -> Result<Vec<&str>, String> {
    let s = s.trim();
    if !(s.starts_with('[') && s.ends_with(']')) {
        return Err(format!("{s:?} is not an array"));
    }
    Ok(s[1..s.len() - 1]
        .split(',')
        .map(str::trim)
        .filter(|i| !i.is_empty())
        .collect())
}

fn parse_u64_array(s: &str) -> Result<Vec<u64>, String> {
    array_items(s)?.into_iter().map(parse_u64).collect()
}

fn parse_string_array(s: &str) -> Result<Vec<String>, String> {
    array_items(s)?.into_iter().map(parse_string).collect()
}

/// Strips a trailing `#` comment, respecting double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_config_file() {
        let cfg = ServerConfig::parse_toml(
            r#"
            # replica zero
            node_id = 0
            listen = "127.0.0.1:7400"   # the accept address
            peers = ["0@127.0.0.1:7400", "1@127.0.0.1:7401"]
            initial_members = [0, 1, 2]
            groups = 4
            storage_dir = "data/n0"
            fsync = false
            seed = 7
            run_for_secs = 30
            events_out = "ev.jsonl"
            "#,
        )
        .unwrap();
        assert_eq!(cfg.node_id, 0);
        assert_eq!(cfg.listen.as_deref(), Some("127.0.0.1:7400"));
        assert_eq!(cfg.peers.len(), 2);
        assert_eq!(cfg.peers[1], (1, "127.0.0.1:7401".to_owned()));
        assert_eq!(cfg.initial_members, vec![0, 1, 2]);
        assert_eq!(cfg.groups, 4);
        assert_eq!(
            cfg.storage_dir.as_deref(),
            Some(std::path::Path::new("data/n0"))
        );
        assert!(!cfg.fsync);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.run_for_secs, Some(30));
        cfg.validate().unwrap();
        assert_eq!(
            cfg.peer_addrs().unwrap(),
            vec![(1, "127.0.0.1:7401".parse().unwrap())]
        );
        assert_eq!(
            cfg.listen_addr().unwrap(),
            Some("127.0.0.1:7400".parse().unwrap())
        );
    }

    #[test]
    fn cli_flags_override_the_file() {
        let dir = std::env::temp_dir().join(format!("rsmr-cfg-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("node.toml");
        std::fs::write(&path, "node_id = 3\ngroups = 2\npeers = [\"3@a:1\"]\n").unwrap();
        let args: Vec<String> = [
            "--config",
            path.to_str().unwrap(),
            "--node",
            "5",
            "--peer",
            "5@127.0.0.1:9000",
            "--peer",
            "6@127.0.0.1:9001",
            "--initial-members",
            "5,6",
            "--no-fsync",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cfg = ServerConfig::from_args(&args).unwrap();
        assert_eq!(cfg.node_id, 5);
        assert_eq!(cfg.groups, 2, "file value survives");
        assert_eq!(cfg.peers.len(), 2, "--peer replaces the file's list");
        assert_eq!(cfg.initial_members, vec![5, 6]);
        assert!(!cfg.fsync);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_input_is_rejected_with_line_numbers() {
        assert!(ServerConfig::parse_toml("node_id 0")
            .unwrap_err()
            .contains("line 1"));
        assert!(ServerConfig::parse_toml("nope = 1")
            .unwrap_err()
            .contains("nope"));
        assert!(ServerConfig::parse_toml("listen = 127.0.0.1").is_err());
        assert!(ServerConfig::parse_toml("peers = [\"noatsign\"]").is_err());
        assert!(ServerConfig::from_args(&["--bogus".to_owned()]).is_err());
        let empty = ServerConfig::default();
        assert!(empty.validate().is_err(), "empty member set rejected");
    }
}
