//! # rsmr-server — a deployable replica of the reconfigurable machine
//!
//! This crate assembles the *unmodified* protocol actors — the same
//! [`rsmr_core::RsmrNode`] / [`rsmr_core::harness::World`] /
//! [`simnet::MultiGroup`] types every simulated experiment runs — onto
//! real backends via [`simnet::NodeRuntime`]: TCP transport with
//! length-prefixed frames and reconnect, a wall clock, and a file-backed
//! [`simnet::StableStore`] that survives crashes.
//!
//! The library exposes the assembly ([`build_actor`]) and the serve loop
//! ([`serve`]) so integration tests and the load generator can host
//! replicas in-process; the `rsmr-server` binary is a thin CLI wrapper.
//! See `OPERATIONS.md` at the repository root for the operator's guide.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use kvstore::KvStore;
use rsmr_core::harness::World;
use rsmr_core::{RsmrNode, RsmrTunables};
use simnet::observe::shared;
use simnet::{
    FileStorage, GroupId, MemStorage, MultiGroup, NodeId, NodeRuntime, RuntimeConfig, Spans,
    StableStore, StorageBackend, TcpConfig, TcpTransport, WallClock,
};

pub mod config;
pub use config::ServerConfig;

use consensus::StaticConfig;

/// The actor a replica hosts: every group's reconfigurable node,
/// multiplexed over one runtime — identical to the sharded simulation
/// worlds.
pub type ReplicaActor = MultiGroup<World<KvStore>>;

/// What [`serve`] reports after a clean shutdown.
#[derive(Clone, Debug)]
pub struct ServerSummary {
    /// This replica's id.
    pub node: u64,
    /// Groups rebuilt from the storage dir (vs. started fresh).
    pub recovered_groups: usize,
    /// Per-group `(group, anchored epoch)` at shutdown; `None` when the
    /// group never anchored (e.g. a joiner that was never activated).
    pub anchored_epochs: Vec<(u32, Option<u64>)>,
    /// Application operations applied across all groups.
    pub ops_applied: u64,
    /// Messages sent / delivered by the runtime.
    pub net_sent: u64,
    /// Messages delivered to this replica.
    pub net_delivered: u64,
}

/// Builds the replica's actor from its (possibly recovered) stable store.
///
/// Per group: a node with persisted state recovers from it
/// ([`RsmrNode::recover`]); otherwise a member of the genesis
/// configuration boots as a genesis replica and anyone else boots
/// *joining* — it waits for an `Activate` naming it a member. Returns the
/// actor and how many groups were recovered.
pub fn build_actor(cfg: &ServerConfig, store: &StableStore) -> (ReplicaActor, usize) {
    let me = NodeId(cfg.node_id);
    let mut tun = RsmrTunables::default();
    tun.paxos.max_batch = cfg.max_batch as usize;
    tun.paxos.max_delay = simnet::SimDuration::from_millis(cfg.max_delay_ms);
    tun.paxos.window = cfg.window as usize;
    let initial: Vec<NodeId> = cfg.initial_members.iter().map(|&n| NodeId(n)).collect();
    let persisted = ReplicaActor::persisted_groups(store);
    let mut actor = ReplicaActor::sealed();
    let mut recovered = 0;
    for g in 0..cfg.groups {
        let gid = GroupId(g);
        let from_disk = persisted.contains(&gid).then(|| {
            let sub = store.subtree(&gid.scope());
            RsmrNode::recover(me, tun.clone(), &sub)
        });
        let node = match from_disk.flatten() {
            Some(node) => {
                recovered += 1;
                node
            }
            None if initial.contains(&me) => {
                RsmrNode::genesis(me, StaticConfig::new(initial.clone()), tun.clone())
            }
            None => RsmrNode::joining(me, tun.clone()),
        };
        actor.insert(gid, World::server(node));
    }
    (actor, recovered)
}

fn io_err(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, msg)
}

/// Runs one replica until `stop` is set or the configured
/// `run_for_secs` deadline passes, then flushes storage and reports.
///
/// This is the whole server: load the store, rebuild the actor, bind the
/// transport, and pump the runtime. The binary calls it with a
/// never-set stop flag; tests set the flag to orchestrate shutdown.
pub fn serve(cfg: &ServerConfig, stop: &AtomicBool) -> io::Result<ServerSummary> {
    cfg.validate().map_err(io_err)?;
    let me = NodeId(cfg.node_id);
    let listen = cfg.listen_addr().map_err(io_err)?;
    let peers = cfg.peer_addrs().map_err(io_err)?;

    let mut backend: Box<dyn StorageBackend> = match &cfg.storage_dir {
        Some(dir) => Box::new(
            FileStorage::open(dir, cfg.fsync)?
                .with_sync_window(Duration::from_millis(cfg.fsync_window_ms)),
        ),
        None => Box::new(MemStorage),
    };
    let store = backend.load()?;
    let (actor, recovered_groups) = build_actor(cfg, &store);

    let mut tcp = TcpConfig::new(me);
    if let Some(addr) = listen {
        tcp = tcp.listen(addr);
    }
    for (id, addr) in peers {
        tcp = tcp.peer(NodeId(id), addr);
    }
    let transport = TcpTransport::bind(tcp)?;

    let mut rt = NodeRuntime::new(
        me,
        actor,
        WallClock::new(),
        transport,
        backend,
        store,
        RuntimeConfig {
            seed: cfg.seed,
            ..RuntimeConfig::default()
        },
    );
    let spans = shared(Spans::new());
    rt.add_observer(spans.clone());

    let deadline = cfg
        .run_for_secs
        .map(|s| Instant::now() + Duration::from_secs(s));
    while !stop.load(Ordering::SeqCst) {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        rt.run_for(Duration::from_millis(50));
    }

    let summary = summarize(cfg, recovered_groups, &rt);
    if let Some(path) = &cfg.events_out {
        let spans = spans.borrow();
        std::fs::write(path, events_jsonl(&summary, &spans))?;
    }
    rt.shutdown();
    Ok(summary)
}

fn summarize(
    cfg: &ServerConfig,
    recovered_groups: usize,
    rt: &NodeRuntime<ReplicaActor>,
) -> ServerSummary {
    let mut anchored = Vec::new();
    let mut ops = 0;
    for (gid, world) in rt.actor().entries() {
        if let Some(node) = world.as_server() {
            anchored.push((gid.0, node.anchored_epoch().map(|e| e.0)));
            ops += node.state_machine().ops_applied();
        }
    }
    ServerSummary {
        node: cfg.node_id,
        recovered_groups,
        anchored_epochs: anchored,
        ops_applied: ops,
        net_sent: rt.metrics().counter("net.sent"),
        net_delivered: rt.metrics().counter("net.delivered"),
    }
}

/// Renders the shutdown event file: one summary line, one line per
/// observed reconfiguration span, one command-latency line. Values are
/// microseconds; absent phases are `null`.
fn events_jsonl(summary: &ServerSummary, spans: &Spans) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"event\":\"server_summary\",\"node\":{},\"recovered_groups\":{},\"ops_applied\":{},\"net_sent\":{},\"net_delivered\":{}}}\n",
        summary.node, summary.recovered_groups, summary.ops_applied, summary.net_sent,
        summary.net_delivered
    );
    let opt = |d: Option<simnet::SimDuration>| match d {
        Some(d) => d.as_micros().to_string(),
        None => "null".to_owned(),
    };
    for b in spans.epoch_breakdowns() {
        let _ = write!(
            out,
            "{{\"event\":\"reconfig_span\",\"node\":{},\"epoch\":{},\"seal_latency_us\":{},\"transfer_time_us\":{},\"transfer_bytes\":{},\"handoff_gap_us\":{}}}\n",
            summary.node,
            b.epoch,
            opt(b.seal_latency),
            opt(b.transfer_time),
            b.transfer_bytes,
            opt(b.handoff_gap)
        );
    }
    let _ = write!(
        out,
        "{{\"event\":\"command_latency\",\"node\":{},\"completed\":{},\"mean_us\":{}}}\n",
        summary.node,
        spans.commands_completed(),
        spans.mean_command_latency_us()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> ServerConfig {
        ServerConfig {
            node_id: 0,
            initial_members: vec![0, 1, 2],
            groups: 2,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn genesis_members_and_joiners_assemble_differently() {
        let store = StableStore::new();
        let (actor, recovered) = build_actor(&base_cfg(), &store);
        assert_eq!(recovered, 0);
        let groups: Vec<_> = actor.entries().map(|(g, _)| g).collect();
        assert_eq!(groups, vec![GroupId(0), GroupId(1)]);
        for (_, world) in actor.entries() {
            let node = world.as_server().expect("server world");
            assert_eq!(
                node.anchored_epoch().map(|e| e.0),
                Some(0),
                "genesis anchors epoch 0"
            );
        }
        // A node outside the genesis set starts joining (no chain yet).
        let cfg = ServerConfig {
            node_id: 9,
            ..base_cfg()
        };
        let (actor, _) = build_actor(&cfg, &store);
        for (_, world) in actor.entries() {
            assert!(world.as_server().is_some());
        }
    }

    #[test]
    fn events_jsonl_is_valid_shape() {
        let summary = ServerSummary {
            node: 3,
            recovered_groups: 1,
            anchored_epochs: vec![(0, Some(2))],
            ops_applied: 17,
            net_sent: 5,
            net_delivered: 6,
        };
        let text = events_jsonl(&summary, &Spans::new());
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"server_summary\""));
        assert!(lines[0].contains("\"node\":3"));
        assert!(lines[1].contains("\"command_latency\""));
    }
}
